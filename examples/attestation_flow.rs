//! Remote attestation, message by message — Fig. 3 on the wire.
//!
//! The quickstart drives the whole lifecycle through one `deploy()`
//! call; this example opens the hood and performs each protocol step of
//! Fig. 3 by hand, printing every value that crosses the untrusted host:
//!
//! 1. TLS-equivalent channel setup (modelled; contents are end-to-end
//!    protected regardless).
//! 2. Vendor → Kernel: nonce `n` + ephemeral Verification Key.
//! 3. Kernel: hashes the staged encrypted bitstream, derives the
//!    SessionKey, signs it (σ_SessionKey).
//! 4. Kernel → Vendor: report α = (n, H(Enc(Accel)), AttestKey_pub,
//!    H(SecKrnl), σ_SecKrnl), plus σ_α and σ_SessionKey.
//! 5. Vendor: verifies σ_SecKrnl against the Manufacturer CA, checks
//!    H(SecKrnl) against the public kernel registry, checks the nonce,
//!    the bitstream hash, σ_α, and σ_SessionKey.
//! 6. Vendor → Kernel: Enc_SessionKey(BitstrKey).
//! 7. Shield Encryption Key → Data Owner; Load Key → Shield.
//!
//! It then demonstrates the negative paths: a replayed response, a
//! tampered report, and a kernel hash missing from the registry are all
//! rejected.
//!
//! Run with: `cargo run --release --example attestation_flow`

use shef::core::attest::{kernel_handle_challenge, kernel_receive_bitstream_key};
use shef::core::boot::secure_boot;
use shef::core::shield::{EngineSetConfig, MemRange, Shield, ShieldConfig};
use shef::core::workflow::TestBench;
use shef::core::ShefError;
use shef::crypto::to_hex;
use shef::fpga::board::image_names;

fn hex8(bytes: &[u8]) -> String {
    format!("{}…", &to_hex(bytes)[..16])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut bench = TestBench::new("attestation-flow");
    let mut board = bench.fresh_board(b"die-attest-042")?;

    // The vendor's product: a Shielded accelerator, encrypted under the
    // Bitstream Encryption Key that attestation will deliver.
    let config = ShieldConfig::builder()
        .region(
            "data",
            MemRange::new(0, 64 * 1024),
            EngineSetConfig::default(),
        )
        .build()?;
    let product =
        bench
            .vendor
            .package_accelerator("attest-demo-v1", config, b"<netlist>".to_vec())?;
    board.boot_medium.store(
        image_names::ACCELERATOR_BITSTREAM,
        product.encrypted_bitstream.0.clone(),
    );

    // Secure boot must precede attestation: it provisions the
    // Attestation Key pair bound to (device key, H(SecKrnl)).
    let report = secure_boot(&mut board)?;
    println!("[boot]    H(SecKrnl)      = {}", hex8(&report.kernel_hash));
    println!(
        "[boot]    boot time       = {:.1} ms (model)",
        report.timing.total_ms()
    );
    println!();

    // ---- Fig. 3 steps 1–2: challenge.
    let (challenge, session) = bench.vendor.begin_attestation();
    println!("[vendor]  n               = {}", hex8(&challenge.nonce));
    println!(
        "[vendor]  VerifKey_pub    = {}",
        hex8(&challenge.verif_public)
    );

    // ---- Steps 3–4: the kernel builds and signs the report. Everything
    // below travels through the untrusted host program.
    let response = kernel_handle_challenge(&mut board, &challenge)?;
    println!(
        "[kernel]  α.nonce         = {}",
        hex8(&response.report.nonce)
    );
    println!(
        "[kernel]  α.H(Enc(Accel)) = {}",
        hex8(&response.report.enc_bitstream_hash)
    );
    println!(
        "[kernel]  α.AttestKey_pub = {}",
        hex8(&response.report.attest_sign_public.0)
    );
    println!(
        "[kernel]  α.H(SecKrnl)    = {}",
        hex8(&response.report.kernel_hash)
    );
    println!(
        "[kernel]  σ_SecKrnl       = {}",
        hex8(&response.report.sigma_seckrnl.0)
    );
    println!(
        "[kernel]  σ_α             = {}",
        hex8(&response.sigma_alpha.0)
    );
    println!(
        "[kernel]  σ_SessionKey    = {}",
        hex8(&response.sigma_session.0)
    );

    // ---- Steps 5–6: vendor-side verification chain.
    let device_cert = bench
        .manufacturer
        .ca()
        .device_certificate(board.device.die_serial())
        .expect("manufacturer registered the device at production time")
        .clone();
    let (sealed_bitstream_key, shield_public) =
        bench
            .vendor
            .complete_attestation(&session, &response, &device_cert, &product.accel_id)?;
    println!();
    println!("[vendor]  device cert ✓  kernel registry ✓  nonce ✓  bitstream hash ✓");
    println!(
        "[vendor]  Enc_Session(BitstrKey) = {} bytes",
        sealed_bitstream_key.to_bytes().len()
    );

    // ---- Step 6 (kernel side): decrypt + load the accelerator.
    let bitstream = kernel_receive_bitstream_key(&mut board, &sealed_bitstream_key)?;
    println!(
        "[kernel]  bitstream '{}' decrypted and loaded into PR region",
        bitstream.accel_id
    );

    // ---- Steps 7–8: Shield Encryption Key → Load Key → Shield.
    let mut shield = Shield::new(bitstream.shield_config.clone(), bitstream.shield_keypair())?;
    assert_eq!(shield.public_key(), shield_public);
    let dek = bench.data_owner.generate_data_key();
    let load_key = bench.data_owner.build_load_key(&dek, &shield_public);
    shield.provision_load_key(&load_key)?;
    println!("[owner]   LoadKey accepted; Shield provisioned ✓");
    println!();

    // ---- Negative paths: what the protocol must reject.
    // (a) Replay: an old response against a fresh challenge fails the
    //     nonce check.
    let (_, fresh_session) = bench.vendor.begin_attestation();
    let replay = bench.vendor.complete_attestation(
        &fresh_session,
        &response,
        &device_cert,
        &product.accel_id,
    );
    assert!(matches!(replay, Err(ShefError::AttestationFailed(_))));
    println!("[vendor]  replayed response     → rejected ✓ (stale nonce)");

    // (b) Tampered report: flipping a bit in H(Enc(Accel)) breaks σ_α.
    let mut tampered = response.clone();
    tampered.report.enc_bitstream_hash[0] ^= 1;
    let bad =
        bench
            .vendor
            .complete_attestation(&session, &tampered, &device_cert, &product.accel_id);
    assert!(bad.is_err());
    println!("[vendor]  tampered α            → rejected ✓ (σ_α invalid)");

    // (c) Unknown kernel: a report claiming an unregistered H(SecKrnl)
    //     fails the public-registry lookup even with a valid-looking
    //     signature chain.
    let mut rogue = response.clone();
    rogue.report.kernel_hash = [0xEE; 32];
    let rogue_result =
        bench
            .vendor
            .complete_attestation(&session, &rogue, &device_cert, &product.accel_id);
    assert!(rogue_result.is_err());
    println!("[vendor]  unregistered kernel   → rejected ✓ (registry miss)");

    println!();
    println!("attestation flow complete: positive path ✓ three negative paths ✓");
    Ok(())
}
