//! Crafting a bespoke TEE: swapping cryptographic engines and replay
//! defences per region (§5.2.2).
//!
//! The Shield's central promise is that security is a *configuration*,
//! not a fixed design: "Since the engines expose a simple valid/ready
//! interface, IP Vendors can simply substitute a new cryptographic
//! engine in their place." This example takes one accelerator-shaped
//! workload — a 1 MB state region with mixed streaming and random
//! access — and builds four differently-shielded variants:
//!
//! * HMAC (the default), PMAC, and GHASH/GCM authentication engines;
//! * replay protection via on-chip counters (the ShEF scheme) vs a
//!   DRAM-resident Bonsai Merkle Tree (the CPU-TEE baseline of §5.2.2).
//!
//! For each variant it reports modelled cycles and the Table-1-based
//! area, demonstrating the performance/area trade the IP Vendor makes.
//!
//! Run with: `cargo run --release --example custom_engine`

use shef::core::shield::area::shield_area;
use shef::core::shield::{
    AccessMode, DataEncryptionKey, EngineSetConfig, MemRange, MerkleConfig, Shield, ShieldConfig,
};
use shef::crypto::authenc::MacAlgorithm;
use shef::crypto::ecies::EciesKeyPair;
use shef::fpga::clock::CostLedger;
use shef::fpga::dram::Dram;
use shef::fpga::shell::Shell;

const REGION: u64 = 1 << 20;
const CHUNK: usize = 512;

struct Variant {
    label: &'static str,
    engine_set: EngineSetConfig,
}

fn variants() -> Vec<Variant> {
    let base = EngineSetConfig {
        chunk_size: CHUNK,
        buffer_bytes: 16 * 1024,
        aes_engines: 2,
        mac_engines: 2,
        ..EngineSetConfig::default()
    };
    vec![
        Variant {
            label: "HMAC + on-chip counters (default)",
            engine_set: EngineSetConfig {
                mac: MacAlgorithm::HmacSha256,
                counters: true,
                ..base.clone()
            },
        },
        Variant {
            label: "PMAC + on-chip counters",
            engine_set: EngineSetConfig {
                mac: MacAlgorithm::PmacAes,
                counters: true,
                ..base.clone()
            },
        },
        Variant {
            label: "GCM  + on-chip counters",
            engine_set: EngineSetConfig {
                mac: MacAlgorithm::AesGcm,
                counters: true,
                ..base.clone()
            },
        },
        Variant {
            label: "GCM  + Bonsai Merkle Tree (16 KB cache)",
            engine_set: EngineSetConfig {
                mac: MacAlgorithm::AesGcm,
                counters: false,
                merkle: Some(MerkleConfig {
                    arity: 8,
                    node_cache_bytes: 16 * 1024,
                }),
                ..base
            },
        },
    ]
}

/// A mixed workload: one streaming pass over the region, then 2 000
/// random read-modify-writes — the access mix of a stateful accelerator
/// (e.g. feature maps between layers).
fn run_workload(shield: &mut Shield) -> Result<u64, Box<dyn std::error::Error>> {
    let mut shell = Shell::new();
    // Full 64 GB F1 address space: the Merkle variant stores its tree in
    // the high arena.
    let mut dram = Dram::f1_default();
    let mut ledger = CostLedger::new();

    for start in (0..REGION).step_by(CHUNK) {
        shield.write(
            &mut shell,
            &mut dram,
            &mut ledger,
            start,
            &[7u8; CHUNK],
            AccessMode::Streaming,
        )?;
    }
    shield.flush(&mut shell, &mut dram, &mut ledger)?;

    let mut state = 0x1234_5678_9abc_def0u64;
    for _ in 0..2_000 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let addr = (state >> 16) % (REGION - 64);
        let mut bytes = shield.read(
            &mut shell,
            &mut dram,
            &mut ledger,
            addr,
            16,
            AccessMode::Streaming,
        )?;
        bytes[0] = bytes[0].wrapping_add(1);
        shield.write(
            &mut shell,
            &mut dram,
            &mut ledger,
            addr,
            &bytes,
            AccessMode::Streaming,
        )?;
    }
    shield.flush(&mut shell, &mut dram, &mut ledger)?;
    ledger.merge(dram.ledger());
    Ok(ledger.bottleneck().0)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("bespoke-TEE sweep: 1 MB region, C=512B, 16 KB buffer, stream + 2k RMW");
    println!();
    println!(
        "{:<42} {:>12} {:>9} {:>8} {:>8} {:>9}",
        "variant", "cycles", "rel", "LUT %", "REG %", "BRAM %"
    );

    let mut floor: Option<f64> = None;
    for variant in variants() {
        let config = ShieldConfig::builder()
            .region(
                "state",
                MemRange::new(0, REGION),
                variant.engine_set.clone(),
            )
            .build()?;
        let area = shield_area(&config);
        let mut shield = Shield::new(config, EciesKeyPair::from_seed(variant.label.as_bytes()))?;
        let dek = DataEncryptionKey::from_bytes([0x2au8; 32]);
        shield.provision_load_key(&dek.to_load_key(&shield.public_key()))?;
        let cycles = run_workload(&mut shield)?;
        let rel = match floor {
            Some(f) => cycles as f64 / f,
            None => {
                floor = Some(cycles as f64);
                1.0
            }
        };
        println!(
            "{:<42} {:>12} {:>8.2}x {:>7.2}% {:>7.2}% {:>8.2}%",
            variant.label,
            cycles,
            rel,
            area.lut_pct(),
            area.reg_pct(),
            area.bram_pct(),
        );
    }

    println!();
    println!("reading the table:");
    println!("  - engine swap (HMAC → PMAC → GCM) is one field in EngineSetConfig;");
    println!("    ciphertext formats stay interoperable (encrypt-then-MAC over AES-CTR).");
    println!("  - the Merkle variant matches the counters' replay protection but pays");
    println!("    DRAM node walks on every miss — the §5.2.2 trade. At this C_mem the");
    println!("    counter file is only ~128 Kb; its OCM cost (and the tree's savings)");
    println!("    grows with small chunks over large regions — see the");
    println!("    integrity_ablation bench for that sweep.");
    Ok(())
}
