//! Secure ML inference: DNNWeaver running LeNet behind the Shield —
//! the paper's flagship mixed-pattern workload (§6.2.4).
//!
//! Shows the two-engine-set bespoke configuration (4 KB streaming
//! weights vs 64 B read-modify-write feature maps with freshness
//! counters), and the §6.2.4 optimization of swapping the weight set's
//! HMAC for four PMAC engines.
//!
//! Run with: `cargo run --release --example secure_ml_inference`

use shef::accel::dnnweaver::DnnWeaver;
use shef::accel::harness::{run_baseline, run_shielded};
use shef::accel::{Accelerator, CryptoProfile};
use shef::core::shield::area::shield_area;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let batch = 4;

    let mut accel = DnnWeaver::new(batch, 99);
    let cfg = accel.shield_config(&CryptoProfile::AES128_16X);
    println!("bespoke Shield for DNNWeaver/LeNet:");
    for region in &cfg.regions {
        println!(
            "  {:<8} {:>8} B  {}",
            region.name,
            region.range.len,
            region.engine_set.describe()
        );
    }
    let area = shield_area(&cfg);
    println!(
        "  area: {:.1}% LUT, {:.1}% REG, {:.1}% BRAM of the F1 device",
        area.lut_pct(),
        area.reg_pct(),
        area.bram_pct()
    );
    println!();

    let baseline = run_baseline(&mut accel)?;
    assert!(baseline.outputs_verified);
    println!("baseline (no shield):        {:>8.0} µs", baseline.micros);

    let mut accel = DnnWeaver::new(batch, 99);
    let hmac = run_shielded(&mut accel, &CryptoProfile::AES128_16X, 3)?;
    assert!(hmac.outputs_verified);
    println!(
        "shielded, HMAC weights:      {:>8.0} µs  ({:.2}x)  [paper: 3.20x]",
        hmac.micros,
        hmac.micros / baseline.micros
    );

    let mut accel = DnnWeaver::new(batch, 99).with_pmac_weights();
    let pmac = run_shielded(&mut accel, &CryptoProfile::AES128_16X_PMAC, 3)?;
    assert!(pmac.outputs_verified);
    println!(
        "shielded, PMAC x4 weights:   {:>8.0} µs  ({:.2}x)  [paper: 2.31x]",
        pmac.micros,
        pmac.micros / baseline.micros
    );

    println!();
    println!("the 10 class scores of every inference were produced inside the TEE and");
    println!("verified against the Data Owner's golden model after authenticated readback.");
    Ok(())
}
