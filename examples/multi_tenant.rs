//! Multiple isolated execution environments on one fabric (§3).
//!
//! "The IP Vendor can secure multiple accelerator modules with separate
//! Shield modules, enabling multiple isolated execution environments."
//! Two tenants share one FPGA: each gets its own Shield with its own
//! embedded Shield Encryption Key, provisions its own Data Encryption
//! Key, and operates on disjoint regions of the shared device DRAM.
//!
//! The example shows the three isolation properties a co-tenant (or the
//! CSP's Shell) cannot break:
//!
//! 1. a Load Key built for tenant A's Shield is useless to tenant B's;
//! 2. neither Shield can even address the other's regions;
//! 3. a tenant (or the Shell) tampering with the other's ciphertext is
//!    detected by the victim, not silently absorbed.
//!
//! Run with: `cargo run --release --example multi_tenant`

use shef::core::shield::{
    client, AccessMode, DataEncryptionKey, EngineSetConfig, MemRange, Shield, ShieldConfig,
};
use shef::core::ShefError;
use shef::crypto::ecies::EciesKeyPair;
use shef::fpga::clock::CostLedger;
use shef::fpga::dram::Dram;
use shef::fpga::shell::Shell;

fn tenant_shield(name: &str, base: u64, seed: &[u8]) -> Result<Shield, ShefError> {
    let config = ShieldConfig::builder()
        .region(
            name,
            MemRange::new(base, 256 * 1024),
            EngineSetConfig {
                buffer_bytes: 8 * 1024,
                counters: true,
                ..EngineSetConfig::default()
            },
        )
        .build()?;
    Shield::new(config, EciesKeyPair::from_seed(seed))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One physical device, two Shield modules in the PR region.
    let mut shell = Shell::new();
    let mut dram = Dram::f1_default();
    let mut ledger = CostLedger::new();

    let mut alice = tenant_shield("alice-genomes", 0, b"vendor-shield-alice")?;
    let mut bob = tenant_shield("bob-ledgers", 1 << 26, b"vendor-shield-bob")?;

    // Each tenant provisions their own Data Encryption Key.
    let dek_alice = DataEncryptionKey::from_bytes([0xA1u8; 32]);
    let dek_bob = DataEncryptionKey::from_bytes([0xB0u8; 32]);
    alice.provision_load_key(&dek_alice.to_load_key(&alice.public_key()))?;
    bob.provision_load_key(&dek_bob.to_load_key(&bob.public_key()))?;
    println!("[setup]   two Shields provisioned with independent keys");

    // Property 1: cross-Shield Load Keys are rejected.
    let mut impostor = tenant_shield("alice-genomes", 0, b"vendor-shield-alice-2")?;
    let wrong = impostor.provision_load_key(&dek_bob.to_load_key(&bob.public_key()));
    assert!(wrong.is_err());
    println!("[isolate] Bob's Load Key on another Shield → rejected ✓");

    // Tenants do their work.
    let genome = {
        let mut v = b"ACGTACGTTTAGGCCA".repeat(32);
        v.truncate(512);
        v
    };
    alice.write(
        &mut shell,
        &mut dram,
        &mut ledger,
        0,
        &genome,
        AccessMode::Streaming,
    )?;
    alice.flush(&mut shell, &mut dram, &mut ledger)?;
    bob.write(
        &mut shell,
        &mut dram,
        &mut ledger,
        1 << 26,
        &[0x42u8; 512],
        AccessMode::Streaming,
    )?;
    bob.flush(&mut shell, &mut dram, &mut ledger)?;
    println!("[run]     both tenants wrote encrypted state to shared DRAM");

    // Property 2: the burst decoder confines each Shield to its regions.
    let foreign = bob.read(
        &mut shell,
        &mut dram,
        &mut ledger,
        0,
        64,
        AccessMode::Streaming,
    );
    assert!(matches!(foreign, Err(ShefError::UnmappedAddress(_))));
    println!("[isolate] Bob's Shield reading Alice's region → unmapped ✓");

    // And even with raw DRAM access (the Shell's view), Alice's data is
    // ciphertext under a key Bob never sees.
    let raw = dram.tamper_read(0, 512);
    assert_ne!(raw, genome);
    println!("[isolate] raw DRAM view of Alice's region is ciphertext ✓");

    // Property 3: cross-tenant tampering is detected by the victim.
    let mut flipped = dram.tamper_read(128, 1);
    flipped[0] ^= 0x80;
    dram.tamper_write(128, &flipped);
    let tampered = alice.read(
        &mut shell,
        &mut dram,
        &mut ledger,
        0,
        512,
        AccessMode::Streaming,
    );
    assert!(matches!(tampered, Err(ShefError::IntegrityViolation(_))));
    println!("[detect]  Alice's Shield flags the tampered chunk ✓");

    // Bob is unaffected throughout.
    let bob_data = bob.read(
        &mut shell,
        &mut dram,
        &mut ledger,
        1 << 26,
        512,
        AccessMode::Streaming,
    )?;
    assert_eq!(bob_data, vec![0x42u8; 512]);
    println!("[detect]  Bob's Shield unaffected ✓");

    // Data Owners decrypt their outputs client-side as usual.
    let region = bob.config().regions[0].clone();
    let ct = dram.tamper_read(1 << 26, 512);
    let tags = dram.tamper_read(bob.config().tag_base(0), client::tag_bytes_for(512, 512));
    // One write epoch under counters.
    let plain = client::decrypt_region(&dek_bob, &region, &ct, &tags, &client::uniform_epochs(1))?;
    assert_eq!(plain, vec![0x42u8; 512]);
    println!("[readout] Bob's Data Owner decrypted his results off-device ✓");

    // --- The managed path: ShieldService does all of the above for you.
    //
    // Instead of hand-wiring Shields onto a shared DRAM, a CSP-side
    // service can host many tenants, each with a private Shield, DRAM
    // namespace, and a DEK the tenant sealed to the enclave over the
    // remote-attestation protocol (see `examples/attested_tenant.rs`
    // for the full walk-through). Admission requires a ticket from the
    // verifier the service trusts; requests then pass admission control
    // and are dispatched deterministically across shards.
    use shef::attest::AttestationEnvironment;
    use shef::core::shield::{ServiceConfig, ServiceRequest, ShieldService};

    let master = DataEncryptionKey::from_bytes([0x5Eu8; 32]);
    let mut env = AttestationEnvironment::new(b"examples.multi-tenant")?;
    let mut service = ShieldService::new(
        ServiceConfig {
            shards: 2,
            lanes_per_shard: 2,
            queue_capacity: 16,
            tenant_quota: 8,
        },
        env.verifier_public(),
    )?;
    let svc_config = || {
        ShieldConfig::builder()
            .region(
                "scratch",
                MemRange::new(0x1000, 64 * 1024),
                EngineSetConfig::default(),
            )
            .build()
            .expect("valid config")
    };
    let grant_alice = env.onboard("alice", master.tenant_key("alice").to_bytes())?;
    let grant_bob = env.onboard("bob", master.tenant_key("bob").to_bytes())?;
    let t_alice = service.register_tenant("alice", svc_config(), &grant_alice)?;
    let t_bob = service.register_tenant("bob", svc_config(), &grant_bob)?;

    // Same address, different tenants: namespaces and keys are private.
    for (tenant, byte) in [(t_alice, 0xACu8), (t_bob, 0xB7u8)] {
        service.submit(
            tenant,
            ServiceRequest::Write {
                addr: 0x1000,
                data: vec![byte; 512],
                mode: AccessMode::Streaming,
            },
        )?;
        service.submit(
            tenant,
            ServiceRequest::Read {
                addr: 0x1000,
                len: 512,
                mode: AccessMode::Streaming,
            },
        )?;
    }
    let completions = service.drain();
    assert_eq!(completions.len(), 4);
    for c in &completions {
        let expect = if c.tenant == t_alice { 0xACu8 } else { 0xB7u8 };
        if let Some(bytes) = c.payload.as_ref().expect("clean run") {
            assert_eq!(bytes, &vec![expect; 512]);
        }
    }
    let snapshot = service.telemetry().report();
    println!(
        "[service] managed path: {} requests admitted, {} completed across {} shards ✓",
        snapshot.counters["shield.service.admitted"],
        snapshot.counters["shield.service.completed"],
        service.shard_count(),
    );

    println!();
    println!("multi-tenant isolation: keys ✓ addressing ✓ tamper detection ✓ service ✓");
    Ok(())
}
