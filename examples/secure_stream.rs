//! Protecting a PCIe-style stream port (§5.1's "additional interfaces").
//!
//! Device memory is not the only I/O surface: hosts also push commands
//! and bulk data through PCIe/AXI-stream channels that the untrusted
//! Shell forwards. This example runs a command/response session over
//! the Shield's stream engine and then lets the malicious host try its
//! four tricks — replay, reorder, drop, and splice-across-directions —
//! all of which the sequence-bound tags catch.
//!
//! Run with: `cargo run --release --example secure_stream`

use shef::core::shield::{DataEncryptionKey, StreamEndpoint};
use shef::core::ShefError;
use shef::crypto::authenc::MacAlgorithm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Both endpoints derive the channel key from the provisioned Data
    // Encryption Key — no extra key exchange beyond the Load Key.
    let dek = DataEncryptionKey::from_bytes([0x77u8; 32]);
    let mut owner = StreamEndpoint::client_side(&dek, "pcie0", MacAlgorithm::AesGcm);
    let mut shield = StreamEndpoint::shield_side(&dek, "pcie0", MacAlgorithm::AesGcm);

    // A normal session: three commands, three responses, through the
    // untrusted host (which only ever sees sealed frames).
    for (cmd, resp) in [
        ("scan patients where glucose > 9", "2 rows"),
        ("aggregate mean(glucose)", "7.25"),
        ("export summary", "ok: 128 bytes"),
    ] {
        let frame = owner.send(cmd.as_bytes());
        let received = shield.recv(&frame)?;
        assert_eq!(received, cmd.as_bytes());
        let reply = shield.send(resp.as_bytes());
        let opened = owner.recv(&reply)?;
        println!("[owner]  {cmd:<36} → {}", String::from_utf8_lossy(&opened));
    }

    println!();

    // The malicious host's playbook:
    // 1. Replay the last command ("export summary" twice = data leak?).
    let replay = owner.send(b"export summary");
    shield.recv(&replay)?;
    let err = shield.recv(&replay).unwrap_err();
    assert!(matches!(err, ShefError::ProtocolViolation(_)));
    println!("[host]   replayed frame       → rejected ✓");

    // 2. Reorder two queued commands.
    let f_a = owner.send(b"begin transaction");
    let f_b = owner.send(b"commit");
    assert!(shield.recv(&f_b).is_err());
    println!("[host]   reordered frames     → rejected ✓");
    shield.recv(&f_a)?; // in-order delivery still fine

    // 3. Silently drop a frame: the receiver notices at the next one.
    let _dropped = owner.send(b"audit-log entry 1");
    let f_next = owner.send(b"audit-log entry 2");
    assert!(shield.recv(&f_next).is_err());
    println!("[host]   dropped frame        → detected at next frame ✓");

    // 4. Reflect a device response back at the device.
    let mut dek2_owner = StreamEndpoint::client_side(&dek, "pcie1", MacAlgorithm::AesGcm);
    let mut dek2_shield = StreamEndpoint::shield_side(&dek, "pcie1", MacAlgorithm::AesGcm);
    let cmd = dek2_owner.send(b"ping");
    dek2_shield.recv(&cmd)?;
    let pong = dek2_shield.send(b"pong");
    assert!(dek2_shield.recv(&pong).is_err(), "reflection must fail");
    println!("[host]   reflected response   → rejected ✓ (direction-bound tags)");

    println!();
    println!("secure stream session complete: 3 exchanges ✓ 4 attacks rejected ✓");
    Ok(())
}
