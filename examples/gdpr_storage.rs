//! GDPR-compliant storage (SDP, §6.2.3): a Storage Node whose FPGA TEE
//! keeps user files encrypted at rest *and* in flight, with per-region
//! keys standing in for the paper's "user key" (storage side) and
//! "TLS key" (application side).
//!
//! The example deploys the SDP accelerator through the full ShEF
//! workflow, serves a `get`, and shows the Table 2 effect of swapping
//! the authentication engine from HMAC to PMAC.
//!
//! Run with: `cargo run --release --example gdpr_storage`

use shef::accel::harness::{run_baseline, run_shielded};
use shef::accel::sdp::{SdpEngineConfig, SdpOp, SdpStore};
use shef::accel::CryptoProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("SDP storage node: 1 MB files, 4 KB authentication blocks");
    println!();

    let columns = SdpEngineConfig::table2_columns();
    // One HMAC configuration and one PMAC configuration, as §6.2.3
    // tunes them.
    for (label, engines) in [columns[1], columns[3]] {
        let ops = vec![SdpOp::Get(0), SdpOp::Get(1), SdpOp::Put(2), SdpOp::Get(3)];
        let mut store = SdpStore::new(1 << 20, 4, ops.clone(), engines, 2026);
        let baseline = run_baseline(&mut store)?;
        assert!(baseline.outputs_verified, "baseline gets/puts must verify");

        let mut store = SdpStore::new(1 << 20, 4, ops, engines, 2026);
        let shielded = run_shielded(&mut store, &CryptoProfile::AES128_16X, 7)?;
        assert!(shielded.outputs_verified, "shielded gets/puts must verify");

        println!(
            "{label:<18} baseline {:>8.0} µs   shielded {:>8.0} µs   overhead {:>5.1} %",
            baseline.micros,
            shielded.micros,
            (shielded.micros / baseline.micros - 1.0) * 100.0
        );
        for (region, stats) in &shielded.engine_stats {
            println!(
                "    {region:<10} {:>5} fills, {:>5} writebacks, {:>3} integrity failures",
                stats.misses, stats.writebacks, stats.integrity_failures
            );
        }
    }

    println!();
    println!("every file delivered to the application was decrypted + verified by the");
    println!("client against the Shield's tags: spoofed or replayed storage would fail.");
    Ok(())
}
