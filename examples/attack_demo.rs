//! Attack demo: every adversary capability of the threat model (§2.5)
//! mounted against a running shielded instance — and detected.
//!
//! The adversary here controls the host, the Shell, the DRAM, the boot
//! medium and the debug ports (everything except the FPGA package and
//! the IP Vendor's development environment).
//!
//! Run with: `cargo run --release --example attack_demo`

use shef::core::attacks::{icap_swap, jtag_probe, MemReadSpoofer, ReplaySnapshot};
use shef::core::attest::kernel_check_monitors;
use shef::core::shield::{client, AccessMode, EngineSetConfig, MemRange, ShieldConfig};
use shef::core::workflow::TestBench;
use shef::core::ShefError;
use shef::fpga::clock::CostLedger;
use shef::fpga::ports::PortAccessOutcome;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut bench = TestBench::new("attack-demo");
    let board = bench.fresh_board(b"die-under-attack")?;
    let config = ShieldConfig::builder()
        .region(
            "secrets",
            MemRange::new(0, 64 * 1024),
            EngineSetConfig {
                counters: true,
                buffer_bytes: 4096,
                ..EngineSetConfig::default()
            },
        )
        .build()?;
    let product = bench
        .vendor
        .package_accelerator("target", config, vec![0xAC; 256])?;
    let (mut instance, dek) =
        bench
            .data_owner
            .deploy(board, &mut bench.vendor, &bench.manufacturer, &product)?;
    let region = instance.shield.config().regions[0].clone();
    let tag_base = instance.shield.config().tag_base(0);
    let mut ledger = CostLedger::new();

    // Provision a secret through the legitimate path.
    let secret = vec![0xD5u8; 4096];
    let enc = client::encrypt_region(&dek, &region, &secret, 0);
    instance.board.device.dram.tamper_write(0, &enc.ciphertext);
    instance.board.device.dram.tamper_write(tag_base, &enc.tags);

    println!("attack 1: Shell man-in-the-middle flips ciphertext bits (spoofing)");
    instance
        .board
        .shell
        .set_interposer(Box::new(MemReadSpoofer::new(1)));
    let outcome = instance.shield.read(
        &mut instance.board.shell,
        &mut instance.board.device.dram,
        &mut ledger,
        0,
        512,
        AccessMode::Streaming,
    );
    assert!(matches!(outcome, Err(ShefError::IntegrityViolation(_))));
    println!("  -> DETECTED: {}", outcome.unwrap_err());
    instance.board.shell.clear_interposer();
    // Detection poisons the engine set: further traffic is rejected
    // until the operator acknowledges containment.
    assert_eq!(instance.shield.poisoned_regions(), vec!["secrets"]);
    instance.shield.clear_poison();
    println!("  -> engine poisoned and re-armed (containment acknowledged)");

    println!("attack 2: stale ciphertext re-injected after an update (replay)");
    let snapshot = ReplaySnapshot::capture(&instance.board.device.dram, 0, 512, tag_base, 16);
    instance.shield.write(
        &mut instance.board.shell,
        &mut instance.board.device.dram,
        &mut ledger,
        0,
        &[0xEEu8; 512],
        AccessMode::Streaming,
    )?;
    instance.shield.flush(
        &mut instance.board.shell,
        &mut instance.board.device.dram,
        &mut ledger,
    )?;
    snapshot.replay(&mut instance.board.device.dram);
    let outcome = instance.shield.read(
        &mut instance.board.shell,
        &mut instance.board.device.dram,
        &mut ledger,
        0,
        512,
        AccessMode::Streaming,
    );
    assert!(matches!(outcome, Err(ShefError::IntegrityViolation(_))));
    println!("  -> DETECTED: freshness counter mismatch");
    instance.shield.clear_poison();

    println!("attack 3: JTAG readback probe at runtime");
    let outcome = jtag_probe(&mut instance.board.device.ports);
    assert_eq!(outcome, PortAccessOutcome::BlockedAndLogged);
    println!("  -> BLOCKED by armed monitors");

    println!("attack 4: ICAP hot-swap of the accelerator bitstream");
    let outcome = icap_swap(
        &mut instance.board.device.fabric,
        &mut instance.board.device.ports,
        vec![0xBA; 64],
    );
    assert_eq!(outcome, PortAccessOutcome::BlockedAndLogged);
    println!("  -> BLOCKED by armed monitors");

    println!("attack 5: Security Kernel polls its monitors (tamper response)");
    let outcome = kernel_check_monitors(&mut instance.board);
    assert!(matches!(outcome, Err(ShefError::TamperDetected(_))));
    assert!(!instance.board.device.sk_processor.is_running());
    assert!(instance.board.device.fabric.partial().is_none());
    println!("  -> kernel halted, PR region cleared, secrets zeroized");

    println!();
    println!("all five attacks detected or blocked — the TEE held.");
    Ok(())
}
