//! Tenant onboarding over remote attestation, message by message.
//!
//! `attestation_flow` walks the IP **vendor's** protocol: releasing the
//! bitstream decryption key to a measured Security Kernel. This example
//! walks the **Data Owner's** protocol one layer up: convincing
//! yourself the right Shield bitstream is running, sealing your data
//! encryption key to that enclave, and presenting the resulting ticket
//! to the multi-tenant `ShieldService` — which refuses any tenant that
//! cannot show one.
//!
//! 1. Manufacturing: the Manufacturer burns a device key, derives the
//!    attestation root during measured boot, and certifies the device.
//! 2. The Security Kernel measures the Shield bitstream and derives its
//!    Attestation Key from root ‖ measurement.
//! 3. Verifier → Kernel: nonce + ephemeral X25519 key (the challenge).
//! 4. Kernel → Verifier: quote — measurement, nonce, key-exchange
//!    shares, and the device/AK certificate chain, AK-signed.
//! 5. Verifier: checks freshness, the chain, the signature, and the
//!    measurement registry; seals the tenant DEK to the session;
//!    signs an admission ticket.
//! 6. Kernel: unseals the DEK (one-shot) → an `AttestedTenant` grant.
//! 7. `ShieldService::register_tenant` admits the grant, pins the
//!    verifier, and rejects forgeries and replays.
//!
//! Run with: `cargo run --release --example attested_tenant`

use shef::attest::{AttestError, AttestationEnvironment};
use shef::core::fault::ShieldFault;
use shef::core::shield::{
    AccessMode, DataEncryptionKey, EngineSetConfig, MemRange, ServiceConfig, ServiceRequest,
    ShieldConfig, ShieldService,
};
use shef::core::ShefError;
use shef::crypto::to_hex;

fn hex8(bytes: &[u8]) -> String {
    format!("{}…", &to_hex(bytes)[..16])
}

fn shield_config() -> ShieldConfig {
    ShieldConfig::builder()
        .region(
            "data",
            MemRange::new(0x1000, 64 * 1024),
            EngineSetConfig::default(),
        )
        .build()
        .expect("valid config")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1–2. Manufacturing + measured boot, bundled by the fixture:
    // a device with a burned key, a certified attestation root, and a
    // Security Kernel that has measured the demo Shield bitstream.
    let mut env = AttestationEnvironment::new(b"examples.attested-tenant")?;
    println!(
        "[boot]    Security Kernel operational, measurement {}",
        hex8(&env.measurement()?.0)
    );

    // --- 3. The Data Owner's verifier opens a session.
    let challenge = env.verifier_mut().challenge();
    println!("[chal]    nonce {}", hex8(&challenge.nonce));
    println!(
        "[chal]    verifier KEM share {}",
        hex8(&challenge.verifier_kem)
    );

    // --- 4. The kernel answers with an AK-signed quote.
    let quote = env.kernel_mut().quote(&challenge)?;
    println!("[quote]   measurement {}", hex8(&quote.measurement.0));
    println!("[quote]   AK public   {}", hex8(&quote.ak_public.0));
    println!("[quote]   signature   {}", hex8(&quote.signature.0));

    // --- 5. Verification + key provisioning. The DEK never crosses the
    // host in the clear: it is AES-GCM-sealed to the session key.
    let master = DataEncryptionKey::from_bytes([0x5Au8; 32]);
    let dek = master.tenant_key("alice");
    let ticket = env
        .verifier_mut()
        .verify_and_provision(&quote, "alice", dek.to_bytes())?;
    println!(
        "[ticket]  issued for '{}', session {}",
        ticket.tenant(),
        hex8(&ticket.session())
    );

    // --- 6. Only the measured kernel can unseal the DEK; the result is
    // the admission credential.
    let grant = env.kernel_mut().redeem(&ticket)?;
    println!("[redeem]  DEK unsealed inside the enclave ✓");

    // A second redeem of the same ticket must fail: one-shot sessions.
    match env.kernel_mut().redeem(&ticket) {
        Err(AttestError::UnknownSession) => println!("[redeem]  double-redeem refused ✓"),
        other => panic!("double redeem must fail, got {other:?}"),
    }

    // --- 7. Admission. The service pins the verifier key and only
    // seats tenants carrying a valid grant.
    let mut service = ShieldService::new(ServiceConfig::default(), env.verifier_public())?;
    let tenant = service.register_tenant("alice", shield_config(), &grant)?;
    println!("[admit]   tenant 'alice' registered via attestation ✓");

    // The attested DEK is live: a write/read round trip works.
    service.submit(
        tenant,
        ServiceRequest::Write {
            addr: 0x1000,
            data: vec![0xA1u8; 512],
            mode: AccessMode::Streaming,
        },
    )?;
    service.submit(
        tenant,
        ServiceRequest::Read {
            addr: 0x1000,
            len: 512,
            mode: AccessMode::Streaming,
        },
    )?;
    for c in service.drain() {
        if let Some(bytes) = c.payload.expect("clean run") {
            assert_eq!(bytes, vec![0xA1u8; 512]);
        }
    }
    println!("[datapath] shielded round trip under the attested DEK ✓");

    // --- Negative paths: what the admission gate stops.
    //
    // (a) A grant from a verifier the service does not trust.
    let mut rogue = AttestationEnvironment::new(b"examples.rogue-verifier")?;
    let rogue_grant = rogue.onboard("mallory", [0x66u8; 32])?;
    match service.register_tenant("mallory", shield_config(), &rogue_grant) {
        Err(ShefError::Fault(ShieldFault::AttestationRejected { reason, .. })) => {
            println!("[reject]  untrusted verifier: {reason} ✓");
        }
        other => panic!("rogue verifier must be rejected, got {other:?}"),
    }

    // (b) A replayed (already-admitted) credential, even under a new name.
    match service.register_tenant("alice-again", shield_config(), &grant) {
        Err(ShefError::Fault(ShieldFault::AttestationRejected { reason, .. })) => {
            println!("[reject]  replayed session: {reason} ✓");
        }
        other => panic!("replayed grant must be rejected, got {other:?}"),
    }

    println!("\nAttested onboarding complete: measure → quote → verify → seal → admit.");
    Ok(())
}
