//! Quickstart: the complete eleven-step ShEF lifecycle of Fig. 2.
//!
//! Four parties cooperate to run a custom accelerator over sensitive
//! data on a cloud FPGA none of them fully trusts:
//!
//! 1–2. The **Manufacturer** burns the AES device key and ships
//!      encrypted SPB firmware carrying the private device key.
//! 3–4. The **IP Vendor** wraps an accelerator in a Shield and
//!      publishes the encrypted bitstream.
//! 5–7. The **Data Owner** rents an instance from the **CSP** and
//!      triggers secure boot.
//! 8–9. Remote attestation proves the device + Security Kernel, and the
//!      Bitstream Key flows over the attested session; the kernel loads
//!      the accelerator.
//! 10–11. The Data Owner provisions the Data Encryption Key via a Load
//!      Key and streams encrypted data through the Shield.
//!
//! Run with: `cargo run --release --example quickstart`

use shef::core::shield::{client, AccessMode};
use shef::core::shield::{EngineSetConfig, MemRange, ShieldConfig};
use shef::core::workflow::TestBench;
use shef::fpga::clock::CostLedger;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- The ecosystem: Manufacturer (with CA), CSP, Vendor, Owner.
    let mut bench = TestBench::new("quickstart");

    // ---- Steps 1–2 + 5: a provisioned, racked F1-like board.
    let board = bench.fresh_board(b"die-quickstart-001")?;
    println!("[manufacturer] device provisioned, public key registered with CA");
    println!("[csp]          shell loaded, security kernel staged");

    // ---- Steps 3–4: the vendor packages a shielded accelerator.
    let shield_config = ShieldConfig::builder()
        .region(
            "patient-records",
            MemRange::new(0, 1 << 20),
            EngineSetConfig {
                buffer_bytes: 16 * 1024,
                ..EngineSetConfig::default()
            },
        )
        .region(
            "analysis-output",
            MemRange::new(1 << 30, 1 << 20),
            EngineSetConfig {
                zero_fill_writes: true,
                ..EngineSetConfig::default()
            },
        )
        .build()?;
    let product = bench.vendor.package_accelerator(
        "medical-analytics-v1",
        shield_config,
        b"<accelerator netlist>".to_vec(),
    )?;
    println!(
        "[vendor]       '{}' published (encrypted bitstream)",
        product.accel_id
    );

    // ---- Steps 6–10: boot, attest, load, provision — one call on the
    //      Data Owner, with every check the paper requires inside.
    let (mut instance, dek) =
        bench
            .data_owner
            .deploy(board, &mut bench.vendor, &bench.manufacturer, &product)?;
    println!(
        "[data owner]   attested and deployed '{}' (boot took {:.1} s in the paper's model)",
        instance.accel_id,
        instance.boot_report.timing.total_ms() / 1000.0
    );

    // ---- Step 11: encrypted data in, encrypted results out.
    // (Padded to the Shield's 512-byte chunk granularity — the Shield
    // authenticates whole chunks.)
    let mut records = b"patient-0001:glucose=5.4;patient-0002:glucose=9.1".to_vec();
    records.resize(512, b' ');
    let region = instance.shield.config().regions[0].clone();
    let enc = client::encrypt_region(&dek, &region, &records, 0);
    let mut ledger = CostLedger::new();
    let tag_base = instance.shield.config().tag_base(0);
    instance.board.host.dma_to_device(
        &mut instance.board.shell,
        &mut instance.board.device.dram,
        &mut ledger,
        region.range.start,
        &enc.ciphertext,
    )?;
    instance.board.host.dma_to_device_chained(
        &mut instance.board.shell,
        &mut instance.board.device.dram,
        &mut ledger,
        tag_base,
        &enc.tags,
    )?;
    println!(
        "[host]         staged {} ciphertext bytes (host never sees plaintext)",
        enc.ciphertext.len()
    );

    // The accelerator reads plaintext *inside* the Shield…
    let plain = instance.shield.read(
        &mut instance.board.shell,
        &mut instance.board.device.dram,
        &mut ledger,
        region.range.start,
        records.len(),
        AccessMode::Streaming,
    )?;
    assert_eq!(plain, records);
    println!(
        "[accelerator]  sees plaintext through the Shield: {:?}…",
        String::from_utf8_lossy(&plain[..24])
    );

    // …while DRAM holds only ciphertext.
    let raw = instance
        .board
        .device
        .dram
        .tamper_read(region.range.start, records.len());
    assert_ne!(raw, records);
    println!("[adversary]    DRAM readout is ciphertext only ✓");

    println!();
    println!("quickstart complete: boot ✓ attestation ✓ shielded I/O ✓");
    Ok(())
}
