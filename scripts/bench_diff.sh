#!/usr/bin/env sh
# Side-by-side diff of two BENCH_*.json reports (see `lane_scaling
# --json` / shef_bench::write_bench_json). The reports are line-oriented
# on purpose: one record per line, so plain awk can join them and CI
# needs no JSON tooling.
#
#   scripts/bench_diff.sh BASELINE.json CURRENT.json [MAX_REGRESSION_PCT]
#
# With a threshold, exits 1 if any workload's modelled shield cycles
# regressed by more than MAX_REGRESSION_PCT, or if a baseline workload
# disappeared from the current report. The numbers are deterministic
# model output, so any delta at all is a real code change — the
# threshold only separates "worth failing the build" from "worth a look
# in the table".
set -eu

usage() {
    echo "usage: $0 BASELINE.json CURRENT.json [MAX_REGRESSION_PCT]" >&2
    exit 2
}

[ $# -ge 2 ] && [ $# -le 3 ] || usage
base=$1
cur=$2
thresh=${3:--1}

for f in "$base" "$cur"; do
    [ -f "$f" ] || { echo "bench_diff: $f does not exist" >&2; exit 2; }
    [ -r "$f" ] || { echo "bench_diff: cannot read $f" >&2; exit 2; }
    [ -s "$f" ] || { echo "bench_diff: $f is empty" >&2; exit 2; }
    # Every record line must be a complete one-line JSON object carrying
    # the fields the join below keys on; a truncated upload or a schema
    # drift must fail the gate loudly, not silently diff zero records.
    awk '
        /"workload"/ {
            records++
            # One complete object per line; a trailing comma is fine
            # (the report wraps the records in a JSON array).
            if ($0 !~ /^[[:space:]]*\{.*\},?[[:space:]]*$/ \
                || $0 !~ /"profile"/ || $0 !~ /"lanes"/ \
                || $0 !~ /"shield_cycles"/) {
                printf "bench_diff: malformed record line %d in %s: %s\n", NR, FILENAME, $0 > "/dev/stderr"
                bad = 1
            }
        }
        END {
            if (records == 0) {
                printf "bench_diff: no bench records in %s (not a lane_scaling --json report?)\n", FILENAME > "/dev/stderr"
                exit 2
            }
            exit bad ? 2 : 0
        }
    ' "$f" || exit 2
done

awk -v thresh="$thresh" -v basefile="$base" '
function field(line, name,    rest) {
    rest = line
    sub(".*\"" name "\": *", "", rest)
    sub("[,}].*", "", rest)
    gsub("\"", "", rest)
    return rest
}
FNR == 1 { filenum++ }
/"workload"/ {
    key = field($0, "workload") "/" field($0, "profile") "/l" field($0, "lanes")
    if (filenum == 1) {
        if (!(key in base_cyc)) order[++n] = key
        base_cyc[key] = field($0, "shield_cycles")
    } else {
        cur_cyc[key] = field($0, "shield_cycles")
    }
}
END {
    printf "%-38s %14s %14s %10s\n", "workload/profile/lanes", "baseline", "current", "delta"
    fail = 0
    for (i = 1; i <= n; i++) {
        key = order[i]
        b = base_cyc[key] + 0
        if (!(key in cur_cyc)) {
            printf "%-38s %14d %14s %10s\n", key, b, "MISSING", "FAIL"
            fail = 1
            continue
        }
        c = cur_cyc[key] + 0
        d = (b > 0) ? (c - b) * 100.0 / b : 0
        mark = ""
        if (thresh + 0 >= 0 && d > thresh + 0) { mark = "  << REGRESSION"; fail = 1 }
        printf "%-38s %14d %14d %+9.2f%%%s\n", key, b, c, d, mark
    }
    for (key in cur_cyc)
        if (!(key in base_cyc))
            printf "%-38s %14s %14d %10s\n", key, "(new)", cur_cyc[key] + 0, ""
    if (fail) {
        printf "\nbench gate FAILED: shield cycles regressed beyond %s%% vs %s\n", thresh, basefile
        printf "(if the slowdown is intended, regenerate the baseline:\n"
        printf "  cargo run --release -p shef-bench --bin lane_scaling -- --json bench/baseline.json)\n"
        exit 1
    }
}
' "$base" "$cur"
