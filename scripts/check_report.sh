#!/usr/bin/env sh
# Schema gate for a shef-telemetry line-JSON run report (see
# `telemetry::Report::to_json`, and `--telemetry` on `lane_scaling` /
# `fault_campaign`). Line-oriented on purpose: one record per line, so
# plain awk can check it and CI needs no JSON tooling.
#
#   scripts/check_report.sh REPORT.json [REQUIRED_METRIC ...]
#
# Fails (exit 1) if:
#   * the file is missing, empty, or the header line does not carry the
#     `shef-telemetry/v1` schema tag;
#   * any record line is not a complete one-line JSON object with a
#     `kind` and `name`;
#   * any counter, gauge, or cycle value is negative;
#   * a forbidden-verdict counter (`fault.verdict.silent_corruption`,
#     `fault.verdict.hang`) is present with a non-zero value;
#   * any REQUIRED_METRIC named on the command line is absent.
set -eu

[ $# -ge 1 ] || { echo "usage: $0 REPORT.json [REQUIRED_METRIC ...]" >&2; exit 2; }
report=$1
shift

[ -f "$report" ] || { echo "check_report: $report does not exist" >&2; exit 1; }
[ -s "$report" ] || { echo "check_report: $report is empty" >&2; exit 1; }

required=""
for metric in "$@"; do
    required="$required $metric"
done

awk -v required="$required" '
function field(line, name,    rest) {
    rest = line
    if (rest !~ ("\"" name "\": *")) return ""
    sub(".*\"" name "\": *", "", rest)
    sub("[,}].*", "", rest)
    gsub("\"", "", rest)
    return rest
}
function fail(msg) {
    printf "check_report: line %d: %s: %s\n", NR, msg, $0 > "/dev/stderr"
    bad = 1
}
NR == 1 {
    if ($0 !~ /"schema": "shef-telemetry\/v1"/)
        fail("header does not carry schema shef-telemetry/v1")
    next
}
/^[[:space:]]*$/ { fail("blank line in line-oriented report"); next }
{
    if ($0 !~ /^\{.*\}[[:space:]]*$/) { fail("not a one-line JSON object"); next }
    kind = field($0, "kind")
    name = field($0, "name")
    if (kind == "") { fail("record has no kind"); next }
    if (name == "") { fail("record has no name"); next }
    seen[name] = 1
    if (kind == "counter" || kind == "gauge") {
        value = field($0, "value")
        if (value == "" || value !~ /^-?[0-9]+$/) fail("non-numeric " kind " value")
        else if (value + 0 < 0) fail("negative " kind " value")
        else if ((name == "fault.verdict.silent_corruption" || name == "fault.verdict.hang") \
                 && value + 0 != 0)
            fail("forbidden verdict counter is non-zero")
    } else if (kind == "histogram") {
        if (field($0, "count") + 0 < 0 || field($0, "sum") + 0 < 0)
            fail("negative histogram total")
    } else if (kind == "scope") {
        if (field($0, "count") + 0 < 0 || field($0, "total_cycles") + 0 < 0 \
            || field($0, "max_cycles") + 0 < 0)
            fail("negative scope aggregate")
    } else if (kind == "span") {
        if (field($0, "start_cycles") + 0 < 0 || field($0, "end_cycles") + 0 < 0)
            fail("negative span timestamp")
    } else {
        fail("unknown record kind " kind)
    }
}
END {
    if (NR == 0) { print "check_report: report has no lines" > "/dev/stderr"; bad = 1 }
    n = split(required, want, " ")
    for (i = 1; i <= n; i++) {
        if (want[i] != "" && !(want[i] in seen)) {
            printf "check_report: required metric %s is missing\n", want[i] > "/dev/stderr"
            bad = 1
        }
    }
    exit bad ? 1 : 0
}
' "$report"

echo "check_report: $report OK"
