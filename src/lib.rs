//! # ShEF: Shielded Enclaves for Cloud FPGAs (simulated reproduction)
//!
//! This meta-crate re-exports the whole ShEF workspace:
//!
//! * [`crypto`] — from-scratch cryptographic primitives.
//! * [`fpga`] — the simulated cloud-FPGA platform (device, Shell, DRAM,
//!   host).
//! * [`attest`] — measured boot of the Shield bitstream, remote
//!   attestation quotes, and verifier-side tenant key provisioning
//!   (the ticket that gates service admission).
//! * [`core`] — ShEF itself: secure boot, bitstream-key release, the
//!   customizable Shield, and the multi-tenant service runtime
//!   (`core::shield::service`: sharded dispatch + admission control).
//! * [`accel`] — the six evaluation accelerators from the paper.
//! * [`telemetry`] — deterministic metrics registry, datapath tracing,
//!   and the exported run report (see the `README.md` "Observability"
//!   section).
//!
//! See `docs/ARCHITECTURE.md` for the crate map and datapath
//! walk-through, and `docs/SECURITY_MODEL.md` for the threat model and
//! attestation protocol. The `examples/` directory holds end-to-end
//! walkthroughs (`quickstart`, `gdpr_storage`, `secure_ml_inference`,
//! `attack_demo`, `attestation_flow`, `attested_tenant`,
//! `custom_engine`, `multi_tenant`, `secure_stream`); the repository
//! `README.md` has build, test, and benchmark instructions, including
//! how to regenerate the paper's tables and figures with the binaries
//! in `crates/bench`.
//! Beyond the paper's own design points, the Shield also ships the
//! baselines and extensions the paper argues about: a Bonsai-Merkle-Tree
//! replay defence (`core::shield::merkle`), a GHASH/GCM MAC engine,
//! Path ORAM (`core::oram`), and stream-interface protection
//! (`core::shield::stream`).
//!
//! A tenant onboards with three lines through the façade:
//!
//! ```
//! let mut env = shef::attest::AttestationEnvironment::new(b"facade-doc")?;
//! let grant = env.onboard("alice", [7u8; 32])?;
//! assert_eq!(grant.tenant(), "alice");
//! # Ok::<(), shef::attest::AttestError>(())
//! ```

#![forbid(unsafe_code)]

pub use shef_accel as accel;
pub use shef_attest as attest;
pub use shef_core as core;
pub use shef_crypto as crypto;
pub use shef_fpga as fpga;
pub use shef_telemetry as telemetry;
