//! Property-based integration tests: the Shield's memory interface is
//! equivalent to a flat reference memory under arbitrary access traces,
//! and all security invariants hold for random data.

use proptest::prelude::*;
use shef::core::shield::{
    client, AccessMode, DataEncryptionKey, EngineSetConfig, MemRange, Shield, ShieldConfig,
};
use shef::crypto::ecies::EciesKeyPair;
use shef::fpga::clock::CostLedger;
use shef::fpga::dram::Dram;
use shef::fpga::shell::Shell;

const REGION_LEN: u64 = 16 * 1024;

#[derive(Debug, Clone)]
enum Op {
    Read { offset: u64, len: usize },
    Write { offset: u64, data: Vec<u8> },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..REGION_LEN, 1usize..600).prop_map(|(offset, len)| {
            let len = len.min((REGION_LEN - offset) as usize);
            Op::Read { offset, len }
        }),
        (
            0u64..REGION_LEN,
            proptest::collection::vec(any::<u8>(), 1..600)
        )
            .prop_map(|(offset, mut data)| {
                data.truncate((REGION_LEN - offset) as usize);
                Op::Write { offset, data }
            }),
    ]
}

fn shield_setup(
    chunk_size: usize,
    buffer_bytes: usize,
    counters: bool,
) -> (Shield, Shell, Dram, CostLedger, DataEncryptionKey) {
    let config = ShieldConfig::builder()
        .region(
            "prop",
            MemRange::new(0, REGION_LEN),
            EngineSetConfig {
                chunk_size,
                buffer_bytes,
                counters,
                zero_fill_writes: false,
                ..EngineSetConfig::default()
            },
        )
        .build()
        .unwrap();
    let mut shield = Shield::new(config, EciesKeyPair::from_seed(b"prop")).unwrap();
    let dek = DataEncryptionKey::from_bytes([0x3Cu8; 32]);
    let lk = dek.to_load_key(&shield.public_key());
    shield.provision_load_key(&lk).unwrap();
    (
        shield,
        Shell::new(),
        Dram::f1_default(),
        CostLedger::new(),
        dek,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn shield_memory_matches_reference(
        ops in proptest::collection::vec(op_strategy(), 1..40),
        chunk_pow in 6u32..10, // 64..512-byte chunks
        buffer_lines in 1usize..8,
        counters in any::<bool>(),
    ) {
        let chunk = 1usize << chunk_pow;
        let (mut shield, mut shell, mut dram, mut ledger, dek) =
            shield_setup(chunk, chunk * buffer_lines, counters);
        // Provision an initial image so read-before-write authenticates.
        let mut reference = vec![0xA0u8; REGION_LEN as usize];
        let region = shield.config().regions[0].clone();
        let enc = client::encrypt_region(&dek, &region, &reference, 0);
        dram.tamper_write(0, &enc.ciphertext);
        dram.tamper_write(shield.config().tag_base(0), &enc.tags);

        for op in ops {
            match op {
                Op::Read { offset, len } => {
                    if len == 0 { continue; }
                    let got = shield
                        .read(&mut shell, &mut dram, &mut ledger, offset, len, AccessMode::Streaming)
                        .unwrap();
                    prop_assert_eq!(&got[..], &reference[offset as usize..offset as usize + len]);
                }
                Op::Write { offset, data } => {
                    if data.is_empty() { continue; }
                    shield
                        .write(&mut shell, &mut dram, &mut ledger, offset, &data, AccessMode::Streaming)
                        .unwrap();
                    reference[offset as usize..offset as usize + data.len()]
                        .copy_from_slice(&data);
                }
            }
        }
        // After a flush, a full readback still matches.
        shield.flush(&mut shell, &mut dram, &mut ledger).unwrap();
        let all = shield
            .read(&mut shell, &mut dram, &mut ledger, 0, REGION_LEN as usize, AccessMode::Streaming)
            .unwrap();
        prop_assert_eq!(all, reference);
    }

    #[test]
    fn dram_never_contains_plaintext_needles(
        needle in proptest::collection::vec(1u8..=255, 24..48),
    ) {
        // Write a distinctive plaintext needle through the Shield; the
        // ciphertext in DRAM must not contain it.
        let (mut shield, mut shell, mut dram, mut ledger, dek) = shield_setup(512, 1024, false);
        let region = shield.config().regions[0].clone();
        let enc = client::encrypt_region(&dek, &region, &vec![0u8; REGION_LEN as usize], 0);
        dram.tamper_write(0, &enc.ciphertext);
        dram.tamper_write(shield.config().tag_base(0), &enc.tags);
        shield
            .write(&mut shell, &mut dram, &mut ledger, 128, &needle, AccessMode::Streaming)
            .unwrap();
        shield.flush(&mut shell, &mut dram, &mut ledger).unwrap();
        let raw = dram.tamper_read(0, REGION_LEN as usize);
        prop_assert!(
            !raw.windows(needle.len()).any(|w| w == &needle[..]),
            "plaintext needle leaked into DRAM"
        );
    }

    #[test]
    fn any_single_ciphertext_bit_flip_is_detected(
        byte_index in 0usize..2048,
        bit in 0u8..8,
    ) {
        let (mut shield, mut shell, mut dram, mut ledger, dek) = shield_setup(512, 1024, false);
        let region = shield.config().regions[0].clone();
        let enc = client::encrypt_region(&dek, &region, &vec![7u8; REGION_LEN as usize], 0);
        dram.tamper_write(0, &enc.ciphertext);
        dram.tamper_write(shield.config().tag_base(0), &enc.tags);
        let mut corrupted = dram.tamper_read(byte_index as u64, 1);
        corrupted[0] ^= 1 << bit;
        dram.tamper_write(byte_index as u64, &corrupted);
        let result = shield.read(
            &mut shell,
            &mut dram,
            &mut ledger,
            (byte_index as u64 / 512) * 512,
            512,
            AccessMode::Streaming,
        );
        prop_assert!(result.is_err(), "bit flip at {byte_index}:{bit} went undetected");
    }
}
