//! Guards the meta-crate re-export wiring: one end-to-end path that
//! touches every façade (`shef::crypto` → `shef::fpga` →
//! `shef::core::shield` → `shef::accel`), so a broken `pub use` in
//! `src/lib.rs` fails this test rather than only downstream users.

use shef::core::shield::{
    client, AccessMode, DataEncryptionKey, EngineSetConfig, MemRange, Shield, ShieldConfig,
};
use shef::crypto::authenc::{AuthEncKey, MacAlgorithm};
use shef::crypto::drbg::HmacDrbg;
use shef::fpga::clock::CostLedger;
use shef::fpga::dram::Dram;
use shef::fpga::shell::Shell;

const REGION_BASE: u64 = 0x1000;
const REGION_LEN: u64 = 8 * 1024;

/// `shef::crypto` primitives are reachable and functional through the
/// re-export.
#[test]
fn crypto_facade_seals_and_opens() {
    let mut drbg = HmacDrbg::from_seed(b"meta-reexport-test");
    let master = drbg.generate_array::<32>();
    let mut key = AuthEncKey::from_bytes(master, MacAlgorithm::HmacSha256);
    let sealed = key.seal(b"facade payload", b"ad");
    assert_eq!(
        key.open(&sealed, b"ad").expect("tag verifies"),
        b"facade payload"
    );
}

/// A Shield built through `shef::core` runs against `shef::fpga`
/// hardware models, with data staged via the client helpers and crypto
/// from `shef::crypto` underneath — the full cross-crate path.
#[test]
fn shield_round_trip_through_facades() {
    let region = MemRange::new(REGION_BASE, REGION_LEN);
    let config = ShieldConfig::builder()
        .region("data", region, EngineSetConfig::default())
        .build()
        .expect("valid config");

    let mut shield = Shield::new(
        config.clone(),
        shef::crypto::ecies::EciesKeyPair::from_seed(b"meta-reexport-shield"),
    )
    .expect("shield constructs");

    // Provision the data-encryption key exactly as a Data Owner would.
    let dek = DataEncryptionKey::from_bytes([0x42u8; 32]);
    let load_key = dek.to_load_key(&shield.public_key());
    shield
        .provision_load_key(&load_key)
        .expect("key provisioning");

    // Stage encrypted memory in adversary-visible DRAM.
    let mut dram = Dram::f1_default();
    let plaintext: Vec<u8> = (0..REGION_LEN).map(|i| (i % 251) as u8).collect();
    let enc = client::encrypt_region(&dek, &config.regions[0], &plaintext, 0);
    dram.tamper_write(REGION_BASE, &enc.ciphertext);
    dram.tamper_write(config.tag_base(0), &enc.tags);

    // Read it back through the Shield's memory bus.
    let mut shell = Shell::new();
    let mut ledger = CostLedger::new();
    let got = shield
        .read(
            &mut shell,
            &mut dram,
            &mut ledger,
            REGION_BASE,
            REGION_LEN as usize,
            AccessMode::Streaming,
        )
        .expect("shielded read");
    assert_eq!(got, plaintext);

    // Writes flow back out encrypted: after a write + flush the
    // ciphertext in DRAM differs from the plaintext we wrote.
    let update = vec![0xA5u8; 64];
    shield
        .write(
            &mut shell,
            &mut dram,
            &mut ledger,
            REGION_BASE,
            &update,
            AccessMode::Streaming,
        )
        .expect("shielded write");
    shield
        .flush(&mut shell, &mut dram, &mut ledger)
        .expect("flush");
    let in_dram = dram.tamper_read(REGION_BASE, 64);
    assert_ne!(in_dram, update, "DRAM must hold ciphertext, not plaintext");
}

/// `shef::telemetry` is reachable and its registry round-trips through
/// the exporters.
#[test]
fn telemetry_facade_exports_reports() {
    let telemetry = shef::telemetry::Telemetry::new();
    telemetry.counter("facade.hits").add(3);
    telemetry.trace("facade.phase", 10, 42);
    let report = telemetry.report();
    assert!(report
        .to_json()
        .starts_with("{\"schema\": \"shef-telemetry/v1\""));
    assert!(report.to_prometheus().contains("facade_hits 3"));
    assert_eq!(report.scopes["facade.phase"].total_cycles, 32);
}

/// `shef::attest` is reachable through the façade: a full
/// challenge → quote → verify → redeem round trips the sealed DEK.
#[test]
fn attest_facade_onboards_a_tenant() {
    use shef::attest::AttestationEnvironment;

    let mut env = AttestationEnvironment::new(b"meta-reexport-attest").expect("fixture");
    let grant = env
        .onboard("alice", [0x42u8; 32])
        .expect("honest onboarding");
    assert_eq!(grant.tenant(), "alice");
    assert_eq!(grant.data_key(), [0x42u8; 32]);
    assert_eq!(
        grant.ticket().measurement(),
        env.measurement().expect("operational kernel")
    );
}

/// The multi-tenant service is reachable through the façade and serves
/// two isolated tenants end to end (admission via `shef::attest`).
#[test]
fn service_facade_serves_two_tenants() {
    use shef::attest::AttestationEnvironment;
    use shef::core::shield::{AccessMode, ServiceConfig, ServiceRequest, ShieldService};

    let region = MemRange::new(REGION_BASE, REGION_LEN);
    let tenant_config = || {
        ShieldConfig::builder()
            .region("data", region, EngineSetConfig::default())
            .build()
            .expect("valid config")
    };
    let mut env = AttestationEnvironment::new(b"meta-reexport-service").expect("fixture");
    let master = DataEncryptionKey::from_bytes([0x17u8; 32]);
    let mut service = ShieldService::new(ServiceConfig::default(), env.verifier_public())
        .expect("service constructs");
    let mut onboard = |name: &str| {
        env.onboard(name, master.tenant_key(name).to_bytes())
            .expect("tenant attests")
    };
    let grant_a = onboard("alice");
    let grant_b = onboard("bob");
    let a = service
        .register_tenant("alice", tenant_config(), &grant_a)
        .expect("tenant a");
    let b = service
        .register_tenant("bob", tenant_config(), &grant_b)
        .expect("tenant b");

    let payload_a = vec![0xAAu8; 512];
    let payload_b = vec![0xBBu8; 512];
    for (tenant, payload) in [(a, &payload_a), (b, &payload_b)] {
        service
            .submit(
                tenant,
                ServiceRequest::Write {
                    addr: REGION_BASE,
                    data: payload.clone(),
                    mode: AccessMode::Streaming,
                },
            )
            .expect("admitted");
        service
            .submit(
                tenant,
                ServiceRequest::Read {
                    addr: REGION_BASE,
                    len: payload.len(),
                    mode: AccessMode::Streaming,
                },
            )
            .expect("admitted");
    }
    let completions = service.drain();
    assert_eq!(completions.len(), 4, "every admitted request completes");
    for c in &completions {
        let expect = if c.tenant == a {
            &payload_a
        } else {
            &payload_b
        };
        if let Some(bytes) = c.payload.as_ref().expect("clean run") {
            assert_eq!(bytes, expect, "same address, private namespaces");
        }
    }
}

/// The accelerator façade drives the same Shield machinery end-to-end.
#[test]
fn accel_facade_runs_shielded_vecadd() {
    use shef::accel::harness::run_shielded;
    use shef::accel::vecadd::VectorAdd;
    use shef::accel::CryptoProfile;

    let mut accel = VectorAdd::new(1 << 12, 7);
    let report = run_shielded(&mut accel, &CryptoProfile::AES128_16X, 7).expect("shielded vecadd");
    assert!(
        report.outputs_verified,
        "shielded output must match the golden model"
    );
}
