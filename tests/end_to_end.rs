//! End-to-end integration tests: the full Fig. 2 lifecycle across every
//! crate, positive and negative paths.

use shef::accel::harness::{run_baseline, run_shielded};
use shef::accel::vecadd::VectorAdd;
use shef::accel::{Accelerator, CryptoProfile};
use shef::core::shield::{client, AccessMode, EngineSetConfig, MemRange, ShieldConfig};
use shef::core::workflow::{Manufacturer, TestBench};
use shef::core::ShefError;
use shef::fpga::board::Board;
use shef::fpga::clock::CostLedger;

fn simple_config() -> ShieldConfig {
    ShieldConfig::builder()
        .region(
            "data",
            MemRange::new(0, 64 * 1024),
            EngineSetConfig {
                buffer_bytes: 4096,
                ..EngineSetConfig::default()
            },
        )
        .build()
        .expect("valid config")
}

#[test]
fn full_lifecycle_with_data_round_trip() {
    let mut bench = TestBench::new("it-lifecycle");
    let board = bench.fresh_board(b"it-die-1").unwrap();
    let product = bench
        .vendor
        .package_accelerator("it-accel", simple_config(), vec![1, 2, 3])
        .unwrap();
    let (mut instance, dek) = bench
        .data_owner
        .deploy(board, &mut bench.vendor, &bench.manufacturer, &product)
        .unwrap();

    // Data Owner round-trips data through the shielded instance.
    let data = vec![0x42u8; 8192];
    let region = instance.shield.config().regions[0].clone();
    let enc = client::encrypt_region(&dek, &region, &data, 0);
    let mut ledger = CostLedger::new();
    let tag_base = instance.shield.config().tag_base(0);
    instance
        .board
        .host
        .dma_to_device(
            &mut instance.board.shell,
            &mut instance.board.device.dram,
            &mut ledger,
            0,
            &enc.ciphertext,
        )
        .unwrap();
    instance.board.device.dram.tamper_write(tag_base, &enc.tags);
    let plain = instance
        .shield
        .read(
            &mut instance.board.shell,
            &mut instance.board.device.dram,
            &mut ledger,
            0,
            8192,
            AccessMode::Streaming,
        )
        .unwrap();
    assert_eq!(plain, data);
}

#[test]
fn two_devices_have_distinct_attestation_identities() {
    let mut bench = TestBench::new("it-identity");
    let board_a = bench.fresh_board(b"it-die-a").unwrap();
    let board_b = bench.fresh_board(b"it-die-b").unwrap();
    let product = bench
        .vendor
        .package_accelerator("id-accel", simple_config(), vec![])
        .unwrap();
    let (instance_a, _) = bench
        .data_owner
        .deploy(board_a, &mut bench.vendor, &bench.manufacturer, &product)
        .unwrap();
    let (instance_b, _) = bench
        .data_owner
        .deploy(board_b, &mut bench.vendor, &bench.manufacturer, &product)
        .unwrap();
    assert_ne!(
        instance_a.boot_report.attest_sign_public, instance_b.boot_report.attest_sign_public,
        "attestation keys must be device-unique"
    );
}

#[test]
fn tampered_staged_bitstream_fails_attestation() {
    let mut bench = TestBench::new("it-tamper-bitstream");
    let board = bench.fresh_board(b"it-die-2").unwrap();
    let product = bench
        .vendor
        .package_accelerator("t-accel", simple_config(), vec![])
        .unwrap();
    // The adversary (host) swaps the staged bitstream for its own bytes.
    let mut evil = product.clone();
    evil.encrypted_bitstream.0[10] ^= 0xFF;
    let err = bench
        .data_owner
        .deploy(board, &mut bench.vendor, &bench.manufacturer, &evil)
        .unwrap_err();
    assert!(matches!(err, ShefError::AttestationFailed(_)));
}

#[test]
fn unknown_kernel_is_rejected_by_vendor() {
    use shef::core::pki::MeasurementRegistry;
    use shef::core::workflow::{Csp, DataOwner, IpVendor};

    let mut manufacturer = Manufacturer::new(b"it-maker");
    // Vendor with an empty registry: no kernel is trusted.
    let mut vendor = IpVendor::new(
        "paranoid",
        manufacturer.ca_root(),
        MeasurementRegistry::new(),
    );
    let csp = Csp::new("shell-v1");
    let mut owner = DataOwner::new(b"it-owner");
    let mut board = Board::new(b"it-die-3");
    manufacturer.provision_device(&mut board).unwrap();
    csp.rack_board(&mut board).unwrap();
    let product = vendor
        .package_accelerator("k-accel", simple_config(), vec![])
        .unwrap();
    let err = owner
        .deploy(board, &mut vendor, &manufacturer, &product)
        .unwrap_err();
    assert!(matches!(err, ShefError::AttestationFailed(m) if m.contains("registry")));
}

#[test]
fn every_accelerator_verifies_both_shielded_and_baseline() {
    // Small instances of each workload: functional correctness across
    // the whole stack.
    let accels: Vec<Box<dyn Accelerator>> = vec![
        Box::new(shef::accel::vecadd::VectorAdd::new(8 * 1024, 1)),
        Box::new(shef::accel::matmul::MatMul::new(32, 2)),
        Box::new(shef::accel::conv::Convolution::new(
            shef::accel::conv::ConvDims::small(),
            3,
        )),
        Box::new(shef::accel::digitrec::DigitRecognition::new(32, 40, 4)),
        Box::new(shef::accel::affine::AffineTransform::new(64, 5)),
        Box::new(shef::accel::dnnweaver::DnnWeaver::new(1, 6)),
        Box::new(shef::accel::bitcoin::Bitcoin::new(8, 7)),
        Box::new(shef::accel::sdp::SdpStore::new(
            4096,
            2,
            vec![shef::accel::sdp::SdpOp::Get(0)],
            shef::accel::sdp::SdpEngineConfig::table2_columns()[2].1,
            8,
        )),
    ];
    for mut accel in accels {
        let id = accel.id().to_owned();
        let report = run_baseline(accel.as_mut()).unwrap();
        assert!(report.outputs_verified, "{id} baseline must verify");
    }
    // Rebuild for shielded (accelerators may consume state).
    let accels: Vec<Box<dyn Accelerator>> = vec![
        Box::new(shef::accel::vecadd::VectorAdd::new(8 * 1024, 1)),
        Box::new(shef::accel::matmul::MatMul::new(32, 2)),
        Box::new(shef::accel::conv::Convolution::new(
            shef::accel::conv::ConvDims::small(),
            3,
        )),
        Box::new(shef::accel::digitrec::DigitRecognition::new(32, 40, 4)),
        Box::new(shef::accel::affine::AffineTransform::new(64, 5)),
        Box::new(shef::accel::dnnweaver::DnnWeaver::new(1, 6)),
        Box::new(shef::accel::bitcoin::Bitcoin::new(8, 7)),
        Box::new(shef::accel::sdp::SdpStore::new(
            4096,
            2,
            vec![shef::accel::sdp::SdpOp::Get(0)],
            shef::accel::sdp::SdpEngineConfig::table2_columns()[2].1,
            8,
        )),
    ];
    for mut accel in accels {
        let id = accel.id().to_owned();
        let report = run_shielded(accel.as_mut(), &CryptoProfile::AES128_16X, 11).unwrap();
        assert!(report.outputs_verified, "{id} shielded must verify");
    }
}

#[test]
fn shield_overhead_is_nonnegative_and_profile_ordered() {
    let make = || Box::new(VectorAdd::new(64 * 1024, 9)) as Box<dyn Accelerator>;
    let fast = shef::accel::harness::overhead(&make, &CryptoProfile::AES128_16X).unwrap();
    let slow = shef::accel::harness::overhead(&make, &CryptoProfile::AES256_4X).unwrap();
    assert!(fast.normalized >= 1.0);
    assert!(
        slow.normalized >= fast.normalized,
        "weaker profile cannot be faster"
    );
}

#[test]
fn power_cycle_requires_fresh_boot() {
    let mut bench = TestBench::new("it-powercycle");
    let board = bench.fresh_board(b"it-die-4").unwrap();
    let product = bench
        .vendor
        .package_accelerator("pc-accel", simple_config(), vec![])
        .unwrap();
    let (mut instance, _) = bench
        .data_owner
        .deploy(board, &mut bench.vendor, &bench.manufacturer, &product)
        .unwrap();
    instance.board.device.power_cycle();
    assert!(!instance.board.device.sk_processor.is_running());
    // The kernel's attestation keys were erased with it.
    assert!(shef::core::boot::kernel_attestation_keys(&mut instance.board).is_err());
}
