//! Multi-Shield isolation: "The IP Vendor can secure multiple
//! accelerator modules with separate Shield modules, enabling multiple
//! isolated execution environments" (§3).
//!
//! Two Shields share one device; each gets its own Shield Encryption
//! Key, its own Load Key, and its own Data Encryption Key. Neither can
//! read the other's regions, and a Load Key sent to the wrong Shield
//! is rejected.

use shef::core::shield::{
    client, AccessMode, DataEncryptionKey, EngineSetConfig, MemRange, Shield, ShieldConfig,
};
use shef::core::ShefError;
use shef::crypto::ecies::EciesKeyPair;
use shef::fpga::clock::CostLedger;
use shef::fpga::dram::Dram;
use shef::fpga::shell::Shell;

fn shield(name: &str, base: u64, seed: &[u8]) -> Shield {
    let config = ShieldConfig::builder()
        .region(
            name,
            MemRange::new(base, 64 * 1024),
            EngineSetConfig {
                buffer_bytes: 4096,
                ..EngineSetConfig::default()
            },
        )
        .build()
        .unwrap();
    Shield::new(config, EciesKeyPair::from_seed(seed)).unwrap()
}

#[test]
fn two_shields_have_independent_keys_and_data() {
    let mut shield_a = shield("tenant-a", 0, b"shield-a");
    let mut shield_b = shield("tenant-b", 1 << 24, b"shield-b");

    // Each Data Owner provisions a distinct key into their Shield.
    let dek_a = DataEncryptionKey::from_bytes([0xA1u8; 32]);
    let dek_b = DataEncryptionKey::from_bytes([0xB2u8; 32]);
    shield_a
        .provision_load_key(&dek_a.to_load_key(&shield_a.public_key()))
        .unwrap();
    shield_b
        .provision_load_key(&dek_b.to_load_key(&shield_b.public_key()))
        .unwrap();

    let mut shell = Shell::new();
    let mut dram = Dram::f1_default();
    let mut ledger = CostLedger::new();

    // Tenant A writes a secret through its Shield.
    shield_a
        .write(
            &mut shell,
            &mut dram,
            &mut ledger,
            0,
            &[0xAAu8; 512],
            AccessMode::Streaming,
        )
        .unwrap();
    shield_a.flush(&mut shell, &mut dram, &mut ledger).unwrap();

    // Tenant A reads it back.
    let got = shield_a
        .read(
            &mut shell,
            &mut dram,
            &mut ledger,
            0,
            512,
            AccessMode::Streaming,
        )
        .unwrap();
    assert_eq!(got, vec![0xAAu8; 512]);

    // Tenant B's Shield cannot address tenant A's region at all…
    let err = shield_b
        .read(
            &mut shell,
            &mut dram,
            &mut ledger,
            0,
            512,
            AccessMode::Streaming,
        )
        .unwrap_err();
    assert!(matches!(err, ShefError::UnmappedAddress(_)));

    // …and even a Shield maliciously configured over A's address range
    // (same region name, same layout) cannot decrypt A's data without
    // A's key: the adversary clones the config but has a different DEK.
    let mut evil = shield("tenant-a", 0, b"evil-clone");
    let dek_evil = DataEncryptionKey::from_bytes([0xEEu8; 32]);
    evil.provision_load_key(&dek_evil.to_load_key(&evil.public_key()))
        .unwrap();
    let err = evil
        .read(
            &mut shell,
            &mut dram,
            &mut ledger,
            0,
            512,
            AccessMode::Streaming,
        )
        .unwrap_err();
    assert!(matches!(err, ShefError::IntegrityViolation(_)));
}

#[test]
fn load_key_cross_provisioning_is_rejected() {
    let mut shield_a = shield("a", 0, b"kp-a");
    let shield_b = shield("b", 1 << 24, b"kp-b");
    let dek = DataEncryptionKey::from_bytes([1u8; 32]);
    // Load Key built for Shield B delivered (by the malicious host) to
    // Shield A.
    let load_key_for_b = dek.to_load_key(&shield_b.public_key());
    assert!(shield_a.provision_load_key(&load_key_for_b).is_err());
    assert!(!shield_a.is_provisioned());
}

#[test]
fn one_data_owner_can_drive_multiple_shields_with_distinct_keys() {
    // The paper's step 10: "The Data Owner generates at least one Data
    // Encryption Key (e.g., one per Shield module)".
    let mut owner = shef::core::workflow::DataOwner::new(b"multi-owner");
    let mut shield_a = shield("region-a", 0, b"mo-a");
    let mut shield_b = shield("region-b", 1 << 24, b"mo-b");
    let dek_a = owner.generate_data_key();
    let dek_b = owner.generate_data_key();
    assert_ne!(dek_a.to_bytes(), dek_b.to_bytes());
    shield_a
        .provision_load_key(&owner.build_load_key(&dek_a, &shield_a.public_key()))
        .unwrap();
    shield_b
        .provision_load_key(&owner.build_load_key(&dek_b, &shield_b.public_key()))
        .unwrap();

    // Data encrypted for A does not verify under B's derivations even
    // with identical region geometry.
    let region_a = shield_a.config().regions[0].clone();
    let mut region_b_alias = shield_b.config().regions[0].clone();
    region_b_alias.name = region_a.name.clone();
    let enc = client::encrypt_region(&dek_a, &region_a, &[9u8; 512], 0);
    let result = client::decrypt_region(
        &dek_b,
        &region_b_alias,
        &enc.ciphertext,
        &enc.tags,
        &client::uniform_epochs(0),
    );
    assert!(result.is_err());
}
