//! Fuzz-style property tests over the protocol wire formats: corrupted
//! or truncated attestation messages, certificates and bitstreams must
//! be rejected cleanly (errors, never panics or silent acceptance).

use proptest::prelude::*;
use shef::core::attest::AttestationReport;
use shef::core::bitstream::{Bitstream, BitstreamKey, EncryptedBitstream};
use shef::core::pki::{CertSubject, Certificate, CertificateAuthority};
use shef::core::shield::{EngineSetConfig, LoadKey, MemRange, ShieldConfig};
use shef::crypto::ed25519::{Signature, SigningKey, VerifyingKey};

fn sample_report() -> AttestationReport {
    AttestationReport {
        nonce: [1u8; 32],
        enc_bitstream_hash: [2u8; 32],
        attest_sign_public: VerifyingKey([3u8; 32]),
        attest_dh_public: [4u8; 32],
        kernel_hash: [5u8; 32],
        sigma_seckrnl: Signature([6u8; 64]),
    }
}

fn sample_bitstream() -> Bitstream {
    Bitstream {
        accel_id: "fuzz".into(),
        shield_config: ShieldConfig::builder()
            .region("r", MemRange::new(0, 4096), EngineSetConfig::default())
            .build()
            .unwrap(),
        shield_key_seed: [7u8; 32],
        logic: vec![1, 2, 3, 4],
    }
}

proptest! {
    #[test]
    fn corrupted_reports_never_panic_or_roundtrip(idx in 0usize..220, xor in 1u8..=255) {
        let bytes = sample_report().to_bytes();
        prop_assume!(idx < bytes.len());
        let mut corrupted = bytes.clone();
        corrupted[idx] ^= xor;
        match AttestationReport::from_bytes(&corrupted) {
            // Either it fails to parse…
            Err(_) => {}
            // …or it parses to a *different* report (the signature check
            // upstream then rejects it). It must never equal the original.
            Ok(parsed) => prop_assert_ne!(parsed, sample_report()),
        }
    }

    #[test]
    fn truncated_reports_are_rejected(cut in 0usize..220) {
        let bytes = sample_report().to_bytes();
        prop_assume!(cut < bytes.len());
        prop_assert!(AttestationReport::from_bytes(&bytes[..cut]).is_err());
    }

    #[test]
    fn corrupted_encrypted_bitstreams_are_rejected(idx in 0usize..256, xor in 1u8..=255) {
        let key = BitstreamKey([9u8; 32]);
        let enc = EncryptedBitstream::seal(&sample_bitstream(), &key);
        prop_assume!(idx < enc.0.len());
        let mut corrupted = enc.clone();
        corrupted.0[idx] ^= xor;
        prop_assert!(corrupted.open(&key).is_err());
    }

    #[test]
    fn random_bytes_never_parse_as_certificates(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        // Parsing may succeed structurally only if lengths happen to
        // line up, but verification against a real CA must always fail.
        let mut ca = CertificateAuthority::new(&[1u8; 32]);
        let _ = ca.issue(
            CertSubject::Vendor { name: "v".into() },
            SigningKey::from_seed(&[2u8; 32]).verifying_key(),
        );
        if let Ok(cert) = Certificate::from_bytes(&bytes) {
            prop_assert!(cert.verify(&ca.root_public()).is_err());
        }
    }

    #[test]
    fn garbage_load_keys_fail_cleanly(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        match LoadKey::from_bytes(&bytes) {
            Err(_) => {}
            Ok(lk) => {
                // Structurally valid garbage must still fail provisioning.
                let config = ShieldConfig::builder()
                    .region("r", MemRange::new(0, 4096), EngineSetConfig::default())
                    .build()
                    .unwrap();
                let mut shield = shef::core::shield::Shield::new(
                    config,
                    shef::crypto::ecies::EciesKeyPair::from_seed(b"fuzz-target"),
                )
                .unwrap();
                prop_assert!(shield.provision_load_key(&lk).is_err());
            }
        }
    }

    #[test]
    fn bitstream_parse_total_on_random_input(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        // from_bytes is total: returns Ok or Err, never panics.
        let _ = Bitstream::from_bytes(&bytes);
    }

    #[test]
    fn corrupted_merkle_configs_never_silently_roundtrip(idx in 0usize..200, xor in 1u8..=255) {
        // A bitstream carrying a Merkle-protected region: any byte flip
        // in the serialized config either fails to parse or parses to a
        // different config (caught by the bitstream hash upstream).
        let es = EngineSetConfig {
            chunk_size: 64,
            merkle: Some(shef::core::shield::MerkleConfig { arity: 8, node_cache_bytes: 4096 }),
            ..EngineSetConfig::default()
        };
        let cfg = ShieldConfig::builder()
            .region("fmap", MemRange::new(0, 1 << 20), es)
            .build()
            .unwrap();
        let bytes = cfg.to_bytes();
        prop_assume!(idx < bytes.len());
        let mut corrupted = bytes.clone();
        corrupted[idx] ^= xor;
        match ShieldConfig::from_bytes(&corrupted) {
            Err(_) => {}
            Ok(parsed) => prop_assert_ne!(parsed, cfg),
        }
    }

    #[test]
    fn stream_frames_reject_garbage_and_corruption(
        bytes in proptest::collection::vec(any::<u8>(), 0..200),
        idx in 0usize..200,
        xor in 1u8..=255,
    ) {
        use shef::core::shield::{DataEncryptionKey, StreamEndpoint, StreamFrame};
        use shef::crypto::authenc::MacAlgorithm;

        // Random bytes: parsing is total.
        let _ = StreamFrame::from_bytes(&bytes);

        // A real frame with one byte flipped must never be accepted.
        let dek = DataEncryptionKey::from_bytes([0x13u8; 32]);
        let mut client = StreamEndpoint::client_side(&dek, "fuzz", MacAlgorithm::HmacSha256);
        let mut shield = StreamEndpoint::shield_side(&dek, "fuzz", MacAlgorithm::HmacSha256);
        let wire = client.send(b"fuzz payload").to_bytes();
        prop_assume!(idx < wire.len());
        let mut corrupted = wire.clone();
        corrupted[idx] ^= xor;
        if let Ok(frame) = StreamFrame::from_bytes(&corrupted) {
            prop_assert!(shield.recv(&frame).is_err());
        }
    }
}
