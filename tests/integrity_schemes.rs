//! Integration: the three replay-defence configurations (§5.2.1–5.2.2)
//! behave identically on the happy path, differ exactly as the paper
//! says under attack, and order by cost as §5.2.2 argues.
//!
//! | scheme           | spoof | splice | replay | extra DRAM |
//! |------------------|-------|--------|--------|------------|
//! | MAC only         |  ✓    |  ✓     |  ✗     | none       |
//! | on-chip counters |  ✓    |  ✓     |  ✓     | none       |
//! | Bonsai MT        |  ✓    |  ✓     |  ✓     | node walks |

use shef::core::shield::{
    AccessMode, DataEncryptionKey, EngineSetConfig, MemRange, MerkleConfig, Shield, ShieldConfig,
};
use shef::core::workflow::TestBench;
use shef::core::ShefError;
use shef::crypto::ecies::EciesKeyPair;
use shef::fpga::clock::CostLedger;
use shef::fpga::dram::Dram;
use shef::fpga::shell::Shell;

const REGION_LEN: u64 = 64 * 1024;
const CHUNK: usize = 512;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scheme {
    MacOnly,
    Counters,
    Merkle,
    MerkleCached,
}

fn engine_set(scheme: Scheme) -> EngineSetConfig {
    let (counters, merkle) = match scheme {
        Scheme::MacOnly => (false, None),
        Scheme::Counters => (true, None),
        Scheme::Merkle => (
            false,
            Some(MerkleConfig {
                arity: 8,
                node_cache_bytes: 0,
            }),
        ),
        Scheme::MerkleCached => (
            false,
            Some(MerkleConfig {
                arity: 8,
                node_cache_bytes: 8 * 1024,
            }),
        ),
    };
    EngineSetConfig {
        chunk_size: CHUNK,
        buffer_bytes: 2 * CHUNK,
        counters,
        merkle,
        ..EngineSetConfig::default()
    }
}

fn shield_for(scheme: Scheme) -> (Shield, Shell, Dram, CostLedger) {
    let config = ShieldConfig::builder()
        .region("state", MemRange::new(0, REGION_LEN), engine_set(scheme))
        .build()
        .expect("valid config");
    let mut shield =
        Shield::new(config, EciesKeyPair::from_seed(b"integrity-schemes")).expect("shield");
    let dek = DataEncryptionKey::from_bytes([0x66u8; 32]);
    shield
        .provision_load_key(&dek.to_load_key(&shield.public_key()))
        .expect("provision");
    (shield, Shell::new(), Dram::f1_default(), CostLedger::new())
}

/// Write-flush-rewrite-flush, then roll DRAM (data + tag) back to the
/// first version. Returns the victim's re-read result.
fn replay_attack(scheme: Scheme) -> Result<Vec<u8>, ShefError> {
    let (mut shield, mut shell, mut dram, mut ledger) = shield_for(scheme);
    shield.write(
        &mut shell,
        &mut dram,
        &mut ledger,
        0,
        &[1u8; CHUNK],
        AccessMode::Streaming,
    )?;
    shield.flush(&mut shell, &mut dram, &mut ledger)?;
    let old_ct = dram.tamper_read(0, CHUNK);
    let old_tag = dram.tamper_read(shield.config().tag_base(0), 16);
    shield.write(
        &mut shell,
        &mut dram,
        &mut ledger,
        0,
        &[2u8; CHUNK],
        AccessMode::Streaming,
    )?;
    shield.flush(&mut shell, &mut dram, &mut ledger)?;
    dram.tamper_write(0, &old_ct);
    dram.tamper_write(shield.config().tag_base(0), &old_tag);
    shield.read(
        &mut shell,
        &mut dram,
        &mut ledger,
        0,
        CHUNK,
        AccessMode::Streaming,
    )
}

#[test]
fn happy_path_is_identical_across_schemes() {
    let payload: Vec<u8> = (0..REGION_LEN as u32).map(|i| (i % 241) as u8).collect();
    for scheme in [
        Scheme::MacOnly,
        Scheme::Counters,
        Scheme::Merkle,
        Scheme::MerkleCached,
    ] {
        let (mut shield, mut shell, mut dram, mut ledger) = shield_for(scheme);
        shield
            .write(
                &mut shell,
                &mut dram,
                &mut ledger,
                0,
                &payload,
                AccessMode::Streaming,
            )
            .expect("write");
        shield
            .flush(&mut shell, &mut dram, &mut ledger)
            .expect("flush");
        let got = shield
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0,
                payload.len(),
                AccessMode::Streaming,
            )
            .expect("read");
        assert_eq!(got, payload, "{scheme:?} must be functionally transparent");
    }
}

#[test]
fn spoofing_detected_by_all_schemes() {
    for scheme in [Scheme::MacOnly, Scheme::Counters, Scheme::Merkle] {
        let (mut shield, mut shell, mut dram, mut ledger) = shield_for(scheme);
        shield
            .write(
                &mut shell,
                &mut dram,
                &mut ledger,
                0,
                &[7u8; 2 * CHUNK],
                AccessMode::Streaming,
            )
            .expect("write");
        shield
            .flush(&mut shell, &mut dram, &mut ledger)
            .expect("flush");
        let mut b = dram.tamper_read(100, 1);
        b[0] ^= 0x10;
        dram.tamper_write(100, &b);
        let err = shield
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0,
                CHUNK,
                AccessMode::Streaming,
            )
            .unwrap_err();
        assert!(
            matches!(err, ShefError::IntegrityViolation(_)),
            "{scheme:?} must detect spoofing"
        );
    }
}

#[test]
fn splicing_detected_by_all_schemes() {
    for scheme in [Scheme::MacOnly, Scheme::Counters, Scheme::Merkle] {
        let (mut shield, mut shell, mut dram, mut ledger) = shield_for(scheme);
        shield
            .write(
                &mut shell,
                &mut dram,
                &mut ledger,
                0,
                &[1u8; CHUNK],
                AccessMode::Streaming,
            )
            .expect("write chunk 0");
        shield
            .write(
                &mut shell,
                &mut dram,
                &mut ledger,
                CHUNK as u64,
                &[2u8; CHUNK],
                AccessMode::Streaming,
            )
            .expect("write chunk 1");
        shield
            .flush(&mut shell, &mut dram, &mut ledger)
            .expect("flush");
        // Copy chunk 0 (ciphertext + tag) over chunk 1.
        let c0 = dram.tamper_read(0, CHUNK);
        let t0 = dram.tamper_read(shield.config().tag_base(0), 16);
        dram.tamper_write(CHUNK as u64, &c0);
        dram.tamper_write(shield.config().tag_base(0) + 16, &t0);
        let err = shield
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                CHUNK as u64,
                CHUNK,
                AccessMode::Streaming,
            )
            .unwrap_err();
        assert!(
            matches!(err, ShefError::IntegrityViolation(_)),
            "{scheme:?} must detect splicing"
        );
    }
}

#[test]
fn replay_detected_only_with_freshness() {
    // MAC-only: the stale-but-valid snapshot verifies — the paper's
    // §5.2.1 motivation for counters.
    let stale = replay_attack(Scheme::MacOnly).expect("MAC-only accepts the replay");
    assert_eq!(stale, vec![1u8; CHUNK], "replay silently restores old data");

    for scheme in [Scheme::Counters, Scheme::Merkle, Scheme::MerkleCached] {
        let err = replay_attack(scheme).unwrap_err();
        assert!(
            matches!(err, ShefError::IntegrityViolation(_)),
            "{scheme:?} must detect the replay"
        );
    }
}

#[test]
fn merkle_pays_and_counters_do_not() {
    // §5.2.2's cost argument as an executable assertion: on a random
    // RMW workload, counters cost ≈ MAC-only, the cached tree costs
    // more, and the uncached tree costs the most.
    let run = |scheme: Scheme| -> u64 {
        let (mut shield, mut shell, mut dram, mut ledger) = shield_for(scheme);
        // Provision the whole region (full-chunk writes, no RMW fills),
        // so the measured loop only sees authenticated data.
        shield
            .write(
                &mut shell,
                &mut dram,
                &mut ledger,
                0,
                &vec![0u8; REGION_LEN as usize],
                AccessMode::Streaming,
            )
            .expect("warm-up write");
        shield
            .flush(&mut shell, &mut dram, &mut ledger)
            .expect("warm-up flush");
        dram.reset_accounting();
        let mut ledger = CostLedger::new();
        let mut state = 0xfeedu64;
        for round in 0..3u8 {
            for _ in 0..64 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(round as u64 + 1);
                let addr = (state >> 16) % (REGION_LEN - CHUNK as u64);
                shield
                    .write(
                        &mut shell,
                        &mut dram,
                        &mut ledger,
                        addr,
                        &[round; 64],
                        AccessMode::Streaming,
                    )
                    .expect("rmw write");
            }
            shield
                .flush(&mut shell, &mut dram, &mut ledger)
                .expect("flush");
        }
        ledger.merge(dram.ledger());
        ledger.bottleneck().0
    };
    let mac_only = run(Scheme::MacOnly);
    let counters = run(Scheme::Counters);
    let merkle_cached = run(Scheme::MerkleCached);
    let merkle = run(Scheme::Merkle);
    assert!(
        counters < mac_only + mac_only / 10,
        "counters ({counters}) must cost within 10% of MAC-only ({mac_only})"
    );
    assert!(
        merkle_cached > counters,
        "cached tree ({merkle_cached}) must cost more than counters ({counters})"
    );
    assert!(
        merkle >= merkle_cached,
        "uncached tree ({merkle}) must cost at least the cached one ({merkle_cached})"
    );
}

#[test]
fn merkle_config_survives_the_full_vendor_pipeline() {
    // A Shield config with a Merkle region is hashed into a bitstream,
    // encrypted, attested, decrypted and instantiated — end to end.
    let mut bench = TestBench::new("integrity-pipeline");
    let board = bench.fresh_board(b"die-integrity-01").expect("board");
    let config = ShieldConfig::builder()
        .region(
            "fmap",
            MemRange::new(0, REGION_LEN),
            engine_set(Scheme::MerkleCached),
        )
        .build()
        .expect("config");
    let product = bench
        .vendor
        .package_accelerator("merkle-accel-v1", config.clone(), b"<logic>".to_vec())
        .expect("package");
    let (mut instance, _dek) = bench
        .data_owner
        .deploy(board, &mut bench.vendor, &bench.manufacturer, &product)
        .expect("deploy");
    assert_eq!(
        instance.shield.config().regions[0].engine_set.merkle,
        config.regions[0].engine_set.merkle
    );

    // The deployed Shield's Merkle path works against the real board DRAM.
    let mut ledger = CostLedger::new();
    instance
        .shield
        .write(
            &mut instance.board.shell,
            &mut instance.board.device.dram,
            &mut ledger,
            0,
            &[9u8; CHUNK],
            AccessMode::Streaming,
        )
        .expect("write through deployed shield");
    instance
        .shield
        .flush(
            &mut instance.board.shell,
            &mut instance.board.device.dram,
            &mut ledger,
        )
        .expect("flush");
    let got = instance
        .shield
        .read(
            &mut instance.board.shell,
            &mut instance.board.device.dram,
            &mut ledger,
            0,
            CHUNK,
            AccessMode::Streaming,
        )
        .expect("read back");
    assert_eq!(got, vec![9u8; CHUNK]);
}
