//! Smoke tests asserting the *shape* of every experiment the benchmark
//! harness regenerates: who wins, roughly by how much, and where the
//! crossovers fall — scaled down so they run inside `cargo test`.

use shef::accel::bitcoin::Bitcoin;
use shef::accel::dnnweaver::DnnWeaver;
use shef::accel::harness::{overhead, run_baseline, run_shielded};
use shef::accel::sdp::{SdpEngineConfig, SdpStore};
use shef::accel::vecadd::VectorAdd;
use shef::accel::{Accelerator, CryptoProfile};
use shef::core::shield::area::shield_area;

#[test]
fn fig5_shape_grows_with_size_and_separates_profiles() {
    // Overhead increases with vector size for the weak profile…
    let small = overhead(
        &|| Box::new(VectorAdd::new(16 * 1024, 1)) as Box<dyn Accelerator>,
        &CryptoProfile::AES128_4X,
    )
    .unwrap();
    let large = overhead(
        &|| Box::new(VectorAdd::new(SMOKE_FILE_BYTES, 1)) as Box<dyn Accelerator>,
        &CryptoProfile::AES128_4X,
    )
    .unwrap();
    assert!(
        large.normalized > small.normalized,
        "fig5 must grow with size"
    );
    // …and 16x beats 4x at the same size.
    let strong = overhead(
        &|| Box::new(VectorAdd::new(SMOKE_FILE_BYTES, 1)) as Box<dyn Accelerator>,
        &CryptoProfile::AES128_16X,
    )
    .unwrap();
    assert!(strong.normalized < large.normalized, "16x must beat 4x");
}

/// Debug builds run the software crypto ~50× slower than release; scale
/// the workload so `cargo test` stays fast while release keeps the full
/// fidelity.
const SMOKE_FILE_BYTES: usize = if cfg!(debug_assertions) {
    64 * 1024
} else {
    512 * 1024
};

#[test]
fn table2_shape_hmac_flat_pmac_wins_then_saturates() {
    let cols = SdpEngineConfig::table2_columns();
    let run = |engines| {
        overhead(
            &move || {
                Box::new(SdpStore::new(
                    SMOKE_FILE_BYTES,
                    2,
                    vec![
                        shef::accel::sdp::SdpOp::Get(0),
                        shef::accel::sdp::SdpOp::Get(1),
                    ],
                    engines,
                    5,
                )) as Box<dyn Accelerator>
            },
            &CryptoProfile::AES128_16X,
        )
        .unwrap()
        .normalized
    };
    let hmac_4x = run(cols[0].1);
    let hmac_16x = run(cols[1].1);
    let pmac_4 = run(cols[2].1);
    let pmac_8 = run(cols[3].1);
    let pmac_16 = run(cols[4].1);
    // HMAC rows are within a few percent of each other (HMAC-bound).
    assert!(
        (hmac_4x - hmac_16x).abs() / hmac_4x < 0.05,
        "{hmac_4x} vs {hmac_16x}"
    );
    // The PMAC swap is the big win (threshold relaxed at the debug scale
    // where fixed DMA costs compress ratios).
    let pmac_win = if cfg!(debug_assertions) { 0.95 } else { 0.8 };
    assert!(
        pmac_4 < hmac_16x * pmac_win,
        "PMAC must cut the overhead substantially: {pmac_4} vs {hmac_16x}"
    );
    // Engine scaling saturates.
    assert!(pmac_8 <= pmac_4 + 0.01);
    assert!(
        (pmac_16 - pmac_8).abs() < 0.15,
        "8x→16x engines must saturate"
    );
}

#[test]
fn fig6_dnnweaver_pmac_story() {
    let mut hmac = DnnWeaver::new(2, 3);
    let hmac_cycles = run_shielded(&mut hmac, &CryptoProfile::AES128_16X, 1)
        .unwrap()
        .cycles;
    let mut pmac = DnnWeaver::new(2, 3).with_pmac_weights();
    let pmac_cycles = run_shielded(&mut pmac, &CryptoProfile::AES128_16X_PMAC, 1)
        .unwrap()
        .cycles;
    let mut base = DnnWeaver::new(2, 3);
    let base_cycles = run_baseline(&mut base).unwrap().cycles;
    // DNNWeaver is the most expensive workload to shield (≫1.5x even at
    // this reduced batch; 3.2x at the Fig. 6 scale)…
    assert!(hmac_cycles.0 as f64 / base_cycles.0 as f64 > 1.5);
    // …and PMAC recovers a large part of it.
    assert!(pmac_cycles < hmac_cycles);
}

#[test]
fn fig6_bitcoin_is_free_to_shield() {
    let report = overhead(
        &|| Box::new(Bitcoin::new(12, 9)) as Box<dyn Accelerator>,
        &CryptoProfile::AES256_4X,
    )
    .unwrap();
    assert!(
        report.normalized < 1.05,
        "bitcoin overhead {}",
        report.normalized
    );
}

#[test]
fn table3_bitcoin_area_is_minimal() {
    let bitcoin = Bitcoin::new(12, 0);
    let conv = shef::accel::conv::Convolution::new(shef::accel::conv::ConvDims::small(), 0);
    let b = shield_area(&bitcoin.shield_config(&CryptoProfile::AES128_16X));
    let c = shield_area(&conv.shield_config(&CryptoProfile::AES128_16X));
    assert!(
        b.lut < c.lut / 5,
        "register-only shield must be far smaller"
    );
    assert_eq!(b.bram, 0);
}

#[test]
fn boot_time_matches_paper_headline() {
    let t = shef::core::boot::BootTiming::ultra96();
    assert!((t.total_ms() / 1000.0 - 5.1).abs() < 0.05);
}

#[test]
fn integrity_ablation_shape_counters_free_merkle_pays() {
    // Scaled-down version of the integrity_ablation bench: counters
    // match MAC-only exactly on engine-lane cycles; the Merkle tree
    // costs a multiple; the node cache recovers part of the gap.
    use shef::core::shield::engine::{AccessMode, EngineSet};
    use shef::core::shield::{
        DataEncryptionKey, EngineSetConfig, MemRange, MerkleConfig, RegionConfig,
    };
    use shef::fpga::clock::CostLedger;
    use shef::fpga::dram::Dram;
    use shef::fpga::shell::Shell;

    let run = |counters: bool, merkle: Option<MerkleConfig>| -> u64 {
        let region = RegionConfig {
            name: "fmap".into(),
            range: MemRange::new(0, 64 * 1024),
            engine_set: EngineSetConfig {
                chunk_size: 64,
                buffer_bytes: 1024,
                counters,
                merkle,
                ..EngineSetConfig::default()
            },
        };
        let dek = DataEncryptionKey::from_bytes([0x61u8; 32]);
        let mut es = EngineSet::new(region, 0, 16 << 20, 24 << 20, &dek);
        let (mut shell, mut dram) = (Shell::new(), Dram::new(1 << 26));
        let mut ledger = CostLedger::new();
        for start in (0..64 * 1024u64).step_by(64) {
            es.write(
                &mut shell,
                &mut dram,
                &mut ledger,
                start,
                &[0u8; 64],
                AccessMode::Streaming,
            )
            .unwrap();
        }
        es.flush(&mut shell, &mut dram, &mut ledger).unwrap();
        let mut ledger = CostLedger::new();
        let mut state = 7u64;
        for _ in 0..256 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(11);
            let addr = (state >> 16) % (64 * 1024 - 8);
            let b = es
                .read(
                    &mut shell,
                    &mut dram,
                    &mut ledger,
                    addr,
                    8,
                    AccessMode::Streaming,
                )
                .unwrap();
            es.write(
                &mut shell,
                &mut dram,
                &mut ledger,
                addr,
                &b,
                AccessMode::Streaming,
            )
            .unwrap();
        }
        es.flush(&mut shell, &mut dram, &mut ledger).unwrap();
        ledger.bottleneck().0
    };

    let mac_only = run(false, None);
    let counters = run(true, None);
    let merkle_cached = run(
        false,
        Some(MerkleConfig {
            arity: 8,
            node_cache_bytes: 8 * 1024,
        }),
    );
    let merkle = run(
        false,
        Some(MerkleConfig {
            arity: 8,
            node_cache_bytes: 0,
        }),
    );
    assert_eq!(counters, mac_only, "on-chip counters are free at run time");
    assert!(
        merkle > 2 * counters,
        "uncached tree pays node walks: {merkle} vs {counters}"
    );
    assert!(
        merkle_cached < merkle,
        "node cache recovers part of the gap"
    );
}

#[test]
fn mac_engine_sweep_shape_gcm_between_families() {
    // The MAC-engine ablation's streaming ordering at C=4KB with one
    // engine: GCM (16 B/cyc) < HMAC (12 B/cyc) < PMAC (7 B/cyc) lane
    // occupancy per chunk.
    use shef::core::shield::timing::mac_chunk_cost;
    use shef::core::shield::EngineSetConfig;
    use shef::crypto::authenc::MacAlgorithm;

    let cost = |mac: MacAlgorithm| {
        let cfg = EngineSetConfig {
            chunk_size: 4096,
            mac,
            ..EngineSetConfig::default()
        };
        mac_chunk_cost(&cfg, 4096).lane
    };
    let hmac = cost(MacAlgorithm::HmacSha256);
    let pmac = cost(MacAlgorithm::PmacAes);
    let gcm = cost(MacAlgorithm::AesGcm);
    assert!(gcm < hmac, "one GHASH engine outruns one HMAC engine");
    assert!(hmac < pmac, "one PMAC engine is the slowest single engine");
    // …but PMAC/GCM parallelize within a chunk, HMAC does not: at 4
    // engines the blocking latency ordering flips against HMAC.
    let latency4 = |mac: MacAlgorithm| {
        let cfg = EngineSetConfig {
            chunk_size: 4096,
            mac,
            mac_engines: 4,
            ..EngineSetConfig::default()
        };
        mac_chunk_cost(&cfg, 4096).latency
    };
    assert!(latency4(MacAlgorithm::PmacAes) < latency4(MacAlgorithm::HmacSha256));
    assert!(latency4(MacAlgorithm::AesGcm) < latency4(MacAlgorithm::HmacSha256));
}
