//! PMAC — a parallelizable message authentication code over AES.
//!
//! The Shield offers a "PMAC engine based on AES" (§6.2.1, Table 1) as a
//! drop-in replacement for HMAC when authentication bandwidth is the
//! bottleneck: because each 16-byte block is masked and encrypted
//! independently before a final accumulation, the per-block AES
//! operations can be spread across multiple engines *within one chunk* —
//! unlike HMAC's serial compression chain. This is the optimization that
//! takes SDP from 297 % overhead to 59 % (Table 2) and DNNWeaver from
//! 3.20× to 2.31× (Fig. 6).
//!
//! The construction follows Black–Rogaway PMAC: blocks are XOR-masked
//! with Gray-code multiples of L = E_K(0), encrypted, and XOR-accumulated;
//! the final partial block is padded 10* and folded in; the tag is
//! E_K(Σ ⊕ L·x^{-1}-ish finalization mask). We use a simplified
//! finalization (distinct masks for full/partial last block) that keeps
//! the parallel structure; it is a PRF under the same assumptions, and
//! all security tests in this workspace treat it as an opaque MAC.
//!
//! # Example
//!
//! ```
//! use shef_crypto::aes::Aes;
//! use shef_crypto::pmac::pmac;
//!
//! let aes = Aes::new_128(&[0x42; 16]);
//! let tag = pmac(&aes, b"weights chunk");
//! assert_eq!(tag.len(), 16);
//! ```

use crate::aes::{Aes, AES_BLOCK_LEN};
use crate::ct;

/// Length in bytes of a PMAC tag.
pub const PMAC_TAG_LEN: usize = 16;

/// Doubles a 128-bit value in GF(2^128) (the standard dbl() used by
/// OMAC/PMAC mask schedules).
fn dbl(block: &[u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    let mut carry = 0u8;
    for i in (0..16).rev() {
        let b = block[i];
        out[i] = (b << 1) | carry;
        carry = b >> 7;
    }
    if carry != 0 {
        out[15] ^= 0x87;
    }
    out
}

fn xor16(a: &[u8; 16], b: &[u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    for i in 0..16 {
        out[i] = a[i] ^ b[i];
    }
    out
}

/// Computes a PMAC tag over `data` with the given AES instance.
#[must_use]
pub fn pmac(aes: &Aes, data: &[u8]) -> [u8; PMAC_TAG_LEN] {
    pmac_multi(aes, &[data])
}

/// Computes a PMAC tag over the concatenation of `parts`.
#[must_use]
pub fn pmac_multi(aes: &Aes, parts: &[&[u8]]) -> [u8; PMAC_TAG_LEN] {
    let data: Vec<u8> = parts.iter().flat_map(|p| p.iter().copied()).collect();
    let l = aes.encrypt_block(&[0u8; 16]);
    let mut sigma = [0u8; 16];
    let n_full = data.len() / AES_BLOCK_LEN;
    let rem = data.len() % AES_BLOCK_LEN;
    // All blocks except a possibly-final partial one are masked and
    // encrypted independently — the parallelizable part.
    let mut mask = dbl(&l);
    let last_full_is_final = rem == 0 && n_full > 0;
    let parallel_blocks = if last_full_is_final {
        n_full - 1
    } else {
        n_full
    };
    for i in 0..parallel_blocks {
        let block: [u8; 16] = data[i * 16..(i + 1) * 16].try_into().expect("full block");
        sigma = xor16(&sigma, &aes.encrypt_block(&xor16(&block, &mask)));
        mask = dbl(&mask);
    }
    // Final block handling: full final block XORed directly with a
    // distinct mask; partial block padded 10*.
    let final_mask_full = dbl(&dbl(&l));
    let final_mask_partial = dbl(&dbl(&dbl(&l)));
    if last_full_is_final {
        let block: [u8; 16] = data[(n_full - 1) * 16..].try_into().expect("final block");
        sigma = xor16(&sigma, &block);
        sigma = xor16(&sigma, &final_mask_full);
    } else {
        let mut block = [0u8; 16];
        block[..rem].copy_from_slice(&data[n_full * 16..]);
        block[rem] = 0x80;
        sigma = xor16(&sigma, &block);
        sigma = xor16(&sigma, &final_mask_partial);
    }
    aes.encrypt_block(&sigma)
}

/// Verifies a PMAC tag in constant time.
#[must_use]
pub fn verify_pmac(aes: &Aes, data: &[u8], tag: &[u8]) -> bool {
    if tag.len() != PMAC_TAG_LEN {
        return false;
    }
    ct::eq(&pmac(aes, data), tag)
}

/// Number of AES block operations needed to MAC `len` bytes, for the
/// timing model: one per 16-byte block (mask+encrypt) plus one
/// finalization encryption.
#[must_use]
pub fn blocks_for_len(len: usize) -> u64 {
    (len as u64).div_ceil(AES_BLOCK_LEN as u64).max(1) + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aes() -> Aes {
        Aes::new_128(&[7u8; 16])
    }

    #[test]
    fn deterministic() {
        assert_eq!(pmac(&aes(), b"hello"), pmac(&aes(), b"hello"));
    }

    #[test]
    fn distinguishes_messages() {
        let a = pmac(&aes(), b"hello");
        let b = pmac(&aes(), b"hellp");
        assert_ne!(a, b);
    }

    #[test]
    fn distinguishes_lengths_at_block_boundary() {
        // A 16-byte message and the same message padded with 0x80 0x00...
        // must not collide (the full/partial final-block masks differ).
        let full = [0xabu8; 16];
        let mut padded = [0u8; 15];
        padded.copy_from_slice(&full[..15]);
        let a = pmac(&aes(), &full);
        let b = pmac(&aes(), &padded);
        assert_ne!(a, b);
        // Empty vs single zero byte.
        assert_ne!(pmac(&aes(), b""), pmac(&aes(), &[0u8]));
    }

    #[test]
    fn distinguishes_keys() {
        let other = Aes::new_128(&[8u8; 16]);
        assert_ne!(pmac(&aes(), b"hello"), pmac(&other, b"hello"));
    }

    #[test]
    fn block_permutation_detected() {
        // Swapping two 16-byte blocks must change the tag (the Gray-like
        // mask schedule binds position).
        let mut data = vec![0u8; 48];
        data[0..16].copy_from_slice(&[1u8; 16]);
        data[16..32].copy_from_slice(&[2u8; 16]);
        let tag1 = pmac(&aes(), &data);
        data[0..16].copy_from_slice(&[2u8; 16]);
        data[16..32].copy_from_slice(&[1u8; 16]);
        let tag2 = pmac(&aes(), &data);
        assert_ne!(tag1, tag2);
    }

    #[test]
    fn multi_part_equals_concat() {
        let a = pmac(&aes(), b"abcdef0123456789ABCDEF");
        let b = pmac_multi(&aes(), &[b"abcdef", b"0123456789", b"ABCDEF"]);
        assert_eq!(a, b);
    }

    #[test]
    fn verify_round_trip() {
        let tag = pmac(&aes(), b"data");
        assert!(verify_pmac(&aes(), b"data", &tag));
        assert!(!verify_pmac(&aes(), b"datb", &tag));
        assert!(!verify_pmac(&aes(), b"data", &tag[..8]));
    }

    #[test]
    fn dbl_known_behaviour() {
        // dbl of a value with MSB clear is a plain shift.
        let mut x = [0u8; 16];
        x[15] = 1;
        assert_eq!(dbl(&x)[15], 2);
        // dbl with MSB set folds in 0x87.
        let mut y = [0u8; 16];
        y[0] = 0x80;
        let d = dbl(&y);
        assert_eq!(d[15], 0x87);
        assert_eq!(d[0], 0);
    }

    #[test]
    fn timing_block_count() {
        assert_eq!(blocks_for_len(0), 2);
        assert_eq!(blocks_for_len(16), 2);
        assert_eq!(blocks_for_len(17), 3);
        assert_eq!(blocks_for_len(4096), 257);
    }
}
