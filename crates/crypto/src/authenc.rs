//! Authenticated encryption: AES-CTR with encrypt-then-MAC.
//!
//! This is the Shield's core mechanism (§5.1): "Cryptographic modules
//! that provide authenticated encryption are at the core of the Shield.
//! We use AES-CTR + HMAC modules as default" — with PMAC as the
//! configurable alternative (§6.2.4). Each sealed message carries a
//! 12-byte IV and a 16-byte truncated tag, matching the Shield's DRAM
//! layout ("each chunk is authenticated via a 16-byte MAC tag in
//! encrypt-then-MAC mode", §5.2.2).
//!
//! The MAC covers `associated_data || iv || ciphertext`, binding each
//! chunk to its address/region — the defence against splicing attacks.

use crate::aes::{Aes, AesKeySize};
use crate::ctr::{ctr_xor, ChunkIv, IV_LEN};
use crate::ghash;
use crate::hkdf;
use crate::hmac::hmac_sha256_multi;
use crate::pmac::pmac_multi;
use crate::{ct, CryptoError};

/// Tag length stored alongside each chunk.
pub const TAG_LEN: usize = 16;

/// Which MAC engine authenticates the ciphertext.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MacAlgorithm {
    /// SHA-256 HMAC — the Shield default. Sequential within a chunk.
    #[default]
    HmacSha256,
    /// AES-based PMAC — parallelizable within a chunk.
    PmacAes,
    /// GHASH in a GCM-style composition — parallelizable within a chunk
    /// with a cheaper per-block operation than PMAC (§5.2.2's "simply
    /// substitute a new cryptographic engine" path).
    AesGcm,
}

impl core::fmt::Display for MacAlgorithm {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MacAlgorithm::HmacSha256 => write!(f, "HMAC"),
            MacAlgorithm::PmacAes => write!(f, "PMAC"),
            MacAlgorithm::AesGcm => write!(f, "GCM"),
        }
    }
}

/// A sealed (encrypted and authenticated) message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sealed {
    /// Per-message initialization vector.
    pub iv: [u8; IV_LEN],
    /// AES-CTR ciphertext.
    pub ciphertext: Vec<u8>,
    /// Truncated encrypt-then-MAC tag.
    pub tag: [u8; TAG_LEN],
}

impl Sealed {
    /// Serializes to `iv || tag || ciphertext` for transport.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(IV_LEN + TAG_LEN + self.ciphertext.len());
        out.extend_from_slice(&self.iv);
        out.extend_from_slice(&self.tag);
        out.extend_from_slice(&self.ciphertext);
        out
    }

    /// Parses the `to_bytes` wire format.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] if `bytes` is too short to
    /// contain the IV and tag.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        if bytes.len() < IV_LEN + TAG_LEN {
            return Err(CryptoError::InvalidLength);
        }
        let iv: [u8; IV_LEN] = bytes[..IV_LEN].try_into().expect("iv slice");
        let tag: [u8; TAG_LEN] = bytes[IV_LEN..IV_LEN + TAG_LEN]
            .try_into()
            .expect("tag slice");
        Ok(Sealed {
            iv,
            tag,
            ciphertext: bytes[IV_LEN + TAG_LEN..].to_vec(),
        })
    }
}

/// A symmetric authenticated-encryption key.
///
/// Internally derives independent encryption and MAC subkeys from the
/// master key via HKDF, as a hardware Shield would provision separate
/// keys into its AES and MAC engines.
#[derive(Clone)]
pub struct AuthEncKey {
    enc: Aes,
    mac_key: [u8; 32],
    mac_aes: Aes,
    algorithm: MacAlgorithm,
    seal_counter: u64,
    master: [u8; 32],
}

impl core::fmt::Debug for AuthEncKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("AuthEncKey")
            .field("algorithm", &self.algorithm)
            .finish_non_exhaustive()
    }
}

impl AuthEncKey {
    /// Builds a key whose AES engines use AES-128 (Shield default).
    #[must_use]
    pub fn from_bytes(master: [u8; 32], algorithm: MacAlgorithm) -> Self {
        Self::with_key_size(master, algorithm, AesKeySize::Aes128)
    }

    /// Builds a key selecting the AES variant, mirroring the Shield's
    /// compile-time key-size parameter.
    #[must_use]
    pub fn with_key_size(master: [u8; 32], algorithm: MacAlgorithm, key_size: AesKeySize) -> Self {
        let enc_key = hkdf::derive(&[], &master, b"shef.authenc.enc", key_size.key_len());
        let mac_key = hkdf::derive_key32(&[], &master, b"shef.authenc.mac");
        let mac_aes_key: [u8; 16] = mac_key[..16].try_into().expect("16 bytes");
        AuthEncKey {
            enc: Aes::new(&enc_key),
            mac_key,
            mac_aes: Aes::new_128(&mac_aes_key),
            algorithm,
            seal_counter: 0,
            master,
        }
    }

    /// The MAC algorithm in use.
    #[must_use]
    pub fn algorithm(&self) -> MacAlgorithm {
        self.algorithm
    }

    /// Raw master key bytes (needed when a key must be provisioned into a
    /// remote Shield, e.g. the Data Encryption Key inside a Load Key).
    #[must_use]
    pub fn master_bytes(&self) -> [u8; 32] {
        self.master
    }

    /// Seals `plaintext`, binding it to `associated_data`, with an
    /// automatically chosen fresh IV.
    pub fn seal(&mut self, plaintext: &[u8], associated_data: &[u8]) -> Sealed {
        let mut iv = [0u8; IV_LEN];
        iv[..8].copy_from_slice(&self.seal_counter.to_be_bytes());
        iv[8..].copy_from_slice(&0xa5a5_5a5au32.to_be_bytes());
        self.seal_counter += 1;
        self.seal_with_iv(plaintext, associated_data, ChunkIv(iv))
    }

    /// Seals with a caller-chosen IV. The Shield uses this form: chunk
    /// IVs are derived from region nonce, chunk index and write epoch.
    ///
    /// Reusing an IV for two different plaintexts under the same key
    /// voids confidentiality, exactly as in hardware; the Shield's
    /// counter discipline prevents it.
    #[must_use]
    pub fn seal_with_iv(&self, plaintext: &[u8], associated_data: &[u8], iv: ChunkIv) -> Sealed {
        let mut ciphertext = plaintext.to_vec();
        ctr_xor(&self.enc, &iv, &mut ciphertext);
        let tag = self.compute_tag(associated_data, &iv.0, &ciphertext);
        Sealed {
            iv: iv.0,
            ciphertext,
            tag,
        }
    }

    /// Opens a sealed message, verifying its tag against
    /// `associated_data`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::TagMismatch`] if authentication fails; no
    /// plaintext is released in that case.
    pub fn open(&self, sealed: &Sealed, associated_data: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let expected = self.compute_tag(associated_data, &sealed.iv, &sealed.ciphertext);
        if !ct::eq(&expected, &sealed.tag) {
            return Err(CryptoError::TagMismatch);
        }
        let mut plaintext = sealed.ciphertext.clone();
        ctr_xor(&self.enc, &ChunkIv(sealed.iv), &mut plaintext);
        Ok(plaintext)
    }

    /// Computes the 16-byte tag over `ad || iv || ciphertext`.
    #[must_use]
    pub fn compute_tag(&self, ad: &[u8], iv: &[u8; IV_LEN], ciphertext: &[u8]) -> [u8; TAG_LEN] {
        match self.algorithm {
            MacAlgorithm::HmacSha256 => {
                let full = hmac_sha256_multi(&self.mac_key, &[ad, iv, ciphertext]);
                full[..TAG_LEN].try_into().expect("truncate to 16")
            }
            MacAlgorithm::PmacAes => {
                // Length-prefix the associated data so (ad, ct) boundaries
                // are unambiguous.
                let len = (ad.len() as u64).to_be_bytes();
                pmac_multi(&self.mac_aes, &[&len, ad, iv, ciphertext])
            }
            MacAlgorithm::AesGcm => {
                // GCM tag composition over the already-produced CTR
                // ciphertext: T = E_K(J0(iv)) ⊕ GHASH_H(ad, ct), with
                // H = E_K(0^128) from the dedicated MAC-AES engine.
                let h = self.mac_aes.encrypt_block(&[0u8; 16]);
                let s = ghash::ghash(&h, ad, ciphertext);
                let mut j0 = [0u8; 16];
                j0[..IV_LEN].copy_from_slice(iv);
                j0[15] = 1;
                let mask = self.mac_aes.encrypt_block(&j0);
                let mut tag = [0u8; TAG_LEN];
                for i in 0..TAG_LEN {
                    tag[i] = s[i] ^ mask[i];
                }
                tag
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(alg: MacAlgorithm) -> AuthEncKey {
        AuthEncKey::from_bytes([0x5au8; 32], alg)
    }

    #[test]
    fn round_trip_hmac() {
        let mut k = key(MacAlgorithm::HmacSha256);
        let sealed = k.seal(b"secret payload", b"ad");
        assert_eq!(k.open(&sealed, b"ad").unwrap(), b"secret payload");
    }

    #[test]
    fn round_trip_pmac() {
        let mut k = key(MacAlgorithm::PmacAes);
        let sealed = k.seal(b"secret payload", b"ad");
        assert_eq!(k.open(&sealed, b"ad").unwrap(), b"secret payload");
    }

    #[test]
    fn round_trip_gcm() {
        let mut k = key(MacAlgorithm::AesGcm);
        let sealed = k.seal(b"secret payload", b"ad");
        assert_eq!(k.open(&sealed, b"ad").unwrap(), b"secret payload");
    }

    #[test]
    fn mac_algorithms_produce_distinct_tags() {
        // Same key material, same message: the three engines must not
        // collide (they are independent PRFs over the same inputs).
        let iv = crate::ctr::ChunkIv([3u8; 12]);
        let tags: Vec<[u8; TAG_LEN]> = [
            MacAlgorithm::HmacSha256,
            MacAlgorithm::PmacAes,
            MacAlgorithm::AesGcm,
        ]
        .into_iter()
        .map(|alg| {
            AuthEncKey::from_bytes([0x5au8; 32], alg)
                .seal_with_iv(b"payload", b"ad", iv)
                .tag
        })
        .collect();
        assert_ne!(tags[0], tags[1]);
        assert_ne!(tags[0], tags[2]);
        assert_ne!(tags[1], tags[2]);
    }

    #[test]
    fn rejects_ciphertext_tampering() {
        for alg in [
            MacAlgorithm::HmacSha256,
            MacAlgorithm::PmacAes,
            MacAlgorithm::AesGcm,
        ] {
            let mut k = key(alg);
            let mut sealed = k.seal(b"payload", b"ad");
            sealed.ciphertext[0] ^= 1;
            assert_eq!(k.open(&sealed, b"ad"), Err(CryptoError::TagMismatch));
        }
    }

    #[test]
    fn rejects_wrong_associated_data() {
        let mut k = key(MacAlgorithm::HmacSha256);
        let sealed = k.seal(b"payload", b"address-0x1000");
        assert_eq!(
            k.open(&sealed, b"address-0x2000"),
            Err(CryptoError::TagMismatch),
            "splicing to a different address must fail"
        );
    }

    #[test]
    fn rejects_iv_tampering() {
        let mut k = key(MacAlgorithm::HmacSha256);
        let mut sealed = k.seal(b"payload", b"ad");
        sealed.iv[0] ^= 1;
        assert_eq!(k.open(&sealed, b"ad"), Err(CryptoError::TagMismatch));
    }

    #[test]
    fn distinct_ivs_for_sequential_seals() {
        let mut k = key(MacAlgorithm::HmacSha256);
        let a = k.seal(b"same", b"");
        let b = k.seal(b"same", b"");
        assert_ne!(a.iv, b.iv);
        assert_ne!(a.ciphertext, b.ciphertext);
    }

    #[test]
    fn wire_format_round_trip() {
        let mut k = key(MacAlgorithm::PmacAes);
        let sealed = k.seal(b"wire", b"meta");
        let parsed = Sealed::from_bytes(&sealed.to_bytes()).unwrap();
        assert_eq!(parsed, sealed);
        assert_eq!(k.open(&parsed, b"meta").unwrap(), b"wire");
        assert!(Sealed::from_bytes(&[0u8; 5]).is_err());
    }

    #[test]
    fn empty_plaintext() {
        let mut k = key(MacAlgorithm::HmacSha256);
        let sealed = k.seal(b"", b"ad");
        assert_eq!(k.open(&sealed, b"ad").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn aes256_variant_works() {
        let mut k =
            AuthEncKey::with_key_size([1u8; 32], MacAlgorithm::HmacSha256, AesKeySize::Aes256);
        let sealed = k.seal(b"data", b"");
        assert_eq!(k.open(&sealed, b"").unwrap(), b"data");
        // Different key size yields different ciphertext for same master.
        let k128 = AuthEncKey::from_bytes([1u8; 32], MacAlgorithm::HmacSha256);
        let sealed128 = k128.seal_with_iv(b"data", b"", crate::ctr::ChunkIv(sealed.iv));
        assert_ne!(sealed.ciphertext, sealed128.ciphertext);
    }

    #[test]
    fn keys_with_different_masters_incompatible() {
        let mut k1 = key(MacAlgorithm::HmacSha256);
        let k2 = AuthEncKey::from_bytes([0xa5u8; 32], MacAlgorithm::HmacSha256);
        let sealed = k1.seal(b"x", b"");
        assert!(k2.open(&sealed, b"").is_err());
    }
}
