//! Ed25519 signatures (RFC 8032).
//!
//! In the ShEF workflow these stand in for the Manufacturer's asymmetric
//! *device key* (embedded in the encrypted SPB firmware), the boot-derived
//! *Attestation Key*, and the CA keys of the PKI (§3 steps 1–2, §4).
//! The paper says "e.g., RSA or ECDSA"; Ed25519 plays the same role with
//! a smaller, auditable implementation.
//!
//! # Example
//!
//! ```
//! use shef_crypto::ed25519::SigningKey;
//!
//! let key = SigningKey::from_seed(&[5u8; 32]);
//! let sig = key.sign(b"attestation report");
//! assert!(key.verifying_key().verify(b"attestation report", &sig).is_ok());
//! ```

use crate::edwards::EdwardsPoint;
use crate::scalar25519::Scalar;
use crate::sha2::Sha512;
use crate::CryptoError;

/// Length of an Ed25519 signature in bytes.
pub const SIGNATURE_LEN: usize = 64;
/// Length of a public (verifying) key in bytes.
pub const PUBLIC_KEY_LEN: usize = 32;
/// Length of a private seed in bytes.
pub const SEED_LEN: usize = 32;

/// An Ed25519 signature.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature(pub [u8; SIGNATURE_LEN]);

impl core::fmt::Debug for Signature {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Signature({}…)", crate::to_hex(&self.0[..8]))
    }
}

impl Signature {
    /// Parses a signature from raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] if `bytes` is not 64 bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let arr: [u8; SIGNATURE_LEN] = bytes.try_into().map_err(|_| CryptoError::InvalidLength)?;
        Ok(Signature(arr))
    }

    /// Raw byte representation.
    #[must_use]
    pub fn to_bytes(self) -> [u8; SIGNATURE_LEN] {
        self.0
    }
}

/// A public key that can verify signatures.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct VerifyingKey(pub [u8; PUBLIC_KEY_LEN]);

impl core::fmt::Debug for VerifyingKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "VerifyingKey({})", crate::to_hex(&self.0))
    }
}

impl VerifyingKey {
    /// Verifies `signature` over `message`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::BadSignature`] if verification fails, or
    /// [`CryptoError::InvalidPoint`] if the key or the signature's `R`
    /// component is not a valid curve point.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), CryptoError> {
        let a = EdwardsPoint::decompress(&self.0).ok_or(CryptoError::InvalidPoint)?;
        let r_bytes: [u8; 32] = signature.0[..32].try_into().expect("32-byte R");
        let s_bytes: [u8; 32] = signature.0[32..].try_into().expect("32-byte S");
        if !Scalar::is_canonical(&s_bytes) {
            return Err(CryptoError::BadSignature);
        }
        let r = EdwardsPoint::decompress(&r_bytes).ok_or(CryptoError::InvalidPoint)?;
        let mut h = Sha512::new();
        h.update(&r_bytes);
        h.update(&self.0);
        h.update(message);
        let k = Scalar::from_bytes_wide(&h.finalize());
        // Check S·B == R + k·A.
        let lhs = EdwardsPoint::basepoint().mul_bits(&s_bytes);
        let rhs = r.add(&a.mul_bits(&k.to_bytes()));
        if lhs == rhs {
            Ok(())
        } else {
            Err(CryptoError::BadSignature)
        }
    }
}

/// A private signing key.
///
/// Holds the RFC 8032 expanded secret: the clamped scalar `a` and the
/// prefix used to derive per-signature nonces deterministically.
#[derive(Clone)]
pub struct SigningKey {
    scalar: [u8; 32],
    prefix: [u8; 32],
    public: VerifyingKey,
}

impl core::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print secret material.
        f.debug_struct("SigningKey")
            .field("public", &self.public)
            .finish_non_exhaustive()
    }
}

impl SigningKey {
    /// Derives a signing key from a 32-byte seed (RFC 8032 key generation).
    #[must_use]
    pub fn from_seed(seed: &[u8; SEED_LEN]) -> Self {
        let digest = Sha512::digest(seed);
        let mut scalar: [u8; 32] = digest[..32].try_into().expect("lower half");
        scalar[0] &= 248;
        scalar[31] &= 127;
        scalar[31] |= 64;
        let prefix: [u8; 32] = digest[32..].try_into().expect("upper half");
        let public_point = EdwardsPoint::basepoint().mul_bits(&scalar);
        SigningKey {
            scalar,
            prefix,
            public: VerifyingKey(public_point.compress()),
        }
    }

    /// The corresponding public key.
    #[must_use]
    pub fn verifying_key(&self) -> VerifyingKey {
        self.public
    }

    /// Signs `message` deterministically.
    #[must_use]
    pub fn sign(&self, message: &[u8]) -> Signature {
        let mut h = Sha512::new();
        h.update(&self.prefix);
        h.update(message);
        let r = Scalar::from_bytes_wide(&h.finalize());
        let r_point = EdwardsPoint::basepoint().mul_bits(&r.to_bytes());
        let r_bytes = r_point.compress();

        let mut h = Sha512::new();
        h.update(&r_bytes);
        h.update(&self.public.0);
        h.update(message);
        let k = Scalar::from_bytes_wide(&h.finalize());
        let a = Scalar::from_bytes(&self.scalar);
        let s = k.mul_add(&a, &r);

        let mut sig = [0u8; SIGNATURE_LEN];
        sig[..32].copy_from_slice(&r_bytes);
        sig[32..].copy_from_slice(&s.to_bytes());
        Signature(sig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_hex, to_hex};

    #[test]
    fn rfc8032_test_1_empty_message() {
        let seed: [u8; 32] =
            from_hex("9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60")
                .unwrap()
                .try_into()
                .unwrap();
        let key = SigningKey::from_seed(&seed);
        assert_eq!(
            to_hex(&key.verifying_key().0),
            "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a"
        );
        let sig = key.sign(b"");
        assert_eq!(
            to_hex(&sig.0),
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155\
             5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"
        );
        assert!(key.verifying_key().verify(b"", &sig).is_ok());
    }

    #[test]
    fn rfc8032_test_2_one_byte() {
        let seed: [u8; 32] =
            from_hex("4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb")
                .unwrap()
                .try_into()
                .unwrap();
        let key = SigningKey::from_seed(&seed);
        assert_eq!(
            to_hex(&key.verifying_key().0),
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c"
        );
        let sig = key.sign(&[0x72]);
        assert_eq!(
            to_hex(&sig.0),
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da\
             085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"
        );
        assert!(key.verifying_key().verify(&[0x72], &sig).is_ok());
    }

    #[test]
    fn rfc8032_test_3_two_bytes() {
        let seed: [u8; 32] =
            from_hex("c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7")
                .unwrap()
                .try_into()
                .unwrap();
        let key = SigningKey::from_seed(&seed);
        let msg = from_hex("af82").unwrap();
        let sig = key.sign(&msg);
        assert_eq!(
            to_hex(&sig.0),
            "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac\
             18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"
        );
        assert!(key.verifying_key().verify(&msg, &sig).is_ok());
    }

    #[test]
    fn rejects_wrong_message() {
        let key = SigningKey::from_seed(&[42u8; 32]);
        let sig = key.sign(b"correct");
        assert_eq!(
            key.verifying_key().verify(b"wrong", &sig),
            Err(CryptoError::BadSignature)
        );
    }

    #[test]
    fn rejects_tampered_signature() {
        let key = SigningKey::from_seed(&[42u8; 32]);
        let mut sig = key.sign(b"message");
        sig.0[40] ^= 1;
        assert!(key.verifying_key().verify(b"message", &sig).is_err());
    }

    #[test]
    fn rejects_wrong_key() {
        let key1 = SigningKey::from_seed(&[1u8; 32]);
        let key2 = SigningKey::from_seed(&[2u8; 32]);
        let sig = key1.sign(b"message");
        assert!(key2.verifying_key().verify(b"message", &sig).is_err());
    }

    #[test]
    fn rejects_non_canonical_s() {
        let key = SigningKey::from_seed(&[3u8; 32]);
        let mut sig = key.sign(b"m");
        // Force S >= l by setting high bits.
        sig.0[63] |= 0xf0;
        assert!(key.verifying_key().verify(b"m", &sig).is_err());
    }

    #[test]
    fn signature_parsing() {
        let key = SigningKey::from_seed(&[9u8; 32]);
        let sig = key.sign(b"x");
        let parsed = Signature::from_bytes(&sig.to_bytes()).unwrap();
        assert_eq!(parsed, sig);
        assert_eq!(
            Signature::from_bytes(&[0u8; 10]),
            Err(CryptoError::InvalidLength)
        );
    }

    #[test]
    fn debug_does_not_leak_secret() {
        let key = SigningKey::from_seed(&[0xaau8; 32]);
        let dbg = format!("{key:?}");
        assert!(dbg.contains("VerifyingKey"));
        assert!(!dbg.contains(&to_hex(&key.scalar)));
    }
}
