//! The edwards25519 group: −x² + y² = 1 + d·x²y² over GF(2^255 − 19).
//!
//! Provides the point arithmetic behind [`crate::ed25519`]. Points use
//! extended homogeneous coordinates (X : Y : Z : T) with x = X/Z,
//! y = Y/Z, xy = T/Z, and the complete unified addition law, so the same
//! formula handles doubling — favouring auditability over speed, which is
//! appropriate for protocol-rate (not data-rate) operations.

use std::sync::OnceLock;

use crate::field25519::{sqrt_m1, FieldElement};

/// A point on edwards25519.
#[derive(Clone, Copy, Debug)]
pub struct EdwardsPoint {
    x: FieldElement,
    y: FieldElement,
    z: FieldElement,
    t: FieldElement,
}

fn d() -> &'static FieldElement {
    static D: OnceLock<FieldElement> = OnceLock::new();
    D.get_or_init(|| {
        // d = -121665/121666 mod p
        let num = FieldElement::from_u64(121_665).neg();
        let den = FieldElement::from_u64(121_666);
        num.mul(&den.invert())
    })
}

fn d2() -> &'static FieldElement {
    static D2: OnceLock<FieldElement> = OnceLock::new();
    D2.get_or_init(|| d().add(d()))
}

impl PartialEq for EdwardsPoint {
    fn eq(&self, other: &Self) -> bool {
        // (X1/Z1 == X2/Z2) && (Y1/Z1 == Y2/Z2), cross-multiplied.
        let lx = self.x.mul(&other.z);
        let rx = other.x.mul(&self.z);
        let ly = self.y.mul(&other.z);
        let ry = other.y.mul(&self.z);
        lx == rx && ly == ry
    }
}

impl Eq for EdwardsPoint {}

impl Default for EdwardsPoint {
    fn default() -> Self {
        Self::identity()
    }
}

impl EdwardsPoint {
    /// The neutral element (0, 1).
    #[must_use]
    pub fn identity() -> Self {
        EdwardsPoint {
            x: FieldElement::ZERO,
            y: FieldElement::ONE,
            z: FieldElement::ONE,
            t: FieldElement::ZERO,
        }
    }

    /// The standard base point B (y = 4/5, x positive).
    #[must_use]
    pub fn basepoint() -> Self {
        static B: OnceLock<EdwardsPoint> = OnceLock::new();
        *B.get_or_init(|| {
            let mut compressed = [0x66u8; 32];
            compressed[0] = 0x58;
            EdwardsPoint::decompress(&compressed).expect("standard basepoint decodes")
        })
    }

    /// Unified point addition (complete on this curve).
    #[must_use]
    pub fn add(&self, other: &EdwardsPoint) -> EdwardsPoint {
        let a = self.y.sub(&self.x).mul(&other.y.sub(&other.x));
        let b = self.y.add(&self.x).mul(&other.y.add(&other.x));
        let c = self.t.mul(d2()).mul(&other.t);
        let dd = self.z.add(&self.z).mul(&other.z);
        let e = b.sub(&a);
        let f = dd.sub(&c);
        let g = dd.add(&c);
        let h = b.add(&a);
        EdwardsPoint {
            x: e.mul(&f),
            y: g.mul(&h),
            t: e.mul(&h),
            z: f.mul(&g),
        }
    }

    /// Point doubling (via the unified law).
    #[must_use]
    pub fn double(&self) -> EdwardsPoint {
        self.add(self)
    }

    /// Point negation.
    #[must_use]
    pub fn neg(&self) -> EdwardsPoint {
        EdwardsPoint {
            x: self.x.neg(),
            y: self.y,
            z: self.z,
            t: self.t.neg(),
        }
    }

    /// Scalar multiplication by a 256-bit little-endian integer.
    ///
    /// The scalar is *not* reduced modulo the group order: Ed25519 key
    /// clamping produces integers in [2^254, 2^255) that are multiplied
    /// directly.
    #[must_use]
    pub fn mul_bits(&self, scalar_le: &[u8; 32]) -> EdwardsPoint {
        let mut acc = EdwardsPoint::identity();
        for byte in scalar_le.iter().rev() {
            for bit in (0..8).rev() {
                acc = acc.double();
                if (byte >> bit) & 1 == 1 {
                    acc = acc.add(self);
                }
            }
        }
        acc
    }

    /// Compresses to the standard 32-byte encoding: y with the sign of x
    /// in the top bit.
    #[must_use]
    pub fn compress(&self) -> [u8; 32] {
        let zinv = self.z.invert();
        let x = self.x.mul(&zinv);
        let y = self.y.mul(&zinv);
        let mut out = y.to_bytes();
        if x.is_negative() {
            out[31] |= 0x80;
        }
        out
    }

    /// Decompresses a 32-byte encoding; `None` if it is not a valid point.
    #[must_use]
    pub fn decompress(bytes: &[u8; 32]) -> Option<EdwardsPoint> {
        let sign = bytes[31] >> 7;
        let mut y_bytes = *bytes;
        y_bytes[31] &= 0x7f;
        let y = FieldElement::from_bytes(&y_bytes);
        // Reject non-canonical y encodings.
        if y.to_bytes() != y_bytes {
            return None;
        }
        // x² = (y² − 1) / (d·y² + 1)
        let yy = y.square();
        let u = yy.sub(&FieldElement::ONE);
        let v = d().mul(&yy).add(&FieldElement::ONE);
        let x = recover_x(&u, &v)?;
        let mut x = x;
        if x.is_zero() && sign == 1 {
            // -0 is not a valid encoding.
            return None;
        }
        if (x.is_negative() as u8) != sign {
            x = x.neg();
        }
        Some(EdwardsPoint {
            t: x.mul(&y),
            x,
            y,
            z: FieldElement::ONE,
        })
    }

    /// True if this is the neutral element.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        *self == EdwardsPoint::identity()
    }

    /// True if the point has small order (order dividing 8). Used to
    /// reject degenerate public keys in X25519-style checks.
    #[must_use]
    pub fn is_small_order(&self) -> bool {
        self.double().double().double().is_identity()
    }
}

/// Computes x with x²·v = u, if it exists.
fn recover_x(u: &FieldElement, v: &FieldElement) -> Option<FieldElement> {
    // candidate = u·v³·(u·v⁷)^((p−5)/8)
    let v3 = v.square().mul(v);
    let v7 = v3.square().mul(v);
    let candidate = u.mul(&v3).mul(&u.mul(&v7).pow_p58());
    let check = v.mul(&candidate.square());
    if check == *u {
        Some(candidate)
    } else if check == u.neg() {
        Some(candidate.mul(&sqrt_m1()))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basepoint_is_on_curve() {
        let b = EdwardsPoint::basepoint();
        // Check −x² + y² = 1 + d·x²y² in affine coordinates.
        let zinv = b.z.invert();
        let x = b.x.mul(&zinv);
        let y = b.y.mul(&zinv);
        let xx = x.square();
        let yy = y.square();
        let lhs = yy.sub(&xx);
        let rhs = FieldElement::ONE.add(&d().mul(&xx).mul(&yy));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn identity_laws() {
        let b = EdwardsPoint::basepoint();
        let id = EdwardsPoint::identity();
        assert_eq!(b.add(&id), b);
        assert_eq!(id.add(&b), b);
        assert_eq!(b.add(&b.neg()), id);
        assert!(id.is_identity());
    }

    #[test]
    fn double_matches_add() {
        let b = EdwardsPoint::basepoint();
        assert_eq!(b.double(), b.add(&b));
    }

    #[test]
    fn scalar_mul_small_values() {
        let b = EdwardsPoint::basepoint();
        let mut two = [0u8; 32];
        two[0] = 2;
        assert_eq!(b.mul_bits(&two), b.double());
        let mut five = [0u8; 32];
        five[0] = 5;
        let by_add = b.double().double().add(&b);
        assert_eq!(b.mul_bits(&five), by_add);
    }

    #[test]
    fn compress_decompress_round_trip() {
        let b = EdwardsPoint::basepoint();
        let mut p = b;
        for _ in 0..16 {
            let compressed = p.compress();
            let q = EdwardsPoint::decompress(&compressed).expect("valid point");
            assert_eq!(p, q);
            p = p.add(&b);
        }
    }

    #[test]
    fn basepoint_has_expected_encoding() {
        let mut expected = [0x66u8; 32];
        expected[0] = 0x58;
        assert_eq!(EdwardsPoint::basepoint().compress(), expected);
    }

    #[test]
    fn scalar_mul_by_group_order_is_identity() {
        // ℓ · B = identity.
        let l_bytes: [u8; 32] = {
            let mut b = [0u8; 32];
            let limbs: [u64; 4] = [
                0x5812_631a_5cf5_d3ed,
                0x14de_f9de_a2f7_9cd6,
                0,
                0x1000_0000_0000_0000,
            ];
            for (i, limb) in limbs.iter().enumerate() {
                b[i * 8..(i + 1) * 8].copy_from_slice(&limb.to_le_bytes());
            }
            b
        };
        assert!(EdwardsPoint::basepoint().mul_bits(&l_bytes).is_identity());
    }

    #[test]
    fn rejects_invalid_encodings() {
        // Use a guaranteed-non-canonical encoding: y = p (encodes zero
        // non-canonically).
        let mut p_bytes = [0xffu8; 32];
        p_bytes[0] = 0xed;
        p_bytes[31] = 0x7f;
        assert!(EdwardsPoint::decompress(&p_bytes).is_none());
    }

    #[test]
    fn small_order_detection() {
        assert!(EdwardsPoint::identity().is_small_order());
        assert!(!EdwardsPoint::basepoint().is_small_order());
    }
}
