//! Arithmetic modulo the Curve25519 group order
//! ℓ = 2^252 + 27742317777372353535851937790883648493.
//!
//! Used by [`crate::ed25519`] for signature scalars. Throughput is not a
//! concern here (scalars are only touched during boot/attestation), so a
//! simple shift-and-subtract reduction keeps the code auditable.

/// ℓ as four little-endian 64-bit limbs.
const L: [u64; 4] = [
    0x5812_631a_5cf5_d3ed,
    0x14de_f9de_a2f7_9cd6,
    0x0000_0000_0000_0000,
    0x1000_0000_0000_0000,
];

/// A scalar in the range [0, ℓ).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scalar(pub(crate) [u64; 4]);

impl core::fmt::Debug for Scalar {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Scalar({})", crate::to_hex(&self.to_bytes()))
    }
}

impl Default for Scalar {
    fn default() -> Self {
        Scalar::ZERO
    }
}

fn geq(a: &[u64; 4], b: &[u64; 4]) -> bool {
    for i in (0..4).rev() {
        if a[i] > b[i] {
            return true;
        }
        if a[i] < b[i] {
            return false;
        }
    }
    true
}

fn sub(a: &mut [u64; 4], b: &[u64; 4]) {
    let mut borrow = 0u64;
    for i in 0..4 {
        let (v, b1) = a[i].overflowing_sub(b[i]);
        let (v, b2) = v.overflowing_sub(borrow);
        a[i] = v;
        borrow = (b1 | b2) as u64;
    }
    debug_assert_eq!(borrow, 0, "subtraction must not underflow");
}

impl Scalar {
    /// The scalar 0.
    pub const ZERO: Scalar = Scalar([0; 4]);
    /// The scalar 1.
    pub const ONE: Scalar = Scalar([1, 0, 0, 0]);

    /// Reduces a 512-bit little-endian value modulo ℓ.
    ///
    /// This is the operation Ed25519 applies to SHA-512 digests.
    #[must_use]
    pub fn from_bytes_wide(bytes: &[u8; 64]) -> Scalar {
        let mut limbs = [0u64; 8];
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            limbs[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        Scalar(reduce_wide(limbs))
    }

    /// Interprets a 32-byte little-endian value, reducing mod ℓ.
    #[must_use]
    pub fn from_bytes(bytes: &[u8; 32]) -> Scalar {
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(bytes);
        Scalar::from_bytes_wide(&wide)
    }

    /// Canonical little-endian 32-byte encoding.
    #[must_use]
    pub fn to_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, limb) in self.0.iter().enumerate() {
            out[i * 8..(i + 1) * 8].copy_from_slice(&limb.to_le_bytes());
        }
        out
    }

    /// Modular addition.
    #[must_use]
    pub fn add(&self, rhs: &Scalar) -> Scalar {
        let mut limbs = [0u64; 4];
        let mut carry = 0u64;
        for (out, (a, b)) in limbs.iter_mut().zip(self.0.iter().zip(rhs.0.iter())) {
            let (v, c1) = a.overflowing_add(*b);
            let (v, c2) = v.overflowing_add(carry);
            *out = v;
            carry = (c1 | c2) as u64;
        }
        // Inputs are < ℓ < 2^253, so no carry out of 256 bits is possible.
        debug_assert_eq!(carry, 0);
        if geq(&limbs, &L) {
            sub(&mut limbs, &L);
        }
        Scalar(limbs)
    }

    /// Modular multiplication.
    #[must_use]
    pub fn mul(&self, rhs: &Scalar) -> Scalar {
        let mut wide = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u128;
            for j in 0..4 {
                let acc = wide[i + j] as u128 + (self.0[i] as u128) * (rhs.0[j] as u128) + carry;
                wide[i + j] = acc as u64;
                carry = acc >> 64;
            }
            wide[i + 4] = carry as u64;
        }
        Scalar(reduce_wide(wide))
    }

    /// Computes `self * a + b` mod ℓ — the Ed25519 `S = r + k·a` step.
    #[must_use]
    pub fn mul_add(&self, a: &Scalar, b: &Scalar) -> Scalar {
        self.mul(a).add(b)
    }

    /// True if the scalar is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 4]
    }

    /// True if `bytes` is the canonical encoding of a scalar < ℓ.
    ///
    /// Ed25519 verification rejects non-canonical `S` values to prevent
    /// malleability.
    #[must_use]
    pub fn is_canonical(bytes: &[u8; 32]) -> bool {
        let mut limbs = [0u64; 4];
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            limbs[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        !geq(&limbs, &L)
    }
}

/// Reduces a 512-bit value (8 little-endian limbs) modulo ℓ by binary
/// shift-and-subtract over a 256-bit accumulator.
fn reduce_wide(limbs: [u64; 8]) -> [u64; 4] {
    let mut r = [0u64; 4];
    for bit in (0..512).rev() {
        // r = 2r (+ bit). r stays < ℓ < 2^253 so the shift cannot overflow.
        let mut carry = 0u64;
        for limb in r.iter_mut() {
            let new_carry = *limb >> 63;
            *limb = (*limb << 1) | carry;
            carry = new_carry;
        }
        debug_assert_eq!(carry, 0);
        let word = limbs[bit / 64];
        if (word >> (bit % 64)) & 1 == 1 {
            r[0] |= 1;
        }
        if geq(&r, &L) {
            sub(&mut r, &L);
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(Scalar::ZERO.is_zero());
        assert_eq!(Scalar::ONE.mul(&Scalar::ONE), Scalar::ONE);
        assert_eq!(Scalar::ONE.add(&Scalar::ZERO), Scalar::ONE);
    }

    #[test]
    fn l_reduces_to_zero() {
        let mut l_bytes = [0u8; 32];
        for (i, limb) in L.iter().enumerate() {
            l_bytes[i * 8..(i + 1) * 8].copy_from_slice(&limb.to_le_bytes());
        }
        assert!(Scalar::from_bytes(&l_bytes).is_zero());
        assert!(!Scalar::is_canonical(&l_bytes));
    }

    #[test]
    fn l_minus_one_is_canonical() {
        let mut limbs = L;
        sub(&mut limbs, &[1, 0, 0, 0]);
        let s = Scalar(limbs);
        assert!(Scalar::is_canonical(&s.to_bytes()));
        // (ℓ-1) + 1 ≡ 0 mod ℓ
        assert!(s.add(&Scalar::ONE).is_zero());
        // (ℓ-1)² ≡ 1 mod ℓ
        assert_eq!(s.mul(&s), Scalar::ONE);
    }

    #[test]
    fn small_arithmetic() {
        let six = Scalar([6, 0, 0, 0]);
        let seven = Scalar([7, 0, 0, 0]);
        assert_eq!(six.mul(&seven), Scalar([42, 0, 0, 0]));
        assert_eq!(six.mul_add(&seven, &Scalar::ONE), Scalar([43, 0, 0, 0]));
    }

    #[test]
    fn wide_reduction_matches_mod() {
        // 2^256 mod ℓ is a known constant:
        // 2^256 ≡ 0x0ffffffffffffffffffffffffffffffec6ef5bf4737dcf70d6ec31748d98951d...
        // rather than hardcode, verify via algebra: from_bytes_wide(2^256)
        // equals from_bytes(1) shifted via repeated doubling 256 times.
        let mut wide = [0u8; 64];
        wide[32] = 1; // 2^256
        let direct = Scalar::from_bytes_wide(&wide);
        let mut doubled = Scalar::ONE;
        for _ in 0..256 {
            doubled = doubled.add(&doubled);
        }
        assert_eq!(direct, doubled);
    }

    #[test]
    fn round_trip_encoding() {
        let s = Scalar([0x1234, 0x5678, 0x9abc, 0x0def]);
        assert_eq!(Scalar::from_bytes(&s.to_bytes()), s);
    }
}
