//! AES-GCM authenticated encryption (NIST SP 800-38D).
//!
//! A complete GCM implementation built from this crate's [`Aes`] block
//! cipher and [`ghash`](crate::ghash) universal hash, validated against
//! the NIST/McGrew–Viega test vectors. The Shield consumes GCM through
//! [`MacAlgorithm::AesGcm`](crate::authenc::MacAlgorithm), which reuses
//! the GHASH engine for tag computation over the Shield's AES-CTR
//! ciphertexts; this module is the spec-exact standalone mode (used by
//! the attestation transport and available to accelerator logic).
//!
//! # Example
//!
//! ```
//! use shef_crypto::gcm::AesGcm;
//!
//! let gcm = AesGcm::new(&[0x42u8; 16]);
//! let (ct, tag) = gcm.seal(&[0u8; 12], b"header", b"payload");
//! let pt = gcm.open(&[0u8; 12], b"header", &ct, &tag).unwrap();
//! assert_eq!(pt, b"payload");
//! ```

use crate::aes::Aes;
use crate::ghash::{Ghash, GHASH_LEN};
use crate::{ct, CryptoError};

/// GCM nonce length this implementation supports (the recommended
/// 96-bit IV; other lengths take the GHASH-derived J0 path, which the
/// Shield never uses).
pub const GCM_IV_LEN: usize = 12;
/// GCM tag length (full 128-bit tags).
pub const GCM_TAG_LEN: usize = 16;

/// An AES-GCM key: the block cipher plus its derived hash subkey.
pub struct AesGcm {
    aes: Aes,
    h: [u8; GHASH_LEN],
}

impl core::fmt::Debug for AesGcm {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("AesGcm").finish_non_exhaustive()
    }
}

impl AesGcm {
    /// Creates a GCM instance for a 16- or 32-byte AES key.
    ///
    /// # Panics
    ///
    /// Panics if `key` is not 16 or 32 bytes (see [`Aes::new`]).
    #[must_use]
    pub fn new(key: &[u8]) -> Self {
        let aes = Aes::new(key);
        let h = aes.encrypt_block(&[0u8; 16]);
        AesGcm { aes, h }
    }

    /// The pre-counter block J0 for a 96-bit IV: `IV ‖ 0³¹ ‖ 1`.
    fn j0(iv: &[u8; GCM_IV_LEN]) -> [u8; 16] {
        let mut block = [0u8; 16];
        block[..GCM_IV_LEN].copy_from_slice(iv);
        block[15] = 1;
        block
    }

    /// 32-bit wrapping increment of the counter word (inc32).
    fn inc32(block: &mut [u8; 16]) {
        let ctr = u32::from_be_bytes(block[12..16].try_into().expect("4 bytes"));
        block[12..16].copy_from_slice(&ctr.wrapping_add(1).to_be_bytes());
    }

    /// GCTR keystream application starting from `inc32(J0)`.
    fn gctr(&self, iv: &[u8; GCM_IV_LEN], data: &mut [u8]) {
        let mut counter = Self::j0(iv);
        for chunk in data.chunks_mut(16) {
            Self::inc32(&mut counter);
            let keystream = self.aes.encrypt_block(&counter);
            for (b, k) in chunk.iter_mut().zip(keystream.iter()) {
                *b ^= k;
            }
        }
    }

    fn tag(&self, iv: &[u8; GCM_IV_LEN], aad: &[u8], ciphertext: &[u8]) -> [u8; GCM_TAG_LEN] {
        let mut hash = Ghash::new(&self.h);
        hash.update_padded(aad);
        hash.update_padded(ciphertext);
        hash.update_lengths(aad.len(), ciphertext.len());
        let s = hash.finalize();
        let mask = self.aes.encrypt_block(&Self::j0(iv));
        let mut tag = [0u8; GCM_TAG_LEN];
        for i in 0..GCM_TAG_LEN {
            tag[i] = s[i] ^ mask[i];
        }
        tag
    }

    /// Encrypts `plaintext` and authenticates it together with `aad`.
    ///
    /// Reusing an IV under the same key voids all GCM guarantees, as in
    /// hardware; callers derive IVs from counters.
    #[must_use]
    pub fn seal(
        &self,
        iv: &[u8; GCM_IV_LEN],
        aad: &[u8],
        plaintext: &[u8],
    ) -> (Vec<u8>, [u8; GCM_TAG_LEN]) {
        let mut ct = plaintext.to_vec();
        self.gctr(iv, &mut ct);
        let tag = self.tag(iv, aad, &ct);
        (ct, tag)
    }

    /// Verifies the tag and decrypts. No plaintext is released on
    /// failure.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::TagMismatch`] if authentication fails.
    pub fn open(
        &self,
        iv: &[u8; GCM_IV_LEN],
        aad: &[u8],
        ciphertext: &[u8],
        tag: &[u8; GCM_TAG_LEN],
    ) -> Result<Vec<u8>, CryptoError> {
        let expected = self.tag(iv, aad, ciphertext);
        if !ct::eq(&expected, tag) {
            return Err(CryptoError::TagMismatch);
        }
        let mut pt = ciphertext.to_vec();
        self.gctr(iv, &mut pt);
        Ok(pt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_hex, to_hex};

    fn iv12(s: &str) -> [u8; 12] {
        from_hex(s)
            .expect("valid hex")
            .try_into()
            .expect("12-byte hex")
    }

    /// McGrew–Viega GCM spec test cases 1–4 (AES-128) and 13–14
    /// (AES-256), as adopted by NIST for algorithm validation.
    #[test]
    fn nist_case_1_empty() {
        let gcm = AesGcm::new(&[0u8; 16]);
        let (ct, tag) = gcm.seal(&[0u8; 12], b"", b"");
        assert!(ct.is_empty());
        assert_eq!(to_hex(&tag), "58e2fccefa7e3061367f1d57a4e7455a");
    }

    #[test]
    fn nist_case_2_single_zero_block() {
        let gcm = AesGcm::new(&[0u8; 16]);
        let (ct, tag) = gcm.seal(&[0u8; 12], b"", &[0u8; 16]);
        assert_eq!(to_hex(&ct), "0388dace60b6a392f328c2b971b2fe78");
        assert_eq!(to_hex(&tag), "ab6e47d42cec13bdf53a67b21257bddf");
    }

    #[test]
    fn nist_case_3_four_blocks_no_aad() {
        let key = from_hex("feffe9928665731c6d6a8f9467308308").expect("valid hex");
        let gcm = AesGcm::new(&key);
        let pt = from_hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
        )
        .expect("valid hex");
        let (ct, tag) = gcm.seal(&iv12("cafebabefacedbaddecaf888"), b"", &pt);
        assert_eq!(
            to_hex(&ct),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
             21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985"
        );
        assert_eq!(to_hex(&tag), "4d5c2af327cd64a62cf35abd2ba6fab4");
    }

    #[test]
    fn nist_case_4_with_aad() {
        let key = from_hex("feffe9928665731c6d6a8f9467308308").expect("valid hex");
        let gcm = AesGcm::new(&key);
        let pt = from_hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
        )
        .expect("valid hex");
        let aad = from_hex("feedfacedeadbeeffeedfacedeadbeefabaddad2").expect("valid hex");
        let (ct, tag) = gcm.seal(&iv12("cafebabefacedbaddecaf888"), &aad, &pt);
        assert_eq!(
            to_hex(&ct),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
             21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091"
        );
        assert_eq!(to_hex(&tag), "5bc94fbc3221a5db94fae95ae7121a47");
    }

    #[test]
    fn nist_case_13_aes256_empty() {
        let gcm = AesGcm::new(&[0u8; 32]);
        let (_, tag) = gcm.seal(&[0u8; 12], b"", b"");
        assert_eq!(to_hex(&tag), "530f8afbc74536b9a963b4f1c4cb738b");
    }

    #[test]
    fn nist_case_14_aes256_zero_block() {
        let gcm = AesGcm::new(&[0u8; 32]);
        let (ct, tag) = gcm.seal(&[0u8; 12], b"", &[0u8; 16]);
        assert_eq!(to_hex(&ct), "cea7403d4d606b6e074ec5d3baf39d18");
        assert_eq!(to_hex(&tag), "d0d1c8a799996bf0265b98b5d48ab919");
    }

    #[test]
    fn round_trip_with_aad() {
        let gcm = AesGcm::new(&[7u8; 16]);
        let (ct, tag) = gcm.seal(&[1u8; 12], b"register-0x10", b"command payload");
        assert_eq!(
            gcm.open(&[1u8; 12], b"register-0x10", &ct, &tag).unwrap(),
            b"command payload"
        );
    }

    #[test]
    fn tamper_detected() {
        let gcm = AesGcm::new(&[7u8; 16]);
        let (mut ct, tag) = gcm.seal(&[1u8; 12], b"ad", b"payload");
        ct[0] ^= 1;
        assert_eq!(
            gcm.open(&[1u8; 12], b"ad", &ct, &tag),
            Err(CryptoError::TagMismatch)
        );
    }

    #[test]
    fn wrong_aad_detected() {
        let gcm = AesGcm::new(&[7u8; 16]);
        let (ct, tag) = gcm.seal(&[1u8; 12], b"addr-0", b"payload");
        assert!(gcm.open(&[1u8; 12], b"addr-1", &ct, &tag).is_err());
    }

    #[test]
    fn wrong_iv_detected() {
        let gcm = AesGcm::new(&[7u8; 16]);
        let (ct, tag) = gcm.seal(&[1u8; 12], b"ad", b"payload");
        assert!(gcm.open(&[2u8; 12], b"ad", &ct, &tag).is_err());
    }

    #[test]
    fn distinct_ivs_distinct_ciphertexts() {
        let gcm = AesGcm::new(&[7u8; 16]);
        let (a, _) = gcm.seal(&[1u8; 12], b"", b"same plaintext");
        let (b, _) = gcm.seal(&[2u8; 12], b"", b"same plaintext");
        assert_ne!(a, b);
    }
}
