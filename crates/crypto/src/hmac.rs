//! HMAC (RFC 2104) over SHA-256 and SHA-512.
//!
//! HMAC-SHA256 is the Shield's default authentication engine (§5.1:
//! "We use AES-CTR + HMAC modules as default"). Because SHA-256 is a
//! Merkle–Damgård construction, the compressions of a single chunk are
//! strictly sequential — which is exactly why the paper's SDP and
//! DNNWeaver case studies become HMAC-bound and switch to PMAC (§6.2.3,
//! §6.2.4). The sequential constraint lives in the `shef-core` timing
//! model; this module provides the functional MAC.

use crate::ct;
use crate::sha2::{Sha256, Sha512, SHA256_BLOCK_LEN, SHA512_BLOCK_LEN};

/// Length in bytes of a full HMAC-SHA256 tag.
pub const HMAC_SHA256_TAG_LEN: usize = 32;

/// Computes HMAC-SHA256 over `data`.
///
/// # Example
///
/// ```
/// let tag = shef_crypto::hmac::hmac_sha256(b"key", b"message");
/// assert_eq!(tag.len(), 32);
/// ```
#[must_use]
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    hmac_sha256_multi(key, &[data])
}

/// Computes HMAC-SHA256 over the concatenation of `parts`.
///
/// The Shield MACs `(address, ciphertext, counter)` tuples without
/// materializing the concatenation; this mirrors that datapath.
#[must_use]
pub fn hmac_sha256_multi(key: &[u8], parts: &[&[u8]]) -> [u8; 32] {
    let mut key_block = [0u8; SHA256_BLOCK_LEN];
    if key.len() > SHA256_BLOCK_LEN {
        key_block[..32].copy_from_slice(&Sha256::digest(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    for part in parts {
        inner.update(part);
    }
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Computes HMAC-SHA512 over `data` (used by the deterministic DRBG).
#[must_use]
pub fn hmac_sha512(key: &[u8], data: &[u8]) -> [u8; 64] {
    let mut key_block = [0u8; SHA512_BLOCK_LEN];
    if key.len() > SHA512_BLOCK_LEN {
        key_block[..64].copy_from_slice(&Sha512::digest(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha512::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(data);
    let inner_digest = inner.finalize();
    let mut outer = Sha512::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Verifies an HMAC-SHA256 tag in constant time.
///
/// `tag` may be a truncated prefix of the full 32-byte tag (the Shield
/// stores 16-byte tags in DRAM, §5.2.2); at least 16 bytes are required.
#[must_use]
pub fn verify_hmac_sha256(key: &[u8], data: &[u8], tag: &[u8]) -> bool {
    if tag.len() < 16 || tag.len() > 32 {
        return false;
    }
    let computed = hmac_sha256(key, data);
    ct::eq(&computed[..tag.len()], tag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_hex, to_hex};

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            to_hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            to_hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            to_hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case_2_sha512() {
        let tag = hmac_sha512(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&tag),
            "164b7a7bfcf819e2e395fbe73b56e0a387bd64222e831fd610270cd7ea250554\
             9758bf75c05a994a6d034f65f8f0e6fdcaeab1a34d4a6b4b636e070a38bce737"
        );
    }

    #[test]
    fn multi_part_equals_concat() {
        let key = b"k";
        let concat = hmac_sha256(key, b"abcdef");
        let multi = hmac_sha256_multi(key, &[b"ab", b"cd", b"ef"]);
        assert_eq!(concat, multi);
        let multi2 = hmac_sha256_multi(key, &[b"", b"abcdef", b""]);
        assert_eq!(concat, multi2);
    }

    #[test]
    fn verify_accepts_truncated_tags() {
        let key = from_hex("000102030405060708090a0b0c0d0e0f").unwrap();
        let full = hmac_sha256(&key, b"chunk data");
        assert!(verify_hmac_sha256(&key, b"chunk data", &full));
        assert!(verify_hmac_sha256(&key, b"chunk data", &full[..16]));
        assert!(!verify_hmac_sha256(&key, b"chunk data", &full[..15]));
        let mut bad = full;
        bad[0] ^= 1;
        assert!(!verify_hmac_sha256(&key, b"chunk data", &bad));
        assert!(!verify_hmac_sha256(&key, b"other data", &full));
    }
}
