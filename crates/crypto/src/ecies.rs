//! Asymmetric encryption via ECIES (ephemeral X25519 + HKDF + AES-CTR/HMAC).
//!
//! ShEF uses asymmetric encryption in two places (Fig. 3):
//!
//! 1. The Data Owner encrypts each **Data Encryption Key** against the IP
//!    Vendor's public **Shield Encryption Key**, producing the **Load
//!    Key** that is sent through the untrusted host to the Shield
//!    (step 8: `LoadKey = Enc_ShieldEncKey(DataEncKey)`).
//! 2. Secure-channel bootstrap between parties that only know each
//!    other's public keys.
//!
//! # Example
//!
//! ```
//! use shef_crypto::ecies::{EciesKeyPair, encrypt, decrypt};
//!
//! let shield_key = EciesKeyPair::from_seed(b"shield-enc-key");
//! let load_key = encrypt(&shield_key.public_key(), b"data-encryption-key", b"load-key");
//! let opened = decrypt(&shield_key, &load_key, b"load-key").unwrap();
//! assert_eq!(opened, b"data-encryption-key");
//! ```

use crate::authenc::{AuthEncKey, MacAlgorithm, Sealed};
use crate::drbg::HmacDrbg;
use crate::hkdf;
use crate::x25519;
use crate::CryptoError;

/// An X25519 key pair used for ECIES.
#[derive(Clone)]
pub struct EciesKeyPair {
    secret: [u8; 32],
    public: [u8; 32],
}

impl core::fmt::Debug for EciesKeyPair {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EciesKeyPair")
            .field("public", &crate::to_hex(&self.public))
            .finish_non_exhaustive()
    }
}

impl EciesKeyPair {
    /// Deterministically derives a key pair from seed material.
    #[must_use]
    pub fn from_seed(seed: &[u8]) -> Self {
        let mut drbg = HmacDrbg::from_seed(seed);
        Self::generate(&mut drbg)
    }

    /// Generates a key pair from a DRBG.
    #[must_use]
    pub fn generate(rng: &mut HmacDrbg) -> Self {
        let secret = x25519::clamp(rng.generate_array::<32>());
        let public = x25519::public_key(&secret);
        EciesKeyPair { secret, public }
    }

    /// The public half, safe to publish.
    #[must_use]
    pub fn public_key(&self) -> EciesPublicKey {
        EciesPublicKey(self.public)
    }

    /// Raw Diffie–Hellman against an arbitrary peer public key.
    #[must_use]
    pub fn diffie_hellman(&self, peer: &EciesPublicKey) -> [u8; 32] {
        x25519::shared_secret(&self.secret, &peer.0)
    }
}

/// The public half of an [`EciesKeyPair`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EciesPublicKey(pub [u8; 32]);

/// An ECIES ciphertext: ephemeral public key + sealed payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EciesCiphertext {
    /// The sender's ephemeral X25519 public key.
    pub ephemeral_public: [u8; 32],
    /// The authenticated-encrypted payload.
    pub sealed: Sealed,
}

impl EciesCiphertext {
    /// Serializes as `ephemeral_public || sealed`.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.sealed.ciphertext.len() + 28);
        out.extend_from_slice(&self.ephemeral_public);
        out.extend_from_slice(&self.sealed.to_bytes());
        out
    }

    /// Parses the `to_bytes` format.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] on truncated input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        if bytes.len() < 32 {
            return Err(CryptoError::InvalidLength);
        }
        Ok(EciesCiphertext {
            ephemeral_public: bytes[..32].try_into().expect("32 bytes"),
            sealed: Sealed::from_bytes(&bytes[32..])?,
        })
    }
}

fn session_key(shared: &[u8; 32], ephemeral_public: &[u8; 32], recipient: &[u8; 32]) -> AuthEncKey {
    let mut ikm = Vec::with_capacity(96);
    ikm.extend_from_slice(shared);
    ikm.extend_from_slice(ephemeral_public);
    ikm.extend_from_slice(recipient);
    let key = hkdf::derive_key32(b"shef.ecies", &ikm, b"session");
    AuthEncKey::from_bytes(key, MacAlgorithm::HmacSha256)
}

/// Encrypts `plaintext` to `recipient`, binding `associated_data`.
///
/// A fresh ephemeral key is derived deterministically from the plaintext
/// and recipient via an internal DRBG — deterministic for experiment
/// reproducibility while still unique per (message, recipient) pair.
#[must_use]
pub fn encrypt(
    recipient: &EciesPublicKey,
    plaintext: &[u8],
    associated_data: &[u8],
) -> EciesCiphertext {
    let mut seed = Vec::with_capacity(64 + plaintext.len());
    seed.extend_from_slice(b"shef.ecies.eph");
    seed.extend_from_slice(&recipient.0);
    seed.extend_from_slice(plaintext);
    seed.extend_from_slice(associated_data);
    let mut drbg = HmacDrbg::from_seed(&seed);
    encrypt_with_rng(recipient, plaintext, associated_data, &mut drbg)
}

/// Encrypts with a caller-provided DRBG for the ephemeral key.
#[must_use]
pub fn encrypt_with_rng(
    recipient: &EciesPublicKey,
    plaintext: &[u8],
    associated_data: &[u8],
    rng: &mut HmacDrbg,
) -> EciesCiphertext {
    let ephemeral = EciesKeyPair::generate(rng);
    let shared = ephemeral.diffie_hellman(recipient);
    let mut key = session_key(&shared, &ephemeral.public, &recipient.0);
    let sealed = key.seal(plaintext, associated_data);
    EciesCiphertext {
        ephemeral_public: ephemeral.public,
        sealed,
    }
}

/// Decrypts an ECIES ciphertext with the recipient's key pair.
///
/// # Errors
///
/// Returns [`CryptoError::TagMismatch`] if the payload was tampered with
/// or encrypted for a different key.
pub fn decrypt(
    recipient: &EciesKeyPair,
    ciphertext: &EciesCiphertext,
    associated_data: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    let shared = x25519::shared_secret(&recipient.secret, &ciphertext.ephemeral_public);
    let key = session_key(&shared, &ciphertext.ephemeral_public, &recipient.public);
    key.open(&ciphertext.sealed, associated_data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let kp = EciesKeyPair::from_seed(b"recipient");
        let ct = encrypt(&kp.public_key(), b"data encryption key", b"load-key");
        assert_eq!(
            decrypt(&kp, &ct, b"load-key").unwrap(),
            b"data encryption key"
        );
    }

    #[test]
    fn wrong_recipient_fails() {
        let kp1 = EciesKeyPair::from_seed(b"one");
        let kp2 = EciesKeyPair::from_seed(b"two");
        let ct = encrypt(&kp1.public_key(), b"secret", b"");
        assert!(decrypt(&kp2, &ct, b"").is_err());
    }

    #[test]
    fn tampered_payload_fails() {
        let kp = EciesKeyPair::from_seed(b"r");
        let mut ct = encrypt(&kp.public_key(), b"secret", b"");
        ct.sealed.ciphertext[0] ^= 0xff;
        assert!(decrypt(&kp, &ct, b"").is_err());
    }

    #[test]
    fn wrong_associated_data_fails() {
        let kp = EciesKeyPair::from_seed(b"r");
        let ct = encrypt(&kp.public_key(), b"secret", b"context-a");
        assert!(decrypt(&kp, &ct, b"context-b").is_err());
    }

    #[test]
    fn wire_format_round_trip() {
        let kp = EciesKeyPair::from_seed(b"r");
        let ct = encrypt(&kp.public_key(), b"payload", b"ad");
        let parsed = EciesCiphertext::from_bytes(&ct.to_bytes()).unwrap();
        assert_eq!(parsed, ct);
        assert_eq!(decrypt(&kp, &parsed, b"ad").unwrap(), b"payload");
        assert!(EciesCiphertext::from_bytes(&[0u8; 10]).is_err());
    }

    #[test]
    fn distinct_messages_distinct_ephemerals() {
        let kp = EciesKeyPair::from_seed(b"r");
        let a = encrypt(&kp.public_key(), b"message-a", b"");
        let b = encrypt(&kp.public_key(), b"message-b", b"");
        assert_ne!(a.ephemeral_public, b.ephemeral_public);
    }

    #[test]
    fn dh_agreement_via_keypairs() {
        let a = EciesKeyPair::from_seed(b"a");
        let b = EciesKeyPair::from_seed(b"b");
        assert_eq!(
            a.diffie_hellman(&b.public_key()),
            b.diffie_hellman(&a.public_key())
        );
    }
}
