//! HKDF-SHA256 (RFC 5869): extract-and-expand key derivation.
//!
//! ShEF derives symmetric working keys from Diffie–Hellman shared secrets
//! (the attestation `SessionKey`) and splits master keys into
//! encryption/MAC subkeys for the Shield's engine sets.

use crate::hmac::hmac_sha256;

/// HKDF-Extract: compresses input keying material into a pseudorandom key.
#[must_use]
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand: derives `out_len` bytes of output keying material.
///
/// # Panics
///
/// Panics if `out_len > 255 * 32` (the RFC 5869 limit).
#[must_use]
pub fn expand(prk: &[u8; 32], info: &[u8], out_len: usize) -> Vec<u8> {
    assert!(out_len <= 255 * 32, "HKDF output too long");
    let mut okm = Vec::with_capacity(out_len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while okm.len() < out_len {
        let mut input = t.clone();
        input.extend_from_slice(info);
        input.push(counter);
        t = hmac_sha256(prk, &input).to_vec();
        let take = (out_len - okm.len()).min(32);
        okm.extend_from_slice(&t[..take]);
        counter = counter.checked_add(1).expect("HKDF counter overflow");
    }
    okm
}

/// One-shot extract-then-expand.
#[must_use]
pub fn derive(salt: &[u8], ikm: &[u8], info: &[u8], out_len: usize) -> Vec<u8> {
    expand(&extract(salt, ikm), info, out_len)
}

/// Derives a fixed 32-byte key; convenience for the common case.
#[must_use]
pub fn derive_key32(salt: &[u8], ikm: &[u8], info: &[u8]) -> [u8; 32] {
    derive(salt, ikm, info, 32)
        .try_into()
        .expect("32 bytes requested")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_hex, to_hex};

    #[test]
    fn rfc5869_test_case_1() {
        let ikm = from_hex("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b").unwrap();
        let salt = from_hex("000102030405060708090a0b0c").unwrap();
        let info = from_hex("f0f1f2f3f4f5f6f7f8f9").unwrap();
        let prk = extract(&salt, &ikm);
        assert_eq!(
            to_hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = expand(&prk, &info, 42);
        assert_eq!(
            to_hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn rfc5869_test_case_3_empty_salt_info() {
        let ikm = [0x0bu8; 22];
        let okm = derive(&[], &ikm, &[], 42);
        assert_eq!(
            to_hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn different_info_different_keys() {
        let k1 = derive_key32(b"salt", b"ikm", b"encryption");
        let k2 = derive_key32(b"salt", b"ikm", b"authentication");
        assert_ne!(k1, k2);
    }

    #[test]
    fn long_output() {
        let okm = derive(b"s", b"k", b"i", 100);
        assert_eq!(okm.len(), 100);
        // Prefix property: shorter output is a prefix of longer output.
        let short = derive(b"s", b"k", b"i", 32);
        assert_eq!(&okm[..32], &short[..]);
    }
}
