//! Minimal hex encoding helpers used by tests and debug output.

/// Encodes bytes as a lowercase hex string.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble < 16"));
        s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble < 16"));
    }
    s
}

/// Decodes a hex string (upper or lower case) into bytes.
///
/// Returns `None` if the string has odd length or contains a non-hex digit.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digits: Vec<u8> = s
        .chars()
        .map(|c| c.to_digit(16).map(|d| d as u8))
        .collect::<Option<_>>()?;
    Some(digits.chunks(2).map(|p| (p[0] << 4) | p[1]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let data = [0x00u8, 0x01, 0xab, 0xff];
        assert_eq!(to_hex(&data), "0001abff");
        assert_eq!(from_hex("0001abff").unwrap(), data);
        assert_eq!(from_hex("0001ABFF").unwrap(), data);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(from_hex("abc").is_none());
        assert!(from_hex("zz").is_none());
    }
}
