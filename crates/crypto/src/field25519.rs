//! Arithmetic in GF(2^255 − 19), the field underlying Curve25519.
//!
//! Elements are represented with five 51-bit limbs, the standard radix-51
//! representation. This backs both [`crate::x25519`] (the attestation
//! session-key exchange) and [`crate::ed25519`] (device/attestation
//! signatures).

use crate::ct;

const MASK_51: u64 = (1u64 << 51) - 1;

/// An element of GF(2^255 − 19).
///
/// Invariant: limbs are kept below 2^52 between operations; callers never
/// observe non-canonical values because [`FieldElement::to_bytes`]
/// performs a full canonical reduction.
#[derive(Clone, Copy)]
pub struct FieldElement(pub(crate) [u64; 5]);

impl core::fmt::Debug for FieldElement {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "FieldElement({})", crate::to_hex(&self.to_bytes()))
    }
}

impl PartialEq for FieldElement {
    fn eq(&self, other: &Self) -> bool {
        ct::eq(&self.to_bytes(), &other.to_bytes())
    }
}

impl Eq for FieldElement {}

impl Default for FieldElement {
    fn default() -> Self {
        Self::ZERO
    }
}

impl FieldElement {
    /// The additive identity.
    pub const ZERO: FieldElement = FieldElement([0; 5]);
    /// The multiplicative identity.
    pub const ONE: FieldElement = FieldElement([1, 0, 0, 0, 0]);

    /// Constructs an element from a little-endian 32-byte encoding,
    /// ignoring the top bit (as specified for Curve25519 field encodings).
    #[must_use]
    pub fn from_bytes(bytes: &[u8; 32]) -> Self {
        let load = |range: core::ops::Range<usize>| -> u64 {
            let mut v = 0u64;
            for (i, b) in bytes[range].iter().enumerate() {
                v |= (*b as u64) << (8 * i);
            }
            v
        };
        // 51-bit windows over the 255-bit little-endian integer.
        let l0 = load(0..8) & MASK_51;
        let l1 = (load(6..14) >> 3) & MASK_51;
        let l2 = (load(12..20) >> 6) & MASK_51;
        let l3 = (load(19..27) >> 1) & MASK_51;
        let l4 = (load(24..32) >> 12) & MASK_51;
        FieldElement([l0, l1, l2, l3, l4])
    }

    /// Constructs an element from a small integer.
    #[must_use]
    pub fn from_u64(v: u64) -> Self {
        let mut fe = FieldElement([0; 5]);
        fe.0[0] = v & MASK_51;
        fe.0[1] = v >> 51;
        fe
    }

    /// Returns the canonical little-endian 32-byte encoding.
    #[must_use]
    pub fn to_bytes(self) -> [u8; 32] {
        // First bring limbs below 2^51 via two carry passes.
        let mut l = self.carry().0;
        // Compute q = 1 iff the value is >= p, then add 19q and drop bit 255.
        let mut q = (l[0].wrapping_add(19)) >> 51;
        q = (l[1].wrapping_add(q)) >> 51;
        q = (l[2].wrapping_add(q)) >> 51;
        q = (l[3].wrapping_add(q)) >> 51;
        q = (l[4].wrapping_add(q)) >> 51;
        l[0] = l[0].wrapping_add(19 * q);
        let mut carry = l[0] >> 51;
        l[0] &= MASK_51;
        for limb in l.iter_mut().skip(1) {
            *limb = limb.wrapping_add(carry);
            carry = *limb >> 51;
            *limb &= MASK_51;
        }
        // carry (the 2^255 bit) is discarded: value is now < p.
        let mut out = [0u8; 32];
        let put = |out: &mut [u8; 32], bit_off: usize, v: u64| {
            for i in 0..8 {
                let byte = bit_off / 8 + i;
                if byte < 32 {
                    out[byte] |= ((v << (bit_off % 8)) >> (8 * i)) as u8;
                }
            }
        };
        put(&mut out, 0, l[0]);
        put(&mut out, 51, l[1]);
        put(&mut out, 102, l[2]);
        put(&mut out, 153, l[3]);
        put(&mut out, 204, l[4]);
        out
    }

    fn carry(self) -> Self {
        let mut l = self.0;
        for _ in 0..2 {
            let mut carry = 0u64;
            for limb in l.iter_mut() {
                let v = limb.wrapping_add(carry);
                carry = v >> 51;
                *limb = v & MASK_51;
            }
            l[0] = l[0].wrapping_add(19 * carry);
        }
        FieldElement(l)
    }

    /// Field addition.
    #[must_use]
    pub fn add(&self, rhs: &FieldElement) -> FieldElement {
        let mut l = [0u64; 5];
        for (out, (a, b)) in l.iter_mut().zip(self.0.iter().zip(rhs.0.iter())) {
            *out = a + b;
        }
        FieldElement(l).carry()
    }

    /// Field subtraction.
    #[must_use]
    pub fn sub(&self, rhs: &FieldElement) -> FieldElement {
        // Add 16p before subtracting to keep limbs non-negative.
        const P16: [u64; 5] = [
            36028797018963664, // 16 * (2^51 - 19)
            36028797018963952, // 16 * (2^51 - 1)
            36028797018963952,
            36028797018963952,
            36028797018963952,
        ];
        let mut l = [0u64; 5];
        for i in 0..5 {
            l[i] = self.0[i] + P16[i] - rhs.0[i];
        }
        FieldElement(l).carry()
    }

    /// Field negation.
    #[must_use]
    pub fn neg(&self) -> FieldElement {
        FieldElement::ZERO.sub(self)
    }

    /// Field multiplication.
    #[must_use]
    pub fn mul(&self, rhs: &FieldElement) -> FieldElement {
        let a = self.0.map(|x| x as u128);
        let b = rhs.0.map(|x| x as u128);
        let c0 = a[0] * b[0] + 19 * (a[1] * b[4] + a[2] * b[3] + a[3] * b[2] + a[4] * b[1]);
        let c1 = a[0] * b[1] + a[1] * b[0] + 19 * (a[2] * b[4] + a[3] * b[3] + a[4] * b[2]);
        let c2 = a[0] * b[2] + a[1] * b[1] + a[2] * b[0] + 19 * (a[3] * b[4] + a[4] * b[3]);
        let c3 = a[0] * b[3] + a[1] * b[2] + a[2] * b[1] + a[3] * b[0] + 19 * (a[4] * b[4]);
        let c4 = a[0] * b[4] + a[1] * b[3] + a[2] * b[2] + a[3] * b[1] + a[4] * b[0];
        Self::reduce_wide([c0, c1, c2, c3, c4])
    }

    /// Field squaring.
    #[must_use]
    pub fn square(&self) -> FieldElement {
        self.mul(self)
    }

    /// Multiplication by a small scalar (used by the X25519 ladder's
    /// a24 = 121665 term).
    #[must_use]
    pub fn mul_small(&self, k: u32) -> FieldElement {
        let k = k as u128;
        let a = self.0.map(|x| x as u128);
        Self::reduce_wide([a[0] * k, a[1] * k, a[2] * k, a[3] * k, a[4] * k])
    }

    fn reduce_wide(mut c: [u128; 5]) -> FieldElement {
        let mut l = [0u64; 5];
        // Two carry passes bring each limb below 2^52.
        for _ in 0..2 {
            let mut carry: u128 = 0;
            for limb in c.iter_mut() {
                let v = *limb + carry;
                carry = v >> 51;
                *limb = v & (MASK_51 as u128);
            }
            c[0] += 19 * carry;
        }
        for i in 0..5 {
            l[i] = c[i] as u64;
        }
        FieldElement(l).carry()
    }

    /// Raises the element to the power given as a big-endian byte string.
    #[must_use]
    pub fn pow_be(&self, exponent: &[u8]) -> FieldElement {
        let mut result = FieldElement::ONE;
        for byte in exponent {
            for bit in (0..8).rev() {
                result = result.square();
                if (byte >> bit) & 1 == 1 {
                    result = result.mul(self);
                }
            }
        }
        result
    }

    /// Multiplicative inverse via Fermat's little theorem (x^(p−2)).
    ///
    /// Returns zero for zero input.
    #[must_use]
    pub fn invert(&self) -> FieldElement {
        // p - 2 = 2^255 - 21, big-endian.
        let mut exp = [0xffu8; 32];
        exp[0] = 0x7f;
        exp[31] = 0xeb;
        self.pow_be(&exp)
    }

    /// x^((p−5)/8), the core exponentiation of the Ed25519 decompression
    /// square-root computation.
    #[must_use]
    pub fn pow_p58(&self) -> FieldElement {
        // (p - 5) / 8 = 2^252 - 3, big-endian.
        let mut exp = [0xffu8; 32];
        exp[0] = 0x0f;
        exp[31] = 0xfd;
        self.pow_be(&exp)
    }

    /// True if the element is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        ct::eq(&self.to_bytes(), &[0u8; 32])
    }

    /// The "sign" bit used by point compression: the low bit of the
    /// canonical encoding.
    #[must_use]
    pub fn is_negative(&self) -> bool {
        self.to_bytes()[0] & 1 == 1
    }
}

/// √−1 in the field, needed for Ed25519 point decompression.
#[must_use]
pub fn sqrt_m1() -> FieldElement {
    // 2^((p-1)/4): (p - 1) / 4 = 2^253 - 5, big-endian.
    let mut exp = [0xffu8; 32];
    exp[0] = 0x1f;
    exp[31] = 0xfb;
    FieldElement::from_u64(2).pow_be(&exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(v: u64) -> FieldElement {
        FieldElement::from_u64(v)
    }

    #[test]
    fn encoding_round_trip() {
        let mut bytes = [0u8; 32];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37).wrapping_add(1);
        }
        bytes[31] &= 0x7f;
        let x = FieldElement::from_bytes(&bytes);
        assert_eq!(x.to_bytes(), bytes);
    }

    #[test]
    fn add_sub_inverse() {
        let a = fe(12345);
        let b = fe(99999);
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(a.sub(&a), FieldElement::ZERO);
    }

    #[test]
    fn small_multiplication() {
        assert_eq!(fe(6).mul(&fe(7)), fe(42));
        assert_eq!(fe(6).mul_small(7), fe(42));
        assert_eq!(fe(5).square(), fe(25));
    }

    #[test]
    fn p_encodes_as_zero() {
        // p = 2^255 - 19 must canonically encode as 0.
        let mut p_bytes = [0xffu8; 32];
        p_bytes[0] = 0xed;
        p_bytes[31] = 0x7f;
        let p = FieldElement::from_bytes(&p_bytes);
        assert_eq!(p.to_bytes(), [0u8; 32]);
        assert!(p.is_zero());
    }

    #[test]
    fn minus_one_times_minus_one() {
        let minus_one = FieldElement::ZERO.sub(&FieldElement::ONE);
        assert_eq!(minus_one.mul(&minus_one), FieldElement::ONE);
    }

    #[test]
    fn inversion() {
        let a = fe(1234567);
        assert_eq!(a.mul(&a.invert()), FieldElement::ONE);
        assert!(FieldElement::ZERO.invert().is_zero());
    }

    #[test]
    fn sqrt_m1_squares_to_minus_one() {
        let i = sqrt_m1();
        let minus_one = FieldElement::ZERO.sub(&FieldElement::ONE);
        assert_eq!(i.square(), minus_one);
    }

    #[test]
    fn distributivity_spot_check() {
        let a = fe(0xdead_beef);
        let b = fe(0xcafe_f00d);
        let c = fe(0x1234_5678);
        let left = a.mul(&b.add(&c));
        let right = a.mul(&b).add(&a.mul(&c));
        assert_eq!(left, right);
    }

    #[test]
    fn negation() {
        let a = fe(77);
        assert_eq!(a.add(&a.neg()), FieldElement::ZERO);
        assert!(!fe(2).is_negative());
        assert!(fe(1).is_negative());
    }
}
