//! AES-128 / AES-256 block cipher (FIPS 197).
//!
//! This models the Shield's AES engine (§5.2.2): the engine "contains an
//! internal 256-byte lookup table for the S-box" which can be "duplicated
//! up to 16 times per engine, reducing the AES latency through parallel
//! lookups at the cost of higher resource consumption". The software
//! implementation here is correspondingly S-box based (no T-tables), and
//! [`SBoxParallelism`] captures the duplication factor for the timing and
//! area models in `shef-core`.
//!
//! # Example
//!
//! ```
//! use shef_crypto::aes::{Aes, AesKeySize};
//!
//! let aes = Aes::new_128(&[0u8; 16]);
//! let ct = aes.encrypt_block(&[0u8; 16]);
//! assert_eq!(aes.decrypt_block(&ct), [0u8; 16]);
//! assert_eq!(aes.key_size(), AesKeySize::Aes128);
//! ```

/// Bytes in one AES block.
pub const AES_BLOCK_LEN: usize = 16;

const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const INV_SBOX: [u8; 256] = {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
};

const RCON: [u8; 15] = [
    0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36, 0x6c, 0xd8, 0xab, 0x4d, 0x9a,
];

/// AES key size, selectable per Shield engine set at bitstream compile time
/// ("users are also able to configure the AES key size (128 or 256 bits)
/// during bitstream compilation", §5.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AesKeySize {
    /// 128-bit key, 10 rounds.
    #[default]
    Aes128,
    /// 256-bit key, 14 rounds.
    Aes256,
}

impl AesKeySize {
    /// Key length in bytes.
    #[must_use]
    pub fn key_len(self) -> usize {
        match self {
            AesKeySize::Aes128 => 16,
            AesKeySize::Aes256 => 32,
        }
    }

    /// Number of cipher rounds (excluding the initial AddRoundKey).
    #[must_use]
    pub fn rounds(self) -> usize {
        match self {
            AesKeySize::Aes128 => 10,
            AesKeySize::Aes256 => 14,
        }
    }
}

impl core::fmt::Display for AesKeySize {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AesKeySize::Aes128 => write!(f, "AES-128"),
            AesKeySize::Aes256 => write!(f, "AES-256"),
        }
    }
}

/// S-box duplication factor inside one Shield AES engine.
///
/// The Shield performs the 16 S-box lookups of an AES round through
/// `factor` parallel copies of the lookup table, so one round takes
/// `16 / factor` cycles (§5.2.2 and Table 1, "AES-4x"/"AES-16x").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SBoxParallelism {
    /// One S-box: 16 lookups per round are serial.
    X1,
    /// Two parallel S-boxes.
    X2,
    /// Four parallel S-boxes (the paper's "AES/4x").
    X4,
    /// Eight parallel S-boxes.
    X8,
    /// Sixteen parallel S-boxes (the paper's "AES/16x").
    X16,
}

impl SBoxParallelism {
    /// Duplication factor as an integer.
    #[must_use]
    pub fn factor(self) -> u32 {
        match self {
            SBoxParallelism::X1 => 1,
            SBoxParallelism::X2 => 2,
            SBoxParallelism::X4 => 4,
            SBoxParallelism::X8 => 8,
            SBoxParallelism::X16 => 16,
        }
    }

    /// Cycles for one AES round: 16 S-box lookups through `factor` tables.
    #[must_use]
    pub fn cycles_per_round(self) -> u64 {
        (16 / self.factor()) as u64
    }
}

impl core::fmt::Display for SBoxParallelism {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}x", self.factor())
    }
}

/// An AES cipher instance with an expanded key schedule.
#[derive(Clone)]
pub struct Aes {
    round_keys: Vec<[u8; 16]>,
    key_size: AesKeySize,
}

impl core::fmt::Debug for Aes {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes")
            .field("key_size", &self.key_size)
            .finish_non_exhaustive()
    }
}

impl Aes {
    /// Creates an AES-128 instance.
    pub fn new_128(key: &[u8; 16]) -> Self {
        Self::expand(key, AesKeySize::Aes128)
    }

    /// Creates an AES-256 instance.
    pub fn new_256(key: &[u8; 32]) -> Self {
        Self::expand(key, AesKeySize::Aes256)
    }

    /// Creates an instance from a key slice whose length selects the variant.
    ///
    /// # Panics
    ///
    /// Panics if `key.len()` is not 16 or 32.
    pub fn new(key: &[u8]) -> Self {
        match key.len() {
            16 => Self::new_128(key.try_into().expect("16-byte key")),
            32 => Self::new_256(key.try_into().expect("32-byte key")),
            n => panic!("AES key must be 16 or 32 bytes, got {n}"),
        }
    }

    /// The key size this instance was constructed with.
    #[must_use]
    pub fn key_size(&self) -> AesKeySize {
        self.key_size
    }

    fn expand(key: &[u8], key_size: AesKeySize) -> Self {
        let nk = key.len() / 4; // words in key: 4 or 8
        let rounds = key_size.rounds();
        let total_words = 4 * (rounds + 1);
        let mut w: Vec<[u8; 4]> = Vec::with_capacity(total_words);
        for chunk in key.chunks_exact(4) {
            w.push(chunk.try_into().expect("4-byte word"));
        }
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / nk - 1];
            } else if nk > 6 && i % nk == 4 {
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
            }
            let prev = w[i - nk];
            w.push([
                prev[0] ^ temp[0],
                prev[1] ^ temp[1],
                prev[2] ^ temp[2],
                prev[3] ^ temp[3],
            ]);
        }
        let round_keys = w
            .chunks_exact(4)
            .map(|ws| {
                let mut rk = [0u8; 16];
                for (i, word) in ws.iter().enumerate() {
                    rk[i * 4..i * 4 + 4].copy_from_slice(word);
                }
                rk
            })
            .collect();
        Aes {
            round_keys,
            key_size,
        }
    }

    /// Encrypts one 16-byte block.
    #[must_use]
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let rounds = self.key_size.rounds();
        let mut state = *block;
        xor_in_place(&mut state, &self.round_keys[0]);
        for round in 1..rounds {
            sub_bytes(&mut state);
            shift_rows(&mut state);
            mix_columns(&mut state);
            xor_in_place(&mut state, &self.round_keys[round]);
        }
        sub_bytes(&mut state);
        shift_rows(&mut state);
        xor_in_place(&mut state, &self.round_keys[rounds]);
        state
    }

    /// Decrypts one 16-byte block.
    #[must_use]
    pub fn decrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let rounds = self.key_size.rounds();
        let mut state = *block;
        xor_in_place(&mut state, &self.round_keys[rounds]);
        inv_shift_rows(&mut state);
        inv_sub_bytes(&mut state);
        for round in (1..rounds).rev() {
            xor_in_place(&mut state, &self.round_keys[round]);
            inv_mix_columns(&mut state);
            inv_shift_rows(&mut state);
            inv_sub_bytes(&mut state);
        }
        xor_in_place(&mut state, &self.round_keys[0]);
        state
    }
}

fn xor_in_place(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk.iter()) {
        *s ^= k;
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn inv_sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

// State layout is column-major as in FIPS 197: byte i is row i%4, col i/4.
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for row in 1..4 {
        for col in 0..4 {
            state[row + 4 * col] = s[row + 4 * ((col + row) % 4)];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for row in 1..4 {
        for col in 0..4 {
            state[row + 4 * ((col + row) % 4)] = s[row + 4 * col];
        }
    }
}

/// Multiplication in GF(2^8) with the AES polynomial 0x11b.
#[must_use]
pub fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

fn mix_columns(state: &mut [u8; 16]) {
    for col in 0..4 {
        let c = [
            state[4 * col],
            state[4 * col + 1],
            state[4 * col + 2],
            state[4 * col + 3],
        ];
        state[4 * col] = gf_mul(c[0], 2) ^ gf_mul(c[1], 3) ^ c[2] ^ c[3];
        state[4 * col + 1] = c[0] ^ gf_mul(c[1], 2) ^ gf_mul(c[2], 3) ^ c[3];
        state[4 * col + 2] = c[0] ^ c[1] ^ gf_mul(c[2], 2) ^ gf_mul(c[3], 3);
        state[4 * col + 3] = gf_mul(c[0], 3) ^ c[1] ^ c[2] ^ gf_mul(c[3], 2);
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for col in 0..4 {
        let c = [
            state[4 * col],
            state[4 * col + 1],
            state[4 * col + 2],
            state[4 * col + 3],
        ];
        state[4 * col] = gf_mul(c[0], 14) ^ gf_mul(c[1], 11) ^ gf_mul(c[2], 13) ^ gf_mul(c[3], 9);
        state[4 * col + 1] =
            gf_mul(c[0], 9) ^ gf_mul(c[1], 14) ^ gf_mul(c[2], 11) ^ gf_mul(c[3], 13);
        state[4 * col + 2] =
            gf_mul(c[0], 13) ^ gf_mul(c[1], 9) ^ gf_mul(c[2], 14) ^ gf_mul(c[3], 11);
        state[4 * col + 3] =
            gf_mul(c[0], 11) ^ gf_mul(c[1], 13) ^ gf_mul(c[2], 9) ^ gf_mul(c[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::from_hex;

    #[test]
    fn fips197_aes128_example() {
        // FIPS 197 Appendix C.1
        let key: [u8; 16] = from_hex("000102030405060708090a0b0c0d0e0f")
            .unwrap()
            .try_into()
            .unwrap();
        let pt: [u8; 16] = from_hex("00112233445566778899aabbccddeeff")
            .unwrap()
            .try_into()
            .unwrap();
        let aes = Aes::new_128(&key);
        let ct = aes.encrypt_block(&pt);
        assert_eq!(crate::to_hex(&ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
        assert_eq!(aes.decrypt_block(&ct), pt);
    }

    #[test]
    fn fips197_aes256_example() {
        // FIPS 197 Appendix C.3
        let key: [u8; 32] =
            from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
                .unwrap()
                .try_into()
                .unwrap();
        let pt: [u8; 16] = from_hex("00112233445566778899aabbccddeeff")
            .unwrap()
            .try_into()
            .unwrap();
        let aes = Aes::new_256(&key);
        let ct = aes.encrypt_block(&pt);
        assert_eq!(crate::to_hex(&ct), "8ea2b7ca516745bfeafc49904b496089");
        assert_eq!(aes.decrypt_block(&ct), pt);
    }

    #[test]
    fn nist_aes128_ecb_kat() {
        // SP 800-38A F.1.1, first block
        let key: [u8; 16] = from_hex("2b7e151628aed2a6abf7158809cf4f3c")
            .unwrap()
            .try_into()
            .unwrap();
        let pt: [u8; 16] = from_hex("6bc1bee22e409f96e93d7e117393172a")
            .unwrap()
            .try_into()
            .unwrap();
        let aes = Aes::new_128(&key);
        assert_eq!(
            crate::to_hex(&aes.encrypt_block(&pt)),
            "3ad77bb40d7a3660a89ecaf32466ef97"
        );
    }

    #[test]
    fn encrypt_decrypt_round_trip_random() {
        // Deterministic pseudo-random coverage of both key sizes.
        let mut x = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..50 {
            let mut key = [0u8; 32];
            for chunk in key.chunks_exact_mut(8) {
                chunk.copy_from_slice(&next().to_le_bytes());
            }
            let mut pt = [0u8; 16];
            for chunk in pt.chunks_exact_mut(8) {
                chunk.copy_from_slice(&next().to_le_bytes());
            }
            let aes128 = Aes::new_128(&key[..16].try_into().unwrap());
            assert_eq!(aes128.decrypt_block(&aes128.encrypt_block(&pt)), pt);
            let aes256 = Aes::new_256(&key);
            assert_eq!(aes256.decrypt_block(&aes256.encrypt_block(&pt)), pt);
        }
    }

    #[test]
    fn sbox_parallelism_cycles() {
        assert_eq!(SBoxParallelism::X4.cycles_per_round(), 4);
        assert_eq!(SBoxParallelism::X16.cycles_per_round(), 1);
        assert_eq!(SBoxParallelism::X1.cycles_per_round(), 16);
    }

    #[test]
    fn debug_does_not_leak_key() {
        let aes = Aes::new_128(&[0xaa; 16]);
        let dbg = format!("{aes:?}");
        assert!(
            !dbg.contains("aa"),
            "debug output must not contain key bytes: {dbg}"
        );
    }

    #[test]
    fn gf_mul_known_values() {
        assert_eq!(gf_mul(0x57, 0x83), 0xc1);
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
        assert_eq!(gf_mul(1, 0xab), 0xab);
        assert_eq!(gf_mul(0, 0xab), 0);
    }
}
