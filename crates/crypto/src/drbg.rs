//! HMAC-DRBG (NIST SP 800-90A) over SHA-256.
//!
//! Every key generated anywhere in the ShEF workspace — device keys,
//! attestation keys, bitstream keys, data encryption keys, nonces — comes
//! from an instance of this deterministic generator. Seeding each party
//! with a distinct label keeps whole-system experiments reproducible,
//! which matters for the benchmark harness.
//!
//! # Example
//!
//! ```
//! use shef_crypto::drbg::HmacDrbg;
//!
//! let mut rng = HmacDrbg::from_seed(b"ip-vendor");
//! let key_a = rng.generate_array::<32>();
//! let key_b = rng.generate_array::<32>();
//! assert_ne!(key_a, key_b);
//! ```

use crate::hmac::hmac_sha256;

/// A deterministic random bit generator (HMAC-DRBG, SHA-256).
#[derive(Clone)]
pub struct HmacDrbg {
    key: [u8; 32],
    value: [u8; 32],
    reseed_counter: u64,
}

impl core::fmt::Debug for HmacDrbg {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("HmacDrbg")
            .field("reseed_counter", &self.reseed_counter)
            .finish_non_exhaustive()
    }
}

impl HmacDrbg {
    /// Instantiates the DRBG from arbitrary seed material.
    #[must_use]
    pub fn from_seed(seed: &[u8]) -> Self {
        let mut drbg = HmacDrbg {
            key: [0u8; 32],
            value: [1u8; 32],
            reseed_counter: 1,
        };
        drbg.update(Some(seed));
        drbg
    }

    /// Mixes additional entropy or context into the state.
    pub fn reseed(&mut self, data: &[u8]) {
        self.update(Some(data));
        self.reseed_counter = 1;
    }

    /// Fills `out` with pseudorandom bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        let mut offset = 0;
        while offset < out.len() {
            self.value = hmac_sha256(&self.key, &self.value);
            let take = (out.len() - offset).min(32);
            out[offset..offset + take].copy_from_slice(&self.value[..take]);
            offset += take;
        }
        self.update(None);
        self.reseed_counter += 1;
    }

    /// Generates a fixed-size array of pseudorandom bytes.
    #[must_use]
    pub fn generate_array<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        self.fill_bytes(&mut out);
        out
    }

    /// Generates a pseudorandom `u64`.
    #[must_use]
    pub fn next_u64(&mut self) -> u64 {
        u64::from_le_bytes(self.generate_array::<8>())
    }

    fn update(&mut self, data: Option<&[u8]>) {
        let mut input = Vec::with_capacity(33 + data.map_or(0, <[u8]>::len));
        input.extend_from_slice(&self.value);
        input.push(0x00);
        if let Some(d) = data {
            input.extend_from_slice(d);
        }
        self.key = hmac_sha256(&self.key, &input);
        self.value = hmac_sha256(&self.key, &self.value);
        if let Some(d) = data {
            let mut input = Vec::with_capacity(33 + d.len());
            input.extend_from_slice(&self.value);
            input.push(0x01);
            input.extend_from_slice(d);
            self.key = hmac_sha256(&self.key, &input);
            self.value = hmac_sha256(&self.key, &self.value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = HmacDrbg::from_seed(b"seed");
        let mut b = HmacDrbg::from_seed(b"seed");
        assert_eq!(a.generate_array::<64>(), b.generate_array::<64>());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = HmacDrbg::from_seed(b"seed-1");
        let mut b = HmacDrbg::from_seed(b"seed-2");
        assert_ne!(a.generate_array::<32>(), b.generate_array::<32>());
    }

    #[test]
    fn sequential_outputs_differ() {
        let mut rng = HmacDrbg::from_seed(b"x");
        let a = rng.generate_array::<32>();
        let b = rng.generate_array::<32>();
        assert_ne!(a, b);
    }

    #[test]
    fn reseed_changes_stream() {
        let mut a = HmacDrbg::from_seed(b"x");
        let mut b = HmacDrbg::from_seed(b"x");
        let _ = a.generate_array::<8>();
        let _ = b.generate_array::<8>();
        b.reseed(b"extra");
        assert_ne!(a.generate_array::<32>(), b.generate_array::<32>());
    }

    #[test]
    fn fill_spans_multiple_hmac_blocks() {
        let mut rng = HmacDrbg::from_seed(b"y");
        let mut buf = vec![0u8; 100];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn u64_distribution_sanity() {
        let mut rng = HmacDrbg::from_seed(b"dist");
        let mut ones = 0u32;
        for _ in 0..64 {
            ones += rng.next_u64().count_ones();
        }
        // ~2048 expected; allow generous slack.
        assert!((1500..2600).contains(&ones), "bit balance off: {ones}");
    }
}
