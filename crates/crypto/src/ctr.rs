//! AES-CTR mode with the Shield's IV layout.
//!
//! The Shield associates each authenticated-encryption chunk with a
//! "12-byte initialization vector (IV), which is incremented by 1 for each
//! successive chunk to ensure that no two ciphertext blocks reuse the same
//! IV" (§5.2.2). The counter block is therefore `IV (12 bytes) || block
//! counter (4 bytes, big endian)`, and a chunk may span up to 2^32 AES
//! blocks.
//!
//! # Example
//!
//! ```
//! use shef_crypto::aes::Aes;
//! use shef_crypto::ctr::{ChunkIv, ctr_xor};
//!
//! let aes = Aes::new_128(&[1u8; 16]);
//! let iv = ChunkIv::for_chunk([0u8; 8], 42);
//! let mut data = *b"shield chunk payload";
//! ctr_xor(&aes, &iv, &mut data);
//! ctr_xor(&aes, &iv, &mut data); // CTR is an involution
//! assert_eq!(&data, b"shield chunk payload");
//! ```

use crate::aes::{Aes, AES_BLOCK_LEN};

/// Length of the CTR initialization vector in bytes.
pub const IV_LEN: usize = 12;

/// A 12-byte IV identifying one authenticated-encryption chunk.
///
/// The Shield derives per-chunk IVs from a region nonce plus the chunk
/// index, and bumps the epoch on every re-encryption of the same chunk so
/// that keystreams never repeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChunkIv(pub [u8; IV_LEN]);

impl ChunkIv {
    /// Builds the IV for chunk `index` within a region identified by an
    /// 8-byte `region_nonce`.
    #[must_use]
    pub fn for_chunk(region_nonce: [u8; 8], index: u32) -> Self {
        let mut iv = [0u8; IV_LEN];
        iv[..8].copy_from_slice(&region_nonce);
        iv[8..].copy_from_slice(&index.to_be_bytes());
        ChunkIv(iv)
    }

    /// Builds an IV that also encodes a write epoch, for regions with
    /// freshness counters: the paper's counter value is mixed into the IV
    /// so rewritten chunks use fresh keystreams.
    #[must_use]
    pub fn for_chunk_epoch(region_nonce: [u8; 8], index: u32, epoch: u64) -> Self {
        let mut iv = [0u8; IV_LEN];
        let mixed = u64::from_be_bytes(region_nonce.map(|b| b)) ^ epoch.rotate_left(17);
        iv[..8].copy_from_slice(&mixed.to_be_bytes());
        iv[8..].copy_from_slice(&index.to_be_bytes());
        ChunkIv(iv)
    }

    /// Returns the IV incremented by one (next successive chunk).
    #[must_use]
    pub fn next(&self) -> Self {
        let mut iv = self.0;
        for byte in iv.iter_mut().rev() {
            let (v, carry) = byte.overflowing_add(1);
            *byte = v;
            if !carry {
                break;
            }
        }
        ChunkIv(iv)
    }
}

/// XORs the AES-CTR keystream for `iv` into `data`, in place.
///
/// Encryption and decryption are the same operation.
pub fn ctr_xor(aes: &Aes, iv: &ChunkIv, data: &mut [u8]) {
    let mut counter_block = [0u8; AES_BLOCK_LEN];
    counter_block[..IV_LEN].copy_from_slice(&iv.0);
    for (block_idx, chunk) in data.chunks_mut(AES_BLOCK_LEN).enumerate() {
        counter_block[IV_LEN..].copy_from_slice(&(block_idx as u32).to_be_bytes());
        let keystream = aes.encrypt_block(&counter_block);
        for (d, k) in chunk.iter_mut().zip(keystream.iter()) {
            *d ^= k;
        }
    }
}

/// Returns the number of AES block operations needed to process `len`
/// bytes in CTR mode. Used by the Shield timing model.
#[must_use]
pub fn blocks_for_len(len: usize) -> u64 {
    (len as u64).div_ceil(AES_BLOCK_LEN as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::from_hex;

    #[test]
    fn ctr_is_involution() {
        let aes = Aes::new_256(&[9u8; 32]);
        let iv = ChunkIv::for_chunk([1, 2, 3, 4, 5, 6, 7, 8], 7);
        let original: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let mut data = original.clone();
        ctr_xor(&aes, &iv, &mut data);
        assert_ne!(data, original);
        ctr_xor(&aes, &iv, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn nist_ctr_vector() {
        // SP 800-38A F.5.1 (AES-128-CTR) — the standard uses a full
        // 16-byte initial counter; we reproduce it by splitting into our
        // IV+counter layout for the first block only.
        let key: [u8; 16] = from_hex("2b7e151628aed2a6abf7158809cf4f3c")
            .unwrap()
            .try_into()
            .unwrap();
        let aes = Aes::new_128(&key);
        // Initial counter block f0f1...feff: IV = first 12 bytes, counter = fcfdfeff.
        let mut counter_block = [0u8; 16];
        counter_block.copy_from_slice(&from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff").unwrap());
        let keystream = aes.encrypt_block(&counter_block);
        let pt = from_hex("6bc1bee22e409f96e93d7e117393172a").unwrap();
        let ct: Vec<u8> = pt
            .iter()
            .zip(keystream.iter())
            .map(|(p, k)| p ^ k)
            .collect();
        assert_eq!(crate::to_hex(&ct), "874d6191b620e3261bef6864990db6ce");
    }

    #[test]
    fn distinct_chunks_use_distinct_keystreams() {
        let aes = Aes::new_128(&[3u8; 16]);
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        ctr_xor(&aes, &ChunkIv::for_chunk([0; 8], 0), &mut a);
        ctr_xor(&aes, &ChunkIv::for_chunk([0; 8], 1), &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn epoch_changes_keystream() {
        let aes = Aes::new_128(&[3u8; 16]);
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        ctr_xor(&aes, &ChunkIv::for_chunk_epoch([5; 8], 0, 1), &mut a);
        ctr_xor(&aes, &ChunkIv::for_chunk_epoch([5; 8], 0, 2), &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn iv_increment_carries() {
        let iv = ChunkIv([0xff; IV_LEN]);
        assert_eq!(iv.next().0, [0u8; IV_LEN]);
        let iv = ChunkIv::for_chunk([0; 8], 0x0000_00ff);
        assert_eq!(iv.next(), ChunkIv::for_chunk([0; 8], 0x0000_0100));
    }

    #[test]
    fn block_count_model() {
        assert_eq!(blocks_for_len(0), 0);
        assert_eq!(blocks_for_len(1), 1);
        assert_eq!(blocks_for_len(16), 1);
        assert_eq!(blocks_for_len(17), 2);
        assert_eq!(blocks_for_len(512), 32);
    }
}
