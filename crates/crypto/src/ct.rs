//! Constant-time comparison helpers.
//!
//! The Shield hardware compares MAC tags with a dedicated comparator whose
//! latency is independent of the data (§5.2 "we ensure that the timing of
//! Shield cryptographic engines does not depend on any confidential
//! information"). This module is the software analogue.

/// Compares two byte slices in time independent of their contents.
///
/// Returns `false` immediately only on length mismatch (lengths are public
/// for every use in this workspace: tags and digests have fixed sizes).
///
/// # Example
///
/// ```
/// assert!(shef_crypto::ct::eq(b"tag", b"tag"));
/// assert!(!shef_crypto::ct::eq(b"tag", b"tam"));
/// ```
#[must_use]
pub fn eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Selects `a` if `choice` is true, `b` otherwise, without branching on
/// secret data.
#[must_use]
pub fn select_u64(choice: bool, a: u64, b: u64) -> u64 {
    let mask = (choice as u64).wrapping_neg();
    (a & mask) | (b & !mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_matches_std() {
        assert!(eq(&[], &[]));
        assert!(eq(&[1, 2, 3], &[1, 2, 3]));
        assert!(!eq(&[1, 2, 3], &[1, 2, 4]));
        assert!(!eq(&[1, 2, 3], &[1, 2]));
    }

    #[test]
    fn select_picks_correct_value() {
        assert_eq!(select_u64(true, 7, 9), 7);
        assert_eq!(select_u64(false, 7, 9), 9);
    }
}
