//! GHASH — the universal hash underlying AES-GCM.
//!
//! The Shield's cryptographic engines are deliberately swappable:
//! "Since the engines expose a simple valid/ready interface, IP Vendors
//! can simply substitute a new cryptographic engine in their place"
//! (§5.2.2). GHASH is the natural third option next to HMAC and PMAC —
//! a single pipelined GF(2^128) multiplier sustains one 16-byte block
//! per cycle in hardware, and precomputed powers of `H` let multiple
//! multipliers share one message, so it is within-chunk parallel like
//! PMAC but with a cheaper per-block operation.
//!
//! The implementation follows NIST SP 800-38D: blocks are elements of
//! GF(2^128) under the "reflected" convention (the first bit of the
//! block is the coefficient of x⁰), multiplication reduces modulo
//! x¹²⁸ + x⁷ + x² + x + 1, and `GHASH_H(A, C)` processes the padded
//! associated data, the padded ciphertext, and a final length block.
//!
//! # Example
//!
//! ```
//! use shef_crypto::ghash::ghash;
//!
//! // H is normally E_K(0^128); any 16-byte subkey works for hashing.
//! let h = [0x25u8; 16];
//! let tag = ghash(&h, b"associated data", b"ciphertext bytes");
//! assert_eq!(tag.len(), 16);
//! ```

/// Length in bytes of a GHASH output block.
pub const GHASH_LEN: usize = 16;

/// Multiplies two elements of GF(2^128) in GCM's bit-reflected
/// representation (Algorithm 1 of SP 800-38D).
#[must_use]
pub fn gf128_mul(x: u128, y: u128) -> u128 {
    // R = 11100001 || 0^120.
    const R: u128 = 0xe1 << 120;
    let mut z = 0u128;
    let mut v = y;
    for i in 0..128 {
        if (x >> (127 - i)) & 1 == 1 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb == 1 {
            v ^= R;
        }
    }
    z
}

fn block_to_u128(block: &[u8]) -> u128 {
    let mut buf = [0u8; 16];
    buf[..block.len()].copy_from_slice(block);
    u128::from_be_bytes(buf)
}

/// Incremental GHASH state: `Y ← (Y ⊕ X_i) · H` per 16-byte block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ghash {
    h: u128,
    y: u128,
}

impl Ghash {
    /// Starts a GHASH computation under hash subkey `h` (`E_K(0¹²⁸)` in
    /// GCM).
    #[must_use]
    pub fn new(h: &[u8; GHASH_LEN]) -> Self {
        Ghash {
            h: u128::from_be_bytes(*h),
            y: 0,
        }
    }

    /// Absorbs `data`, zero-padding its final partial block (the GCM
    /// padding rule for both the AAD and ciphertext segments).
    pub fn update_padded(&mut self, data: &[u8]) {
        for block in data.chunks(GHASH_LEN) {
            self.y = gf128_mul(self.y ^ block_to_u128(block), self.h);
        }
    }

    /// Absorbs the final `[len(A)]₆₄ ‖ [len(C)]₆₄` length block (bit
    /// lengths, as the spec requires).
    pub fn update_lengths(&mut self, aad_bytes: usize, ct_bytes: usize) {
        let block = ((aad_bytes as u128 * 8) << 64) | (ct_bytes as u128 * 8);
        self.y = gf128_mul(self.y ^ block, self.h);
    }

    /// The current hash value.
    #[must_use]
    pub fn finalize(&self) -> [u8; GHASH_LEN] {
        self.y.to_be_bytes()
    }
}

/// One-shot `GHASH_H(A, C)` over associated data and ciphertext.
#[must_use]
pub fn ghash(h: &[u8; GHASH_LEN], aad: &[u8], ciphertext: &[u8]) -> [u8; GHASH_LEN] {
    let mut state = Ghash::new(h);
    state.update_padded(aad);
    state.update_padded(ciphertext);
    state.update_lengths(aad.len(), ciphertext.len());
    state.finalize()
}

/// GF(2^128)-multiply operations needed to GHASH `len` bytes plus one
/// length block — the quantity the Shield timing model charges.
#[must_use]
pub fn blocks_for_len(len: usize) -> u64 {
    (len as u64).div_ceil(GHASH_LEN as u64) + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::from_hex;

    fn h16(s: &str) -> [u8; 16] {
        from_hex(s)
            .expect("valid hex")
            .try_into()
            .expect("16-byte hex")
    }

    #[test]
    fn gf_mul_identity_and_zero() {
        // The multiplicative identity in the reflected representation is
        // x⁰, i.e. the block 0x80 00 … 00.
        let one = 0x80u128 << 120;
        let a = 0x0123_4567_89ab_cdef_0011_2233_4455_6677u128;
        assert_eq!(gf128_mul(a, one), a);
        assert_eq!(gf128_mul(one, a), a);
        assert_eq!(gf128_mul(a, 0), 0);
        assert_eq!(gf128_mul(0, a), 0);
    }

    #[test]
    fn gf_mul_commutes() {
        let a = 0xdead_beef_0000_0000_1234_5678_9abc_def0u128;
        let b = 0x0f0e_0d0c_0b0a_0908_0706_0504_0302_0100u128;
        assert_eq!(gf128_mul(a, b), gf128_mul(b, a));
    }

    #[test]
    fn gf_mul_distributes() {
        let a = 0x1111_2222_3333_4444_5555_6666_7777_8888u128;
        let b = 0x9999_aaaa_bbbb_cccc_dddd_eeee_ffff_0000u128;
        let c = 0x0102_0304_0506_0708_090a_0b0c_0d0e_0f10u128;
        assert_eq!(
            gf128_mul(a, b ^ c),
            gf128_mul(a, b) ^ gf128_mul(a, c),
            "multiplication distributes over XOR"
        );
    }

    #[test]
    fn nist_test_case_1_hash_of_empty() {
        // SP 800-38D validation: K = 0^128 → H = 66e94bd4ef8a2c3b884cfa59ca342b2e,
        // GHASH of empty AAD/CT is 0 (only the zero length block, times H,
        // starting from 0 — the all-zero length block keeps Y at 0).
        let h = h16("66e94bd4ef8a2c3b884cfa59ca342b2e");
        assert_eq!(ghash(&h, b"", b""), [0u8; 16]);
    }

    #[test]
    fn nist_test_case_2_ghash_value() {
        // GCM Test Case 2 intermediate: GHASH_H(ø, 0388dace60b6a392f328c2b971b2fe78)
        // = f38cbb1ad69223dcc3457ae5b6b0f885.
        let h = h16("66e94bd4ef8a2c3b884cfa59ca342b2e");
        let ct = from_hex("0388dace60b6a392f328c2b971b2fe78").expect("valid hex");
        assert_eq!(ghash(&h, b"", &ct), h16("f38cbb1ad69223dcc3457ae5b6b0f885"));
    }

    #[test]
    fn padding_is_not_ambiguous() {
        let h = [0x5au8; 16];
        // A 15-byte ciphertext and the same with an explicit zero byte
        // hash differently (the length block disambiguates).
        let a = ghash(&h, b"", &[0xaa; 15]);
        let mut padded = [0u8; 16];
        padded[..15].copy_from_slice(&[0xaa; 15]);
        let b = ghash(&h, b"", &padded);
        assert_ne!(a, b);
        // Moving a byte across the AAD/CT boundary also changes the hash.
        let c = ghash(&h, &[0xaa; 1], &[0xaa; 14]);
        assert_ne!(a, c);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let h = [9u8; 16];
        let aad = b"some associated data over a block";
        let ct = b"ciphertext spanning multiple sixteen byte blocks here";
        let mut inc = Ghash::new(&h);
        inc.update_padded(aad);
        inc.update_padded(ct);
        inc.update_lengths(aad.len(), ct.len());
        assert_eq!(inc.finalize(), ghash(&h, aad, ct));
    }

    #[test]
    fn timing_block_count() {
        assert_eq!(blocks_for_len(0), 1);
        assert_eq!(blocks_for_len(16), 2);
        assert_eq!(blocks_for_len(17), 3);
        assert_eq!(blocks_for_len(4096), 257);
    }
}
