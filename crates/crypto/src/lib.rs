//! From-scratch cryptographic primitives for the ShEF cloud-FPGA TEE.
//!
//! This crate implements every primitive the ShEF workflow depends on,
//! mirroring the soft-logic engines described in the paper (§5) and the
//! protocol-level asymmetric cryptography (§3–§4):
//!
//! * [`aes`] — AES-128/AES-256 block cipher, the Shield's encryption
//!   engine. The implementation is S-box based (not T-table) so that the
//!   Shield's configurable *S-box parallelism* has a faithful counterpart
//!   in the timing model.
//! * [`ctr`] — AES-CTR mode with the paper's 12-byte IV + 4-byte counter.
//! * [`sha2`] — SHA-256 (Shield HMAC engine, Bitcoin accelerator) and
//!   SHA-512 (Ed25519).
//! * [`hmac`] — HMAC, the Shield's default authentication engine.
//! * [`pmac`] — a parallelizable MAC over AES, the Shield's alternative
//!   authentication engine (§6.2.4).
//! * [`field25519`], [`edwards`], [`scalar25519`] — Curve25519 arithmetic.
//! * [`x25519`] — Diffie–Hellman key exchange used to derive the
//!   attestation `SessionKey` (Fig. 3).
//! * [`ed25519`] — signatures standing in for the paper's RSA/ECDSA
//!   device and attestation keys.
//! * [`hkdf`] — key derivation for session/data keys.
//! * [`drbg`] — HMAC-DRBG; all key generation in the workspace is
//!   deterministic given a seed, which keeps experiments reproducible.
//! * [`authenc`] — encrypt-then-MAC authenticated encryption
//!   (AES-CTR + HMAC or PMAC), the Shield's core mechanism.
//! * [`ecies`] — asymmetric encryption (ephemeral X25519 + HKDF +
//!   authenticated encryption) used for the Load Key path (Fig. 3, step 8).
//!
//! # Example
//!
//! ```
//! use shef_crypto::authenc::{AuthEncKey, MacAlgorithm};
//!
//! let mut key = AuthEncKey::from_bytes([7u8; 32], MacAlgorithm::HmacSha256);
//! let sealed = key.seal(b"sensitive accelerator data", b"region-0");
//! let opened = key.open(&sealed, b"region-0").expect("tag verifies");
//! assert_eq!(opened, b"sensitive accelerator data");
//! ```
//!
//! # Security note
//!
//! This is a research reproduction executed inside a simulator. The
//! implementations are correct against the standard test vectors but have
//! not been hardened against real-world side channels; do not use them to
//! protect production data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod authenc;
pub mod ct;
pub mod ctr;
pub mod drbg;
pub mod ecies;
pub mod ed25519;
pub mod edwards;
pub mod field25519;
pub mod gcm;
pub mod ghash;
pub mod hkdf;
pub mod hmac;
pub mod pmac;
pub mod scalar25519;
pub mod sha2;
pub mod x25519;

mod hex;

pub use hex::{from_hex, to_hex};

/// Error returned when an authentication tag or signature fails to verify.
///
/// The variants deliberately carry no plaintext-derived data, matching the
/// behaviour of a hardware engine that only raises an error line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CryptoError {
    /// A MAC tag did not match the expected value.
    TagMismatch,
    /// A signature failed verification.
    BadSignature,
    /// An encoded public key or point was not a valid curve element.
    InvalidPoint,
    /// Input had an invalid length for the requested operation.
    InvalidLength,
}

impl core::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CryptoError::TagMismatch => write!(f, "authentication tag mismatch"),
            CryptoError::BadSignature => write!(f, "signature verification failed"),
            CryptoError::InvalidPoint => write!(f, "invalid curve point encoding"),
            CryptoError::InvalidLength => write!(f, "invalid input length"),
        }
    }
}

impl std::error::Error for CryptoError {}
