//! X25519 Diffie–Hellman key exchange (RFC 7748).
//!
//! ShEF's remote attestation derives a shared `SessionKey` between the
//! Security Kernel (holding the Attestation Key) and the IP Vendor
//! (holding an ephemeral Verification Key) via a Diffie–Hellman key
//! exchange (Fig. 3: `SessionKey = DHKE(VerifKey, AttestKey)`). This
//! module provides that primitive.
//!
//! # Example
//!
//! ```
//! use shef_crypto::x25519;
//!
//! let alice_secret = [1u8; 32];
//! let bob_secret = [2u8; 32];
//! let alice_public = x25519::public_key(&alice_secret);
//! let bob_public = x25519::public_key(&bob_secret);
//! assert_eq!(
//!     x25519::shared_secret(&alice_secret, &bob_public),
//!     x25519::shared_secret(&bob_secret, &alice_public),
//! );
//! ```

use crate::field25519::FieldElement;

/// The standard base point u-coordinate (9).
pub const BASEPOINT_U: [u8; 32] = {
    let mut b = [0u8; 32];
    b[0] = 9;
    b
};

/// Clamps a 32-byte secret into an X25519 scalar per RFC 7748.
#[must_use]
pub fn clamp(mut k: [u8; 32]) -> [u8; 32] {
    k[0] &= 248;
    k[31] &= 127;
    k[31] |= 64;
    k
}

/// Computes the public key for `secret` (scalar multiplication of the
/// base point).
#[must_use]
pub fn public_key(secret: &[u8; 32]) -> [u8; 32] {
    scalar_mult(secret, &BASEPOINT_U)
}

/// Computes the shared secret between `secret` and a peer's public key.
///
/// The output is the raw u-coordinate; callers should run it through a
/// KDF ([`crate::hkdf`]) before use as a symmetric key, which is what
/// [`crate::ecies`] and the attestation protocol do.
#[must_use]
pub fn shared_secret(secret: &[u8; 32], peer_public: &[u8; 32]) -> [u8; 32] {
    scalar_mult(secret, peer_public)
}

/// The X25519 function: Montgomery-ladder scalar multiplication on the
/// u-coordinate.
#[must_use]
pub fn scalar_mult(scalar: &[u8; 32], u: &[u8; 32]) -> [u8; 32] {
    let k = clamp(*scalar);
    let x1 = FieldElement::from_bytes(u);
    let mut x2 = FieldElement::ONE;
    let mut z2 = FieldElement::ZERO;
    let mut x3 = x1;
    let mut z3 = FieldElement::ONE;
    let mut swap = false;

    for t in (0..255).rev() {
        let k_t = (k[t / 8] >> (t % 8)) & 1 == 1;
        swap ^= k_t;
        if swap {
            core::mem::swap(&mut x2, &mut x3);
            core::mem::swap(&mut z2, &mut z3);
        }
        swap = k_t;

        let a = x2.add(&z2);
        let aa = a.square();
        let b = x2.sub(&z2);
        let bb = b.square();
        let e = aa.sub(&bb);
        let c = x3.add(&z3);
        let d = x3.sub(&z3);
        let da = d.mul(&a);
        let cb = c.mul(&b);
        x3 = da.add(&cb).square();
        z3 = x1.mul(&da.sub(&cb).square());
        x2 = aa.mul(&bb);
        z2 = e.mul(&aa.add(&e.mul_small(121_665)));
    }
    if swap {
        core::mem::swap(&mut x2, &mut x3);
        core::mem::swap(&mut z2, &mut z3);
    }
    x2.mul(&z2.invert()).to_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_hex, to_hex};

    #[test]
    fn rfc7748_vector_1() {
        let k: [u8; 32] =
            from_hex("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4")
                .unwrap()
                .try_into()
                .unwrap();
        let u: [u8; 32] =
            from_hex("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c")
                .unwrap()
                .try_into()
                .unwrap();
        assert_eq!(
            to_hex(&scalar_mult(&k, &u)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        );
    }

    #[test]
    fn rfc7748_vector_2() {
        let k: [u8; 32] =
            from_hex("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d")
                .unwrap()
                .try_into()
                .unwrap();
        let u: [u8; 32] =
            from_hex("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493")
                .unwrap()
                .try_into()
                .unwrap();
        assert_eq!(
            to_hex(&scalar_mult(&k, &u)),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957"
        );
    }

    #[test]
    fn rfc7748_iterated_once() {
        let mut k = BASEPOINT_U;
        let u = BASEPOINT_U;
        k = scalar_mult(&k, &u);
        assert_eq!(
            to_hex(&k),
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079"
        );
    }

    #[test]
    fn diffie_hellman_agreement() {
        let a = [0x11u8; 32];
        let b = [0x22u8; 32];
        let pa = public_key(&a);
        let pb = public_key(&b);
        let s1 = shared_secret(&a, &pb);
        let s2 = shared_secret(&b, &pa);
        assert_eq!(s1, s2);
        assert_ne!(s1, [0u8; 32]);
    }

    #[test]
    fn clamping_is_idempotent() {
        let k = [0xffu8; 32];
        assert_eq!(clamp(clamp(k)), clamp(k));
        let c = clamp(k);
        assert_eq!(c[0] & 7, 0);
        assert_eq!(c[31] & 0x80, 0);
        assert_eq!(c[31] & 0x40, 0x40);
    }
}
