//! Property-based tests over the cryptographic substrate.

use proptest::prelude::*;
use shef_crypto::aes::{Aes, AesKeySize};
use shef_crypto::authenc::{AuthEncKey, MacAlgorithm, Sealed};
use shef_crypto::ctr::{ctr_xor, ChunkIv};
use shef_crypto::drbg::HmacDrbg;
use shef_crypto::ecies::{decrypt, encrypt, EciesKeyPair};
use shef_crypto::ed25519::SigningKey;
use shef_crypto::field25519::FieldElement;
use shef_crypto::gcm::AesGcm;
use shef_crypto::hkdf;
use shef_crypto::hmac::hmac_sha256;
use shef_crypto::pmac::pmac;
use shef_crypto::scalar25519::Scalar;
use shef_crypto::sha2::{Sha256, Sha512};
use shef_crypto::x25519;

proptest! {
    #[test]
    fn aes128_round_trip(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        let aes = Aes::new_128(&key);
        prop_assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);
    }

    #[test]
    fn aes256_round_trip(key in any::<[u8; 32]>(), block in any::<[u8; 16]>()) {
        let aes = Aes::new_256(&key);
        prop_assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);
        prop_assert_eq!(aes.key_size(), AesKeySize::Aes256);
    }

    #[test]
    fn ctr_involution(key in any::<[u8; 16]>(), nonce in any::<[u8; 8]>(),
                      idx in any::<u32>(), data in proptest::collection::vec(any::<u8>(), 0..600)) {
        let aes = Aes::new_128(&key);
        let iv = ChunkIv::for_chunk(nonce, idx);
        let mut buf = data.clone();
        ctr_xor(&aes, &iv, &mut buf);
        ctr_xor(&aes, &iv, &mut buf);
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn sha256_incremental_any_split(data in proptest::collection::vec(any::<u8>(), 0..512),
                                    split in 0usize..512) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn sha512_incremental_any_split(data in proptest::collection::vec(any::<u8>(), 0..512),
                                    split in 0usize..512) {
        let split = split.min(data.len());
        let mut h = Sha512::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha512::digest(&data));
    }

    #[test]
    fn hmac_key_sensitivity(key1 in any::<[u8; 16]>(), key2 in any::<[u8; 16]>(),
                            msg in proptest::collection::vec(any::<u8>(), 0..128)) {
        prop_assume!(key1 != key2);
        prop_assert_ne!(hmac_sha256(&key1, &msg), hmac_sha256(&key2, &msg));
    }

    #[test]
    fn pmac_message_sensitivity(key in any::<[u8; 16]>(),
                                msg in proptest::collection::vec(any::<u8>(), 0..128),
                                flip_byte in any::<u8>(), flip_bit in 0u8..8) {
        prop_assume!(!msg.is_empty());
        let aes = Aes::new_128(&key);
        let tag = pmac(&aes, &msg);
        let mut tampered = msg.clone();
        let idx = (flip_byte as usize) % tampered.len();
        tampered[idx] ^= 1 << flip_bit;
        prop_assert_ne!(pmac(&aes, &tampered), tag);
    }

    #[test]
    fn authenc_round_trip_and_tamper(master in any::<[u8; 32]>(),
                                     pt in proptest::collection::vec(any::<u8>(), 0..300),
                                     ad in proptest::collection::vec(any::<u8>(), 0..32)) {
        for alg in [MacAlgorithm::HmacSha256, MacAlgorithm::PmacAes, MacAlgorithm::AesGcm] {
            let mut key = AuthEncKey::from_bytes(master, alg);
            let sealed = key.seal(&pt, &ad);
            prop_assert_eq!(key.open(&sealed, &ad).unwrap(), pt.clone());
            if !sealed.ciphertext.is_empty() {
                let mut bad = sealed.clone();
                bad.ciphertext[0] ^= 1;
                prop_assert!(key.open(&bad, &ad).is_err());
            }
            let mut bad_tag = sealed;
            bad_tag.tag[0] ^= 1;
            prop_assert!(key.open(&bad_tag, &ad).is_err());
        }
    }

    #[test]
    fn sealed_wire_round_trip(iv in any::<[u8; 12]>(), tag in any::<[u8; 16]>(),
                              ct in proptest::collection::vec(any::<u8>(), 0..100)) {
        let sealed = Sealed { iv, tag, ciphertext: ct };
        prop_assert_eq!(Sealed::from_bytes(&sealed.to_bytes()).unwrap(), sealed);
    }

    #[test]
    fn field_ring_axioms(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let fa = FieldElement::from_u64(a);
        let fb = FieldElement::from_u64(b);
        let fc = FieldElement::from_u64(c);
        prop_assert_eq!(fa.add(&fb), fb.add(&fa));
        prop_assert_eq!(fa.mul(&fb), fb.mul(&fa));
        prop_assert_eq!(fa.mul(&fb.add(&fc)), fa.mul(&fb).add(&fa.mul(&fc)));
    }

    #[test]
    fn field_inversion(a in 1u64..) {
        let fa = FieldElement::from_u64(a);
        prop_assert_eq!(fa.mul(&fa.invert()), FieldElement::ONE);
    }

    #[test]
    fn field_bytes_round_trip(mut bytes in any::<[u8; 32]>()) {
        bytes[31] &= 0x7f;
        // Skip the 19 non-canonical encodings >= p.
        let fe = FieldElement::from_bytes(&bytes);
        let re = FieldElement::from_bytes(&fe.to_bytes());
        prop_assert_eq!(fe, re);
    }

    #[test]
    fn scalar_ring_axioms(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        let sa = Scalar::from_bytes(&a);
        let sb = Scalar::from_bytes(&b);
        prop_assert_eq!(sa.add(&sb), sb.add(&sa));
        prop_assert_eq!(sa.mul(&sb), sb.mul(&sa));
        prop_assert_eq!(sa.mul(&Scalar::ONE), sa);
        prop_assert_eq!(sa.add(&Scalar::ZERO), sa);
    }

    #[test]
    fn x25519_commutes(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        let pa = x25519::public_key(&a);
        let pb = x25519::public_key(&b);
        prop_assert_eq!(x25519::shared_secret(&a, &pb), x25519::shared_secret(&b, &pa));
    }

    #[test]
    fn ed25519_sign_verify(seed in any::<[u8; 32]>(),
                           msg in proptest::collection::vec(any::<u8>(), 0..200)) {
        let key = SigningKey::from_seed(&seed);
        let sig = key.sign(&msg);
        prop_assert!(key.verifying_key().verify(&msg, &sig).is_ok());
    }

    #[test]
    fn ed25519_rejects_bit_flips(seed in any::<[u8; 32]>(),
                                 msg in proptest::collection::vec(any::<u8>(), 1..64),
                                 idx in any::<u8>(), bit in 0u8..8) {
        let key = SigningKey::from_seed(&seed);
        let sig = key.sign(&msg);
        let mut tampered = msg.clone();
        let i = (idx as usize) % tampered.len();
        tampered[i] ^= 1 << bit;
        prop_assume!(tampered != msg);
        prop_assert!(key.verifying_key().verify(&tampered, &sig).is_err());
    }

    #[test]
    fn ecies_round_trip(seed in any::<[u8; 16]>(),
                        pt in proptest::collection::vec(any::<u8>(), 0..200)) {
        let kp = EciesKeyPair::from_seed(&seed);
        let ct = encrypt(&kp.public_key(), &pt, b"ad");
        prop_assert_eq!(decrypt(&kp, &ct, b"ad").unwrap(), pt);
    }

    #[test]
    fn hkdf_prefix_property(ikm in any::<[u8; 16]>(), len_a in 1usize..64, len_b in 1usize..64) {
        let (short, long) = (len_a.min(len_b), len_a.max(len_b));
        let a = hkdf::derive(b"salt", &ikm, b"info", short);
        let b = hkdf::derive(b"salt", &ikm, b"info", long);
        prop_assert_eq!(&b[..short], &a[..]);
    }

    #[test]
    fn drbg_deterministic(seed in proptest::collection::vec(any::<u8>(), 1..32)) {
        let mut a = HmacDrbg::from_seed(&seed);
        let mut b = HmacDrbg::from_seed(&seed);
        prop_assert_eq!(a.generate_array::<48>(), b.generate_array::<48>());
    }

    #[test]
    fn gcm_round_trip_and_tamper(key in any::<[u8; 16]>(), iv in any::<[u8; 12]>(),
                                 aad in proptest::collection::vec(any::<u8>(), 0..64),
                                 pt in proptest::collection::vec(any::<u8>(), 0..300),
                                 flip in any::<(usize, u8)>()) {
        let gcm = AesGcm::new(&key);
        let (ct, tag) = gcm.seal(&iv, &aad, &pt);
        prop_assert_eq!(ct.len(), pt.len());
        prop_assert_eq!(gcm.open(&iv, &aad, &ct, &tag).unwrap(), pt);
        // Any single-bit flip in the ciphertext must be rejected.
        if !ct.is_empty() && flip.1 != 0 {
            let mut bad = ct.clone();
            bad[flip.0 % ct.len()] ^= flip.1;
            prop_assert!(gcm.open(&iv, &aad, &bad, &tag).is_err());
        }
    }

    #[test]
    fn ghash_is_linear_in_xor(h in any::<[u8; 16]>(),
                              a in any::<[u8; 16]>(), b in any::<[u8; 16]>()) {
        // GHASH of a single block X is X·H, so it is XOR-linear in X —
        // a structural property the GF(2^128) multiplier must satisfy.
        use shef_crypto::ghash::gf128_mul;
        let hu = u128::from_be_bytes(h);
        let au = u128::from_be_bytes(a);
        let bu = u128::from_be_bytes(b);
        prop_assert_eq!(
            gf128_mul(au ^ bu, hu),
            gf128_mul(au, hu) ^ gf128_mul(bu, hu)
        );
    }
}
