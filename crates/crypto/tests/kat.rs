//! Known-answer tests pinning the from-scratch crypto stack to the
//! published standards: AES-GCM (NIST SP 800-38D / McGrew–Viega test
//! vectors), HMAC-SHA-256 (RFC 4231), HKDF-SHA-256 (RFC 5869) and
//! Ed25519 (RFC 8032 §7.1). These complement the round-trip and
//! property tests: a self-consistent but non-standard implementation
//! passes those and fails here.

use shef_crypto::ed25519::{Signature, SigningKey, VerifyingKey};
use shef_crypto::gcm::AesGcm;
use shef_crypto::{from_hex, to_hex};

fn h(s: &str) -> Vec<u8> {
    from_hex(s).expect("valid hex in test vector")
}

fn arr<const N: usize>(s: &str) -> [u8; N] {
    h(s).try_into().expect("vector length matches")
}

// ---------------------------------------------------------------------
// AES-GCM — McGrew & Viega "The Galois/Counter Mode of Operation",
// appendix B (the same vectors NIST SP 800-38D validation uses).
// ---------------------------------------------------------------------

#[test]
fn aes128_gcm_test_case_1_empty() {
    let gcm = AesGcm::new(&[0u8; 16]);
    let (ct, tag) = gcm.seal(&[0u8; 12], &[], &[]);
    assert!(ct.is_empty());
    assert_eq!(to_hex(&tag), "58e2fccefa7e3061367f1d57a4e7455a");
    assert_eq!(
        gcm.open(&[0u8; 12], &[], &[], &tag).unwrap(),
        Vec::<u8>::new()
    );
}

#[test]
fn aes128_gcm_test_case_2_single_block() {
    let gcm = AesGcm::new(&[0u8; 16]);
    let (ct, tag) = gcm.seal(&[0u8; 12], &[], &[0u8; 16]);
    assert_eq!(to_hex(&ct), "0388dace60b6a392f328c2b971b2fe78");
    assert_eq!(to_hex(&tag), "ab6e47d42cec13bdf53a67b21257bddf");
}

#[test]
fn aes128_gcm_test_case_3_four_blocks() {
    let gcm = AesGcm::new(&h("feffe9928665731c6d6a8f9467308308"));
    let iv: [u8; 12] = arr("cafebabefacedbaddecaf888");
    let pt = h(
        "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
                1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
    );
    let (ct, tag) = gcm.seal(&iv, &[], &pt);
    assert_eq!(
        to_hex(&ct),
        "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
         21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985"
    );
    assert_eq!(to_hex(&tag), "4d5c2af327cd64a62cf35abd2ba6fab4");
}

#[test]
fn aes128_gcm_test_case_4_with_aad() {
    let gcm = AesGcm::new(&h("feffe9928665731c6d6a8f9467308308"));
    let iv: [u8; 12] = arr("cafebabefacedbaddecaf888");
    let aad = h("feedfacedeadbeeffeedfacedeadbeefabaddad2");
    let pt = h(
        "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
                1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
    );
    let (ct, tag) = gcm.seal(&iv, &aad, &pt);
    assert_eq!(
        to_hex(&ct),
        "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
         21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091"
    );
    assert_eq!(to_hex(&tag), "5bc94fbc3221a5db94fae95ae7121a47");
    assert_eq!(gcm.open(&iv, &aad, &ct, &tag).unwrap(), pt);
    // A flipped AAD bit must fail authentication.
    let mut bad_aad = aad.clone();
    bad_aad[0] ^= 1;
    assert!(gcm.open(&iv, &bad_aad, &ct, &tag).is_err());
}

#[test]
fn aes256_gcm_test_cases_13_and_14() {
    let gcm = AesGcm::new(&[0u8; 32]);
    let (_, tag) = gcm.seal(&[0u8; 12], &[], &[]);
    assert_eq!(to_hex(&tag), "530f8afbc74536b9a963b4f1c4cb738b");
    let (ct, tag) = gcm.seal(&[0u8; 12], &[], &[0u8; 16]);
    assert_eq!(to_hex(&ct), "cea7403d4d606b6e074ec5d3baf39d18");
    assert_eq!(to_hex(&tag), "d0d1c8a799996bf0265b98b5d48ab919");
}

// ---------------------------------------------------------------------
// HMAC-SHA-256 — RFC 4231
// ---------------------------------------------------------------------

#[test]
fn hmac_sha256_rfc4231_case_1() {
    let tag = shef_crypto::hmac::hmac_sha256(&[0x0bu8; 20], b"Hi There");
    assert_eq!(
        to_hex(&tag),
        "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    );
}

#[test]
fn hmac_sha256_rfc4231_case_2() {
    let tag = shef_crypto::hmac::hmac_sha256(b"Jefe", b"what do ya want for nothing?");
    assert_eq!(
        to_hex(&tag),
        "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    );
}

#[test]
fn hmac_sha256_rfc4231_case_3_long_data() {
    let tag = shef_crypto::hmac::hmac_sha256(&[0xaau8; 20], &[0xddu8; 50]);
    assert_eq!(
        to_hex(&tag),
        "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    );
}

#[test]
fn hmac_sha256_rfc4231_case_6_oversized_key() {
    // A 131-byte key exercises the hash-the-key-first path.
    let tag = shef_crypto::hmac::hmac_sha256(
        &[0xaau8; 131],
        b"Test Using Larger Than Block-Size Key - Hash Key First",
    );
    assert_eq!(
        to_hex(&tag),
        "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    );
}

// ---------------------------------------------------------------------
// HKDF-SHA-256 — RFC 5869
// ---------------------------------------------------------------------

#[test]
fn hkdf_rfc5869_test_case_1() {
    let ikm = [0x0bu8; 22];
    let salt = h("000102030405060708090a0b0c");
    let info = h("f0f1f2f3f4f5f6f7f8f9");
    let prk = shef_crypto::hkdf::extract(&salt, &ikm);
    assert_eq!(
        to_hex(&prk),
        "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
    );
    let okm = shef_crypto::hkdf::expand(&prk, &info, 42);
    assert_eq!(
        to_hex(&okm),
        "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf\
         34007208d5b887185865"
    );
    assert_eq!(shef_crypto::hkdf::derive(&salt, &ikm, &info, 42), okm);
}

#[test]
fn hkdf_rfc5869_test_case_3_empty_salt_and_info() {
    let ikm = [0x0bu8; 22];
    let prk = shef_crypto::hkdf::extract(&[], &ikm);
    let okm = shef_crypto::hkdf::expand(&prk, &[], 42);
    assert_eq!(
        to_hex(&okm),
        "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d\
         9d201395faa4b61a96c8"
    );
}

// ---------------------------------------------------------------------
// Ed25519 — RFC 8032 §7.1
// ---------------------------------------------------------------------

#[test]
fn ed25519_rfc8032_test_1_empty_message() {
    let seed: [u8; 32] = arr("9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60");
    let sk = SigningKey::from_seed(&seed);
    let vk = sk.verifying_key();
    assert_eq!(
        to_hex(&vk.0),
        "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a"
    );
    let sig = sk.sign(&[]);
    assert_eq!(
        to_hex(&sig.0),
        "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155\
         5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"
    );
    vk.verify(&[], &sig).expect("RFC 8032 signature verifies");
}

#[test]
fn ed25519_rfc8032_test_2_one_byte_message() {
    let seed: [u8; 32] = arr("4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb");
    let sk = SigningKey::from_seed(&seed);
    let vk = sk.verifying_key();
    assert_eq!(
        to_hex(&vk.0),
        "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c"
    );
    let msg = [0x72u8];
    let sig = sk.sign(&msg);
    assert_eq!(
        to_hex(&sig.0),
        "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da\
         085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"
    );
    vk.verify(&msg, &sig).expect("RFC 8032 signature verifies");
    // The signature must not verify for a different message or key.
    assert!(vk.verify(&[0x73], &sig).is_err());
    let other = VerifyingKey(arr(
        "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a",
    ));
    assert!(other.verify(&msg, &sig).is_err());
    // And a corrupted signature must be rejected, not misparsed.
    let mut bad = sig.0;
    bad[0] ^= 1;
    let bad_sig = Signature(bad);
    assert!(vk.verify(&msg, &bad_sig).is_err());
}
