//! The Data Owner's remote verifier: challenges, quote verification,
//! and sealed DEK provisioning.
//!
//! The verifier is the off-device end of the protocol. Per attestation
//! round it runs this state machine, keyed by the challenge nonce:
//!
//! ```text
//!              challenge()                verify_and_provision(quote)
//!  ┌───────┐ ──────────────▶ ┌─────────────┐ ────────────────────────▶ ┌──────────┐
//!  │ Fresh │                 │ Outstanding │   all five checks pass    │ Consumed │
//!  └───────┘                 └─────────────┘                           └──────────┘
//!                               ▲       │                                   │
//!                               └───────┘                                   │ same nonce again
//!                        any check fails: the nonce                        ▼
//!                        STAYS outstanding (a forgery             AttestError::ReplayedNonce
//!                        cannot burn the honest session)
//! ```
//!
//! Checks run in a fixed order so each attack maps to one typed error:
//! nonce freshness ([`AttestError::UnknownNonce`] /
//! [`AttestError::ReplayedNonce`]), challenge binding, certificate
//! chain ([`AttestError::CertChain`]), quote signature
//! ([`AttestError::BadSignature`]), and finally measurement registry
//! membership ([`AttestError::UnknownMeasurement`]).
//!
//! # Example
//!
//! ```
//! use shef_attest::{AttestationEnvironment, RemoteVerifier};
//!
//! // The environment wires a verifier to a booted kernel; the raw
//! // protocol steps are still available individually:
//! let mut env = AttestationEnvironment::new(b"verifier-doc")?;
//! let challenge = env.verifier_mut().challenge();
//! let quote = env.kernel_mut().quote(&challenge)?;
//! let ticket = env
//!     .verifier_mut()
//!     .verify_and_provision(&quote, "alice", [9u8; 32])?;
//! let grant = env.kernel_mut().redeem(&ticket)?;
//! assert_eq!(grant.data_key(), [9u8; 32]);
//! # Ok::<(), shef_attest::AttestError>(())
//! ```

use std::collections::{BTreeMap, BTreeSet};

use shef_crypto::drbg::HmacDrbg;
use shef_crypto::ecies::{EciesKeyPair, EciesPublicKey};
use shef_crypto::ed25519::{Signature, SigningKey, VerifyingKey};
use shef_crypto::hkdf;
use shef_crypto::sha2::Sha256;
use shef_telemetry::{Counter, Telemetry};

use crate::enc;
use crate::identity::{AkCert, DeviceCert};
use crate::measure::{Measurement, MeasurementRegistry};
use crate::ticket::{session_key, AttestationTicket, SealedDek};
use crate::AttestError;

/// Message tag signed by the Attestation Key over a quote.
const QUOTE_TAG: &[u8] = b"shef.attest.quote.v1";
/// HKDF label for the verifier's long-term ticket-signing key.
const VERIFIER_KEY_LABEL: &[u8] = b"shef.attest.verifier.v1";

/// A verifier challenge: a fresh nonce plus the verifier's ephemeral
/// X25519 public key for this session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Challenge {
    /// Freshness nonce; also the session id everywhere downstream.
    pub nonce: [u8; 32],
    /// Verifier's ephemeral key-exchange public key.
    pub verifier_kem: [u8; 32],
}

/// A Security-Kernel quote: the measurement and session binding, the
/// device and Attestation-Key certificates, and the AK signature over
/// all of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quote {
    /// The measurement the kernel attests to.
    pub measurement: Measurement,
    /// Echo of the challenge nonce.
    pub nonce: [u8; 32],
    /// Echo of the verifier's ephemeral key-exchange public key.
    pub verifier_kem: [u8; 32],
    /// The quote-signing half of the AK.
    pub ak_public: VerifyingKey,
    /// The key-exchange half of the AK.
    pub kem_public: [u8; 32],
    /// Manufacturer-issued device certificate.
    pub device_cert: DeviceCert,
    /// Device-issued Attestation-Key certificate.
    pub ak_cert: AkCert,
    /// AK signature over the quote message.
    pub signature: Signature,
}

impl Quote {
    fn message(
        measurement: &Measurement,
        nonce: &[u8; 32],
        verifier_kem: &[u8; 32],
        ak_public: &VerifyingKey,
        kem_public: &[u8; 32],
        device_cert: &DeviceCert,
        ak_cert: &AkCert,
    ) -> Vec<u8> {
        let mut msg = Vec::new();
        enc::put_bytes(&mut msg, QUOTE_TAG);
        msg.extend_from_slice(&measurement.0);
        msg.extend_from_slice(nonce);
        msg.extend_from_slice(verifier_kem);
        msg.extend_from_slice(&ak_public.0);
        msg.extend_from_slice(kem_public);
        msg.extend_from_slice(&Sha256::digest(&device_cert.to_bytes()));
        msg.extend_from_slice(&Sha256::digest(&ak_cert.to_bytes()));
        msg
    }

    /// Signs a quote (Security Kernel side).
    pub(crate) fn sign(
        ak: &SigningKey,
        measurement: Measurement,
        challenge: &Challenge,
        kem_public: [u8; 32],
        device_cert: DeviceCert,
        ak_cert: AkCert,
    ) -> Self {
        let ak_public = ak.verifying_key();
        let message = Self::message(
            &measurement,
            &challenge.nonce,
            &challenge.verifier_kem,
            &ak_public,
            &kem_public,
            &device_cert,
            &ak_cert,
        );
        Quote {
            measurement,
            nonce: challenge.nonce,
            verifier_kem: challenge.verifier_kem,
            ak_public,
            kem_public,
            device_cert,
            ak_cert,
            signature: ak.sign(&message),
        }
    }

    /// Verifies the AK signature (one of the five checks the verifier
    /// runs; exposed so tests can probe it in isolation).
    ///
    /// # Errors
    ///
    /// Returns [`AttestError::BadSignature`] if the signature does not
    /// verify under the quote's own `ak_public`.
    pub fn verify_signature(&self) -> Result<(), AttestError> {
        let message = Self::message(
            &self.measurement,
            &self.nonce,
            &self.verifier_kem,
            &self.ak_public,
            &self.kem_public,
            &self.device_cert,
            &self.ak_cert,
        );
        self.ak_public
            .verify(&message, &self.signature)
            .map_err(|_| AttestError::BadSignature("quote signature invalid".into()))
    }

    /// Canonical wire encoding.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.measurement.0);
        out.extend_from_slice(&self.nonce);
        out.extend_from_slice(&self.verifier_kem);
        out.extend_from_slice(&self.ak_public.0);
        out.extend_from_slice(&self.kem_public);
        enc::put_bytes(&mut out, &self.device_cert.to_bytes());
        enc::put_bytes(&mut out, &self.ak_cert.to_bytes());
        out.extend_from_slice(&self.signature.0);
        out
    }

    /// Parses the [`Quote::to_bytes`] encoding. Parsing does not
    /// authenticate — the verifier's checks do.
    ///
    /// # Errors
    ///
    /// Returns [`AttestError::Malformed`] on truncation.
    pub fn from_bytes(mut bytes: &[u8]) -> Result<Self, AttestError> {
        let measurement = Measurement(enc::take_array::<32>(&mut bytes)?);
        let nonce = enc::take_array::<32>(&mut bytes)?;
        let verifier_kem = enc::take_array::<32>(&mut bytes)?;
        let ak_public = VerifyingKey(enc::take_array::<32>(&mut bytes)?);
        let kem_public = enc::take_array::<32>(&mut bytes)?;
        let device_cert = DeviceCert::from_bytes(enc::take_bytes(&mut bytes)?)?;
        let ak_cert = AkCert::from_bytes(enc::take_bytes(&mut bytes)?)?;
        let signature = Signature(enc::take_array::<64>(&mut bytes)?);
        enc::expect_end(bytes)?;
        Ok(Quote {
            measurement,
            nonce,
            verifier_kem,
            ak_public,
            kem_public,
            device_cert,
            ak_cert,
            signature,
        })
    }
}

/// Counters the verifier bumps when a registry is attached.
struct VerifierTelemetry {
    challenges: Counter,
    verified: Counter,
    rejected: Counter,
}

/// The Data Owner's remote verifier. See the module docs for the
/// session state machine and check order.
pub struct RemoteVerifier {
    signing: SigningKey,
    manufacturer_root: VerifyingKey,
    registry: MeasurementRegistry,
    drbg: HmacDrbg,
    /// Nonce → the ephemeral key pair issued with it. Entries leave
    /// this map only through successful verification.
    outstanding: BTreeMap<[u8; 32], EciesKeyPair>,
    /// Nonces consumed by successful verifications (replay blocklist).
    consumed: BTreeSet<[u8; 32]>,
    tele: Option<VerifierTelemetry>,
}

impl core::fmt::Debug for RemoteVerifier {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RemoteVerifier")
            .field("public_key", &self.signing.verifying_key())
            .field("outstanding", &self.outstanding.len())
            .field("consumed", &self.consumed.len())
            .finish_non_exhaustive()
    }
}

impl RemoteVerifier {
    /// Creates a verifier that pins `manufacturer_root` and derives its
    /// long-term ticket-signing key and nonce DRBG from `seed`.
    #[must_use]
    pub fn from_seed(seed: &[u8], manufacturer_root: VerifyingKey) -> Self {
        let signing_seed = hkdf::derive_key32(VERIFIER_KEY_LABEL, seed, b"ticket-signing");
        RemoteVerifier {
            signing: SigningKey::from_seed(&signing_seed),
            manufacturer_root,
            registry: MeasurementRegistry::new(),
            drbg: HmacDrbg::from_seed(seed),
            outstanding: BTreeMap::new(),
            consumed: BTreeSet::new(),
            tele: None,
        }
    }

    /// Registers `shield.attest.verifier.*` counters on `telemetry`.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.tele = Some(VerifierTelemetry {
            challenges: telemetry.counter("shield.attest.verifier.challenges"),
            verified: telemetry.counter("shield.attest.verifier.verified"),
            rejected: telemetry.counter("shield.attest.verifier.rejected"),
        });
    }

    /// The verifier's ticket-signing public key — what services pin as
    /// their trusted verifier.
    #[must_use]
    pub fn public_key(&self) -> VerifyingKey {
        self.signing.verifying_key()
    }

    /// Publishes a known-good measurement to the registry.
    pub fn publish_measurement(&mut self, measurement: Measurement) {
        self.registry.publish(measurement);
    }

    /// Read access to the known-good registry.
    #[must_use]
    pub fn registry(&self) -> &MeasurementRegistry {
        &self.registry
    }

    /// Issues a fresh challenge: a DRBG nonce and a session-ephemeral
    /// X25519 key. The nonce becomes *outstanding* until a quote
    /// verifies against it.
    pub fn challenge(&mut self) -> Challenge {
        let nonce = self.drbg.generate_array::<32>();
        let ephemeral = EciesKeyPair::generate(&mut self.drbg);
        let verifier_kem = ephemeral.public_key().0;
        self.outstanding.insert(nonce, ephemeral);
        if let Some(t) = &self.tele {
            t.challenges.inc();
        }
        Challenge {
            nonce,
            verifier_kem,
        }
    }

    fn check_quote(&self, quote: &Quote) -> Result<(), AttestError> {
        // 1. Nonce freshness. Consumed beats unknown so a replayed
        //    genuine transcript is named as a replay, not a forgery.
        if self.consumed.contains(&quote.nonce) {
            return Err(AttestError::ReplayedNonce);
        }
        let Some(ephemeral) = self.outstanding.get(&quote.nonce) else {
            return Err(AttestError::UnknownNonce);
        };
        // 2. Challenge binding: the quote must echo the ephemeral key we
        //    issued with this nonce, or the session key would be
        //    attacker-influenced.
        if quote.verifier_kem != ephemeral.public_key().0 {
            return Err(AttestError::Malformed(
                "quote echoes a different verifier key than the challenge".into(),
            ));
        }
        // 3. Certificate chain, root first.
        quote.device_cert.verify(&self.manufacturer_root)?;
        quote.ak_cert.verify(&quote.device_cert.device_public)?;
        // 4. The certified AK must be the one the quote claims to use.
        if quote.ak_cert.measurement != quote.measurement
            || quote.ak_cert.ak_public != quote.ak_public
            || quote.ak_cert.kem_public != quote.kem_public
        {
            return Err(AttestError::CertChain(
                "attestation-key certificate does not match the quote".into(),
            ));
        }
        // 5. Quote signature, then measurement policy.
        quote.verify_signature()?;
        self.registry.require(&quote.measurement)
    }

    /// Runs the full verification (see module docs for the order) and,
    /// on success, consumes the nonce, seals `dek` to the enclave
    /// session, and issues a signed [`AttestationTicket`] bound to
    /// `tenant`.
    ///
    /// On failure the nonce **stays outstanding**: an attacker-supplied
    /// quote cannot invalidate the honest kernel's pending session.
    ///
    /// # Errors
    ///
    /// Each check failure maps to its own [`AttestError`] variant —
    /// [`AttestError::ReplayedNonce`], [`AttestError::UnknownNonce`],
    /// [`AttestError::Malformed`], [`AttestError::CertChain`],
    /// [`AttestError::BadSignature`] or
    /// [`AttestError::UnknownMeasurement`].
    pub fn verify_and_provision(
        &mut self,
        quote: &Quote,
        tenant: &str,
        dek: [u8; 32],
    ) -> Result<AttestationTicket, AttestError> {
        if let Err(e) = self.check_quote(quote) {
            if let Some(t) = &self.tele {
                t.rejected.inc();
            }
            return Err(e);
        }
        // All checks passed: consume the nonce and provision.
        let ephemeral = self
            .outstanding
            .remove(&quote.nonce)
            .expect("check_quote verified the nonce is outstanding");
        self.consumed.insert(quote.nonce);
        let shared = ephemeral.diffie_hellman(&EciesPublicKey(quote.kem_public));
        let key = session_key(
            &shared,
            &quote.nonce,
            &quote.verifier_kem,
            &quote.kem_public,
            &quote.measurement,
        );
        let sealed = SealedDek::seal(&key, tenant, &quote.measurement, &quote.nonce, &dek);
        if let Some(t) = &self.tele {
            t.verified.inc();
        }
        Ok(AttestationTicket::issue(
            &self.signing,
            tenant,
            quote.measurement,
            quote.nonce,
            sealed,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::AttestationEnvironment;

    #[test]
    fn quote_wire_round_trip() {
        let mut env = AttestationEnvironment::new(b"verifier-tests").unwrap();
        let challenge = env.verifier_mut().challenge();
        let quote = env.kernel_mut().quote(&challenge).unwrap();
        let parsed = Quote::from_bytes(&quote.to_bytes()).unwrap();
        assert_eq!(parsed, quote);
        parsed.verify_signature().unwrap();
    }

    #[test]
    fn unknown_nonce_rejected_and_session_preserved() {
        let mut env = AttestationEnvironment::new(b"verifier-tests").unwrap();
        let challenge = env.verifier_mut().challenge();
        let mut quote = env.kernel_mut().quote(&challenge).unwrap();
        quote.nonce = [0xEE; 32];
        assert_eq!(
            env.verifier_mut()
                .verify_and_provision(&quote, "alice", [1u8; 32])
                .unwrap_err(),
            AttestError::UnknownNonce
        );
        // The honest quote still verifies afterwards.
        let honest = env.kernel_mut().quote(&challenge).unwrap();
        env.verifier_mut()
            .verify_and_provision(&honest, "alice", [1u8; 32])
            .unwrap();
    }

    #[test]
    fn consumed_nonce_rejected_as_replay() {
        let mut env = AttestationEnvironment::new(b"verifier-tests").unwrap();
        let challenge = env.verifier_mut().challenge();
        let quote = env.kernel_mut().quote(&challenge).unwrap();
        env.verifier_mut()
            .verify_and_provision(&quote, "alice", [1u8; 32])
            .unwrap();
        assert_eq!(
            env.verifier_mut()
                .verify_and_provision(&quote, "alice", [1u8; 32])
                .unwrap_err(),
            AttestError::ReplayedNonce
        );
    }

    #[test]
    fn unpublished_measurement_rejected() {
        let mut env =
            AttestationEnvironment::with_bitstream(b"verifier-tests", b"unaudited image").unwrap();
        // Re-measure something the verifier never published.
        env.kernel_mut()
            .load_shield_bitstream("rogue", b"rogue image");
        let challenge = env.verifier_mut().challenge();
        let quote = env.kernel_mut().quote(&challenge).unwrap();
        assert!(matches!(
            env.verifier_mut()
                .verify_and_provision(&quote, "alice", [1u8; 32]),
            Err(AttestError::UnknownMeasurement(_))
        ));
    }
}
