//! SHA-256 measurement chain and the known-good registry.
//!
//! Measurement here is TPM-style *extension*: the chain state is a
//! SHA-256 digest, and each measured image folds in as
//! `state ← SHA-256(state ‖ SHA-256(label ‖ image))`. Extension is
//! order-sensitive and one-way, so a kernel cannot "unmeasure" a
//! bitstream it already loaded. The chain itself is device-independent
//! (the same bitstream measures to the same digest on every device,
//! which is what lets a fleet share one known-good registry); the
//! *binding* to the SPB-burned device key happens one layer up, where
//! the Attestation Key is derived from root ‖ measurement
//! (see [`crate::SecurityKernel`]).
//!
//! # Example
//!
//! ```
//! use shef_attest::MeasurementChain;
//!
//! let mut a = MeasurementChain::new();
//! a.extend("shield-bitstream", b"bitstream image");
//! let mut b = MeasurementChain::new();
//! b.extend("shield-bitstream", b"bitstream image");
//! assert_eq!(a.current(), b.current());   // deterministic
//! b.extend("shield-bitstream", b"more");
//! assert_ne!(a.current(), b.current());   // extension is one-way
//! ```

use shef_crypto::sha2::Sha256;

use crate::enc;
use crate::AttestError;

/// Domain-separation label hashed into the chain's initial state.
const CHAIN_LABEL: &[u8] = b"shef.attest.measure.v1";

/// A finalized SHA-256 measurement (the chain state at quote time).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Measurement(pub [u8; 32]);

impl core::fmt::Debug for Measurement {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Measurement({})", self.to_hex())
    }
}

impl Measurement {
    /// Lowercase hex digest, as reported in errors and registries.
    #[must_use]
    pub fn to_hex(&self) -> String {
        shef_crypto::to_hex(&self.0)
    }
}

/// An extend-only SHA-256 measurement chain (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasurementChain {
    state: [u8; 32],
}

impl Default for MeasurementChain {
    fn default() -> Self {
        Self::new()
    }
}

impl MeasurementChain {
    /// A fresh chain: `state = SHA-256("shef.attest.measure.v1")`.
    #[must_use]
    pub fn new() -> Self {
        MeasurementChain {
            state: Sha256::digest(CHAIN_LABEL),
        }
    }

    /// Extends the chain with a labelled image:
    /// `state ← SHA-256(state ‖ SHA-256(label ‖ image))`.
    pub fn extend(&mut self, label: &str, image: &[u8]) {
        let mut leaf = Vec::with_capacity(4 + label.len() + image.len());
        enc::put_bytes(&mut leaf, label.as_bytes());
        leaf.extend_from_slice(image);
        let leaf_digest = Sha256::digest(&leaf);
        let mut h = Sha256::new();
        h.update(&self.state);
        h.update(&leaf_digest);
        self.state = h.finalize();
    }

    /// The current chain state as a [`Measurement`].
    #[must_use]
    pub fn current(&self) -> Measurement {
        Measurement(self.state)
    }
}

/// The verifier-side registry of measurements it will accept: the
/// digests of Shield bitstreams the Data Owner has audited (or obtained
/// from a trusted build service). A quote whose measurement is not
/// published here fails verification with
/// [`AttestError::UnknownMeasurement`].
#[derive(Debug, Clone, Default)]
pub struct MeasurementRegistry {
    known: std::collections::BTreeSet<[u8; 32]>,
}

impl MeasurementRegistry {
    /// An empty registry (rejects everything).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a known-good measurement.
    pub fn publish(&mut self, measurement: Measurement) {
        self.known.insert(measurement.0);
    }

    /// Whether a measurement is known good.
    #[must_use]
    pub fn is_known(&self, measurement: &Measurement) -> bool {
        self.known.contains(&measurement.0)
    }

    /// Checks membership, surfacing the offending digest on failure.
    ///
    /// # Errors
    ///
    /// Returns [`AttestError::UnknownMeasurement`] when absent.
    pub fn require(&self, measurement: &Measurement) -> Result<(), AttestError> {
        if self.is_known(measurement) {
            Ok(())
        } else {
            Err(AttestError::UnknownMeasurement(measurement.to_hex()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_sensitive_extension() {
        let mut ab = MeasurementChain::new();
        ab.extend("x", b"a");
        ab.extend("x", b"b");
        let mut ba = MeasurementChain::new();
        ba.extend("x", b"b");
        ba.extend("x", b"a");
        assert_ne!(ab.current(), ba.current());
    }

    #[test]
    fn label_is_domain_separating() {
        let mut l1 = MeasurementChain::new();
        l1.extend("kernel", b"image");
        let mut l2 = MeasurementChain::new();
        l2.extend("bitstream", b"image");
        assert_ne!(l1.current(), l2.current());
    }

    #[test]
    fn registry_rejects_unknown() {
        let mut chain = MeasurementChain::new();
        chain.extend("shield-bitstream", b"good");
        let good = chain.current();
        let mut registry = MeasurementRegistry::new();
        registry.publish(good);
        assert!(registry.require(&good).is_ok());
        let mut other = MeasurementChain::new();
        other.extend("shield-bitstream", b"evil");
        assert!(matches!(
            registry.require(&other.current()),
            Err(AttestError::UnknownMeasurement(_))
        ));
    }
}
