//! Sealed DEK provisioning and the verifier-issued admission ticket.
//!
//! After a quote verifies, the verifier and the Security Kernel share
//! an authenticated session key (X25519 between the verifier's
//! per-challenge ephemeral key and the kernel's certified
//! key-exchange key, expanded over the session transcript). The
//! verifier seals the tenant's Data Encryption Key under that key with
//! AES-GCM — associated data binds the tenant name, the measurement
//! and the session nonce, so a sealed blob cannot be re-used for a
//! different tenant, bitstream or session — and issues an
//! [`AttestationTicket`] signed with its long-term key.
//!
//! Ticket life cycle:
//!
//! ```text
//!  Issued ──(SecurityKernel::redeem: GCM open ok)──▶ Redeemed(AttestedTenant)
//!    │                                                   │
//!    │ tampered / spliced sealed DEK                     │ presented to
//!    ▼                                                   ▼
//!  SealTamper (typed reject)              ShieldService::register_tenant
//! ```
//!
//! Redemption is one-shot per kernel session; the service additionally
//! rejects a ticket it has already admitted.

use shef_crypto::ed25519::{Signature, SigningKey, VerifyingKey};
use shef_crypto::gcm::{AesGcm, GCM_IV_LEN, GCM_TAG_LEN};
use shef_crypto::hkdf;
use shef_crypto::sha2::Sha256;

use crate::enc;
use crate::measure::Measurement;
use crate::AttestError;

/// Message tag signed by the verifier over a ticket.
const TICKET_TAG: &[u8] = b"shef.attest.ticket.v1";
/// HKDF label for session-key expansion.
const SESSION_LABEL: &[u8] = b"shef.attest.session.v1";
/// Associated-data tag binding sealed DEKs to their session.
const DEK_AD_TAG: &[u8] = b"shef.attest.dek.v1";
/// Label for deriving the GCM IV from the session nonce.
const DEK_IV_LABEL: &[u8] = b"shef.attest.dek-iv.v1";

/// Derives the shared session key from the X25519 secret and the
/// session transcript (nonce, both key-exchange publics, measurement).
/// Run identically by the verifier and the kernel.
pub(crate) fn session_key(
    shared: &[u8; 32],
    nonce: &[u8; 32],
    verifier_kem: &[u8; 32],
    kernel_kem: &[u8; 32],
    measurement: &Measurement,
) -> [u8; 32] {
    let mut transcript = Sha256::new();
    transcript.update(nonce);
    transcript.update(verifier_kem);
    transcript.update(kernel_kem);
    transcript.update(&measurement.0);
    hkdf::derive_key32(SESSION_LABEL, shared, &transcript.finalize())
}

/// The associated data a sealed DEK is bound to.
fn dek_ad(tenant: &str, measurement: &Measurement, nonce: &[u8; 32]) -> Vec<u8> {
    let mut ad = Vec::new();
    enc::put_bytes(&mut ad, DEK_AD_TAG);
    enc::put_bytes(&mut ad, tenant.as_bytes());
    ad.extend_from_slice(&measurement.0);
    ad.extend_from_slice(nonce);
    ad
}

/// The GCM IV for a session (the session key is one-shot, but the IV is
/// still derived, not constant, to keep the encoding honest).
fn dek_iv(nonce: &[u8; 32]) -> [u8; GCM_IV_LEN] {
    let mut h = Sha256::new();
    h.update(DEK_IV_LABEL);
    h.update(nonce);
    let digest = h.finalize();
    let mut iv = [0u8; GCM_IV_LEN];
    iv.copy_from_slice(&digest[..GCM_IV_LEN]);
    iv
}

/// A tenant DEK sealed (AES-GCM) to one attestation session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedDek {
    /// GCM ciphertext of the 32-byte DEK.
    pub ciphertext: Vec<u8>,
    /// GCM authentication tag.
    pub tag: [u8; GCM_TAG_LEN],
}

impl SealedDek {
    /// Seals `dek` under the session key (verifier side).
    pub(crate) fn seal(
        key: &[u8; 32],
        tenant: &str,
        measurement: &Measurement,
        nonce: &[u8; 32],
        dek: &[u8; 32],
    ) -> Self {
        let gcm = AesGcm::new(key);
        let (ciphertext, tag) = gcm.seal(&dek_iv(nonce), &dek_ad(tenant, measurement, nonce), dek);
        SealedDek { ciphertext, tag }
    }

    /// Opens the seal (kernel side). Any mismatch in key, tenant name,
    /// measurement or nonce fails the tag check.
    pub(crate) fn open(
        &self,
        key: &[u8; 32],
        tenant: &str,
        measurement: &Measurement,
        nonce: &[u8; 32],
    ) -> Result<[u8; 32], AttestError> {
        let gcm = AesGcm::new(key);
        let plain = gcm
            .open(
                &dek_iv(nonce),
                &dek_ad(tenant, measurement, nonce),
                &self.ciphertext,
                &self.tag,
            )
            .map_err(|e| AttestError::SealTamper(e.to_string()))?;
        plain
            .try_into()
            .map_err(|_| AttestError::SealTamper("sealed DEK is not 32 bytes".into()))
    }

    /// Canonical wire encoding.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        enc::put_bytes(&mut out, &self.ciphertext);
        out.extend_from_slice(&self.tag);
        out
    }

    /// Parses the [`SealedDek::to_bytes`] encoding.
    ///
    /// # Errors
    ///
    /// Returns [`AttestError::Malformed`] on truncation.
    pub fn from_bytes(mut bytes: &[u8]) -> Result<Self, AttestError> {
        let ciphertext = enc::take_bytes(&mut bytes)?.to_vec();
        let tag = enc::take_array::<GCM_TAG_LEN>(&mut bytes)?;
        enc::expect_end(bytes)?;
        Ok(SealedDek { ciphertext, tag })
    }
}

/// The verifier-issued admission credential: tenant binding,
/// measurement, session id, the sealed DEK, and the verifier's
/// signature over all of it. `ShieldService::register_tenant` accepts
/// only tenants carrying a valid ticket (wrapped in an
/// [`AttestedTenant`] by on-device redemption).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttestationTicket {
    tenant: String,
    measurement: Measurement,
    session: [u8; 32],
    sealed_dek: SealedDek,
    verifier_public: VerifyingKey,
    signature: Signature,
}

impl AttestationTicket {
    fn message(
        tenant: &str,
        measurement: &Measurement,
        session: &[u8; 32],
        sealed_dek: &SealedDek,
        verifier_public: &VerifyingKey,
    ) -> Vec<u8> {
        let mut msg = Vec::new();
        enc::put_bytes(&mut msg, TICKET_TAG);
        enc::put_bytes(&mut msg, tenant.as_bytes());
        msg.extend_from_slice(&measurement.0);
        msg.extend_from_slice(session);
        msg.extend_from_slice(&Sha256::digest(&sealed_dek.to_bytes()));
        msg.extend_from_slice(&verifier_public.0);
        msg
    }

    /// Issues a ticket (verifier side).
    pub(crate) fn issue(
        signing: &SigningKey,
        tenant: &str,
        measurement: Measurement,
        session: [u8; 32],
        sealed_dek: SealedDek,
    ) -> Self {
        let verifier_public = signing.verifying_key();
        let message = Self::message(
            tenant,
            &measurement,
            &session,
            &sealed_dek,
            &verifier_public,
        );
        AttestationTicket {
            tenant: tenant.to_owned(),
            measurement,
            session,
            sealed_dek,
            verifier_public,
            signature: signing.sign(&message),
        }
    }

    /// The tenant name the ticket is bound to.
    #[must_use]
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The measurement the session attested.
    #[must_use]
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// The session id (the challenge nonce).
    #[must_use]
    pub fn session(&self) -> [u8; 32] {
        self.session
    }

    /// The sealed DEK blob.
    #[must_use]
    pub fn sealed_dek(&self) -> &SealedDek {
        &self.sealed_dek
    }

    /// The issuing verifier's public key.
    #[must_use]
    pub fn verifier_public(&self) -> VerifyingKey {
        self.verifier_public
    }

    /// Checks the ticket for service admission: issued by `trusted`,
    /// bound to `tenant`, and signature-valid.
    ///
    /// # Errors
    ///
    /// * [`AttestError::BadSignature`] — issuer is not the trusted
    ///   verifier, or the signature does not verify.
    /// * [`AttestError::WrongTenant`] — bound to a different name.
    pub fn verify(&self, trusted: &VerifyingKey, tenant: &str) -> Result<(), AttestError> {
        if self.verifier_public != *trusted {
            return Err(AttestError::BadSignature(
                "ticket issued by an untrusted verifier".into(),
            ));
        }
        if self.tenant != tenant {
            return Err(AttestError::WrongTenant {
                expected: tenant.to_owned(),
                got: self.tenant.clone(),
            });
        }
        let message = Self::message(
            &self.tenant,
            &self.measurement,
            &self.session,
            &self.sealed_dek,
            &self.verifier_public,
        );
        trusted
            .verify(&message, &self.signature)
            .map_err(|_| AttestError::BadSignature("ticket signature invalid".into()))
    }

    /// Canonical wire encoding (what the untrusted host forwards).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        enc::put_bytes(&mut out, self.tenant.as_bytes());
        out.extend_from_slice(&self.measurement.0);
        out.extend_from_slice(&self.session);
        enc::put_bytes(&mut out, &self.sealed_dek.to_bytes());
        out.extend_from_slice(&self.verifier_public.0);
        out.extend_from_slice(&self.signature.0);
        out
    }

    /// Parses the [`AttestationTicket::to_bytes`] encoding. Parsing
    /// does not authenticate: call [`AttestationTicket::verify`] (or
    /// redeem on-device) before trusting any field.
    ///
    /// # Errors
    ///
    /// Returns [`AttestError::Malformed`] on truncation or non-UTF-8
    /// tenant names.
    pub fn from_bytes(mut bytes: &[u8]) -> Result<Self, AttestError> {
        let tenant = String::from_utf8(enc::take_bytes(&mut bytes)?.to_vec())
            .map_err(|_| AttestError::Malformed("tenant name is not UTF-8".into()))?;
        let measurement = Measurement(enc::take_array::<32>(&mut bytes)?);
        let session = enc::take_array::<32>(&mut bytes)?;
        let sealed_dek = SealedDek::from_bytes(enc::take_bytes(&mut bytes)?)?;
        let verifier_public = VerifyingKey(enc::take_array::<32>(&mut bytes)?);
        let signature = Signature(enc::take_array::<64>(&mut bytes)?);
        enc::expect_end(bytes)?;
        Ok(AttestationTicket {
            tenant,
            measurement,
            session,
            sealed_dek,
            verifier_public,
            signature,
        })
    }
}

/// A redeemed ticket: the admission credential plus the unsealed DEK.
/// The only constructor is [`crate::SecurityKernel::redeem`] — holding
/// an `AttestedTenant` proves a full attestation round completed on
/// this kernel, which is what makes `register_tenant`'s requirement
/// structural rather than policed.
#[derive(Clone)]
pub struct AttestedTenant {
    ticket: AttestationTicket,
    dek: [u8; 32],
}

impl core::fmt::Debug for AttestedTenant {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("AttestedTenant")
            .field("tenant", &self.ticket.tenant())
            .field("session", &shef_crypto::to_hex(&self.ticket.session()[..8]))
            .finish_non_exhaustive()
    }
}

impl AttestedTenant {
    pub(crate) fn new(ticket: AttestationTicket, dek: [u8; 32]) -> Self {
        AttestedTenant { ticket, dek }
    }

    /// The underlying verifier-issued ticket.
    #[must_use]
    pub fn ticket(&self) -> &AttestationTicket {
        &self.ticket
    }

    /// The tenant name the credential is bound to.
    #[must_use]
    pub fn tenant(&self) -> &str {
        self.ticket.tenant()
    }

    /// The unsealed Data Encryption Key. Enclave-internal: this
    /// accessor models the hand-off from the Security Kernel to the
    /// Shield's key storage and must never cross the host boundary.
    #[must_use]
    pub fn data_key(&self) -> [u8; 32] {
        self.dek
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measurement() -> Measurement {
        let mut chain = crate::MeasurementChain::new();
        chain.extend("shield-bitstream", b"image");
        chain.current()
    }

    #[test]
    fn sealed_dek_round_trip_binds_context() {
        let key = [9u8; 32];
        let nonce = [3u8; 32];
        let m = measurement();
        let sealed = SealedDek::seal(&key, "alice", &m, &nonce, &[0x42u8; 32]);
        assert_eq!(
            sealed.open(&key, "alice", &m, &nonce).unwrap(),
            [0x42u8; 32]
        );
        // Any context change breaks the AD binding.
        assert!(sealed.open(&key, "bob", &m, &nonce).is_err());
        assert!(sealed.open(&key, "alice", &m, &[4u8; 32]).is_err());
        assert!(sealed.open(&[8u8; 32], "alice", &m, &nonce).is_err());
    }

    #[test]
    fn ticket_verify_and_wire_round_trip() {
        let signing = SigningKey::from_seed(&[7u8; 32]);
        let m = measurement();
        let sealed = SealedDek::seal(&[9u8; 32], "alice", &m, &[3u8; 32], &[0x42u8; 32]);
        let ticket = AttestationTicket::issue(&signing, "alice", m, [3u8; 32], sealed);
        ticket.verify(&signing.verifying_key(), "alice").unwrap();
        assert!(matches!(
            ticket.verify(&signing.verifying_key(), "bob"),
            Err(AttestError::WrongTenant { .. })
        ));
        let rogue = SigningKey::from_seed(&[8u8; 32]);
        assert!(matches!(
            ticket.verify(&rogue.verifying_key(), "alice"),
            Err(AttestError::BadSignature(_))
        ));
        let parsed = AttestationTicket::from_bytes(&ticket.to_bytes()).unwrap();
        assert_eq!(parsed, ticket);
        parsed.verify(&signing.verifying_key(), "alice").unwrap();
    }

    #[test]
    fn tampered_ticket_bytes_fail_verification() {
        let signing = SigningKey::from_seed(&[7u8; 32]);
        let m = measurement();
        let sealed = SealedDek::seal(&[9u8; 32], "alice", &m, &[3u8; 32], &[0x42u8; 32]);
        let ticket = AttestationTicket::issue(&signing, "alice", m, [3u8; 32], sealed);
        let mut bytes = ticket.to_bytes();
        // Flip a byte inside the sealed-DEK ciphertext region.
        let idx = bytes.len() - 100;
        bytes[idx] ^= 1;
        let parsed = AttestationTicket::from_bytes(&bytes).unwrap();
        assert!(parsed.verify(&signing.verifying_key(), "alice").is_err());
    }
}
