//! The measured Security Kernel: quote issuance and ticket redemption.
//!
//! The kernel is the on-device end of the attestation protocol. The SPB
//! boots it measured and hands it an [`AttestationRoot`]; from there it
//! is a two-state machine:
//!
//! ```text
//!            load_shield_bitstream(label, image)
//!   ┌───────┐ ──────────────────────────────────▶ ┌─────────────┐
//!   │ Reset │                                     │ Operational │──┐
//!   └───────┘                                     └─────────────┘  │
//!       │                                            ▲    │  load_shield_bitstream
//!       │ quote / redeem → AttestError::State        └────┘  (extends the chain,
//!       ▼                                                     re-derives the AK)
//!     reject
//! ```
//!
//! In `Operational` the kernel holds an Attestation Key derived from
//! `HKDF(root ‖ measurement)` — device-bound *and* measurement-bound,
//! so a kernel that loaded a different bitstream simply holds a
//! different key and cannot sign convincing quotes for the good one —
//! plus a self-issued [`AkCert`] tying the AK to the measurement under
//! the device identity.
//!
//! Per verified session the kernel keeps one symmetric session key,
//! consumed when a matching [`AttestationTicket`] is redeemed
//! ([`SecurityKernel::redeem`], the sole constructor of
//! [`AttestedTenant`]).
//!
//! # Example
//!
//! ```
//! use shef_attest::kernel::{KernelState, SecurityKernel};
//! use shef_attest::{AttestationRoot, ManufacturerCa};
//!
//! let ca = ManufacturerCa::from_seed(b"example-ca");
//! let root = AttestationRoot::from_device_key(&[7u8; 32]);
//! let cert = ca.certify_device(b"die-0001", &root);
//! let mut kernel = SecurityKernel::new(root, b"die-0001", cert)?;
//! assert_eq!(kernel.state(), KernelState::Reset);
//! kernel.load_shield_bitstream("shield-bitstream", b"mock shield image");
//! assert_eq!(kernel.state(), KernelState::Operational);
//! # Ok::<(), shef_attest::AttestError>(())
//! ```

use std::collections::BTreeMap;

use shef_crypto::ecies::EciesKeyPair;
use shef_crypto::ed25519::SigningKey;
use shef_crypto::hkdf;
use shef_fpga::spb::AttestationRoot;
use shef_telemetry::{Counter, Telemetry};

use crate::identity::{device_identity, AkCert, DeviceCert};
use crate::measure::{Measurement, MeasurementChain};
use crate::ticket::{session_key, AttestationTicket, AttestedTenant};
use crate::verifier::{Challenge, Quote};
use crate::AttestError;

/// HKDF label for the Ed25519 (quote-signing) half of the AK.
const AK_SIGN_LABEL: &[u8] = b"shef.attest.ak.sign.v1";
/// HKDF label for the X25519 (key-exchange) half of the AK.
const AK_KEM_LABEL: &[u8] = b"shef.attest.ak.kem.v1";

/// Where the kernel state machine currently is (see the module docs for
/// the transition diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelState {
    /// Booted and measured, but no Shield bitstream loaded yet: the
    /// kernel holds no Attestation Key and refuses to quote.
    Reset,
    /// A Shield bitstream has been measured in; the AK exists and
    /// quotes/redemptions are served.
    Operational,
}

/// The Attestation Key material for one measurement (rebuilt on every
/// chain extension).
struct AttestationKey {
    measurement: Measurement,
    sign: SigningKey,
    kem: EciesKeyPair,
    cert: AkCert,
}

/// Counters the kernel bumps when a registry is attached.
struct KernelTelemetry {
    quotes: Counter,
    redeemed: Counter,
    rejected: Counter,
}

/// The on-device Security Kernel model. See the module docs.
pub struct SecurityKernel {
    root: AttestationRoot,
    device_cert: DeviceCert,
    identity: SigningKey,
    chain: MeasurementChain,
    ak: Option<AttestationKey>,
    /// Open sessions: challenge nonce → (session key, measurement at
    /// quote time). An entry is removed only by a successful redeem.
    sessions: BTreeMap<[u8; 32], ([u8; 32], Measurement)>,
    tele: Option<KernelTelemetry>,
}

impl core::fmt::Debug for SecurityKernel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SecurityKernel")
            .field("state", &self.state())
            .field("die_serial", &self.device_cert.die_serial)
            .field("open_sessions", &self.sessions.len())
            .finish_non_exhaustive()
    }
}

impl SecurityKernel {
    /// Boots the kernel from the SPB hand-off: the attestation root,
    /// the die serial, and the Manufacturer-issued device certificate.
    ///
    /// # Errors
    ///
    /// Returns [`AttestError::CertChain`] if `device_cert` does not
    /// certify the identity key this device actually derives — i.e. the
    /// certificate belongs to some other device or root.
    pub fn new(
        root: AttestationRoot,
        die_serial: &[u8],
        device_cert: DeviceCert,
    ) -> Result<Self, AttestError> {
        let identity = device_identity(&root, die_serial);
        if device_cert.device_public != identity.verifying_key()
            || device_cert.die_serial != die_serial
        {
            return Err(AttestError::CertChain(
                "device certificate does not match this device's derived identity".into(),
            ));
        }
        Ok(SecurityKernel {
            root,
            device_cert,
            identity,
            chain: MeasurementChain::new(),
            ak: None,
            sessions: BTreeMap::new(),
            tele: None,
        })
    }

    /// Registers `shield.attest.kernel.*` counters on `telemetry`.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.tele = Some(KernelTelemetry {
            quotes: telemetry.counter("shield.attest.kernel.quotes"),
            redeemed: telemetry.counter("shield.attest.kernel.redeemed"),
            rejected: telemetry.counter("shield.attest.kernel.rejected"),
        });
    }

    /// Current state-machine state.
    #[must_use]
    pub fn state(&self) -> KernelState {
        if self.ak.is_some() {
            KernelState::Operational
        } else {
            KernelState::Reset
        }
    }

    /// The Manufacturer-issued device certificate carried in quotes.
    #[must_use]
    pub fn device_cert(&self) -> &DeviceCert {
        &self.device_cert
    }

    /// Measures a Shield bitstream into the chain and (re)derives the
    /// Attestation Key under the new measurement. Transitions
    /// `Reset → Operational`; calling again extends the chain, which
    /// models a partial-reconfiguration reload — the old AK (and any
    /// quotes signed with it) stops matching the new measurement.
    pub fn load_shield_bitstream(&mut self, label: &str, image: &[u8]) {
        self.chain.extend(label, image);
        let measurement = self.chain.current();
        let sign_seed = hkdf::derive_key32(AK_SIGN_LABEL, &self.root.to_bytes(), &measurement.0);
        let sign = SigningKey::from_seed(&sign_seed);
        let kem_seed = hkdf::derive_key32(AK_KEM_LABEL, &self.root.to_bytes(), &measurement.0);
        let kem = EciesKeyPair::from_seed(&kem_seed);
        let cert = AkCert::issue(
            &self.identity,
            measurement,
            sign.verifying_key(),
            kem.public_key().0,
        );
        self.ak = Some(AttestationKey {
            measurement,
            sign,
            kem,
            cert,
        });
    }

    /// The current measurement.
    ///
    /// # Errors
    ///
    /// Returns [`AttestError::State`] in `Reset` (nothing measured).
    pub fn measurement(&self) -> Result<Measurement, AttestError> {
        self.ak
            .as_ref()
            .map(|ak| ak.measurement)
            .ok_or_else(|| AttestError::State("no Shield bitstream has been measured".into()))
    }

    /// The self-issued Attestation-Key certificate.
    ///
    /// # Errors
    ///
    /// Returns [`AttestError::State`] in `Reset`.
    pub fn ak_cert(&self) -> Result<&AkCert, AttestError> {
        self.ak
            .as_ref()
            .map(|ak| &ak.cert)
            .ok_or_else(|| AttestError::State("no Attestation Key derived yet".into()))
    }

    /// Answers a verifier challenge with a signed quote, opening a
    /// session keyed by the challenge nonce.
    ///
    /// # Errors
    ///
    /// Returns [`AttestError::State`] in `Reset` — a kernel with no
    /// measured bitstream has nothing to attest.
    pub fn quote(&mut self, challenge: &Challenge) -> Result<Quote, AttestError> {
        let Some(ak) = self.ak.as_ref() else {
            if let Some(t) = &self.tele {
                t.rejected.inc();
            }
            return Err(AttestError::State(
                "cannot quote before a Shield bitstream is measured".into(),
            ));
        };
        let shared = ak
            .kem
            .diffie_hellman(&shef_crypto::ecies::EciesPublicKey(challenge.verifier_kem));
        let key = session_key(
            &shared,
            &challenge.nonce,
            &challenge.verifier_kem,
            &ak.kem.public_key().0,
            &ak.measurement,
        );
        self.sessions.insert(challenge.nonce, (key, ak.measurement));
        if let Some(t) = &self.tele {
            t.quotes.inc();
        }
        Ok(Quote::sign(
            &ak.sign,
            ak.measurement,
            challenge,
            ak.kem.public_key().0,
            self.device_cert.clone(),
            ak.cert.clone(),
        ))
    }

    /// Redeems a verifier-issued ticket against the session it names,
    /// unsealing the tenant DEK inside the enclave. This is the **only**
    /// constructor of [`AttestedTenant`]. Sessions are one-shot: a
    /// successful redeem consumes the session, so a second redeem of the
    /// same ticket fails with [`AttestError::UnknownSession`]. A failed
    /// unseal leaves the session open — a tampered ticket cannot burn
    /// the honest party's session.
    ///
    /// # Errors
    ///
    /// * [`AttestError::UnknownSession`] — the ticket names a nonce with
    ///   no open session (never quoted here, or already redeemed).
    /// * [`AttestError::UnknownMeasurement`] — the ticket's stated
    ///   measurement is not the one this kernel quoted for the session.
    /// * [`AttestError::SealTamper`] — the sealed DEK failed
    ///   authenticated decryption (tampered, or spliced from another
    ///   session/tenant/measurement).
    pub fn redeem(&mut self, ticket: &AttestationTicket) -> Result<AttestedTenant, AttestError> {
        let session = ticket.session();
        let Some((key, measurement)) = self.sessions.get(&session).copied() else {
            if let Some(t) = &self.tele {
                t.rejected.inc();
            }
            return Err(AttestError::UnknownSession);
        };
        if ticket.measurement() != measurement {
            if let Some(t) = &self.tele {
                t.rejected.inc();
            }
            return Err(AttestError::UnknownMeasurement(
                ticket.measurement().to_hex(),
            ));
        }
        let dek = match ticket
            .sealed_dek()
            .open(&key, ticket.tenant(), &measurement, &session)
        {
            Ok(dek) => dek,
            Err(e) => {
                if let Some(t) = &self.tele {
                    t.rejected.inc();
                }
                return Err(e);
            }
        };
        self.sessions.remove(&session);
        if let Some(t) = &self.tele {
            t.redeemed.inc();
        }
        Ok(AttestedTenant::new(ticket.clone(), dek))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::ManufacturerCa;

    fn kernel() -> SecurityKernel {
        let ca = ManufacturerCa::from_seed(b"kernel-tests");
        let root = AttestationRoot::from_device_key(&[5u8; 32]);
        let cert = ca.certify_device(b"die-1", &root);
        SecurityKernel::new(root, b"die-1", cert).unwrap()
    }

    #[test]
    fn boot_rejects_foreign_device_cert() {
        let ca = ManufacturerCa::from_seed(b"kernel-tests");
        let root = AttestationRoot::from_device_key(&[5u8; 32]);
        let other_root = AttestationRoot::from_device_key(&[6u8; 32]);
        let cert = ca.certify_device(b"die-1", &other_root);
        assert!(matches!(
            SecurityKernel::new(root, b"die-1", cert),
            Err(AttestError::CertChain(_))
        ));
    }

    #[test]
    fn reset_kernel_refuses_to_quote() {
        let mut k = kernel();
        assert_eq!(k.state(), KernelState::Reset);
        let challenge = Challenge {
            nonce: [1u8; 32],
            verifier_kem: [2u8; 32],
        };
        assert!(matches!(k.quote(&challenge), Err(AttestError::State(_))));
    }

    #[test]
    fn reload_changes_measurement_and_ak() {
        let mut k = kernel();
        k.load_shield_bitstream("shield", b"image-a");
        let m1 = k.measurement().unwrap();
        let ak1 = k.ak_cert().unwrap().ak_public;
        k.load_shield_bitstream("shield", b"image-b");
        let m2 = k.measurement().unwrap();
        let ak2 = k.ak_cert().unwrap().ak_public;
        assert_ne!(m1, m2);
        assert_ne!(ak1, ak2);
    }

    #[test]
    fn ak_cert_verifies_under_device_identity() {
        let mut k = kernel();
        k.load_shield_bitstream("shield", b"image");
        let device_public = k.device_cert().device_public;
        k.ak_cert().unwrap().verify(&device_public).unwrap();
    }
}
