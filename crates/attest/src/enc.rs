//! Canonical length-prefixed byte encoding for protocol messages.
//!
//! The attestation artifacts (quotes, certificates, tickets) travel
//! through the untrusted host, so each has exactly one byte encoding:
//! fixed-width fields raw, variable fields with a `u32` big-endian
//! length prefix. KAT transcript tests pin the encodings byte-for-byte.

use crate::AttestError;

/// Appends a length-prefixed variable field.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    out.extend_from_slice(bytes);
}

/// Reads a length-prefixed variable field, advancing `input`.
pub fn take_bytes<'a>(input: &mut &'a [u8]) -> Result<&'a [u8], AttestError> {
    let len_bytes: [u8; 4] = input
        .get(..4)
        .and_then(|b| b.try_into().ok())
        .ok_or_else(|| AttestError::Malformed("truncated length prefix".into()))?;
    let len = u32::from_be_bytes(len_bytes) as usize;
    let body = input
        .get(4..4 + len)
        .ok_or_else(|| AttestError::Malformed("truncated variable field".into()))?;
    *input = &input[4 + len..];
    Ok(body)
}

/// Reads a fixed-width field, advancing `input`.
pub fn take_array<const N: usize>(input: &mut &[u8]) -> Result<[u8; N], AttestError> {
    let arr: [u8; N] = input
        .get(..N)
        .and_then(|b| b.try_into().ok())
        .ok_or_else(|| AttestError::Malformed("truncated fixed field".into()))?;
    *input = &input[N..];
    Ok(arr)
}

/// Checks that a parse consumed its whole input.
pub fn expect_end(input: &[u8]) -> Result<(), AttestError> {
    if input.is_empty() {
        Ok(())
    } else {
        Err(AttestError::Malformed(format!(
            "{} trailing bytes after message",
            input.len()
        )))
    }
}
