//! One-call fixture wiring the whole honest attestation stack.
//!
//! [`AttestationEnvironment`] performs, deterministically from a seed,
//! everything that happens *before* a tenant shows up: the Manufacturer
//! burns an AES device key into the key store and certifies the
//! device's attestation identity; the SPB boots the measured Security
//! Kernel via [`shef_fpga::spb::Spb::boot_rom_measured`]; the kernel
//! measures a Shield bitstream; and a [`RemoteVerifier`] is stood up
//! pinning the Manufacturer root with the bitstream's measurement
//! published as known-good.
//!
//! From there, [`AttestationEnvironment::onboard`] runs one complete
//! attestation round (challenge → quote → verify → sealed DEK →
//! redeem) and hands back the [`AttestedTenant`] that services demand.
//! Tests that need to attack the protocol mid-flight use
//! [`AttestationEnvironment::kernel_mut`] /
//! [`AttestationEnvironment::verifier_mut`] to drive the steps
//! individually.
//!
//! # Example
//!
//! ```
//! use shef_attest::AttestationEnvironment;
//!
//! let mut env = AttestationEnvironment::new(b"env-doc")?;
//! let grant = env.onboard("tenant0", [7u8; 32])?;
//! assert_eq!(grant.tenant(), "tenant0");
//! // Redeeming consumed the session; the ticket cannot be re-redeemed.
//! assert!(env.kernel_mut().redeem(grant.ticket()).is_err());
//! # Ok::<(), shef_attest::AttestError>(())
//! ```

use shef_crypto::ed25519::VerifyingKey;
use shef_crypto::hkdf;
use shef_fpga::keystore::{KeyProtection, KeyStore};
use shef_fpga::spb::{seal_firmware, Spb};
use shef_telemetry::Telemetry;

use crate::identity::ManufacturerCa;
use crate::kernel::SecurityKernel;
use crate::measure::Measurement;
use crate::ticket::AttestedTenant;
use crate::verifier::RemoteVerifier;
use crate::AttestError;

/// The mock Shield bitstream a default environment measures and
/// publishes as known-good.
pub const DEMO_BITSTREAM: &[u8] = b"shef demo shield bitstream v1";

/// Chain label under which environments measure the Shield bitstream.
pub const BITSTREAM_LABEL: &str = "shield-bitstream";

/// A booted device + verifier pair (see the module docs).
#[derive(Debug)]
pub struct AttestationEnvironment {
    kernel: SecurityKernel,
    verifier: RemoteVerifier,
}

impl AttestationEnvironment {
    /// Builds the honest fixture around [`DEMO_BITSTREAM`].
    ///
    /// # Errors
    ///
    /// Propagates secure-boot or certification failures as
    /// [`AttestError`]; cannot fail for an honest seed.
    pub fn new(seed: &[u8]) -> Result<Self, AttestError> {
        Self::with_bitstream(seed, DEMO_BITSTREAM)
    }

    /// Builds the fixture measuring `bitstream` instead of the demo
    /// image (its measurement is published as known-good).
    ///
    /// # Errors
    ///
    /// Propagates secure-boot or certification failures as
    /// [`AttestError`].
    pub fn with_bitstream(seed: &[u8], bitstream: &[u8]) -> Result<Self, AttestError> {
        // Manufacturing: burn the device key, certify the identity the
        // device will derive from it.
        let device_key = hkdf::derive_key32(b"shef.attest.env.device-key.v1", seed, b"");
        let die_serial = hkdf::derive_key32(b"shef.attest.env.die-serial.v1", seed, b"");
        let ca = ManufacturerCa::from_seed(seed);
        let mut keystore = KeyStore::new(&die_serial);
        keystore
            .burn_aes_key(device_key, KeyProtection::PufWrapped)
            .map_err(|e| AttestError::State(format!("device provisioning failed: {e}")))?;

        // Secure boot: BootROM authenticates the firmware, locks the
        // key store, and hands the kernel its attestation root.
        let firmware = seal_firmware(&device_key, b"shef security kernel firmware");
        let mut spb = Spb::new();
        let (_payload, root) = spb
            .boot_rom_measured(&mut keystore, &firmware)
            .map_err(|e| AttestError::State(format!("secure boot failed: {e}")))?;

        // The Manufacturer derives the same root offline to certify.
        let device_cert = ca.certify_device(&die_serial, &root);
        let mut kernel = SecurityKernel::new(root, &die_serial, device_cert)?;
        kernel.load_shield_bitstream(BITSTREAM_LABEL, bitstream);

        // The Data Owner's verifier pins the Manufacturer root and
        // publishes the audited bitstream measurement.
        let mut verifier = RemoteVerifier::from_seed(seed, ca.root_public());
        verifier.publish_measurement(kernel.measurement()?);
        Ok(AttestationEnvironment { kernel, verifier })
    }

    /// Runs one full attestation round for `tenant`, sealing `dek` to
    /// the enclave and redeeming the resulting ticket on-device.
    ///
    /// # Errors
    ///
    /// Propagates any protocol failure as its typed [`AttestError`];
    /// cannot fail while kernel and verifier are the honest pair built
    /// by the constructor.
    pub fn onboard(&mut self, tenant: &str, dek: [u8; 32]) -> Result<AttestedTenant, AttestError> {
        let challenge = self.verifier.challenge();
        let quote = self.kernel.quote(&challenge)?;
        let ticket = self.verifier.verify_and_provision(&quote, tenant, dek)?;
        self.kernel.redeem(&ticket)
    }

    /// The verifier's ticket-signing public key — what a service pins
    /// as its trusted verifier.
    #[must_use]
    pub fn verifier_public(&self) -> VerifyingKey {
        self.verifier.public_key()
    }

    /// The measurement the environment's kernel currently attests to.
    ///
    /// # Errors
    ///
    /// Returns [`AttestError::State`] only if the kernel was reset out
    /// from under the fixture.
    pub fn measurement(&self) -> Result<Measurement, AttestError> {
        self.kernel.measurement()
    }

    /// The device-side kernel (mutable, for driving protocol steps or
    /// attacks individually).
    pub fn kernel_mut(&mut self) -> &mut SecurityKernel {
        &mut self.kernel
    }

    /// The device-side kernel.
    #[must_use]
    pub fn kernel(&self) -> &SecurityKernel {
        &self.kernel
    }

    /// The Data Owner's verifier (mutable).
    pub fn verifier_mut(&mut self) -> &mut RemoteVerifier {
        &mut self.verifier
    }

    /// The Data Owner's verifier.
    #[must_use]
    pub fn verifier(&self) -> &RemoteVerifier {
        &self.verifier
    }

    /// Registers `shield.attest.*` counters for both protocol ends.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.kernel.attach_telemetry(telemetry);
        self.verifier.attach_telemetry(telemetry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn onboard_is_deterministic_per_seed() {
        let mut a = AttestationEnvironment::new(b"det").unwrap();
        let mut b = AttestationEnvironment::new(b"det").unwrap();
        let ga = a.onboard("alice", [3u8; 32]).unwrap();
        let gb = b.onboard("alice", [3u8; 32]).unwrap();
        assert_eq!(ga.ticket(), gb.ticket());
        assert_eq!(ga.data_key(), gb.data_key());
    }

    #[test]
    fn different_seeds_yield_different_verifiers() {
        let a = AttestationEnvironment::new(b"seed-a").unwrap();
        let b = AttestationEnvironment::new(b"seed-b").unwrap();
        assert_ne!(a.verifier_public(), b.verifier_public());
    }

    #[test]
    fn onboard_telemetry_counts_one_round() {
        let tele = Telemetry::new();
        let mut env = AttestationEnvironment::new(b"tele").unwrap();
        env.attach_telemetry(&tele);
        env.onboard("alice", [1u8; 32]).unwrap();
        let report = tele.report();
        assert_eq!(report.counters["shield.attest.verifier.challenges"], 1);
        assert_eq!(report.counters["shield.attest.verifier.verified"], 1);
        assert_eq!(report.counters["shield.attest.kernel.quotes"], 1);
        assert_eq!(report.counters["shield.attest.kernel.redeemed"], 1);
    }
}
