//! Device identity: the Manufacturer CA and the two-link certificate
//! chain carried by every quote.
//!
//! The chain a verifier walks is
//!
//! ```text
//!   Manufacturer root (Ed25519, offline)
//!        └── DeviceCert: binds die serial → device identity key
//!                 └── AkCert: binds measurement → Attestation Key
//!                     (issued *by the device* at measure time)
//! ```
//!
//! The device identity key is not stored anywhere: it is re-derived on
//! every boot from the [`AttestationRoot`] and the die serial, so it
//! exists only inside the measured Security Kernel. The Manufacturer,
//! knowing the device key it burned, performs the same derivation
//! offline to certify the identity without ever talking to the device
//! ([`ManufacturerCa::certify_device`]).
//!
//! # Example
//!
//! ```
//! use shef_attest::identity::{device_identity, ManufacturerCa};
//! use shef_attest::AttestationRoot;
//!
//! let ca = ManufacturerCa::from_seed(b"example-ca");
//! let root = AttestationRoot::from_device_key(&[7u8; 32]);
//! let cert = ca.certify_device(b"die-0001", &root);
//! cert.verify(&ca.root_public())?;
//! // The on-device derivation matches the certified key.
//! assert_eq!(device_identity(&root, b"die-0001").verifying_key(), cert.device_public);
//! # Ok::<(), shef_attest::AttestError>(())
//! ```

use shef_crypto::ed25519::{Signature, SigningKey, VerifyingKey};
use shef_crypto::hkdf;
use shef_fpga::spb::AttestationRoot;

use crate::enc;
use crate::measure::Measurement;
use crate::AttestError;

/// Message tag for device certificates.
const DEVICE_CERT_TAG: &[u8] = b"shef.attest.device-cert.v1";
/// Message tag for Attestation-Key certificates.
const AK_CERT_TAG: &[u8] = b"shef.attest.ak-cert.v1";
/// HKDF label for the device identity signing seed.
const DEVICE_ID_LABEL: &[u8] = b"shef.attest.device-id.v1";

/// Derives the device identity signing key from the attestation root
/// and the die serial (deterministic; run identically by the Security
/// Kernel on-device and by the Manufacturer offline).
#[must_use]
pub fn device_identity(root: &AttestationRoot, die_serial: &[u8]) -> SigningKey {
    let seed = hkdf::derive_key32(DEVICE_ID_LABEL, &root.to_bytes(), die_serial);
    SigningKey::from_seed(&seed)
}

/// The Manufacturer's offline certificate authority.
pub struct ManufacturerCa {
    signing: SigningKey,
}

impl core::fmt::Debug for ManufacturerCa {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ManufacturerCa")
            .field("root_public", &self.signing.verifying_key())
            .finish_non_exhaustive()
    }
}

impl ManufacturerCa {
    /// Deterministically creates a CA from seed material.
    #[must_use]
    pub fn from_seed(seed: &[u8]) -> Self {
        let seed32 = hkdf::derive_key32(b"shef.attest.ca.v1", seed, b"root");
        ManufacturerCa {
            signing: SigningKey::from_seed(&seed32),
        }
    }

    /// The root verification key verifiers pin.
    #[must_use]
    pub fn root_public(&self) -> VerifyingKey {
        self.signing.verifying_key()
    }

    /// Certifies a device: derives its identity key from the root it
    /// burned (see [`device_identity`]) and signs the binding
    /// die serial → identity key.
    #[must_use]
    pub fn certify_device(&self, die_serial: &[u8], root: &AttestationRoot) -> DeviceCert {
        let device_public = device_identity(root, die_serial).verifying_key();
        let message = DeviceCert::message(die_serial, &device_public);
        DeviceCert {
            die_serial: die_serial.to_vec(),
            device_public,
            signature: self.signing.sign(&message),
        }
    }
}

/// A Manufacturer-signed binding of a die serial to the device's
/// attestation identity key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceCert {
    /// The device's die serial (the key store's identity).
    pub die_serial: Vec<u8>,
    /// The device identity verification key.
    pub device_public: VerifyingKey,
    /// Manufacturer root signature over the binding.
    pub signature: Signature,
}

impl DeviceCert {
    fn message(die_serial: &[u8], device_public: &VerifyingKey) -> Vec<u8> {
        let mut msg = Vec::new();
        enc::put_bytes(&mut msg, DEVICE_CERT_TAG);
        enc::put_bytes(&mut msg, die_serial);
        msg.extend_from_slice(&device_public.0);
        msg
    }

    /// Verifies the Manufacturer signature.
    ///
    /// # Errors
    ///
    /// Returns [`AttestError::CertChain`] if the signature does not
    /// verify under `root`.
    pub fn verify(&self, root: &VerifyingKey) -> Result<(), AttestError> {
        let message = Self::message(&self.die_serial, &self.device_public);
        root.verify(&message, &self.signature)
            .map_err(|_| AttestError::CertChain("device certificate signature invalid".into()))
    }

    /// Canonical wire encoding.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        enc::put_bytes(&mut out, &self.die_serial);
        out.extend_from_slice(&self.device_public.0);
        out.extend_from_slice(&self.signature.0);
        out
    }

    /// Parses the [`DeviceCert::to_bytes`] encoding.
    ///
    /// # Errors
    ///
    /// Returns [`AttestError::Malformed`] on truncation.
    pub fn from_bytes(mut bytes: &[u8]) -> Result<Self, AttestError> {
        let die_serial = enc::take_bytes(&mut bytes)?.to_vec();
        let device_public = VerifyingKey(enc::take_array::<32>(&mut bytes)?);
        let signature = Signature(enc::take_array::<64>(&mut bytes)?);
        enc::expect_end(bytes)?;
        Ok(DeviceCert {
            die_serial,
            device_public,
            signature,
        })
    }
}

/// A device-signed binding of a measurement to the Attestation Key
/// derived under it (signing + key-exchange halves). Issued by the
/// Security Kernel itself when it measures a bitstream: only a kernel
/// holding the attestation root can produce the device signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AkCert {
    /// Measurement under which the Attestation Key was derived.
    pub measurement: Measurement,
    /// Ed25519 quote-signing half of the Attestation Key.
    pub ak_public: VerifyingKey,
    /// X25519 key-exchange half of the Attestation Key.
    pub kem_public: [u8; 32],
    /// Device identity signature over the binding.
    pub signature: Signature,
}

impl AkCert {
    fn message(
        measurement: &Measurement,
        ak_public: &VerifyingKey,
        kem_public: &[u8; 32],
    ) -> Vec<u8> {
        let mut msg = Vec::new();
        enc::put_bytes(&mut msg, AK_CERT_TAG);
        msg.extend_from_slice(&measurement.0);
        msg.extend_from_slice(&ak_public.0);
        msg.extend_from_slice(kem_public);
        msg
    }

    /// Issues the certificate (Security Kernel side).
    #[must_use]
    pub fn issue(
        identity: &SigningKey,
        measurement: Measurement,
        ak_public: VerifyingKey,
        kem_public: [u8; 32],
    ) -> Self {
        let message = Self::message(&measurement, &ak_public, &kem_public);
        AkCert {
            measurement,
            ak_public,
            kem_public,
            signature: identity.sign(&message),
        }
    }

    /// Verifies the device signature.
    ///
    /// # Errors
    ///
    /// Returns [`AttestError::CertChain`] if the signature does not
    /// verify under `device_public`.
    pub fn verify(&self, device_public: &VerifyingKey) -> Result<(), AttestError> {
        let message = Self::message(&self.measurement, &self.ak_public, &self.kem_public);
        device_public
            .verify(&message, &self.signature)
            .map_err(|_| AttestError::CertChain("attestation-key certificate invalid".into()))
    }

    /// Canonical wire encoding.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.measurement.0);
        out.extend_from_slice(&self.ak_public.0);
        out.extend_from_slice(&self.kem_public);
        out.extend_from_slice(&self.signature.0);
        out
    }

    /// Parses the [`AkCert::to_bytes`] encoding.
    ///
    /// # Errors
    ///
    /// Returns [`AttestError::Malformed`] on truncation.
    pub fn from_bytes(mut bytes: &[u8]) -> Result<Self, AttestError> {
        let measurement = Measurement(enc::take_array::<32>(&mut bytes)?);
        let ak_public = VerifyingKey(enc::take_array::<32>(&mut bytes)?);
        let kem_public = enc::take_array::<32>(&mut bytes)?;
        let signature = Signature(enc::take_array::<64>(&mut bytes)?);
        enc::expect_end(bytes)?;
        Ok(AkCert {
            measurement,
            ak_public,
            kem_public,
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_cert_round_trip_and_verify() {
        let ca = ManufacturerCa::from_seed(b"ca");
        let root = AttestationRoot::from_device_key(&[1u8; 32]);
        let cert = ca.certify_device(b"die-7", &root);
        cert.verify(&ca.root_public()).unwrap();
        let parsed = DeviceCert::from_bytes(&cert.to_bytes()).unwrap();
        assert_eq!(parsed, cert);
    }

    #[test]
    fn device_cert_from_other_ca_rejected() {
        let ca = ManufacturerCa::from_seed(b"ca");
        let rogue = ManufacturerCa::from_seed(b"rogue");
        let root = AttestationRoot::from_device_key(&[1u8; 32]);
        let cert = rogue.certify_device(b"die-7", &root);
        assert!(matches!(
            cert.verify(&ca.root_public()),
            Err(AttestError::CertChain(_))
        ));
    }

    #[test]
    fn tampered_serial_breaks_cert() {
        let ca = ManufacturerCa::from_seed(b"ca");
        let root = AttestationRoot::from_device_key(&[1u8; 32]);
        let mut cert = ca.certify_device(b"die-7", &root);
        cert.die_serial = b"die-8".to_vec();
        assert!(cert.verify(&ca.root_public()).is_err());
    }
}
