//! Remote attestation and tenant key provisioning for ShEF.
//!
//! This crate closes the gap between the SPB secure-boot fragment in
//! `shef-fpga` and the multi-tenant Shield service in `shef-core`: it
//! is the paper's end-to-end protocol (§4, Fig. 3) by which a Data
//! Owner convinces itself that a genuine ShEF Security Kernel, running
//! a known-good Shield bitstream on a genuine device, is the *only*
//! party able to recover its Data Encryption Key.
//!
//! # The protocol
//!
//! Four parties, all deterministic models:
//!
//! * the **Manufacturer** ([`ManufacturerCa`]) burns the AES device key
//!   and certifies the device's attestation identity;
//! * the **SPB** (`shef_fpga::spb`) boots the measured Security Kernel
//!   and hands it an [`AttestationRoot`] — an HKDF child of the burned
//!   device key that never leaves the SPB in raw form;
//! * the **Security Kernel** ([`SecurityKernel`]) measures the Shield
//!   bitstream into a SHA-256 [`MeasurementChain`], derives its
//!   Attestation Key from root ‖ measurement, and signs Ed25519
//!   [`Quote`]s;
//! * the **Remote Verifier** ([`RemoteVerifier`]) — the Data Owner's
//!   agent — issues nonce challenges, checks the certificate chain and
//!   the measurement against a known-good registry, and on success
//!   seals the tenant DEK (AES-GCM) to the enclave session, issuing a
//!   signed [`AttestationTicket`].
//!
//! The kernel redeems the ticket ([`SecurityKernel::redeem`]) into an
//! [`AttestedTenant`] — the only constructor of that type — which is
//! what `shef_core::shield::ShieldService::register_tenant` demands:
//! tenant admission is structurally impossible without a completed
//! attestation.
//!
//! ```text
//!  Verifier                          Security Kernel
//!     │  challenge(nonce, g^v)  ───────────▶ │
//!     │                                      │ measure(bitstream)
//!     │ ◀───────  quote = Sign_AK(meas ‖     │ AK = HKDF(root, meas)
//!     │            nonce ‖ g^v ‖ certs)      │ K = HKDF(g^vk, transcript)
//!     │ verify chain, meas ∈ registry,       │
//!     │ σ, nonce fresh; K = HKDF(g^vk, ·)    │
//!     │  ticket{AES-GCM_K(DEK), σ_V} ──────▶ │ redeem → AttestedTenant
//!     │                                      │     └──▶ register_tenant
//! ```
//!
//! # Example
//!
//! The honest flow end to end, spelled out (the one-call fixture for
//! tests and services is [`AttestationEnvironment`]):
//!
//! ```
//! use shef_attest::{AttestationEnvironment, Measurement};
//!
//! let mut env = AttestationEnvironment::new(b"doc-example")?;
//! // The Data Owner picks a DEK and walks challenge → quote →
//! // verification → sealed provisioning → on-device redemption:
//! let grant = env.onboard("alice", [0x42u8; 32])?;
//! assert_eq!(grant.tenant(), "alice");
//! assert_eq!(grant.data_key(), [0x42u8; 32]);
//! // The ticket is verifier-signed and bound to the tenant name.
//! grant.ticket().verify(&env.verifier_public(), "alice")?;
//! assert!(grant.ticket().verify(&env.verifier_public(), "mallory").is_err());
//! # Ok::<(), shef_attest::AttestError>(())
//! ```
//!
//! Every failure mode is a typed [`AttestError`]; the fault-injection
//! campaign in `shef-testkit` drives forged quotes, replayed nonces,
//! wrong-measurement bitstreams and tampered sealed DEKs through these
//! APIs and requires each to surface as a detection, never silently.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod enc;
pub mod env;
pub mod identity;
pub mod kernel;
pub mod measure;
pub mod ticket;
pub mod verifier;

pub use env::AttestationEnvironment;
pub use identity::{AkCert, DeviceCert, ManufacturerCa};
pub use kernel::{KernelState, SecurityKernel};
pub use measure::{Measurement, MeasurementChain, MeasurementRegistry};
pub use shef_fpga::spb::AttestationRoot;
pub use ticket::{AttestationTicket, AttestedTenant, SealedDek};
pub use verifier::{Challenge, Quote, RemoteVerifier};

/// A typed attestation failure. Every rejection path in the protocol
/// maps to a distinct variant so callers (and the fault campaign) can
/// check *why* a run was refused, not just that it was.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttestError {
    /// A wire encoding failed to parse.
    Malformed(String),
    /// The device or Attestation-Key certificate chain did not verify.
    CertChain(String),
    /// A quote or ticket signature did not verify under the expected
    /// key.
    BadSignature(String),
    /// The quoted measurement is not in the verifier's known-good
    /// registry (hex digest attached).
    UnknownMeasurement(String),
    /// The quote names a nonce this verifier never issued.
    UnknownNonce,
    /// The quote names a nonce that was already consumed by a
    /// successful verification — a replayed transcript.
    ReplayedNonce,
    /// The sealed DEK failed authenticated decryption: tampered
    /// ciphertext, or a blob spliced from another session.
    SealTamper(String),
    /// The ticket names a session this kernel does not hold (never ran,
    /// or already redeemed — tickets are one-shot on-device).
    UnknownSession,
    /// The artifact is bound to a different tenant name.
    WrongTenant {
        /// Name the caller asked for.
        expected: String,
        /// Name the artifact is bound to.
        got: String,
    },
    /// A protocol state-machine violation (e.g. quoting before a
    /// bitstream was measured).
    State(String),
}

impl core::fmt::Display for AttestError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AttestError::Malformed(m) => write!(f, "malformed attestation message: {m}"),
            AttestError::CertChain(m) => write!(f, "certificate chain rejected: {m}"),
            AttestError::BadSignature(m) => write!(f, "signature verification failed: {m}"),
            AttestError::UnknownMeasurement(hex) => {
                write!(f, "measurement {hex} is not in the known-good registry")
            }
            AttestError::UnknownNonce => write!(f, "quote nonce was never issued"),
            AttestError::ReplayedNonce => {
                write!(f, "quote nonce already consumed (replayed transcript)")
            }
            AttestError::SealTamper(m) => {
                write!(f, "sealed DEK failed authenticated decryption: {m}")
            }
            AttestError::UnknownSession => {
                write!(
                    f,
                    "no open session for this ticket (unknown or already redeemed)"
                )
            }
            AttestError::WrongTenant { expected, got } => {
                write!(f, "artifact bound to tenant '{got}', expected '{expected}'")
            }
            AttestError::State(m) => write!(f, "protocol state violation: {m}"),
        }
    }
}

impl std::error::Error for AttestError {}
