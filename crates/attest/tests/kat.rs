//! Known-answer transcript tests: the attestation protocol is fully
//! deterministic, so a fixed environment seed must reproduce the exact
//! same measurement, challenge nonce, quote encoding and ticket
//! encoding on every run, on every machine. A change in any of these
//! constants is a wire-format or derivation change and must be treated
//! as a breaking protocol revision.

use shef_attest::AttestationEnvironment;
use shef_crypto::sha2::Sha256;

const KAT_SEED: &[u8] = b"shef.attest.kat.v1";
const KAT_TENANT: &str = "kat-tenant";
const KAT_DEK: [u8; 32] = [0x2A; 32];

/// SHA-256 of the Shield bitstream measurement chain for the demo
/// bitstream under the KAT seed.
const KAT_MEASUREMENT: &str = "395c031107552d76bfd8a4b617e16dd022d637dc7eee52bb9e688618314d5232";
/// First challenge nonce drawn from the verifier's DRBG.
const KAT_NONCE: &str = "ca6e0644d085769457a33fcc4cec80225897f6b5e71cad4cdb8f073ce5b9f4d9";
/// Verifier's first ephemeral X25519 public key.
const KAT_VERIFIER_KEM: &str = "029c56003a601d54aeed274d76443a62be196d11363e18aebee8c320416c1b44";
/// SHA-256 over the canonical quote encoding.
const KAT_QUOTE_DIGEST: &str = "068477ee73077964085784a64e413e0f97037ae66f4fbd6a76716d66872f88ec";
/// SHA-256 over the canonical ticket encoding (sealed DEK included).
const KAT_TICKET_DIGEST: &str = "bcd171ce5a4a94bb64aafbc1eaefc2c3d0a95571a8aa3677c0a8ed86835b037d";

fn hex(bytes: &[u8]) -> String {
    use std::fmt::Write;
    bytes.iter().fold(String::new(), |mut s, b| {
        let _ = write!(s, "{b:02x}");
        s
    })
}

/// One full onboarding round under the KAT seed, checked byte-for-byte
/// against the golden transcript at every protocol step.
#[test]
fn fixed_seed_reproduces_the_golden_transcript() {
    let mut env = AttestationEnvironment::new(KAT_SEED).expect("environment");
    assert_eq!(
        env.measurement().expect("operational").to_hex(),
        KAT_MEASUREMENT,
        "bitstream measurement drifted"
    );

    let challenge = env.verifier_mut().challenge();
    assert_eq!(hex(&challenge.nonce), KAT_NONCE, "challenge nonce drifted");
    assert_eq!(
        hex(&challenge.verifier_kem),
        KAT_VERIFIER_KEM,
        "verifier ephemeral key drifted"
    );

    let quote = env.kernel_mut().quote(&challenge).expect("quote");
    assert_eq!(
        hex(&Sha256::digest(&quote.to_bytes())),
        KAT_QUOTE_DIGEST,
        "quote encoding drifted"
    );

    let ticket = env
        .verifier_mut()
        .verify_and_provision(&quote, KAT_TENANT, KAT_DEK)
        .expect("provision");
    assert_eq!(
        hex(&Sha256::digest(&ticket.to_bytes())),
        KAT_TICKET_DIGEST,
        "ticket encoding drifted"
    );

    let grant = env.kernel_mut().redeem(&ticket).expect("redeem");
    assert_eq!(grant.tenant(), KAT_TENANT);
    assert_eq!(grant.data_key(), KAT_DEK, "sealed DEK did not round-trip");
}

/// Two environments built from the KAT seed replay to identical
/// transcripts step by step — determinism holds across instances, not
/// just against frozen constants.
#[test]
fn transcripts_are_reproducible_across_instances() {
    let run = || {
        let mut env = AttestationEnvironment::new(KAT_SEED).expect("environment");
        let challenge = env.verifier_mut().challenge();
        let quote = env.kernel_mut().quote(&challenge).expect("quote");
        let ticket = env
            .verifier_mut()
            .verify_and_provision(&quote, KAT_TENANT, KAT_DEK)
            .expect("provision");
        (quote.to_bytes(), ticket.to_bytes())
    };
    assert_eq!(run(), run(), "same seed must replay the same transcript");
}
