//! Property tests of the attestation protocol's security contract:
//! under arbitrary seeds, tenant names and tampering positions,
//!
//! * an honest challenge → quote → verify → redeem round always
//!   succeeds and round-trips the sealed DEK,
//! * a quote with any bit of its signature, measurement or nonce
//!   flipped never verifies,
//! * a consumed transcript never verifies a second time, and
//! * a ticket with any byte flipped is never redeemed by the kernel.

use proptest::prelude::*;
use shef_attest::{AttestError, AttestationEnvironment, AttestationTicket};

fn env_from(seed: u64) -> AttestationEnvironment {
    AttestationEnvironment::new(&seed.to_le_bytes()).expect("environment")
}

fn tenant_name(id: u8) -> String {
    format!("tenant-{id}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Honest onboarding succeeds for every seed/tenant/DEK and hands
    /// the enclave exactly the DEK the Data Owner sealed.
    #[test]
    fn honest_onboarding_always_succeeds(seed in any::<u64>(), id in any::<u8>(), fill in any::<u8>()) {
        let mut env = env_from(seed);
        let name = tenant_name(id);
        let dek = [fill; 32];
        let grant = env.onboard(&name, dek).expect("honest round");
        prop_assert_eq!(grant.tenant(), name.as_str());
        prop_assert_eq!(grant.data_key(), dek);
    }

    /// Flipping any bit anywhere in the quote signature is always
    /// rejected as a bad signature.
    #[test]
    fn forged_quote_signature_never_verifies(seed in any::<u64>(), byte in 0usize..64, bit in 0u8..8) {
        let mut env = env_from(seed);
        let challenge = env.verifier_mut().challenge();
        let mut quote = env.kernel_mut().quote(&challenge).expect("quote");
        quote.signature.0[byte] ^= 1 << bit;
        let got = env.verifier_mut().verify_and_provision(&quote, "victim", [7u8; 32]);
        prop_assert!(
            matches!(got, Err(AttestError::BadSignature(_))),
            "forged signature accepted: {:?}", got.map(|_| ())
        );
    }

    /// Flipping any bit of the quoted measurement breaks the signature
    /// (the AK signs the measurement) — never an accepted quote.
    #[test]
    fn tampered_measurement_never_verifies(seed in any::<u64>(), byte in 0usize..32, bit in 0u8..8) {
        let mut env = env_from(seed);
        let challenge = env.verifier_mut().challenge();
        let mut quote = env.kernel_mut().quote(&challenge).expect("quote");
        quote.measurement.0[byte] ^= 1 << bit;
        let got = env.verifier_mut().verify_and_provision(&quote, "victim", [7u8; 32]);
        prop_assert!(got.is_err(), "tampered measurement accepted");
    }

    /// A quote re-bound to a different nonce never verifies: either the
    /// nonce is unknown to the verifier or the signature no longer
    /// covers it.
    #[test]
    fn redirected_nonce_never_verifies(seed in any::<u64>(), byte in 0usize..32, bit in 0u8..8) {
        let mut env = env_from(seed);
        let challenge = env.verifier_mut().challenge();
        let mut quote = env.kernel_mut().quote(&challenge).expect("quote");
        quote.nonce[byte] ^= 1 << bit;
        let got = env.verifier_mut().verify_and_provision(&quote, "victim", [7u8; 32]);
        prop_assert!(got.is_err(), "redirected nonce accepted");
    }

    /// A fully honest transcript, replayed after the session was
    /// consumed, is always rejected as a replay.
    #[test]
    fn consumed_transcript_never_verifies_twice(seed in any::<u64>(), id in any::<u8>()) {
        let mut env = env_from(seed);
        let name = tenant_name(id);
        let challenge = env.verifier_mut().challenge();
        let quote = env.kernel_mut().quote(&challenge).expect("quote");
        let ticket = env
            .verifier_mut()
            .verify_and_provision(&quote, &name, [9u8; 32])
            .expect("honest round");
        env.kernel_mut().redeem(&ticket).expect("redeem");
        let replay = env.verifier_mut().verify_and_provision(&quote, &name, [9u8; 32]);
        prop_assert!(
            matches!(replay, Err(AttestError::ReplayedNonce)),
            "replayed transcript accepted: {:?}", replay.map(|_| ())
        );
    }

    /// Flipping any byte of the serialized ticket is caught by the
    /// layer that owns that region: the kernel refuses to unseal if the
    /// tenant binding, session, or sealed DEK is touched (the GCM seal
    /// is its root of trust), and the service-side signature check
    /// refuses the ticket if the verifier identity or signature is
    /// touched. No flipped byte anywhere releases a DEK to an admitted
    /// tenant.
    #[test]
    fn tampered_ticket_never_redeems(seed in any::<u64>(), pos in any::<u16>(), bit in 0u8..8) {
        let mut env = env_from(seed);
        let trusted = env.verifier_public();
        let challenge = env.verifier_mut().challenge();
        let quote = env.kernel_mut().quote(&challenge).expect("quote");
        let ticket = env
            .verifier_mut()
            .verify_and_provision(&quote, "victim", [9u8; 32])
            .expect("honest round");
        let mut bytes = ticket.to_bytes();
        let idx = pos as usize % bytes.len();
        bytes[idx] ^= 1 << bit;
        // Trailing 96 bytes = verifier public key (32) + signature (64):
        // the admission layer's jurisdiction. Everything before them is
        // sealed-DEK territory the kernel must police.
        let sealed_end = bytes.len() - 96;
        if let Ok(tampered) = AttestationTicket::from_bytes(&bytes) {
            if idx < sealed_end {
                let got = env.kernel_mut().redeem(&tampered);
                prop_assert!(got.is_err(), "tampered ticket redeemed at byte {}", idx);
            } else {
                prop_assert!(
                    tampered.verify(&trusted, "victim").is_err(),
                    "tampered ticket passed the service check at byte {}", idx
                );
            }
        }
        // The genuine ticket still redeems afterwards: the tamper
        // attempt must not have burned the session.
        let grant = env.kernel_mut().redeem(&ticket).expect("genuine redeem");
        prop_assert_eq!(grant.data_key(), [9u8; 32]);
    }
}
