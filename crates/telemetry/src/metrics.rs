//! Metric instruments: counters, gauges, and bounded histograms.
//!
//! Every instrument is a cheap-clone handle over shared atomics. Callers
//! resolve a handle once (through [`crate::Telemetry`]) and then update it
//! from hot paths without taking any lock: updates are plain
//! `AtomicU64` read-modify-write operations.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonically increasing counter.
///
/// ```
/// let t = shef_telemetry::Telemetry::new();
/// let hits = t.counter("shield.engine.hits");
/// hits.inc();
/// hits.add(4);
/// assert_eq!(hits.get(), 5);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub(crate) fn new() -> Self {
        Self(Arc::new(AtomicU64::new(0)))
    }

    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`. Saturates at `u64::MAX` instead of wrapping so a
    /// long-running registry can never report a small value after overflow.
    pub fn add(&self, n: u64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(n);
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge with a monotone-max helper.
///
/// ```
/// let t = shef_telemetry::Telemetry::new();
/// let depth = t.gauge("shield.engine.queue_depth_hwm");
/// depth.set(3);
/// depth.record_max(7);
/// depth.record_max(2);
/// assert_eq!(depth.get(), 7);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub(crate) fn new() -> Self {
        Self(Arc::new(AtomicU64::new(0)))
    }

    /// Overwrite the gauge with `v`.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if `v` is larger than the current value.
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bounded histogram with explicit inclusive upper bounds plus one
/// overflow bucket.
///
/// A sample `v` lands in the first bucket whose bound satisfies
/// `v <= bound`; samples larger than every bound land in the overflow
/// bucket. Bounds must be non-empty and strictly increasing.
///
/// ```
/// let t = shef_telemetry::Telemetry::new();
/// let h = t.histogram("shield.engine.batch_jobs", &[1, 4, 16]);
/// h.observe(0);   // first bucket (0 <= 1)
/// h.observe(16);  // last bounded bucket (inclusive)
/// h.observe(17);  // overflow bucket
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bucket_counts(), vec![1, 0, 1]);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    bounds: Arc<Vec<u64>>,
    /// `bounds.len()` bounded buckets followed by one overflow bucket.
    buckets: Arc<Vec<AtomicU64>>,
    sum: Arc<AtomicU64>,
    count: Arc<AtomicU64>,
}

impl Histogram {
    pub(crate) fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds: Arc::new(bounds.to_vec()),
            buckets: Arc::new(buckets),
            sum: Arc::new(AtomicU64::new(0)),
            count: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Record one sample.
    pub fn observe(&self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        // Saturate rather than wrap: a wrapped sum would report a tiny
        // total after ~2^64 observed cycles, which reads as a regression.
        let mut cur = self.sum.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(v);
            match self
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Inclusive upper bounds of the bounded buckets.
    #[must_use]
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Sample counts of the bounded buckets (same order as [`Self::bounds`]).
    #[must_use]
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets[..self.bounds.len()]
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Number of samples larger than every bound.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.buckets[self.bounds.len()].load(Ordering::Relaxed)
    }

    /// Sum of all observed samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Total number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}
