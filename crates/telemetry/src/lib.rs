//! # shef-telemetry
//!
//! Deterministic observability substrate for the ShEF Shield: a metrics
//! registry (counters, gauges, bounded histograms), a span-based tracer,
//! and CI-consumable exporters.
//!
//! ## Model
//!
//! A [`Telemetry`] value is a cheap-clone handle over one shared
//! registry. Instruments are resolved by name once (get-or-create,
//! behind a short registration mutex) and then updated **lock-free**
//! from hot paths — every update is a single `AtomicU64` operation on a
//! pre-resolved [`Counter`], [`Gauge`] or [`Histogram`] handle.
//!
//! The tracer records named scopes on a **deterministic logical
//! clock**: timestamps are modelled cycles (snapshots of the ShEF cost
//! ledger), never wall time. Only model-derived quantities belong in a
//! registry; anything tied to real thread scheduling would break the
//! byte-identical-report guarantee that CI relies on.
//!
//! ## Example
//!
//! ```
//! use shef_telemetry::Telemetry;
//!
//! let t = Telemetry::new();
//! // Hot path: resolve once, update lock-free.
//! let hits = t.counter("shield.engine.hits");
//! for _ in 0..3 {
//!     hits.inc();
//! }
//! t.gauge("shield.engine.lanes").set(4);
//! t.histogram("shield.engine.batch_jobs", &[1, 4, 16]).observe(8);
//! // Span on the logical clock (modelled cycles, not wall time).
//! t.trace("shield.engine.crypto", 1_000, 1_640);
//!
//! let report = t.report();
//! assert_eq!(report.counters["shield.engine.hits"], 3);
//! assert_eq!(report.scopes["shield.engine.crypto"].total_cycles, 640);
//! // Exporters are deterministic: same updates => byte-identical text.
//! assert_eq!(report.to_json(), t.report().to_json());
//! ```

mod metrics;
mod report;
mod trace;

pub use metrics::{Counter, Gauge, Histogram};
pub use report::{HistogramSnapshot, Report, REPORT_SCHEMA};
pub use trace::{ScopeAgg, Span, SPAN_CAP};

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use trace::SpanBuffer;

#[derive(Debug)]
enum MetricSlot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug, Default)]
struct Inner {
    /// Registration is the cold path: a short mutex around the name
    /// table. Handles returned from it update lock-free.
    metrics: Mutex<BTreeMap<String, MetricSlot>>,
    spans: Mutex<SpanBuffer>,
}

/// Shared handle to one telemetry registry.
///
/// Cloning is cheap (an `Arc` bump) and every clone observes the same
/// instruments, so a registry can be attached across layers — Shield,
/// engine sets, worker pool, DRAM model — and snapshotted once at the
/// end of a run via [`Telemetry::report`].
#[derive(Clone, Debug, Default)]
pub struct Telemetry(Arc<Inner>);

impl Telemetry {
    /// Create an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` if both handles point at the same registry.
    #[must_use]
    pub fn same_registry(&self, other: &Telemetry) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// Get or create the counter named `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different instrument
    /// kind — instrument kinds are part of the schema, so a kind clash
    /// is a programming error, not a runtime condition.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = lock(&self.0.metrics);
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| MetricSlot::Counter(Counter::new()))
        {
            MetricSlot::Counter(c) => c.clone(),
            _ => panic!("telemetry metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or create the gauge named `name`.
    ///
    /// # Panics
    /// Panics on an instrument-kind clash (see [`Telemetry::counter`]).
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = lock(&self.0.metrics);
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| MetricSlot::Gauge(Gauge::new()))
        {
            MetricSlot::Gauge(g) => g.clone(),
            _ => panic!("telemetry metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or create the histogram named `name` with the given inclusive
    /// upper `bounds` (an overflow bucket is added implicitly).
    ///
    /// # Panics
    /// Panics on an instrument-kind clash, on empty or non-increasing
    /// `bounds`, or if the histogram already exists with different
    /// bounds.
    #[must_use]
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut metrics = lock(&self.0.metrics);
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| MetricSlot::Histogram(Histogram::new(bounds)))
        {
            MetricSlot::Histogram(h) => {
                assert_eq!(
                    h.bounds(),
                    bounds,
                    "telemetry histogram {name:?} re-registered with different bounds"
                );
                h.clone()
            }
            _ => panic!("telemetry metric {name:?} already registered with a different kind"),
        }
    }

    /// Record a span: scope `name` ran from `start_cycles` to
    /// `end_cycles` on the logical clock. Aggregates always update; the
    /// raw span list keeps the first [`SPAN_CAP`] spans and counts the
    /// rest as dropped.
    pub fn trace(&self, name: &str, start_cycles: u64, end_cycles: u64) {
        lock(&self.0.spans).record(name, start_cycles, end_cycles);
    }

    /// Snapshot the registry into an ordered, deterministic [`Report`].
    #[must_use]
    pub fn report(&self) -> Report {
        let metrics = lock(&self.0.metrics);
        let mut report = Report::default();
        for (name, slot) in metrics.iter() {
            match slot {
                MetricSlot::Counter(c) => {
                    report.counters.insert(name.clone(), c.get());
                }
                MetricSlot::Gauge(g) => {
                    report.gauges.insert(name.clone(), g.get());
                }
                MetricSlot::Histogram(h) => {
                    report.histograms.insert(
                        name.clone(),
                        HistogramSnapshot {
                            bounds: h.bounds().to_vec(),
                            counts: h.bucket_counts(),
                            overflow: h.overflow(),
                            sum: h.sum(),
                            count: h.count(),
                        },
                    );
                }
            }
        }
        drop(metrics);
        let spans = lock(&self.0.spans);
        report.scopes = spans.scopes.clone();
        report.spans = spans.spans.clone();
        report.spans_dropped = spans.dropped;
        report
    }
}

/// Lock a mutex, recovering from poisoning: telemetry must never turn a
/// worker-lane panic (which the Shield is designed to survive) into a
/// second panic on the observer side.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let t = Telemetry::new();
        let c = t.counter("a.b");
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        // Get-or-create returns a handle to the same underlying cell.
        assert_eq!(t.counter("a.b").get(), 10);

        let g = t.gauge("g");
        g.set(5);
        g.record_max(3);
        assert_eq!(g.get(), 5);
        g.record_max(8);
        assert_eq!(g.get(), 8);
    }

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let t = Telemetry::new();
        let c = t.counter("sat");
        c.add(u64::MAX - 1);
        c.add(10);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn histogram_zero_lands_in_first_bucket() {
        let t = Telemetry::new();
        let h = t.histogram("h", &[1, 4, 16]);
        h.observe(0);
        assert_eq!(h.bucket_counts(), vec![1, 0, 0]);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn histogram_max_bound_is_inclusive() {
        let t = Telemetry::new();
        let h = t.histogram("h", &[1, 4, 16]);
        h.observe(16);
        assert_eq!(h.bucket_counts(), vec![0, 0, 1]);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn histogram_above_max_bound_overflows() {
        let t = Telemetry::new();
        let h = t.histogram("h", &[1, 4, 16]);
        h.observe(17);
        h.observe(u64::MAX);
        assert_eq!(h.bucket_counts(), vec![0, 0, 0]);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn histogram_interior_bounds_are_inclusive() {
        let t = Telemetry::new();
        let h = t.histogram("h", &[1, 4, 16]);
        h.observe(1);
        h.observe(2);
        h.observe(4);
        h.observe(5);
        assert_eq!(h.bucket_counts(), vec![1, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        let t = Telemetry::new();
        let _ = t.histogram("bad", &[4, 4]);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_clash_panics() {
        let t = Telemetry::new();
        let _ = t.counter("x");
        let _ = t.gauge("x");
    }

    #[test]
    fn spans_aggregate_and_cap() {
        let t = Telemetry::new();
        for i in 0..(SPAN_CAP as u64 + 10) {
            t.trace("walk", i, i + 2);
        }
        let r = t.report();
        assert_eq!(r.spans.len(), SPAN_CAP);
        assert_eq!(r.spans_dropped, 10);
        let agg = r.scopes["walk"];
        assert_eq!(agg.count, SPAN_CAP as u64 + 10);
        assert_eq!(agg.total_cycles, 2 * (SPAN_CAP as u64 + 10));
        assert_eq!(agg.max_cycles, 2);
        // First-N retention: span 0 is kept, the tail is dropped.
        assert_eq!(r.spans[0].start_cycles, 0);
    }

    #[test]
    fn backwards_clock_clamps_to_zero_duration() {
        let t = Telemetry::new();
        t.trace("odd", 10, 3);
        assert_eq!(t.report().scopes["odd"].total_cycles, 0);
    }

    #[test]
    fn concurrent_updates_are_lock_free_and_complete() {
        let t = Telemetry::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = t.counter("shared");
                let h = t.histogram("hist", &[10]);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                        h.observe(5);
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        assert_eq!(t.counter("shared").get(), 8000);
        let r = t.report();
        assert_eq!(r.histograms["hist"].count, 8000);
        assert_eq!(r.histograms["hist"].sum, 40_000);
    }

    #[test]
    fn report_json_is_deterministic_and_line_oriented() {
        let build = || {
            let t = Telemetry::new();
            // Register in different orders; output must not care.
            t.counter("z.last").add(2);
            t.counter("a.first").inc();
            t.gauge("mid").set(7);
            t.histogram("h", &[2, 8]).observe(3);
            t.trace("phase", 100, 250);
            t.report().to_json()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        let lines: Vec<&str> = a.lines().collect();
        assert!(lines[0].contains("\"schema\": \"shef-telemetry/v1\""));
        // Sorted: counters a.first before z.last, every line valid JSON shape.
        assert!(lines[1].contains("\"name\": \"a.first\""));
        assert!(lines[2].contains("\"name\": \"z.last\""));
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn prometheus_export_sanitizes_and_accumulates() {
        let t = Telemetry::new();
        t.counter("shield.pool.lane0.dispatched").add(4);
        t.histogram("lat", &[1, 10]).observe(1);
        t.histogram("lat", &[1, 10]).observe(99);
        let text = t.report().to_prometheus();
        assert!(text.contains("shield_pool_lane0_dispatched 4"));
        assert!(text.contains("lat_bucket{le=\"1\"} 1"));
        // +Inf bucket is cumulative over bounded buckets and overflow.
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("lat_sum 100"));
        assert!(text.contains("lat_count 2"));
    }

    #[test]
    fn summary_table_mentions_nonzero_metrics() {
        let t = Telemetry::new();
        t.counter("silent").add(0);
        t.counter("loud").add(3);
        t.trace("walk", 0, 50);
        let table = t.report().summary_table();
        assert!(table.contains("loud"));
        assert!(!table.contains("silent"));
        assert!(table.contains("walk"));
    }

    #[test]
    fn clones_share_one_registry() {
        let t = Telemetry::new();
        let t2 = t.clone();
        assert!(t.same_registry(&t2));
        t2.counter("via.clone").inc();
        assert_eq!(t.report().counters["via.clone"], 1);
        assert!(!t.same_registry(&Telemetry::new()));
    }
}
