//! Deterministic snapshots and exporters.
//!
//! A [`Report`] is an owned, ordered snapshot of a registry: metrics
//! sorted by name (`BTreeMap` order), scope aggregates sorted by name,
//! raw spans in record order. Two registries that observed the same
//! sequence of updates therefore export *byte-identical* text, which is
//! what lets CI `cmp` two runs of the same seeded workload.
//!
//! Exporters:
//! - [`Report::to_json`] — line-JSON: one header line with the schema
//!   tag `shef-telemetry/v1` plus one self-contained JSON object per
//!   record, so shell/awk gates can parse it without JSON tooling;
//! - [`Report::to_prometheus`] — Prometheus text exposition format;
//! - [`Report::summary_table`] — human-readable run-report table.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::trace::{ScopeAgg, Span};

/// Schema tag emitted on the first line of [`Report::to_json`].
pub const REPORT_SCHEMA: &str = "shef-telemetry/v1";

/// Point-in-time snapshot of one histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds of the bounded buckets.
    pub bounds: Vec<u64>,
    /// Sample counts per bounded bucket.
    pub counts: Vec<u64>,
    /// Samples larger than every bound.
    pub overflow: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Total number of samples.
    pub count: u64,
}

/// Deterministic snapshot of a [`crate::Telemetry`] registry.
///
/// ```
/// let t = shef_telemetry::Telemetry::new();
/// t.counter("shield.engine.hits").add(3);
/// t.trace("shield.engine.walk", 0, 120);
/// let report = t.report();
/// assert_eq!(report.counters["shield.engine.hits"], 3);
/// assert!(report.to_json().starts_with("{\"schema\": \"shef-telemetry/v1\""));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Per-scope span aggregates by scope name.
    pub scopes: BTreeMap<String, ScopeAgg>,
    /// Raw spans in record order (first [`crate::SPAN_CAP`] only).
    pub spans: Vec<Span>,
    /// Spans recorded after the raw buffer filled up.
    pub spans_dropped: u64,
}

impl Report {
    /// Render the line-JSON form consumed by `scripts/check_report.sh`.
    ///
    /// First line is a header object carrying the schema tag and record
    /// counts; every following line is one complete JSON object with a
    /// `"kind"` discriminator (`counter`, `gauge`, `histogram`, `scope`,
    /// `span`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"schema\": \"{}\", \"counters\": {}, \"gauges\": {}, \"histograms\": {}, \"scopes\": {}, \"spans\": {}, \"spans_dropped\": {}}}",
            REPORT_SCHEMA,
            self.counters.len(),
            self.gauges.len(),
            self.histograms.len(),
            self.scopes.len(),
            self.spans.len(),
            self.spans_dropped,
        );
        for (name, v) in &self.counters {
            let _ = writeln!(
                out,
                "{{\"kind\": \"counter\", \"name\": \"{}\", \"value\": {v}}}",
                json_escape(name)
            );
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(
                out,
                "{{\"kind\": \"gauge\", \"name\": \"{}\", \"value\": {v}}}",
                json_escape(name)
            );
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{{\"kind\": \"histogram\", \"name\": \"{}\", \"bounds\": {}, \"counts\": {}, \"overflow\": {}, \"sum\": {}, \"count\": {}}}",
                json_escape(name),
                json_u64_array(&h.bounds),
                json_u64_array(&h.counts),
                h.overflow,
                h.sum,
                h.count,
            );
        }
        for (name, agg) in &self.scopes {
            let _ = writeln!(
                out,
                "{{\"kind\": \"scope\", \"name\": \"{}\", \"count\": {}, \"total_cycles\": {}, \"max_cycles\": {}}}",
                json_escape(name),
                agg.count,
                agg.total_cycles,
                agg.max_cycles,
            );
        }
        for span in &self.spans {
            let _ = writeln!(
                out,
                "{{\"kind\": \"span\", \"name\": \"{}\", \"start_cycles\": {}, \"end_cycles\": {}}}",
                json_escape(&span.scope),
                span.start_cycles,
                span.end_cycles,
            );
        }
        out
    }

    /// Render the Prometheus text exposition format.
    ///
    /// Metric names are sanitized to `[a-zA-Z0-9_:]` (dots and brackets
    /// become `_`). Histograms expand to the conventional
    /// `_bucket{le=...}` / `_sum` / `_count` series; scope aggregates
    /// export as `<scope>_cycles_total`, `<scope>_cycles_max` and
    /// `<scope>_spans_total`.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {n} counter\n{n} {v}");
        }
        for (name, v) in &self.gauges {
            let n = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge\n{n} {v}");
        }
        for (name, h) in &self.histograms {
            let n = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cumulative = 0u64;
            for (bound, c) in h.bounds.iter().zip(&h.counts) {
                cumulative += c;
                let _ = writeln!(out, "{n}_bucket{{le=\"{bound}\"}} {cumulative}");
            }
            cumulative += h.overflow;
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {cumulative}");
            let _ = writeln!(out, "{n}_sum {}", h.sum);
            let _ = writeln!(out, "{n}_count {}", h.count);
        }
        for (name, agg) in &self.scopes {
            let n = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {n}_cycles_total counter");
            let _ = writeln!(out, "{n}_cycles_total {}", agg.total_cycles);
            let _ = writeln!(out, "# TYPE {n}_cycles_max gauge");
            let _ = writeln!(out, "{n}_cycles_max {}", agg.max_cycles);
            let _ = writeln!(out, "# TYPE {n}_spans_total counter");
            let _ = writeln!(out, "{n}_spans_total {}", agg.count);
        }
        out
    }

    /// Render a fixed-width run-report table: scope phase breakdown
    /// first, then non-zero counters, gauges and histogram totals.
    #[must_use]
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        if !self.scopes.is_empty() {
            let _ = writeln!(
                out,
                "{:<36} {:>10} {:>14} {:>12}",
                "scope", "spans", "total_cycles", "max_cycles"
            );
            for (name, agg) in &self.scopes {
                let _ = writeln!(
                    out,
                    "{:<36} {:>10} {:>14} {:>12}",
                    name, agg.count, agg.total_cycles, agg.max_cycles
                );
            }
        }
        let nonzero_counters: Vec<_> = self.counters.iter().filter(|(_, v)| **v != 0).collect();
        if !nonzero_counters.is_empty() {
            let _ = writeln!(out, "{:<36} {:>10}", "counter", "value");
            for (name, v) in nonzero_counters {
                let _ = writeln!(out, "{name:<36} {v:>10}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "{:<36} {:>10}", "gauge", "value");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "{name:<36} {v:>10}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(
                out,
                "{:<36} {:>10} {:>14} {:>12}",
                "histogram", "samples", "sum", "overflow"
            );
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "{:<36} {:>10} {:>14} {:>12}",
                    name, h.count, h.sum, h.overflow
                );
            }
        }
        out
    }
}

fn json_u64_array(vals: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
    out
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn prometheus_name(s: &str) -> String {
    let mut out: String = s
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}
