//! Span-based tracer over a deterministic logical clock.
//!
//! Timestamps are *modelled cycles* (e.g. snapshots of the ShEF cost
//! ledger), never wall time, so traces of the same workload are
//! byte-identical run to run — even when the traced code executes on
//! real worker threads. A span is a named scope with a start and end
//! timestamp; the tracer keeps per-scope aggregates for every span plus
//! the raw first [`SPAN_CAP`] spans (keeping the *first* N is
//! deterministic, unlike a ring buffer fed from racing threads).

/// Maximum number of raw spans retained per registry; later spans still
/// update the per-scope aggregates and bump the dropped count.
pub const SPAN_CAP: usize = 256;

/// One recorded scope interval on the logical clock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Scope name, e.g. `shield.engine.crypto`.
    pub scope: String,
    /// Logical-clock value when the scope was entered.
    pub start_cycles: u64,
    /// Logical-clock value when the scope was exited.
    pub end_cycles: u64,
}

impl Span {
    /// Span length on the logical clock; zero if the clock did not advance.
    #[must_use]
    pub fn duration(&self) -> u64 {
        self.end_cycles.saturating_sub(self.start_cycles)
    }
}

/// Aggregate of every span recorded under one scope name.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScopeAgg {
    /// Number of spans recorded under this scope.
    pub count: u64,
    /// Sum of span durations, in modelled cycles.
    pub total_cycles: u64,
    /// Longest single span, in modelled cycles.
    pub max_cycles: u64,
}

#[derive(Debug, Default)]
pub(crate) struct SpanBuffer {
    pub(crate) spans: Vec<Span>,
    pub(crate) dropped: u64,
    pub(crate) scopes: std::collections::BTreeMap<String, ScopeAgg>,
}

impl SpanBuffer {
    pub(crate) fn record(&mut self, scope: &str, start_cycles: u64, end_cycles: u64) {
        let span = Span {
            scope: scope.to_string(),
            start_cycles,
            end_cycles,
        };
        let agg = self.scopes.entry(scope.to_string()).or_default();
        agg.count += 1;
        agg.total_cycles = agg.total_cycles.saturating_add(span.duration());
        agg.max_cycles = agg.max_cycles.max(span.duration());
        if self.spans.len() < SPAN_CAP {
            self.spans.push(span);
        } else {
            self.dropped += 1;
        }
    }
}
