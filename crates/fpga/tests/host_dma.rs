//! Integration tests of the PCIe DMA cost model — the mechanism behind
//! Fig. 5's flat left side ("for short vectors, execution time is
//! dominated by initialization overheads, e.g., data movement and
//! signalling between the FPGA and CPU").

use shef_fpga::clock::{CostLedger, Cycles};
use shef_fpga::dram::Dram;
use shef_fpga::host::{HostCpu, PcieTiming};
use shef_fpga::shell::Shell;

fn env() -> (HostCpu, Shell, Dram, CostLedger) {
    (
        HostCpu::new(),
        Shell::new(),
        Dram::new(1 << 24),
        CostLedger::new(),
    )
}

#[test]
fn chained_descriptors_amortize_setup() {
    // Data + its tag array in one batch (one setup) must cost strictly
    // less serial time than two independent DMA invocations.
    let (mut host, mut shell, mut dram, mut ledger) = env();
    host.dma_to_device(&mut shell, &mut dram, &mut ledger, 0, &[1u8; 4096])
        .unwrap();
    host.dma_to_device_chained(&mut shell, &mut dram, &mut ledger, 1 << 20, &[2u8; 64])
        .unwrap();
    let chained_serial = ledger.serial();

    let (mut host2, mut shell2, mut dram2, mut ledger2) = env();
    host2
        .dma_to_device(&mut shell2, &mut dram2, &mut ledger2, 0, &[1u8; 4096])
        .unwrap();
    host2
        .dma_to_device(&mut shell2, &mut dram2, &mut ledger2, 1 << 20, &[2u8; 64])
        .unwrap();
    let separate_serial = ledger2.serial();

    assert_eq!(
        separate_serial,
        chained_serial + PcieTiming::default().setup_cycles,
        "a chained descriptor saves exactly one setup"
    );
    // Bandwidth charges are identical either way.
    assert_eq!(ledger.lane("pcie.in"), ledger2.lane("pcie.in"));
}

#[test]
fn small_transfers_are_setup_dominated() {
    // The Fig. 5 mechanism: a 64-byte DMA costs essentially one setup;
    // only at megabyte scale does bandwidth dominate.
    let (mut host, mut shell, mut dram, mut ledger) = env();
    host.dma_to_device(&mut shell, &mut dram, &mut ledger, 0, &[0u8; 64])
        .unwrap();
    let small = ledger.serial() + ledger.lane("pcie.in");
    let setup = PcieTiming::default().setup_cycles;
    assert!(
        small < setup + Cycles(10),
        "64 B ≈ one setup, got {small:?}"
    );

    let (mut host2, mut shell2, mut dram2, mut ledger2) = env();
    host2
        .dma_to_device(
            &mut shell2,
            &mut dram2,
            &mut ledger2,
            0,
            &vec![0u8; 4 << 20],
        )
        .unwrap();
    let big_bw = ledger2.lane("pcie.in");
    assert!(
        big_bw > setup.saturating_add(setup),
        "4 MB must be bandwidth-dominated ({big_bw:?} vs setup {setup:?})"
    );
}

#[test]
fn directions_occupy_independent_lanes() {
    // PCIe is full duplex: staging inputs and draining outputs overlap.
    let (mut host, mut shell, mut dram, mut ledger) = env();
    host.dma_to_device(&mut shell, &mut dram, &mut ledger, 0, &[5u8; 4800])
        .unwrap();
    let _ = host
        .dma_from_device(&mut shell, &mut dram, &mut ledger, 0, 4800)
        .unwrap();
    assert_eq!(ledger.lane("pcie.in"), Cycles(100));
    assert_eq!(ledger.lane("pcie.out"), Cycles(100));
    // The bottleneck view overlaps them rather than summing.
    assert!(ledger.bottleneck() < Cycles(200) + ledger.serial());
}

#[test]
fn dma_content_reaches_dram_verbatim() {
    // The host is a pure proxy: bytes land in DRAM unmodified (they are
    // already ciphertext when the data owner uses the Shield correctly).
    let (mut host, mut shell, mut dram, mut ledger) = env();
    let payload: Vec<u8> = (0..2048u32).map(|i| (i % 253) as u8).collect();
    host.dma_to_device(&mut shell, &mut dram, &mut ledger, 0x4000, &payload)
        .unwrap();
    assert_eq!(dram.tamper_read(0x4000, 2048), payload);
    let back = host
        .dma_from_device(&mut shell, &mut dram, &mut ledger, 0x4000, 2048)
        .unwrap();
    assert_eq!(back, payload);
}

#[test]
fn out_of_range_dma_fails_cleanly() {
    let (mut host, mut shell, mut dram, mut ledger) = env();
    let size = dram.size();
    assert!(host
        .dma_to_device(&mut shell, &mut dram, &mut ledger, size - 10, &[0u8; 64])
        .is_err());
    assert!(host
        .dma_from_device(&mut shell, &mut dram, &mut ledger, size, 1)
        .is_err());
}

#[test]
fn transfer_count_tracks_every_invocation() {
    let (mut host, mut shell, mut dram, mut ledger) = env();
    for i in 0..5u64 {
        host.dma_to_device(&mut shell, &mut dram, &mut ledger, i * 4096, &[0u8; 128])
            .unwrap();
    }
    let _ = host
        .dma_from_device_chained(&mut shell, &mut dram, &mut ledger, 0, 128)
        .unwrap();
    assert_eq!(host.transfer_count(), 6);
}
