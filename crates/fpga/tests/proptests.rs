//! Property-based tests for the platform substrate.

use proptest::prelude::*;
use shef_fpga::axi::{beats_for_len, split_bursts, Axi4Port, AXI4_MAX_BURST_BYTES};
use shef_fpga::clock::{CostLedger, Cycles};
use shef_fpga::dram::Dram;
use shef_fpga::keystore::{KeyProtection, KeyStore, Puf};
use shef_fpga::shell::Shell;
use shef_fpga::spb::{seal_firmware, Spb};

proptest! {
    #[test]
    fn burst_splitting_covers_exactly(addr in 0u64..1_000_000, len in 0usize..20_000) {
        let bursts = split_bursts(addr, len);
        // Total coverage, contiguity, and the 4 KB rule.
        let total: usize = bursts.iter().map(|(_, l)| l).sum();
        prop_assert_eq!(total, len);
        let mut cursor = addr;
        for (a, l) in &bursts {
            prop_assert_eq!(*a, cursor);
            prop_assert!(*l <= AXI4_MAX_BURST_BYTES);
            // A burst never crosses a 4 KB boundary.
            let start_page = a / AXI4_MAX_BURST_BYTES as u64;
            let end_page = (a + *l as u64 - 1) / AXI4_MAX_BURST_BYTES as u64;
            prop_assert_eq!(start_page, end_page);
            cursor += *l as u64;
        }
        let _ = beats_for_len(len);
    }

    #[test]
    fn dram_is_a_memory(ops in proptest::collection::vec(
        (0u64..65_000, proptest::collection::vec(any::<u8>(), 1..300)), 1..30)) {
        // DRAM behaves exactly like a flat byte array under random writes.
        let mut dram = Dram::new(1 << 20);
        let mut reference = vec![0u8; 1 << 20];
        for (addr, data) in &ops {
            dram.write_burst(*addr, data).unwrap();
            reference[*addr as usize..*addr as usize + data.len()].copy_from_slice(data);
        }
        for (addr, data) in &ops {
            let got = dram.read_burst(*addr, data.len()).unwrap();
            prop_assert_eq!(&got[..], &reference[*addr as usize..*addr as usize + data.len()]);
        }
    }

    #[test]
    fn dram_cost_monotonic_in_size(len_a in 1usize..100_000, len_b in 1usize..100_000) {
        let (small, large) = (len_a.min(len_b), len_a.max(len_b));
        let mut d1 = Dram::new(1 << 20);
        d1.write_burst(0, &vec![0u8; small]).unwrap();
        let mut d2 = Dram::new(1 << 20);
        d2.write_burst(0, &vec![0u8; large]).unwrap();
        prop_assert!(d2.ledger().lane("dram") >= d1.ledger().lane("dram"));
    }

    #[test]
    fn puf_wrap_is_involution_and_device_unique(key in any::<[u8; 32]>(),
                                                serial_a in any::<[u8; 8]>(),
                                                serial_b in any::<[u8; 8]>()) {
        let puf_a = Puf::from_die_serial(&serial_a);
        prop_assert_eq!(puf_a.unwrap_key(&puf_a.wrap(&key)), key);
        if serial_a != serial_b {
            let puf_b = Puf::from_die_serial(&serial_b);
            prop_assert_ne!(puf_a.wrap(&key), puf_b.wrap(&key));
        }
    }

    #[test]
    fn bootrom_accepts_only_matching_key(device_key in any::<[u8; 32]>(),
                                         other_key in any::<[u8; 32]>(),
                                         payload in proptest::collection::vec(any::<u8>(), 1..200)) {
        prop_assume!(device_key != other_key);
        let mut ks = KeyStore::new(b"prop-die");
        ks.burn_aes_key(device_key, KeyProtection::PufWrapped).unwrap();
        let mut spb = Spb::new();
        let good = seal_firmware(&device_key, &payload);
        prop_assert_eq!(spb.boot_rom(&mut ks, &good).unwrap(), payload.clone());
        // Reset; wrong-key firmware must be rejected.
        spb.reset();
        ks.unlock_on_reset();
        let bad = seal_firmware(&other_key, &payload);
        prop_assert!(spb.boot_rom(&mut ks, &bad).is_err());
    }

    #[test]
    fn shell_interposition_is_transparent_when_honest(
        addr in 0u64..10_000,
        data in proptest::collection::vec(any::<u8>(), 1..500),
    ) {
        let mut shell = Shell::new();
        let mut dram = Dram::new(1 << 20);
        shell.dma_to_device(&mut dram, addr, &data).unwrap();
        prop_assert_eq!(shell.dma_from_device(&mut dram, addr, data.len()).unwrap(), data.clone());
        prop_assert_eq!(shell.mem_read(&mut dram, addr, data.len()).unwrap(), data);
    }

    #[test]
    fn ledger_bottleneck_is_max_plus_serial(
        lanes in proptest::collection::vec((any::<u8>(), 0u64..10_000), 0..8),
        serial in 0u64..5_000,
    ) {
        let mut ledger = CostLedger::new();
        ledger.add_serial(Cycles(serial));
        let mut max = 0u64;
        for (lane, cycles) in &lanes {
            ledger.add_busy(&format!("lane-{lane}"), Cycles(*cycles));
        }
        // Recompute expected max per unique lane (they accumulate).
        let mut sums = std::collections::BTreeMap::new();
        for (lane, cycles) in &lanes {
            *sums.entry(lane).or_insert(0u64) += cycles;
        }
        for v in sums.values() {
            max = max.max(*v);
        }
        prop_assert_eq!(ledger.bottleneck(), Cycles(serial + max));
    }
}
