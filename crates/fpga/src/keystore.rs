//! On-chip device key storage: e-fuses / BBRAM with optional PUF wrap.
//!
//! §2.2: "The SPB has access to two pieces of information embedded in
//! secure, on-chip, non-volatile storage: an AES key and the hash of a
//! public … key. The AES key can be further encrypted via a
//! physically-unclonable function (PUF), preventing the AES key from
//! being compromised under physical attacks."
//!
//! ShEF's manufacturing step burns the AES device key here (§3 step 1).
//! The key is readable only by the [`crate::spb`] BootROM path; the
//! simulation enforces that by simply not exposing a public getter — the
//! only consumer is `Spb`, which lives in this crate.

use shef_crypto::drbg::HmacDrbg;

use crate::FpgaError;

/// How the burned AES key is protected at rest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KeyProtection {
    /// Raw e-fuse storage.
    #[default]
    EFuse,
    /// e-fuse value wrapped by the device PUF: physical extraction of the
    /// fuse bits alone does not reveal the key.
    PufWrapped,
}

/// A model of a device-unique physically-unclonable function.
///
/// Each device instance derives a hidden silicon secret; `wrap`/`unwrap`
/// XOR a key with a PRF of that secret. Reading the fuses of a
/// PUF-wrapped key without the silicon yields only the wrapped value.
#[derive(Clone)]
pub struct Puf {
    silicon_secret: [u8; 32],
}

impl core::fmt::Debug for Puf {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Puf").finish_non_exhaustive()
    }
}

impl Puf {
    /// Derives a device-unique PUF from the die serial.
    #[must_use]
    pub fn from_die_serial(serial: &[u8]) -> Self {
        let mut drbg = HmacDrbg::from_seed(serial);
        drbg.reseed(b"shef.fpga.puf");
        Puf {
            silicon_secret: drbg.generate_array::<32>(),
        }
    }

    fn pad(&self) -> [u8; 32] {
        let mut drbg = HmacDrbg::from_seed(&self.silicon_secret);
        drbg.generate_array::<32>()
    }

    /// Wraps (encrypts) a key with the silicon secret.
    #[must_use]
    pub fn wrap(&self, key: &[u8; 32]) -> [u8; 32] {
        let pad = self.pad();
        core::array::from_fn(|i| key[i] ^ pad[i])
    }

    /// Unwraps a previously wrapped key.
    #[must_use]
    pub fn unwrap_key(&self, wrapped: &[u8; 32]) -> [u8; 32] {
        // XOR wrap is an involution.
        self.wrap(wrapped)
    }
}

/// The device key store: burn-once AES device key plus the public-key
/// hash slot conventional FPGA security uses.
pub struct KeyStore {
    puf: Puf,
    protection: KeyProtection,
    stored: Option<[u8; 32]>,
    pubkey_hash: Option<[u8; 32]>,
    read_locked: bool,
}

impl core::fmt::Debug for KeyStore {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("KeyStore")
            .field("protection", &self.protection)
            .field("burned", &self.stored.is_some())
            .field("read_locked", &self.read_locked)
            .finish()
    }
}

impl KeyStore {
    /// Creates an unburned key store for a device with the given die
    /// serial.
    #[must_use]
    pub fn new(die_serial: &[u8]) -> Self {
        KeyStore {
            puf: Puf::from_die_serial(die_serial),
            protection: KeyProtection::default(),
            stored: None,
            pubkey_hash: None,
            read_locked: false,
        }
    }

    /// Burns the AES device key. This is the Manufacturer's step 1 in
    /// Fig. 2 and can happen exactly once.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::KeyStore`] if a key was already burned.
    pub fn burn_aes_key(
        &mut self,
        key: [u8; 32],
        protection: KeyProtection,
    ) -> Result<(), FpgaError> {
        if self.stored.is_some() {
            return Err(FpgaError::KeyStore("AES device key already burned".into()));
        }
        self.protection = protection;
        self.stored = Some(match protection {
            KeyProtection::EFuse => key,
            KeyProtection::PufWrapped => self.puf.wrap(&key),
        });
        Ok(())
    }

    /// Stores the hash of the developer public key (conventional flow,
    /// §2.2). Unused by ShEF itself but kept for fidelity.
    pub fn set_pubkey_hash(&mut self, hash: [u8; 32]) {
        self.pubkey_hash = Some(hash);
    }

    /// The stored public-key hash, if any.
    #[must_use]
    pub fn pubkey_hash(&self) -> Option<[u8; 32]> {
        self.pubkey_hash
    }

    /// True once a key has been burned.
    #[must_use]
    pub fn is_burned(&self) -> bool {
        self.stored.is_some()
    }

    /// Locks the key against further reads (the SPB does this after
    /// boot so runtime logic can never extract the device key).
    pub fn lock(&mut self) {
        self.read_locked = true;
    }

    /// Unlocks on power cycle — the hardware reset path. Called by
    /// [`crate::board::Device::power_cycle`]; modelling code may call it
    /// directly to simulate a reset of an isolated key store.
    pub fn unlock_on_reset(&mut self) {
        self.read_locked = false;
    }

    /// Reads the AES device key. Only the SPB BootROM path may call this;
    /// it is crate-private to enforce the hardware's isolation.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::KeyStore`] if no key is burned or the store
    /// is locked.
    pub(crate) fn read_aes_key(&self) -> Result<[u8; 32], FpgaError> {
        if self.read_locked {
            return Err(FpgaError::KeyStore("key store locked".into()));
        }
        let stored = self
            .stored
            .ok_or_else(|| FpgaError::KeyStore("no AES device key burned".into()))?;
        Ok(match self.protection {
            KeyProtection::EFuse => stored,
            KeyProtection::PufWrapped => self.puf.unwrap_key(&stored),
        })
    }

    /// Adversarial fuse readout: what a physical attacker extracting the
    /// e-fuse bits would observe. For PUF-wrapped keys this is *not* the
    /// key.
    #[must_use]
    pub fn tamper_read_fuses(&self) -> Option<[u8; 32]> {
        self.stored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burn_once_semantics() {
        let mut ks = KeyStore::new(b"die-0");
        assert!(!ks.is_burned());
        ks.burn_aes_key([7u8; 32], KeyProtection::EFuse).unwrap();
        assert!(ks.is_burned());
        assert!(ks.burn_aes_key([8u8; 32], KeyProtection::EFuse).is_err());
        assert_eq!(ks.read_aes_key().unwrap(), [7u8; 32]);
    }

    #[test]
    fn lock_blocks_reads_until_reset() {
        let mut ks = KeyStore::new(b"die-0");
        ks.burn_aes_key([7u8; 32], KeyProtection::EFuse).unwrap();
        ks.lock();
        assert!(ks.read_aes_key().is_err());
        ks.unlock_on_reset();
        assert_eq!(ks.read_aes_key().unwrap(), [7u8; 32]);
    }

    #[test]
    fn puf_wrap_hides_key_from_fuse_readout() {
        let mut ks = KeyStore::new(b"die-1");
        let key = [0x42u8; 32];
        ks.burn_aes_key(key, KeyProtection::PufWrapped).unwrap();
        // Legitimate path recovers the key…
        assert_eq!(ks.read_aes_key().unwrap(), key);
        // …but raw fuse extraction does not.
        assert_ne!(ks.tamper_read_fuses().unwrap(), key);
    }

    #[test]
    fn efuse_protection_is_vulnerable_to_fuse_readout() {
        // Documents why the paper recommends the PUF option.
        let mut ks = KeyStore::new(b"die-2");
        ks.burn_aes_key([9u8; 32], KeyProtection::EFuse).unwrap();
        assert_eq!(ks.tamper_read_fuses().unwrap(), [9u8; 32]);
    }

    #[test]
    fn pufs_are_device_unique() {
        let a = Puf::from_die_serial(b"die-a");
        let b = Puf::from_die_serial(b"die-b");
        let key = [1u8; 32];
        assert_ne!(a.wrap(&key), b.wrap(&key));
        assert_eq!(a.unwrap_key(&a.wrap(&key)), key);
    }

    #[test]
    fn unburned_read_fails() {
        let ks = KeyStore::new(b"die-3");
        assert!(ks.read_aes_key().is_err());
        assert!(ks.tamper_read_fuses().is_none());
    }

    #[test]
    fn pubkey_hash_slot() {
        let mut ks = KeyStore::new(b"die-4");
        assert!(ks.pubkey_hash().is_none());
        ks.set_pubkey_hash([5u8; 32]);
        assert_eq!(ks.pubkey_hash(), Some([5u8; 32]));
    }
}
