//! The dedicated Security-Kernel processor.
//!
//! §3: "The SPB firmware boots the ShEF Security Kernel from external
//! storage onto a dedicated Security Kernel Processor executing from its
//! own private, on-chip memory. The Security Kernel Processor can either
//! be a reserved hardened CPU in the FPGA or a static bitstream
//! containing a soft CPU". The Ultra96 prototype uses a Cortex-R5 core.
//!
//! The crucial hardware property is *isolation*: the processor's private
//! on-chip memory is not reachable from the Shell, the host, the PR
//! region, or off-chip buses. The model enforces this by construction —
//! there is no tamper path into [`PrivateMemory`].

use std::collections::BTreeMap;

/// The kind of processor hosting the Security Kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProcessorKind {
    /// A reserved hardened core (e.g. Cortex-R5 on Zynq UltraScale+).
    #[default]
    HardenedCore,
    /// A soft CPU in a static bitstream (MicroBlaze / Nios II); its
    /// bitstream hash must then be attested alongside the kernel hash.
    SoftCore,
}

/// Key-value private on-chip memory visible only to the kernel.
#[derive(Debug, Default, Clone)]
pub struct PrivateMemory {
    slots: BTreeMap<String, Vec<u8>>,
}

impl PrivateMemory {
    /// Stores a value.
    pub fn store(&mut self, key: &str, value: Vec<u8>) {
        self.slots.insert(key.to_owned(), value);
    }

    /// Loads a value.
    #[must_use]
    pub fn load(&self, key: &str) -> Option<&[u8]> {
        self.slots.get(key).map(Vec::as_slice)
    }

    /// Removes and returns a value.
    pub fn take(&mut self, key: &str) -> Option<Vec<u8>> {
        self.slots.remove(key)
    }

    /// Erases everything (reset).
    pub fn clear(&mut self) {
        self.slots.clear();
    }
}

/// A loaded kernel image.
#[derive(Debug, Clone)]
pub struct KernelImage {
    /// Raw kernel binary as read from the boot medium.
    pub binary: Vec<u8>,
    /// SHA-256 of the binary, as measured by the SPB firmware.
    pub hash: [u8; 32],
}

/// The Security-Kernel processor.
#[derive(Debug, Default)]
pub struct SecurityKernelProcessor {
    kind: ProcessorKind,
    image: Option<KernelImage>,
    private_memory: PrivateMemory,
    halted: bool,
}

impl SecurityKernelProcessor {
    /// Creates a processor of the given kind.
    #[must_use]
    pub fn new(kind: ProcessorKind) -> Self {
        SecurityKernelProcessor {
            kind,
            image: None,
            private_memory: PrivateMemory::default(),
            halted: false,
        }
    }

    /// Processor kind.
    #[must_use]
    pub fn kind(&self) -> ProcessorKind {
        self.kind
    }

    /// Loads a measured kernel image onto the processor (done by the SPB
    /// firmware during secure boot). Replaces any previous image and
    /// clears private memory.
    pub fn load_kernel(&mut self, image: KernelImage) {
        self.private_memory.clear();
        self.image = Some(image);
        self.halted = false;
    }

    /// The currently loaded image.
    #[must_use]
    pub fn image(&self) -> Option<&KernelImage> {
        self.image.as_ref()
    }

    /// True if a kernel is loaded and running.
    #[must_use]
    pub fn is_running(&self) -> bool {
        self.image.is_some() && !self.halted
    }

    /// Halts the processor (tamper response or power-down).
    pub fn halt(&mut self) {
        self.halted = true;
        self.private_memory.clear();
    }

    /// Access to the kernel's private on-chip memory.
    ///
    /// This accessor represents code *running on* the processor; the rest
    /// of the system has no path to it. (`shef-core::boot` is the only
    /// caller.)
    pub fn private_memory(&mut self) -> &mut PrivateMemory {
        &mut self.private_memory
    }

    /// Read-only view of private memory.
    #[must_use]
    pub fn private_memory_ref(&self) -> &PrivateMemory {
        &self.private_memory
    }

    /// Full reset: clears image and memory.
    pub fn reset(&mut self) {
        self.image = None;
        self.halted = false;
        self.private_memory.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(bytes: &[u8]) -> KernelImage {
        KernelImage {
            binary: bytes.to_vec(),
            hash: shef_crypto::sha2::Sha256::digest(bytes),
        }
    }

    #[test]
    fn load_and_run() {
        let mut p = SecurityKernelProcessor::new(ProcessorKind::HardenedCore);
        assert!(!p.is_running());
        p.load_kernel(image(b"kernel"));
        assert!(p.is_running());
        assert_eq!(p.image().unwrap().binary, b"kernel");
    }

    #[test]
    fn private_memory_round_trip() {
        let mut p = SecurityKernelProcessor::new(ProcessorKind::HardenedCore);
        p.load_kernel(image(b"k"));
        p.private_memory().store("attest-key", vec![1, 2, 3]);
        assert_eq!(
            p.private_memory_ref().load("attest-key"),
            Some(&[1u8, 2, 3][..])
        );
        assert_eq!(p.private_memory().take("attest-key"), Some(vec![1, 2, 3]));
        assert_eq!(p.private_memory_ref().load("attest-key"), None);
    }

    #[test]
    fn halt_clears_secrets() {
        let mut p = SecurityKernelProcessor::new(ProcessorKind::HardenedCore);
        p.load_kernel(image(b"k"));
        p.private_memory().store("secret", vec![9]);
        p.halt();
        assert!(!p.is_running());
        assert_eq!(p.private_memory_ref().load("secret"), None);
    }

    #[test]
    fn reload_clears_previous_private_memory() {
        // A malicious re-load of a different kernel must not inherit the
        // previous kernel's secrets.
        let mut p = SecurityKernelProcessor::new(ProcessorKind::HardenedCore);
        p.load_kernel(image(b"good kernel"));
        p.private_memory().store("attest-key", vec![7; 32]);
        p.load_kernel(image(b"evil kernel"));
        assert_eq!(p.private_memory_ref().load("attest-key"), None);
    }

    #[test]
    fn reset_clears_everything() {
        let mut p = SecurityKernelProcessor::new(ProcessorKind::SoftCore);
        p.load_kernel(image(b"k"));
        p.private_memory().store("x", vec![1]);
        p.reset();
        assert!(p.image().is_none());
        assert_eq!(p.private_memory_ref().load("x"), None);
        assert_eq!(p.kind(), ProcessorKind::SoftCore);
    }
}
