//! Debug/programming ports and tamper monitors.
//!
//! ShEF's Security Kernel "continuously checks existing hardware
//! monitors. It can thus detect backdoor activity (e.g., JTAG and
//! programming ports) … and prevent any physical attacks" (§3 step 9,
//! §4 "Isolated Execution"). This module models those ports: adversarial
//! accesses are recorded as tamper events that the kernel polls.

/// A port an adversary may poke.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DebugPort {
    /// External JTAG chain.
    Jtag,
    /// Internal configuration access port (bitstream readback/overwrite).
    Icap,
    /// Virtual JTAG exposed by the Shell.
    VirtualJtag,
}

impl core::fmt::Display for DebugPort {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DebugPort::Jtag => write!(f, "JTAG"),
            DebugPort::Icap => write!(f, "ICAP"),
            DebugPort::VirtualJtag => write!(f, "virtual JTAG"),
        }
    }
}

/// A recorded tamper event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TamperEvent {
    /// Which port was touched.
    pub port: DebugPort,
    /// Human-readable description of the access.
    pub description: String,
}

/// Outcome of an adversarial port access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortAccessOutcome {
    /// Monitors were armed: the access was blocked and logged.
    BlockedAndLogged,
    /// Monitors were not armed: the access went through silently.
    Succeeded,
}

/// Pre-resolved telemetry handles for the port monitors.
#[derive(Debug, Clone)]
struct PortsTelemetry {
    tamper_events: shef_telemetry::Counter,
    unmonitored_accesses: shef_telemetry::Counter,
}

/// The device's debug ports plus the tamper monitor state.
#[derive(Debug, Default)]
pub struct DebugPorts {
    monitors_armed: bool,
    events: Vec<TamperEvent>,
    unmonitored_accesses: u64,
    tele: Option<PortsTelemetry>,
}

impl DebugPorts {
    /// Creates ports with monitors disarmed (the power-on state; the
    /// Security Kernel arms them during secure boot).
    #[must_use]
    pub fn new() -> Self {
        DebugPorts::default()
    }

    /// Mirror port activity into `telemetry` as
    /// `fpga.ports.tamper_events` (blocked-and-logged accesses) and
    /// `fpga.ports.unmonitored_accesses` (accesses that slipped through
    /// while monitors were disarmed).
    pub fn attach_telemetry(&mut self, telemetry: &shef_telemetry::Telemetry) {
        self.tele = Some(PortsTelemetry {
            tamper_events: telemetry.counter("fpga.ports.tamper_events"),
            unmonitored_accesses: telemetry.counter("fpga.ports.unmonitored_accesses"),
        });
    }

    /// Arms the tamper monitors (Security Kernel duty).
    pub fn arm_monitors(&mut self) {
        self.monitors_armed = true;
    }

    /// Disarms monitors (reset path only).
    pub fn disarm_monitors(&mut self) {
        self.monitors_armed = false;
    }

    /// Whether monitors are armed.
    #[must_use]
    pub fn monitors_armed(&self) -> bool {
        self.monitors_armed
    }

    /// An adversary attempts to use a debug port.
    pub fn adversarial_access(&mut self, port: DebugPort, description: &str) -> PortAccessOutcome {
        if self.monitors_armed {
            self.events.push(TamperEvent {
                port,
                description: description.to_owned(),
            });
            if let Some(tele) = &self.tele {
                tele.tamper_events.inc();
            }
            PortAccessOutcome::BlockedAndLogged
        } else {
            self.unmonitored_accesses += 1;
            if let Some(tele) = &self.tele {
                tele.unmonitored_accesses.inc();
            }
            PortAccessOutcome::Succeeded
        }
    }

    /// Pending tamper events (kernel polling); does not clear them.
    #[must_use]
    pub fn pending_events(&self) -> &[TamperEvent] {
        &self.events
    }

    /// Drains and returns pending tamper events.
    pub fn take_events(&mut self) -> Vec<TamperEvent> {
        core::mem::take(&mut self.events)
    }

    /// Number of accesses that slipped through while monitors were
    /// disarmed (used by tests that demonstrate why the kernel must run
    /// continuously).
    #[must_use]
    pub fn unmonitored_access_count(&self) -> u64 {
        self.unmonitored_accesses
    }

    /// Power-cycle reset.
    pub fn reset(&mut self) {
        self.monitors_armed = false;
        self.events.clear();
        self.unmonitored_accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn armed_monitors_block_and_log() {
        let mut ports = DebugPorts::new();
        ports.arm_monitors();
        let outcome = ports.adversarial_access(DebugPort::Jtag, "readback attempt");
        assert_eq!(outcome, PortAccessOutcome::BlockedAndLogged);
        assert_eq!(ports.pending_events().len(), 1);
        assert_eq!(ports.pending_events()[0].port, DebugPort::Jtag);
    }

    #[test]
    fn disarmed_monitors_let_access_through() {
        let mut ports = DebugPorts::new();
        let outcome = ports.adversarial_access(DebugPort::Icap, "bitstream overwrite");
        assert_eq!(outcome, PortAccessOutcome::Succeeded);
        assert!(ports.pending_events().is_empty());
        assert_eq!(ports.unmonitored_access_count(), 1);
    }

    #[test]
    fn take_events_drains() {
        let mut ports = DebugPorts::new();
        ports.arm_monitors();
        ports.adversarial_access(DebugPort::Jtag, "a");
        ports.adversarial_access(DebugPort::VirtualJtag, "b");
        let events = ports.take_events();
        assert_eq!(events.len(), 2);
        assert!(ports.pending_events().is_empty());
    }

    #[test]
    fn reset_disarms_and_clears() {
        let mut ports = DebugPorts::new();
        ports.arm_monitors();
        ports.adversarial_access(DebugPort::Jtag, "x");
        ports.reset();
        assert!(!ports.monitors_armed());
        assert!(ports.pending_events().is_empty());
        assert_eq!(ports.unmonitored_access_count(), 0);
    }

    #[test]
    fn telemetry_counts_both_outcomes() {
        let t = shef_telemetry::Telemetry::new();
        let mut ports = DebugPorts::new();
        ports.attach_telemetry(&t);
        ports.adversarial_access(DebugPort::Icap, "while disarmed");
        ports.arm_monitors();
        ports.adversarial_access(DebugPort::Jtag, "while armed");
        let r = t.report();
        assert_eq!(r.counters["fpga.ports.unmonitored_accesses"], 1);
        assert_eq!(r.counters["fpga.ports.tamper_events"], 1);
    }

    #[test]
    fn port_display() {
        assert_eq!(DebugPort::Jtag.to_string(), "JTAG");
        assert_eq!(DebugPort::Icap.to_string(), "ICAP");
    }
}
