//! Cycle accounting and the bottleneck cost model.
//!
//! The performance side of the simulation uses a *bottleneck-lane* model:
//! every hardware resource (a DMA link, a DRAM channel group, each Shield
//! engine set, the accelerator datapath) is a **lane** that accumulates
//! busy cycles, and strictly serial phases (kernel launch, flushes)
//! accumulate into a serial term. For a steady-state streaming workload
//! the execution time is then
//!
//! ```text
//! T = serial + max over lanes(busy)
//! ```
//!
//! which is exactly the "slowest pipeline stage wins" behaviour the
//! paper's Fig. 5/Fig. 6 overhead curves exhibit: when the configured
//! crypto throughput exceeds the memory system's, overhead ≈ 1×; when it
//! falls short, the crypto lane becomes the bottleneck.

use std::collections::BTreeMap;

/// A count of device clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Saturating addition.
    #[must_use]
    pub fn saturating_add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }
}

impl core::ops::Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl core::ops::AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl core::iter::Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl core::fmt::Display for Cycles {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

/// A fixed-frequency clock domain used to convert cycles to wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockDomain {
    freq_hz: u64,
}

impl ClockDomain {
    /// The AWS F1 Shell clock the paper's Shield runs at.
    pub const F1_DEFAULT: ClockDomain = ClockDomain {
        freq_hz: 250_000_000,
    };

    /// Creates a clock domain at the given frequency.
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz` is zero.
    #[must_use]
    pub fn new(freq_hz: u64) -> Self {
        assert!(freq_hz > 0, "clock frequency must be positive");
        ClockDomain { freq_hz }
    }

    /// Frequency in hertz.
    #[must_use]
    pub fn freq_hz(&self) -> u64 {
        self.freq_hz
    }

    /// Converts cycles to microseconds.
    #[must_use]
    pub fn cycles_to_us(&self, cycles: Cycles) -> f64 {
        cycles.0 as f64 / self.freq_hz as f64 * 1e6
    }

    /// Converts a microsecond duration to cycles (rounding up).
    #[must_use]
    pub fn us_to_cycles(&self, us: f64) -> Cycles {
        Cycles((us * self.freq_hz as f64 / 1e6).ceil() as u64)
    }
}

impl Default for ClockDomain {
    fn default() -> Self {
        ClockDomain::F1_DEFAULT
    }
}

/// Accumulates busy cycles per resource lane plus a serial term.
///
/// # Example
///
/// ```
/// use shef_fpga::clock::{CostLedger, Cycles};
///
/// let mut ledger = CostLedger::new();
/// ledger.add_serial(Cycles(100));
/// ledger.add_busy("dram", Cycles(5_000));
/// ledger.add_busy("engine-set-0", Cycles(8_000));
/// assert_eq!(ledger.bottleneck(), Cycles(8_100));
/// assert_eq!(ledger.bottleneck_lane().unwrap(), "engine-set-0");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CostLedger {
    lanes: BTreeMap<String, Cycles>,
    serial: Cycles,
}

impl CostLedger {
    /// Creates an empty ledger.
    #[must_use]
    pub fn new() -> Self {
        CostLedger::default()
    }

    /// Adds busy cycles to a named lane.
    pub fn add_busy(&mut self, lane: &str, cycles: Cycles) {
        *self.lanes.entry(lane.to_owned()).or_default() += cycles;
    }

    /// Adds strictly serial cycles (setup, drain, handshakes).
    pub fn add_serial(&mut self, cycles: Cycles) {
        self.serial += cycles;
    }

    /// Busy cycles currently attributed to `lane`.
    #[must_use]
    pub fn lane(&self, lane: &str) -> Cycles {
        self.lanes.get(lane).copied().unwrap_or_default()
    }

    /// The serial term.
    #[must_use]
    pub fn serial(&self) -> Cycles {
        self.serial
    }

    /// All lanes and their busy cycles.
    pub fn lanes(&self) -> impl Iterator<Item = (&str, Cycles)> {
        self.lanes.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// The modelled execution time: serial + the busiest lane.
    #[must_use]
    pub fn bottleneck(&self) -> Cycles {
        let max_lane = self.lanes.values().copied().max().unwrap_or_default();
        self.serial + max_lane
    }

    /// Name of the busiest lane, if any work was recorded.
    #[must_use]
    pub fn bottleneck_lane(&self) -> Option<&str> {
        self.lanes
            .iter()
            .max_by_key(|(_, v)| **v)
            .map(|(k, _)| k.as_str())
    }

    /// Total busy cycles across every lane whose name starts with
    /// `prefix` — e.g. one engine set's replicated sub-lanes
    /// `shield.in[0]` + `shield.in[0].l0..lN`.
    #[must_use]
    pub fn group_total(&self, prefix: &str) -> Cycles {
        self.lanes
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, c)| *c)
            .sum()
    }

    /// Busiest lane within the `prefix` group: the group's makespan
    /// under the bottleneck model. Zero if the group is empty.
    #[must_use]
    pub fn group_makespan(&self, prefix: &str) -> Cycles {
        self.lanes
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, c)| *c)
            .max()
            .unwrap_or_default()
    }

    /// Serial cycles plus the sum of every lane: a value that advances
    /// on *every* charge, unlike [`CostLedger::bottleneck`], which only
    /// moves when the busiest lane does. This is the deterministic
    /// logical clock used for telemetry span timestamps — monotone,
    /// model-derived, and independent of real thread scheduling.
    #[must_use]
    pub fn total_busy(&self) -> Cycles {
        self.serial + self.lanes.values().copied().sum::<Cycles>()
    }

    /// Merges another ledger into this one (lane-wise addition).
    pub fn merge(&mut self, other: &CostLedger) {
        self.serial += other.serial;
        for (lane, cycles) in &other.lanes {
            *self.lanes.entry(lane.clone()).or_default() += *cycles;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_arithmetic() {
        assert_eq!(Cycles(2) + Cycles(3), Cycles(5));
        let mut c = Cycles(1);
        c += Cycles(9);
        assert_eq!(c, Cycles(10));
        let sum: Cycles = [Cycles(1), Cycles(2), Cycles(3)].into_iter().sum();
        assert_eq!(sum, Cycles(6));
        assert_eq!(Cycles(u64::MAX).saturating_add(Cycles(1)), Cycles(u64::MAX));
    }

    #[test]
    fn clock_conversions() {
        let clk = ClockDomain::new(250_000_000);
        assert_eq!(clk.cycles_to_us(Cycles(250)), 1.0);
        assert_eq!(clk.us_to_cycles(1.0), Cycles(250));
        assert_eq!(
            clk.us_to_cycles(clk.cycles_to_us(Cycles(12_345))),
            Cycles(12_345)
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_panics() {
        let _ = ClockDomain::new(0);
    }

    #[test]
    fn ledger_bottleneck_math() {
        let mut l = CostLedger::new();
        assert_eq!(l.bottleneck(), Cycles::ZERO);
        assert_eq!(l.bottleneck_lane(), None);
        l.add_busy("a", Cycles(10));
        l.add_busy("b", Cycles(20));
        l.add_busy("a", Cycles(15));
        l.add_serial(Cycles(5));
        assert_eq!(l.lane("a"), Cycles(25));
        assert_eq!(l.bottleneck(), Cycles(30));
        assert_eq!(l.bottleneck_lane(), Some("a"));
    }

    #[test]
    fn lane_groups_aggregate_by_prefix() {
        let mut l = CostLedger::new();
        l.add_busy("shield.in[0].l0", Cycles(30));
        l.add_busy("shield.in[0].l1", Cycles(50));
        l.add_busy("shield.in[0].l2", Cycles(20));
        l.add_busy("shield.out[1]", Cycles(999));
        assert_eq!(l.group_total("shield.in[0]"), Cycles(100));
        assert_eq!(l.group_makespan("shield.in[0]"), Cycles(50));
        assert_eq!(l.group_total("shield."), Cycles(1099));
        assert_eq!(l.group_makespan("nope"), Cycles::ZERO);
    }

    #[test]
    fn total_busy_advances_on_every_charge() {
        let mut l = CostLedger::new();
        assert_eq!(l.total_busy(), Cycles::ZERO);
        l.add_busy("a", Cycles(10));
        l.add_busy("b", Cycles(3));
        assert_eq!(l.total_busy(), Cycles(13));
        // A charge to a non-bottleneck lane moves total_busy but not
        // bottleneck — that's why spans use total_busy as their clock.
        l.add_busy("b", Cycles(2));
        assert_eq!(l.bottleneck(), Cycles(10));
        assert_eq!(l.total_busy(), Cycles(15));
        l.add_serial(Cycles(4));
        assert_eq!(l.total_busy(), Cycles(19));
    }

    #[test]
    fn ledger_merge() {
        let mut a = CostLedger::new();
        a.add_busy("x", Cycles(10));
        a.add_serial(Cycles(1));
        let mut b = CostLedger::new();
        b.add_busy("x", Cycles(5));
        b.add_busy("y", Cycles(2));
        b.add_serial(Cycles(2));
        a.merge(&b);
        assert_eq!(a.lane("x"), Cycles(15));
        assert_eq!(a.lane("y"), Cycles(2));
        assert_eq!(a.serial(), Cycles(3));
    }
}
