//! The untrusted host CPU and its PCIe DMA link.
//!
//! §2.5: "While we use a host program to transfer data, we assume the
//! host CPU is untrusted and do not depend on any security mechanisms
//! provided by the CPU TEEs." The host is purely a proxy: it stages
//! (already encrypted) buffers and drives DMA. Its only architectural
//! relevance is the PCIe cost model, which produces the initialization
//! overhead that dominates small transfers in Fig. 5 ("for short
//! vectors, execution time is dominated by initialization overheads,
//! e.g., data movement and signalling between the FPGA and CPU").

use crate::clock::{CostLedger, Cycles};
use crate::dram::Dram;
use crate::shell::Shell;
use crate::FpgaError;

/// PCIe link cost parameters (device-clock cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcieTiming {
    /// Sustained DMA bandwidth in bytes per device cycle.
    /// A PCIe gen3 x16 link ≈ 12 GB/s at 250 MHz → 48 B/cycle.
    pub bytes_per_cycle: u64,
    /// Per-invocation setup (driver call, doorbell, descriptor fetch,
    /// interrupt). ≈ 30 µs at 250 MHz.
    pub setup_cycles: Cycles,
}

impl Default for PcieTiming {
    fn default() -> Self {
        PcieTiming {
            bytes_per_cycle: 48,
            setup_cycles: Cycles(7_500),
        }
    }
}

/// The host CPU with its DMA engine.
#[derive(Debug)]
pub struct HostCpu {
    timing: PcieTiming,
    transfers: u64,
}

impl Default for HostCpu {
    fn default() -> Self {
        Self::new()
    }
}

impl HostCpu {
    /// Creates a host with default PCIe timing.
    #[must_use]
    pub fn new() -> Self {
        Self::with_timing(PcieTiming::default())
    }

    /// Creates a host with explicit timing.
    #[must_use]
    pub fn with_timing(timing: PcieTiming) -> Self {
        HostCpu {
            timing,
            transfers: 0,
        }
    }

    /// Number of DMA invocations so far.
    #[must_use]
    pub fn transfer_count(&self) -> u64 {
        self.transfers
    }

    fn charge(&mut self, ledger: &mut CostLedger, lane: &str, len: usize) {
        ledger.add_serial(self.timing.setup_cycles);
        self.charge_chained(ledger, lane, len);
    }

    fn charge_chained(&mut self, ledger: &mut CostLedger, lane: &str, len: usize) {
        // PCIe is full duplex: host-to-device and device-to-host traffic
        // occupy independent lanes.
        ledger.add_busy(
            lane,
            Cycles((len as u64).div_ceil(self.timing.bytes_per_cycle)),
        );
        self.transfers += 1;
    }

    /// Stages `data` into device DRAM at `addr` through the Shell's DMA.
    ///
    /// # Errors
    ///
    /// Propagates DRAM range errors.
    pub fn dma_to_device(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
        addr: u64,
        data: &[u8],
    ) -> Result<(), FpgaError> {
        self.charge(ledger, "pcie.in", data.len());
        shell.dma_to_device(dram, addr, data)
    }

    /// Like [`HostCpu::dma_to_device`], but as a chained descriptor of
    /// the previous transfer: bandwidth is charged, setup is not. Used
    /// for companion payloads (e.g. a region's MAC-tag array) that ride
    /// the same DMA batch.
    ///
    /// # Errors
    ///
    /// Propagates DRAM range errors.
    pub fn dma_to_device_chained(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
        addr: u64,
        data: &[u8],
    ) -> Result<(), FpgaError> {
        self.charge_chained(ledger, "pcie.in", data.len());
        shell.dma_to_device(dram, addr, data)
    }

    /// Reads `len` bytes from device DRAM at `addr` back to the host.
    ///
    /// # Errors
    ///
    /// Propagates DRAM range errors.
    pub fn dma_from_device(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
        addr: u64,
        len: usize,
    ) -> Result<Vec<u8>, FpgaError> {
        self.charge(ledger, "pcie.out", len);
        shell.dma_from_device(dram, addr, len)
    }

    /// Chained-descriptor variant of [`HostCpu::dma_from_device`].
    ///
    /// # Errors
    ///
    /// Propagates DRAM range errors.
    pub fn dma_from_device_chained(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
        addr: u64,
        len: usize,
    ) -> Result<Vec<u8>, FpgaError> {
        self.charge_chained(ledger, "pcie.out", len);
        shell.dma_from_device(dram, addr, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dma_round_trip_with_costs() {
        let mut host = HostCpu::with_timing(PcieTiming {
            bytes_per_cycle: 10,
            setup_cycles: Cycles(100),
        });
        let mut shell = Shell::new();
        let mut dram = Dram::new(1 << 20);
        let mut ledger = CostLedger::new();
        host.dma_to_device(&mut shell, &mut dram, &mut ledger, 0x100, &[7u8; 1000])
            .unwrap();
        let back = host
            .dma_from_device(&mut shell, &mut dram, &mut ledger, 0x100, 1000)
            .unwrap();
        assert_eq!(back, vec![7u8; 1000]);
        assert_eq!(host.transfer_count(), 2);
        // Two setups serialized; 2 × 100 transfer cycles on the pcie lane.
        assert_eq!(ledger.serial(), Cycles(200));
        assert_eq!(ledger.lane("pcie.in"), Cycles(100));
        assert_eq!(ledger.lane("pcie.out"), Cycles(100));
    }

    #[test]
    fn default_timing_is_f1_like() {
        let t = PcieTiming::default();
        // 12 GB/s at 250 MHz.
        assert_eq!(t.bytes_per_cycle, 48);
        // 30 µs at 250 MHz.
        assert_eq!(t.setup_cycles, Cycles(7_500));
    }
}
