//! Transaction-level AXI4 and AXI4-Lite port models.
//!
//! The AWS F1 Shell exposes exactly two interfaces to user logic (§2.3,
//! §5.1): "An AXI4-Lite interface, mastered by the Shell, exposes
//! memory-mapped registers … the accelerator and host drive an AXI4 and
//! DMA interface … to access FPGA device memory through the Shell". The
//! ShEF Shield is a wrapper that speaks the same two protocols on both
//! faces, so these traits are the seam where the Shield interposes.

use crate::FpgaError;

/// Width of one AXI4 data beat on the F1 Shell (512 bits).
pub const AXI4_BEAT_BYTES: usize = 64;
/// Maximum bytes in a single AXI4 burst (AXI spec: 4 KB boundary).
pub const AXI4_MAX_BURST_BYTES: usize = 4096;

/// Direction of an AXI4 burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BurstKind {
    /// A read burst.
    Read,
    /// A write burst.
    Write,
}

/// A recorded AXI4 burst (used by traces and attack analyses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BurstRecord {
    /// Start address.
    pub addr: u64,
    /// Length in bytes.
    pub len: usize,
    /// Read or write.
    pub kind: BurstKind,
}

/// A full-bandwidth AXI4 memory port (device DRAM, or the Shield's
/// memory face).
pub trait Axi4Port {
    /// Reads `len` bytes starting at `addr` as one or more bursts.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::Axi`] for out-of-range addresses, and
    /// implementations interposing security checks may return
    /// [`FpgaError::Tamper`] when integrity verification fails.
    fn read_burst(&mut self, addr: u64, len: usize) -> Result<Vec<u8>, FpgaError>;

    /// Writes `data` starting at `addr`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Axi4Port::read_burst`].
    fn write_burst(&mut self, addr: u64, data: &[u8]) -> Result<(), FpgaError>;
}

/// A 32-bit AXI4-Lite register port (commands and small data).
pub trait AxiLitePort {
    /// Reads the 32-bit register at byte offset `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::Axi`] for unmapped registers.
    fn read_reg(&mut self, addr: u64) -> Result<u32, FpgaError>;

    /// Writes the 32-bit register at byte offset `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::Axi`] for unmapped registers.
    fn write_reg(&mut self, addr: u64, value: u32) -> Result<(), FpgaError>;
}

/// Splits an arbitrary `(addr, len)` range into AXI4-legal bursts that do
/// not cross 4 KB boundaries.
///
/// # Example
///
/// ```
/// use shef_fpga::axi::split_bursts;
///
/// let bursts = split_bursts(4000, 200);
/// assert_eq!(bursts, vec![(4000, 96), (4096, 104)]);
/// ```
#[must_use]
pub fn split_bursts(addr: u64, len: usize) -> Vec<(u64, usize)> {
    let mut out = Vec::new();
    let mut cur = addr;
    let mut remaining = len;
    while remaining > 0 {
        let boundary = (cur / AXI4_MAX_BURST_BYTES as u64 + 1) * AXI4_MAX_BURST_BYTES as u64;
        let take = remaining.min((boundary - cur) as usize);
        out.push((cur, take));
        cur += take as u64;
        remaining -= take;
    }
    out
}

/// Number of AXI4 data beats needed to move `len` bytes.
#[must_use]
pub fn beats_for_len(len: usize) -> u64 {
    (len as u64).div_ceil(AXI4_BEAT_BYTES as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_respects_4k_boundaries() {
        assert_eq!(split_bursts(0, 4096), vec![(0, 4096)]);
        assert_eq!(split_bursts(0, 5000), vec![(0, 4096), (4096, 904)]);
        assert_eq!(split_bursts(4095, 2), vec![(4095, 1), (4096, 1)]);
        assert_eq!(split_bursts(100, 0), Vec::<(u64, usize)>::new());
    }

    #[test]
    fn split_covers_range_exactly() {
        let bursts = split_bursts(12_345, 10_000);
        let total: usize = bursts.iter().map(|(_, l)| l).sum();
        assert_eq!(total, 10_000);
        let mut expect = 12_345u64;
        for (a, l) in bursts {
            assert_eq!(a, expect);
            assert!(l <= AXI4_MAX_BURST_BYTES);
            expect = a + l as u64;
        }
    }

    #[test]
    fn beat_math() {
        assert_eq!(beats_for_len(0), 0);
        assert_eq!(beats_for_len(1), 1);
        assert_eq!(beats_for_len(64), 1);
        assert_eq!(beats_for_len(65), 2);
        assert_eq!(beats_for_len(4096), 64);
    }
}
