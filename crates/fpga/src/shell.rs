//! The CSP Shell: untrusted static logic between host and accelerator.
//!
//! §2.3–§2.4: the Shell "provides the accelerator with virtualized
//! peripherals", owns the DMA engine and every I/O port — and in ShEF's
//! threat model it is *adversarial*: "the adversary is able to control
//! privileged FPGA logic, such as the AWS F1 Shell" and can "intercept
//! traffic via the Shell logic".
//!
//! [`Interposer`] is the attack surface: a test (or `shef-core::attacks`)
//! installs one to observe and mutate every transaction the Shell
//! forwards. The Shield's security argument is precisely that no
//! interposer can violate confidentiality/integrity without detection.

use crate::axi::Axi4Port;
use crate::clock::{CostLedger, Cycles};
use crate::dram::Dram;
use crate::FpgaError;

/// A man-in-the-middle hook over Shell-forwarded traffic.
///
/// All methods default to pass-through; attacks override the ones they
/// need. Data buffers are mutable so the interposer can tamper in place.
pub trait Interposer {
    /// Called on host→device DMA writes before data reaches DRAM.
    fn on_dma_to_device(&mut self, _addr: u64, _data: &mut Vec<u8>) {}
    /// Called on device→host DMA reads after data leaves DRAM.
    fn on_dma_from_device(&mut self, _addr: u64, _data: &mut Vec<u8>) {}
    /// Called on host register writes toward the design.
    fn on_reg_write(&mut self, _addr: u64, _value: &mut u32) {}
    /// Called on host register reads from the design.
    fn on_reg_read(&mut self, _addr: u64, _value: &mut u32) {}
    /// Called on accelerator-side DRAM reads (the Shell proxies the AXI4
    /// memory port too).
    fn on_mem_read(&mut self, _addr: u64, _data: &mut Vec<u8>) {}
    /// Called on accelerator-side DRAM writes.
    fn on_mem_write(&mut self, _addr: u64, _data: &mut Vec<u8>) {}
}

/// A no-op interposer (honest Shell).
#[derive(Debug, Default, Clone, Copy)]
pub struct HonestShell;

impl Interposer for HonestShell {}

/// The Shell logic.
pub struct Shell {
    interposer: Box<dyn Interposer>,
    dma_bytes_in: u64,
    dma_bytes_out: u64,
}

impl core::fmt::Debug for Shell {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Shell")
            .field("dma_bytes_in", &self.dma_bytes_in)
            .field("dma_bytes_out", &self.dma_bytes_out)
            .finish_non_exhaustive()
    }
}

impl Default for Shell {
    fn default() -> Self {
        Self::new()
    }
}

impl Shell {
    /// Creates an honest Shell.
    #[must_use]
    pub fn new() -> Self {
        Shell {
            interposer: Box::new(HonestShell),
            dma_bytes_in: 0,
            dma_bytes_out: 0,
        }
    }

    /// Installs an interposer (compromises the Shell).
    pub fn set_interposer(&mut self, interposer: Box<dyn Interposer>) {
        self.interposer = interposer;
    }

    /// Restores the honest Shell.
    pub fn clear_interposer(&mut self) {
        self.interposer = Box::new(HonestShell);
    }

    /// Total host→device DMA bytes.
    #[must_use]
    pub fn dma_bytes_in(&self) -> u64 {
        self.dma_bytes_in
    }

    /// Total device→host DMA bytes.
    #[must_use]
    pub fn dma_bytes_out(&self) -> u64 {
        self.dma_bytes_out
    }

    /// Host→device DMA: moves `data` into DRAM at `addr` through the
    /// (possibly adversarial) Shell.
    ///
    /// # Errors
    ///
    /// Propagates [`FpgaError::Axi`] range errors from DRAM.
    pub fn dma_to_device(
        &mut self,
        dram: &mut Dram,
        addr: u64,
        data: &[u8],
    ) -> Result<(), FpgaError> {
        let mut buf = data.to_vec();
        self.interposer.on_dma_to_device(addr, &mut buf);
        self.dma_bytes_in += buf.len() as u64;
        dram.write_burst(addr, &buf)
    }

    /// Device→host DMA: reads `len` bytes from DRAM at `addr` through
    /// the Shell.
    ///
    /// # Errors
    ///
    /// Propagates [`FpgaError::Axi`] range errors from DRAM.
    pub fn dma_from_device(
        &mut self,
        dram: &mut Dram,
        addr: u64,
        len: usize,
    ) -> Result<Vec<u8>, FpgaError> {
        let mut buf = dram.read_burst(addr, len)?;
        self.interposer.on_dma_from_device(addr, &mut buf);
        self.dma_bytes_out += buf.len() as u64;
        Ok(buf)
    }

    /// Accelerator-side memory read, interposed. The design's AXI4 master
    /// reaches DRAM only through the Shell.
    ///
    /// # Errors
    ///
    /// Propagates DRAM range errors.
    pub fn mem_read(
        &mut self,
        dram: &mut Dram,
        addr: u64,
        len: usize,
    ) -> Result<Vec<u8>, FpgaError> {
        let mut buf = dram.read_burst(addr, len)?;
        self.interposer.on_mem_read(addr, &mut buf);
        Ok(buf)
    }

    /// Accelerator-side memory write, interposed.
    ///
    /// # Errors
    ///
    /// Propagates DRAM range errors.
    pub fn mem_write(&mut self, dram: &mut Dram, addr: u64, data: &[u8]) -> Result<(), FpgaError> {
        let mut buf = data.to_vec();
        self.interposer.on_mem_write(addr, &mut buf);
        dram.write_burst(addr, &buf)
    }

    /// Forwards a host register write to the design's AXI4-Lite port,
    /// interposed, charging one Shell-crossing handshake.
    ///
    /// # Errors
    ///
    /// Propagates the design's register-port errors.
    pub fn reg_write(
        &mut self,
        design: &mut dyn crate::axi::AxiLitePort,
        ledger: &mut CostLedger,
        addr: u64,
        mut value: u32,
    ) -> Result<(), FpgaError> {
        self.interposer.on_reg_write(addr, &mut value);
        ledger.add_serial(Cycles(4));
        design.write_reg(addr, value)
    }

    /// Forwards a host register read, interposed.
    ///
    /// # Errors
    ///
    /// Propagates the design's register-port errors.
    pub fn reg_read(
        &mut self,
        design: &mut dyn crate::axi::AxiLitePort,
        ledger: &mut CostLedger,
        addr: u64,
    ) -> Result<u32, FpgaError> {
        let mut value = design.read_reg(addr)?;
        self.interposer.on_reg_read(addr, &mut value);
        ledger.add_serial(Cycles(4));
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axi::AxiLitePort;

    struct FlipFirstByte;
    impl Interposer for FlipFirstByte {
        fn on_dma_to_device(&mut self, _addr: u64, data: &mut Vec<u8>) {
            if let Some(b) = data.first_mut() {
                *b ^= 0xff;
            }
        }
        fn on_mem_read(&mut self, _addr: u64, data: &mut Vec<u8>) {
            if let Some(b) = data.first_mut() {
                *b ^= 0xff;
            }
        }
    }

    struct DummyRegs {
        last: u32,
    }
    impl AxiLitePort for DummyRegs {
        fn read_reg(&mut self, _addr: u64) -> Result<u32, FpgaError> {
            Ok(self.last)
        }
        fn write_reg(&mut self, _addr: u64, value: u32) -> Result<(), FpgaError> {
            self.last = value;
            Ok(())
        }
    }

    #[test]
    fn honest_shell_passes_data_through() {
        let mut shell = Shell::new();
        let mut dram = Dram::new(1 << 20);
        shell.dma_to_device(&mut dram, 0, b"payload").unwrap();
        assert_eq!(shell.dma_from_device(&mut dram, 0, 7).unwrap(), b"payload");
        assert_eq!(shell.dma_bytes_in(), 7);
        assert_eq!(shell.dma_bytes_out(), 7);
    }

    #[test]
    fn interposer_tampers_with_dma() {
        let mut shell = Shell::new();
        shell.set_interposer(Box::new(FlipFirstByte));
        let mut dram = Dram::new(1 << 20);
        shell.dma_to_device(&mut dram, 0, &[0x00, 0x01]).unwrap();
        // The Shell corrupted the first byte on the way in.
        assert_eq!(dram.tamper_read(0, 2), vec![0xff, 0x01]);
    }

    #[test]
    fn interposer_tampers_with_mem_reads() {
        let mut shell = Shell::new();
        let mut dram = Dram::new(1 << 20);
        dram.tamper_write(0, &[0xaa, 0xbb]);
        shell.set_interposer(Box::new(FlipFirstByte));
        assert_eq!(shell.mem_read(&mut dram, 0, 2).unwrap(), vec![0x55, 0xbb]);
        shell.clear_interposer();
        assert_eq!(shell.mem_read(&mut dram, 0, 2).unwrap(), vec![0xaa, 0xbb]);
    }

    #[test]
    fn register_path_charges_serial_cycles() {
        let mut shell = Shell::new();
        let mut regs = DummyRegs { last: 0 };
        let mut ledger = CostLedger::new();
        shell.reg_write(&mut regs, &mut ledger, 0x10, 42).unwrap();
        assert_eq!(shell.reg_read(&mut regs, &mut ledger, 0x10).unwrap(), 42);
        assert_eq!(ledger.serial(), Cycles(8));
    }
}
