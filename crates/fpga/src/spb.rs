//! The Security Processor Block (SPB).
//!
//! Xilinx and Intel FPGAs contain "a series of redundant, embedded
//! processor modules executing from BootROM and programmable firmware"
//! (§2.2) that implement bitstream decryption, authentication and tamper
//! response. ShEF reuses this block unchanged: its BootROM decrypts the
//! manufacturer's SPB firmware with the e-fuse AES device key and hands
//! control to it (§4, "Secure Boot").
//!
//! The *behaviour* of the decrypted firmware (hashing the Security
//! Kernel, deriving the Attestation Key) is ShEF logic and lives in
//! `shef-core::boot`; this module provides the hardware primitive: an
//! authenticated-decryption BootROM path that is the only consumer of the
//! device key.

use shef_crypto::authenc::{AuthEncKey, MacAlgorithm, Sealed};
use shef_crypto::{hkdf, CryptoError};

use crate::keystore::KeyStore;
use crate::FpgaError;

/// Domain-separation label for firmware encryption. The Manufacturer
/// must seal firmware with [`seal_firmware`] for BootROM to accept it.
const FIRMWARE_AD: &[u8] = b"shef.fpga.spb.firmware.v1";

/// HKDF label under which BootROM derives the attestation root from the
/// device key.
const ATTEST_ROOT_LABEL: &[u8] = b"shef.fpga.spb.attest-root.v1";

/// The secret BootROM hands to the measured Security Kernel: an HKDF
/// child of the AES device key, so attestation is rooted in the
/// SPB-burned key while the raw device key itself never leaves the SPB
/// (the key store is locked before firmware runs).
///
/// The Manufacturer knows the device key it burned, so it can derive
/// the same root with [`AttestationRoot::from_device_key`] to certify
/// the device's attestation identity without ever talking to the
/// device.
#[derive(Clone, PartialEq, Eq)]
pub struct AttestationRoot([u8; 32]);

impl core::fmt::Debug for AttestationRoot {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("AttestationRoot").finish_non_exhaustive()
    }
}

impl AttestationRoot {
    /// Derives the root from a raw AES device key (the Manufacturer's
    /// side of the derivation; on-device it is produced by
    /// [`Spb::boot_rom_measured`]).
    #[must_use]
    pub fn from_device_key(device_aes_key: &[u8; 32]) -> Self {
        AttestationRoot(hkdf::derive_key32(ATTEST_ROOT_LABEL, device_aes_key, b""))
    }

    /// Wraps raw root bytes (deserialization of a modelled secret).
    #[must_use]
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        AttestationRoot(bytes)
    }

    /// Raw root bytes, for key derivation inside the Security Kernel.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; 32] {
        self.0
    }
}

/// Seals a firmware payload under the AES device key, as the
/// Manufacturer does before shipping the device (Fig. 2 step 2).
#[must_use]
pub fn seal_firmware(device_aes_key: &[u8; 32], payload: &[u8]) -> Vec<u8> {
    let mut key = AuthEncKey::from_bytes(*device_aes_key, MacAlgorithm::HmacSha256);
    key.seal(payload, FIRMWARE_AD).to_bytes()
}

/// The state of the SPB after BootROM has run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpbState {
    /// Power-on: BootROM has not executed.
    #[default]
    Reset,
    /// Firmware decrypted and authenticated; its payload was released.
    FirmwareLoaded,
    /// BootROM rejected the firmware image.
    Faulted,
}

/// The Security Processor Block.
#[derive(Debug, Default)]
pub struct Spb {
    state: SpbState,
}

impl Spb {
    /// Creates an SPB in the reset state.
    #[must_use]
    pub fn new() -> Self {
        Spb::default()
    }

    /// Current boot state.
    #[must_use]
    pub fn state(&self) -> SpbState {
        self.state
    }

    /// Executes BootROM: reads the AES device key from the key store,
    /// decrypts and authenticates the firmware image, locks the key
    /// store, and returns the firmware payload.
    ///
    /// Locking the key store models the hardware property that after
    /// boot hand-off no other logic can touch the device key — the basis
    /// for "the AES device key is the true root-of-trust" (§4).
    ///
    /// # Errors
    ///
    /// * [`FpgaError::KeyStore`] if no device key is burned.
    /// * [`FpgaError::FirmwareAuthentication`] if the image does not
    ///   decrypt and authenticate under the device key.
    pub fn boot_rom(
        &mut self,
        keystore: &mut KeyStore,
        encrypted_firmware: &[u8],
    ) -> Result<Vec<u8>, FpgaError> {
        self.boot_rom_measured(keystore, encrypted_firmware)
            .map(|(payload, _)| payload)
    }

    /// [`Spb::boot_rom`] for a measured-boot flow: additionally derives
    /// the [`AttestationRoot`] from the device key before locking the
    /// key store, and hands it out alongside the firmware payload. The
    /// caller (the Security Kernel model in `shef-attest`) uses the
    /// root to derive its attestation identity and keys; the raw device
    /// key stays confined to this method.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Spb::boot_rom`].
    pub fn boot_rom_measured(
        &mut self,
        keystore: &mut KeyStore,
        encrypted_firmware: &[u8],
    ) -> Result<(Vec<u8>, AttestationRoot), FpgaError> {
        let device_key = keystore.read_aes_key()?;
        let key = AuthEncKey::from_bytes(device_key, MacAlgorithm::HmacSha256);
        let sealed = Sealed::from_bytes(encrypted_firmware).map_err(|_: CryptoError| {
            self.state = SpbState::Faulted;
            FpgaError::FirmwareAuthentication
        })?;
        let payload = key.open(&sealed, FIRMWARE_AD).map_err(|_| {
            self.state = SpbState::Faulted;
            FpgaError::FirmwareAuthentication
        })?;
        let root = AttestationRoot::from_device_key(&device_key);
        keystore.lock();
        self.state = SpbState::FirmwareLoaded;
        Ok((payload, root))
    }

    /// Resets the SPB (power cycle).
    pub fn reset(&mut self) {
        self.state = SpbState::Reset;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keystore::KeyProtection;

    fn burned_keystore() -> KeyStore {
        let mut ks = KeyStore::new(b"die-test");
        ks.burn_aes_key([0x11u8; 32], KeyProtection::PufWrapped)
            .unwrap();
        ks
    }

    #[test]
    fn boot_rom_accepts_genuine_firmware() {
        let mut ks = burned_keystore();
        let enc = seal_firmware(&[0x11u8; 32], b"firmware payload");
        let mut spb = Spb::new();
        let payload = spb.boot_rom(&mut ks, &enc).unwrap();
        assert_eq!(payload, b"firmware payload");
        assert_eq!(spb.state(), SpbState::FirmwareLoaded);
    }

    #[test]
    fn boot_rom_locks_keystore() {
        let mut ks = burned_keystore();
        let enc = seal_firmware(&[0x11u8; 32], b"fw");
        let mut spb = Spb::new();
        spb.boot_rom(&mut ks, &enc).unwrap();
        // Second boot attempt without reset fails: key store is locked.
        assert!(matches!(
            spb.boot_rom(&mut ks, &enc),
            Err(FpgaError::KeyStore(_))
        ));
    }

    #[test]
    fn boot_rom_rejects_wrong_key_firmware() {
        let mut ks = burned_keystore();
        let enc = seal_firmware(&[0x22u8; 32], b"fw built for another device");
        let mut spb = Spb::new();
        assert_eq!(
            spb.boot_rom(&mut ks, &enc),
            Err(FpgaError::FirmwareAuthentication)
        );
        assert_eq!(spb.state(), SpbState::Faulted);
    }

    #[test]
    fn boot_rom_rejects_tampered_firmware() {
        let mut ks = burned_keystore();
        let mut enc = seal_firmware(&[0x11u8; 32], b"fw");
        let last = enc.len() - 1;
        enc[last] ^= 1;
        let mut spb = Spb::new();
        assert_eq!(
            spb.boot_rom(&mut ks, &enc),
            Err(FpgaError::FirmwareAuthentication)
        );
    }

    #[test]
    fn boot_rom_rejects_garbage() {
        let mut ks = burned_keystore();
        let mut spb = Spb::new();
        assert_eq!(
            spb.boot_rom(&mut ks, &[1, 2, 3]),
            Err(FpgaError::FirmwareAuthentication)
        );
    }

    #[test]
    fn measured_boot_matches_manufacturer_derivation() {
        let mut ks = burned_keystore();
        let enc = seal_firmware(&[0x11u8; 32], b"fw");
        let mut spb = Spb::new();
        let (_, root) = spb.boot_rom_measured(&mut ks, &enc).unwrap();
        // The Manufacturer, knowing the key it burned, derives the same
        // root off-device — that is what lets it certify the device's
        // attestation identity.
        assert_eq!(root, AttestationRoot::from_device_key(&[0x11u8; 32]));
        // The root is a domain-separated child, never the raw key.
        assert_ne!(root.to_bytes(), [0x11u8; 32]);
    }

    #[test]
    fn unburned_device_cannot_boot() {
        let mut ks = KeyStore::new(b"fresh-die");
        let enc = seal_firmware(&[0u8; 32], b"fw");
        let mut spb = Spb::new();
        assert!(matches!(
            spb.boot_rom(&mut ks, &enc),
            Err(FpgaError::KeyStore(_))
        ));
    }
}
