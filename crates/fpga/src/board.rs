//! A complete board: FPGA device + host CPU + external boot medium.
//!
//! [`Board`] is the unit the four ShEF parties interact with: the
//! Manufacturer provisions its key store and firmware, the CSP racks it
//! and loads the Shell, the Data Owner programs accelerators and streams
//! data (Fig. 2).

use std::collections::BTreeMap;

use crate::clock::ClockDomain;
use crate::dram::Dram;
use crate::fabric::Fabric;
use crate::host::HostCpu;
use crate::keystore::KeyStore;
use crate::ports::DebugPorts;
use crate::processor::{ProcessorKind, SecurityKernelProcessor};
use crate::shell::Shell;
use crate::spb::Spb;
use crate::FpgaError;

/// External non-volatile storage the device boots from: holds the
/// encrypted SPB firmware, the Security Kernel binary, and staged
/// (encrypted) bitstreams. The adversary can rewrite it — which is why
/// every image is authenticated before use.
#[derive(Debug, Default)]
pub struct BootMedium {
    images: BTreeMap<String, Vec<u8>>,
}

/// Well-known image names on the boot medium.
pub mod image_names {
    /// Encrypted SPB firmware (Manufacturer).
    pub const SPB_FIRMWARE: &str = "spb-firmware";
    /// Security Kernel binary (open source, unencrypted; measured at boot).
    pub const SECURITY_KERNEL: &str = "security-kernel";
    /// Staged encrypted accelerator bitstream (Data Owner).
    pub const ACCELERATOR_BITSTREAM: &str = "accelerator-bitstream";
}

impl BootMedium {
    /// Creates an empty medium.
    #[must_use]
    pub fn new() -> Self {
        BootMedium::default()
    }

    /// Writes (or replaces) an image.
    pub fn store(&mut self, name: &str, image: Vec<u8>) {
        self.images.insert(name.to_owned(), image);
    }

    /// Reads an image.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::MissingImage`] if absent.
    pub fn load(&self, name: &str) -> Result<&[u8], FpgaError> {
        self.images
            .get(name)
            .map(Vec::as_slice)
            .ok_or_else(|| FpgaError::MissingImage(name.to_owned()))
    }

    /// Lists stored image names.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.images.keys().map(String::as_str)
    }
}

/// The FPGA device proper.
#[derive(Debug)]
pub struct Device {
    /// e-fuse / BBRAM key storage.
    pub keystore: KeyStore,
    /// Security Processor Block.
    pub spb: Spb,
    /// Dedicated Security-Kernel processor.
    pub sk_processor: SecurityKernelProcessor,
    /// Programmable fabric.
    pub fabric: Fabric,
    /// Device DRAM.
    pub dram: Dram,
    /// Debug ports and tamper monitors.
    pub ports: DebugPorts,
    /// Fabric clock domain.
    pub clock: ClockDomain,
    die_serial: Vec<u8>,
}

impl Device {
    /// Creates a fresh (un-provisioned) device with the given die serial.
    #[must_use]
    pub fn new(die_serial: &[u8]) -> Self {
        Device {
            keystore: KeyStore::new(die_serial),
            spb: Spb::new(),
            sk_processor: SecurityKernelProcessor::new(ProcessorKind::HardenedCore),
            fabric: Fabric::new(),
            dram: Dram::f1_default(),
            ports: DebugPorts::new(),
            clock: ClockDomain::F1_DEFAULT,
            die_serial: die_serial.to_vec(),
        }
    }

    /// The die serial (public; printed on the package).
    #[must_use]
    pub fn die_serial(&self) -> &[u8] {
        &self.die_serial
    }

    /// Power-cycles the device: resets SPB, processor, fabric, ports and
    /// unlocks the key store for the next BootROM pass. DRAM contents
    /// survive (DDR4 retains data across FPGA reconfiguration on F1).
    pub fn power_cycle(&mut self) {
        self.spb.reset();
        self.sk_processor.reset();
        self.fabric.reset();
        self.ports.reset();
        self.keystore.unlock_on_reset();
    }
}

/// A full F1-like instance.
#[derive(Debug)]
pub struct Board {
    /// The FPGA device.
    pub device: Device,
    /// The untrusted host CPU.
    pub host: HostCpu,
    /// The (untrusted) Shell data path. Stored at board level because the
    /// Shell's DMA engine bridges host and device.
    pub shell: Shell,
    /// External boot storage.
    pub boot_medium: BootMedium,
}

impl Board {
    /// Creates a board around a fresh device.
    #[must_use]
    pub fn new(die_serial: &[u8]) -> Self {
        Board {
            device: Device::new(die_serial),
            host: HostCpu::new(),
            shell: Shell::new(),
            boot_medium: BootMedium::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keystore::KeyProtection;

    #[test]
    fn boot_medium_round_trip() {
        let mut m = BootMedium::new();
        assert!(m.load("missing").is_err());
        m.store(image_names::SECURITY_KERNEL, vec![1, 2, 3]);
        assert_eq!(m.load(image_names::SECURITY_KERNEL).unwrap(), &[1, 2, 3]);
        assert_eq!(
            m.names().collect::<Vec<_>>(),
            vec![image_names::SECURITY_KERNEL]
        );
    }

    #[test]
    fn power_cycle_resets_but_keeps_dram_and_keys() {
        let mut board = Board::new(b"die-42");
        board
            .device
            .keystore
            .burn_aes_key([1u8; 32], KeyProtection::EFuse)
            .unwrap();
        board.device.keystore.lock();
        board.device.dram.tamper_write(0, b"persist");
        board.device.ports.arm_monitors();
        board.device.power_cycle();
        assert!(!board.device.ports.monitors_armed());
        assert!(board.device.keystore.is_burned());
        // Key store is readable again by BootROM after reset.
        assert_eq!(board.device.dram.tamper_read(0, 7), b"persist");
    }

    #[test]
    fn die_serial_is_stable() {
        let board = Board::new(b"serial-xyz");
        assert_eq!(board.device.die_serial(), b"serial-xyz");
    }
}
