//! The programmable fabric: static Shell region + partial-reconfiguration
//! region.
//!
//! §2.3: "An F1 instance is configured with two partial bitstreams: one
//! belonging to the CSP which contains the Shell logic, and one belonging
//! to the user's accelerator design. … The Shell is static logic and
//! continuously runs on the FPGA. … users leverage a command line
//! interface to dynamically program their chosen partial bitstream onto
//! the remaining reconfigurable region."
//!
//! In ShEF the Security Kernel "mediates all access to the FPGA fabric"
//! (§3 step 9): only it may call [`Fabric::load_partial`]. Direct ICAP
//! loading is the attack path, gated by the tamper monitors.

use shef_crypto::sha2::Sha256;

use crate::ports::{DebugPort, DebugPorts, PortAccessOutcome};
use crate::FpgaError;

/// A design loaded into the PR region: opaque payload (interpreted by
/// `shef-core::bitstream`) plus its measurement.
#[derive(Debug, Clone)]
pub struct LoadedDesign {
    /// Raw plaintext bitstream bytes.
    pub payload: Vec<u8>,
    /// SHA-256 of the payload, measured at load time.
    pub hash: [u8; 32],
}

/// Information about the loaded Shell image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShellImage {
    /// CSP-assigned shell version string.
    pub version: String,
    /// Measurement of the shell bitstream.
    pub hash: [u8; 32],
}

/// The programmable fabric.
#[derive(Debug, Default)]
pub struct Fabric {
    shell: Option<ShellImage>,
    partial: Option<LoadedDesign>,
    load_count: u64,
}

impl Fabric {
    /// Creates an empty (unconfigured) fabric.
    #[must_use]
    pub fn new() -> Self {
        Fabric::default()
    }

    /// Loads the CSP Shell into the static region.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::Fabric`] if a shell is already resident (the
    /// static region is programmed once per power cycle).
    pub fn load_shell(&mut self, version: &str, bitstream: &[u8]) -> Result<(), FpgaError> {
        if self.shell.is_some() {
            return Err(FpgaError::Fabric("shell already loaded".into()));
        }
        self.shell = Some(ShellImage {
            version: version.to_owned(),
            hash: Sha256::digest(bitstream),
        });
        Ok(())
    }

    /// The resident shell, if loaded.
    #[must_use]
    pub fn shell(&self) -> Option<&ShellImage> {
        self.shell.as_ref()
    }

    /// Loads a plaintext partial bitstream into the PR region. This is
    /// the mediated path used by the Security Kernel after decrypting the
    /// IP Vendor's bitstream.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::Fabric`] if the Shell is not resident (the PR
    /// region's I/O has nowhere to connect).
    pub fn load_partial(&mut self, payload: Vec<u8>) -> Result<[u8; 32], FpgaError> {
        if self.shell.is_none() {
            return Err(FpgaError::Fabric(
                "cannot program PR region before the shell is loaded".into(),
            ));
        }
        let hash = Sha256::digest(&payload);
        self.partial = Some(LoadedDesign { payload, hash });
        self.load_count += 1;
        Ok(hash)
    }

    /// The design currently in the PR region.
    #[must_use]
    pub fn partial(&self) -> Option<&LoadedDesign> {
        self.partial.as_ref()
    }

    /// Number of successful PR loads since power-up.
    #[must_use]
    pub fn load_count(&self) -> u64 {
        self.load_count
    }

    /// Clears the PR region.
    pub fn clear_partial(&mut self) {
        self.partial = None;
    }

    /// An adversary attempts to reprogram the PR region directly through
    /// ICAP, bypassing the Security Kernel. Succeeds only if the tamper
    /// monitors are disarmed.
    pub fn adversarial_icap_load(
        &mut self,
        ports: &mut DebugPorts,
        payload: Vec<u8>,
    ) -> PortAccessOutcome {
        match ports.adversarial_access(DebugPort::Icap, "direct ICAP partial reconfiguration") {
            PortAccessOutcome::BlockedAndLogged => PortAccessOutcome::BlockedAndLogged,
            PortAccessOutcome::Succeeded => {
                let hash = Sha256::digest(&payload);
                self.partial = Some(LoadedDesign { payload, hash });
                PortAccessOutcome::Succeeded
            }
        }
    }

    /// Power-cycle reset: clears both regions.
    pub fn reset(&mut self) {
        self.shell = None;
        self.partial = None;
        self.load_count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shell_then_partial() {
        let mut fabric = Fabric::new();
        assert!(fabric.load_partial(vec![1, 2, 3]).is_err());
        fabric
            .load_shell("aws-f1-shell-v1.4", b"shell bits")
            .unwrap();
        let hash = fabric.load_partial(vec![1, 2, 3]).unwrap();
        assert_eq!(hash, Sha256::digest(&[1, 2, 3]));
        assert_eq!(fabric.partial().unwrap().payload, vec![1, 2, 3]);
        assert_eq!(fabric.load_count(), 1);
    }

    #[test]
    fn shell_loads_once() {
        let mut fabric = Fabric::new();
        fabric.load_shell("v1", b"a").unwrap();
        assert!(fabric.load_shell("v2", b"b").is_err());
        assert_eq!(fabric.shell().unwrap().version, "v1");
    }

    #[test]
    fn icap_attack_blocked_when_monitored() {
        let mut fabric = Fabric::new();
        let mut ports = DebugPorts::new();
        fabric.load_shell("v1", b"s").unwrap();
        fabric.load_partial(vec![7; 8]).unwrap();
        ports.arm_monitors();
        let outcome = fabric.adversarial_icap_load(&mut ports, vec![6; 8]);
        assert_eq!(outcome, PortAccessOutcome::BlockedAndLogged);
        // Design unchanged.
        assert_eq!(fabric.partial().unwrap().payload, vec![7; 8]);
        assert_eq!(ports.pending_events().len(), 1);
    }

    #[test]
    fn icap_attack_succeeds_when_unmonitored() {
        // Without the Security Kernel's continuous monitoring, the PR
        // region can be silently replaced — the motivating gap.
        let mut fabric = Fabric::new();
        let mut ports = DebugPorts::new();
        fabric.load_shell("v1", b"s").unwrap();
        fabric.load_partial(vec![7; 8]).unwrap();
        let outcome = fabric.adversarial_icap_load(&mut ports, vec![6; 8]);
        assert_eq!(outcome, PortAccessOutcome::Succeeded);
        assert_eq!(fabric.partial().unwrap().payload, vec![6; 8]);
    }

    #[test]
    fn reset_clears_regions() {
        let mut fabric = Fabric::new();
        fabric.load_shell("v1", b"s").unwrap();
        fabric.load_partial(vec![1]).unwrap();
        fabric.reset();
        assert!(fabric.shell().is_none());
        assert!(fabric.partial().is_none());
        assert_eq!(fabric.load_count(), 0);
    }
}
