//! Device DRAM: a sparse 64 GB memory with bandwidth/latency accounting.
//!
//! F1 attaches 64 GB of DDR4 to each FPGA over four channels (§2.3). Per
//! the threat model, "any off-chip memory … can be compromised": the
//! adversary sees and may rewrite every byte. [`Dram::tamper_read`] and
//! [`Dram::tamper_write`] model that access path (no cost accounting —
//! the adversary is not part of the datapath).

use std::collections::HashMap;

use shef_telemetry::{Counter, Telemetry};

use crate::axi::{split_bursts, Axi4Port};
use crate::clock::{CostLedger, Cycles};
use crate::FpgaError;

const PAGE_SIZE: usize = 4096;

/// Timing parameters of the device memory system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramTiming {
    /// Aggregate bandwidth in bytes per device cycle. Four DDR4-2133
    /// channels ≈ 64 GB/s at a 250 MHz fabric clock → 256 B/cycle.
    pub bytes_per_cycle: u64,
    /// Per-burst *occupancy* overhead charged to the bandwidth lane
    /// (command/row activation slots). True access latency is much
    /// higher (~60 ns) but overlaps across banks and is hidden by the
    /// streaming engines, so only the occupancy slot costs throughput.
    pub burst_latency: Cycles,
}

impl Default for DramTiming {
    fn default() -> Self {
        DramTiming {
            bytes_per_cycle: 256,
            burst_latency: Cycles(2),
        }
    }
}

/// Traffic counters for the memory system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Total bytes read through the AXI datapath.
    pub bytes_read: u64,
    /// Total bytes written through the AXI datapath.
    pub bytes_written: u64,
    /// Number of read bursts.
    pub read_bursts: u64,
    /// Number of write bursts.
    pub write_bursts: u64,
}

/// Pre-resolved telemetry handles for the DRAM traffic counters.
#[derive(Debug, Clone)]
struct DramTelemetry {
    bytes_read: Counter,
    bytes_written: Counter,
    read_bursts: Counter,
    write_bursts: Counter,
}

impl DramTelemetry {
    fn bind(t: &Telemetry) -> Self {
        DramTelemetry {
            bytes_read: t.counter("fpga.dram.bytes_read"),
            bytes_written: t.counter("fpga.dram.bytes_written"),
            read_bursts: t.counter("fpga.dram.read_bursts"),
            write_bursts: t.counter("fpga.dram.write_bursts"),
        }
    }
}

/// The simulated device DRAM.
///
/// Unwritten bytes read as zero, like freshly-initialized DDR4 after the
/// Shell's memory scrubber.
pub struct Dram {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
    size: u64,
    timing: DramTiming,
    stats: DramStats,
    ledger: CostLedger,
    tele: Option<DramTelemetry>,
}

impl core::fmt::Debug for Dram {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Dram")
            .field("size", &self.size)
            .field("resident_pages", &self.pages.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Dram {
    /// Creates a DRAM of `size` bytes with default timing.
    #[must_use]
    pub fn new(size: u64) -> Self {
        Self::with_timing(size, DramTiming::default())
    }

    /// Creates the standard F1 64 GB device memory.
    #[must_use]
    pub fn f1_default() -> Self {
        Self::new(64 << 30)
    }

    /// Creates a DRAM with explicit timing parameters.
    #[must_use]
    pub fn with_timing(size: u64, timing: DramTiming) -> Self {
        Dram {
            pages: HashMap::new(),
            size,
            timing,
            stats: DramStats::default(),
            ledger: CostLedger::new(),
            tele: None,
        }
    }

    /// Mirror the traffic counters into `telemetry` as
    /// `fpga.dram.{bytes_read,bytes_written,read_bursts,write_bursts}`.
    /// Tamper accesses stay invisible, exactly like [`Dram::stats`].
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.tele = Some(DramTelemetry::bind(telemetry));
    }

    /// Memory size in bytes.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Traffic statistics so far.
    #[must_use]
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// The accumulated cost ledger (lane `"dram"`).
    #[must_use]
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// Resets statistics and cost accounting (not contents).
    pub fn reset_accounting(&mut self) {
        self.stats = DramStats::default();
        self.ledger = CostLedger::new();
    }

    fn check_range(&self, addr: u64, len: usize) -> Result<(), FpgaError> {
        let end = addr
            .checked_add(len as u64)
            .ok_or_else(|| FpgaError::Axi("address overflow".into()))?;
        if end > self.size {
            return Err(FpgaError::Axi(format!(
                "access [{addr:#x}, {end:#x}) beyond DRAM size {:#x}",
                self.size
            )));
        }
        Ok(())
    }

    fn raw_read(&self, addr: u64, buf: &mut [u8]) {
        let mut offset = 0usize;
        while offset < buf.len() {
            let a = addr + offset as u64;
            let page = a / PAGE_SIZE as u64;
            let in_page = (a % PAGE_SIZE as u64) as usize;
            let take = (buf.len() - offset).min(PAGE_SIZE - in_page);
            if let Some(p) = self.pages.get(&page) {
                buf[offset..offset + take].copy_from_slice(&p[in_page..in_page + take]);
            } else {
                buf[offset..offset + take].fill(0);
            }
            offset += take;
        }
    }

    fn raw_write(&mut self, addr: u64, data: &[u8]) {
        let mut offset = 0usize;
        while offset < data.len() {
            let a = addr + offset as u64;
            let page = a / PAGE_SIZE as u64;
            let in_page = (a % PAGE_SIZE as u64) as usize;
            let take = (data.len() - offset).min(PAGE_SIZE - in_page);
            let p = self
                .pages
                .entry(page)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            p[in_page..in_page + take].copy_from_slice(&data[offset..offset + take]);
            offset += take;
        }
    }

    fn charge(&mut self, len: usize, bursts: u64) {
        let transfer = Cycles((len as u64).div_ceil(self.timing.bytes_per_cycle));
        let latency = Cycles(self.timing.burst_latency.0 * bursts);
        self.ledger.add_busy("dram", transfer + latency);
    }

    /// Adversarial read: full visibility into memory, no cost accounting.
    #[must_use]
    pub fn tamper_read(&self, addr: u64, len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        self.raw_read(addr, &mut buf);
        buf
    }

    /// Adversarial write: modifies memory contents directly, modelling a
    /// physical attack on the DDR bus or a malicious Shell.
    pub fn tamper_write(&mut self, addr: u64, data: &[u8]) {
        self.raw_write(addr, data);
    }
}

impl Axi4Port for Dram {
    fn read_burst(&mut self, addr: u64, len: usize) -> Result<Vec<u8>, FpgaError> {
        self.check_range(addr, len)?;
        let bursts = split_bursts(addr, len);
        let mut buf = vec![0u8; len];
        self.raw_read(addr, &mut buf);
        self.stats.bytes_read += len as u64;
        self.stats.read_bursts += bursts.len() as u64;
        if let Some(tele) = &self.tele {
            tele.bytes_read.add(len as u64);
            tele.read_bursts.add(bursts.len() as u64);
        }
        self.charge(len, bursts.len() as u64);
        Ok(buf)
    }

    fn write_burst(&mut self, addr: u64, data: &[u8]) -> Result<(), FpgaError> {
        self.check_range(addr, data.len())?;
        let bursts = split_bursts(addr, data.len());
        self.raw_write(addr, data);
        self.stats.bytes_written += data.len() as u64;
        self.stats.write_bursts += bursts.len() as u64;
        if let Some(tele) = &self.tele {
            tele.bytes_written.add(data.len() as u64);
            tele.write_bursts.add(bursts.len() as u64);
        }
        self.charge(data.len(), bursts.len() as u64);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut dram = Dram::new(1 << 20);
        dram.write_burst(0x1000, b"hello fpga").unwrap();
        assert_eq!(dram.read_burst(0x1000, 10).unwrap(), b"hello fpga");
    }

    #[test]
    fn unwritten_memory_reads_zero() {
        let mut dram = Dram::new(1 << 20);
        assert_eq!(dram.read_burst(0x5000, 8).unwrap(), vec![0u8; 8]);
    }

    #[test]
    fn cross_page_access() {
        let mut dram = Dram::new(1 << 20);
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        dram.write_burst(4090, &data).unwrap();
        assert_eq!(dram.read_burst(4090, 10_000).unwrap(), data);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut dram = Dram::new(4096);
        assert!(dram.read_burst(4090, 10).is_err());
        assert!(dram.write_burst(u64::MAX, &[1]).is_err());
        // Boundary access is fine.
        assert!(dram.write_burst(4088, &[0u8; 8]).is_ok());
    }

    #[test]
    fn stats_accumulate() {
        let mut dram = Dram::new(1 << 20);
        dram.write_burst(0, &[0u8; 5000]).unwrap();
        let _ = dram.read_burst(0, 100).unwrap();
        let s = dram.stats();
        assert_eq!(s.bytes_written, 5000);
        assert_eq!(s.bytes_read, 100);
        assert_eq!(s.write_bursts, 2); // 5000 B crosses one 4 KB boundary
        assert_eq!(s.read_bursts, 1);
    }

    #[test]
    fn timing_charged_to_dram_lane() {
        let mut dram = Dram::with_timing(
            1 << 20,
            DramTiming {
                bytes_per_cycle: 64,
                burst_latency: Cycles(10),
            },
        );
        dram.write_burst(0, &[0u8; 6400]).unwrap();
        // 6400/64 = 100 transfer cycles + 2 bursts * 10 latency.
        assert_eq!(dram.ledger().lane("dram"), Cycles(120));
        dram.reset_accounting();
        assert_eq!(dram.ledger().lane("dram"), Cycles::ZERO);
    }

    #[test]
    fn telemetry_mirrors_traffic_but_not_tampering() {
        let t = Telemetry::new();
        let mut dram = Dram::new(1 << 20);
        dram.attach_telemetry(&t);
        dram.write_burst(0, &[0u8; 5000]).unwrap();
        let _ = dram.read_burst(0, 100).unwrap();
        dram.tamper_write(0, b"evil");
        let r = t.report();
        assert_eq!(r.counters["fpga.dram.bytes_written"], 5000);
        assert_eq!(r.counters["fpga.dram.bytes_read"], 100);
        assert_eq!(r.counters["fpga.dram.write_bursts"], 2);
        assert_eq!(r.counters["fpga.dram.read_bursts"], 1);
    }

    #[test]
    fn tamper_bypasses_accounting() {
        let mut dram = Dram::new(1 << 20);
        dram.tamper_write(0x100, b"evil");
        assert_eq!(dram.tamper_read(0x100, 4), b"evil");
        assert_eq!(dram.stats(), DramStats::default());
        // And the tampered data is visible through the normal path.
        assert_eq!(dram.read_burst(0x100, 4).unwrap(), b"evil");
    }
}
