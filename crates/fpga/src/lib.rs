//! Simulated cloud-FPGA platform substrate for ShEF.
//!
//! The ShEF paper evaluates on real hardware — a Xilinx UltraScale+
//! Ultra96 board (end-to-end secure boot) and AWS EC2 F1 instances
//! (Shield performance). This crate substitutes that hardware with a
//! behavioural + timing model exposing exactly the mechanisms the paper
//! relies on (§2.2, §2.3):
//!
//! * [`keystore`] — e-fuse/BBRAM AES device key storage with optional PUF
//!   wrapping, burn-once semantics.
//! * [`spb`] — the Security Processor Block: BootROM that decrypts and
//!   authenticates manufacturer firmware with the device key.
//! * [`processor`] — the dedicated Security-Kernel processor (the paper
//!   uses a Cortex-R5 core on the Ultra96) with private on-chip memory.
//! * [`fabric`] — the programmable fabric, split into a static Shell
//!   region and a partial-reconfiguration region.
//! * [`shell`] — the CSP's untrusted Shell logic: DMA, AXI4-Lite register
//!   port and AXI4 memory port, with interposition hooks so tests can
//!   mount man-in-the-middle attacks (the paper's threat model lets the
//!   adversary "control privileged FPGA logic, such as the AWS F1
//!   Shell").
//! * [`axi`] — transaction-level AXI4 / AXI4-Lite port traits.
//! * [`dram`] — sparse 64 GB device DRAM with bandwidth/latency
//!   accounting; fully adversary-accessible, per the threat model.
//! * [`ports`] — JTAG/ICAP debug ports and tamper monitors.
//! * [`host`] — the untrusted host CPU and its PCIe DMA cost model.
//! * [`clock`] — cycle accounting and the bottleneck-lane cost ledger
//!   used by the performance model.
//! * [`board`] — a full F1-like board: device + host + boot medium.
//!
//! Nothing in this crate implements ShEF itself; `shef-core` builds the
//! secure boot, attestation, and Shield on top of these mechanisms, the
//! same way the real ShEF builds on stock Xilinx/Intel hardware.
//!
//! The substrate is directly drivable — including the threat model's
//! defining property, adversary-accessible device DRAM:
//!
//! ```
//! use shef_fpga::dram::Dram;
//!
//! let mut dram = Dram::f1_default();
//! dram.tamper_write(0x1000, b"adversary-visible bytes");
//! assert_eq!(dram.tamper_read(0x1000, 9), b"adversary".to_vec());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod axi;
pub mod board;
pub mod clock;
pub mod dram;
pub mod fabric;
pub mod host;
pub mod keystore;
pub mod ports;
pub mod processor;
pub mod shell;
pub mod spb;

/// Errors raised by the platform substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FpgaError {
    /// An AXI transaction was malformed or out of range.
    Axi(String),
    /// The device key store refused an operation (already burned, locked…).
    KeyStore(String),
    /// BootROM failed to decrypt or authenticate the firmware image.
    FirmwareAuthentication,
    /// A required image was missing from the boot medium.
    MissingImage(String),
    /// The fabric rejected a bitstream (wrong region, Shell not loaded…).
    Fabric(String),
    /// A tamper event tripped a monitor.
    Tamper(String),
}

impl core::fmt::Display for FpgaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FpgaError::Axi(m) => write!(f, "axi error: {m}"),
            FpgaError::KeyStore(m) => write!(f, "key store error: {m}"),
            FpgaError::FirmwareAuthentication => {
                write!(f, "firmware image failed authentication")
            }
            FpgaError::MissingImage(m) => write!(f, "missing boot image: {m}"),
            FpgaError::Fabric(m) => write!(f, "fabric error: {m}"),
            FpgaError::Tamper(m) => write!(f, "tamper detected: {m}"),
        }
    }
}

impl std::error::Error for FpgaError {}
