//! Criterion benchmarks of the Shield datapath itself: functional
//! (wall-clock) throughput of engine-set reads/writes under different
//! configurations, plus the end-to-end vecadd harness.
//!
//! The `shield_read_parallel` group sweeps the multi-lane datapath.
//! Lane counts default to 1,2,4,8; override with the `--lanes`-style
//! env knob `SHEF_LANES=1,4 cargo bench -p shef-bench --bench
//! shield_throughput` (the vendored criterion shim takes no CLI args).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use shef_accel::harness::{run_baseline, run_shielded};
use shef_accel::vecadd::VectorAdd;
use shef_accel::CryptoProfile;
use shef_core::shield::client;
use shef_core::shield::{
    AccessMode, DataEncryptionKey, EngineSetConfig, MemRange, Shield, ShieldConfig, WorkerPool,
};
use shef_crypto::authenc::MacAlgorithm;
use shef_crypto::ecies::EciesKeyPair;
use shef_fpga::clock::CostLedger;
use shef_fpga::dram::Dram;
use shef_fpga::shell::Shell;

fn shielded_setup(chunk: usize, mac: MacAlgorithm) -> (Shield, Shell, Dram, DataEncryptionKey) {
    let config = ShieldConfig::builder()
        .region(
            "bench",
            MemRange::new(0, 1 << 20),
            EngineSetConfig {
                chunk_size: chunk,
                mac,
                buffer_bytes: 64 * 1024,
                ..EngineSetConfig::default()
            },
        )
        .build()
        .unwrap();
    let mut shield = Shield::new(config, EciesKeyPair::from_seed(b"bench")).unwrap();
    let dek = DataEncryptionKey::from_bytes([1u8; 32]);
    let lk = dek.to_load_key(&shield.public_key());
    shield.provision_load_key(&lk).unwrap();
    let mut dram = Dram::f1_default();
    let region = shield.config().regions[0].clone();
    let enc = client::encrypt_region(&dek, &region, &vec![0x33u8; 1 << 20], 0);
    dram.tamper_write(0, &enc.ciphertext);
    dram.tamper_write(shield.config().tag_base(0), &enc.tags);
    (shield, Shell::new(), dram, dek)
}

fn bench_shield_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("shield_read");
    group.sample_size(20);
    for (name, chunk, mac) in [
        ("c512_hmac", 512usize, MacAlgorithm::HmacSha256),
        ("c4096_hmac", 4096, MacAlgorithm::HmacSha256),
        ("c4096_pmac", 4096, MacAlgorithm::PmacAes),
        ("c4096_gcm", 4096, MacAlgorithm::AesGcm),
    ] {
        let (mut shield, mut shell, mut dram, _) = shielded_setup(chunk, mac);
        group.throughput(Throughput::Bytes(1 << 20));
        group.bench_function(BenchmarkId::new("stream_1mb", name), |b| {
            b.iter(|| {
                let mut ledger = CostLedger::new();
                // Fresh engine state per iteration would re-derive keys;
                // re-reading through the (small) buffer still exercises
                // the full decrypt+verify path for most chunks.
                shield
                    .read(
                        &mut shell,
                        &mut dram,
                        &mut ledger,
                        0,
                        1 << 20,
                        AccessMode::Streaming,
                    )
                    .unwrap()
            })
        });
    }
    group.finish();
}

/// Lane counts for the parallel-datapath sweep: `SHEF_LANES=1,4` or
/// the 1,2,4,8 default.
fn lane_counts() -> Vec<usize> {
    match std::env::var("SHEF_LANES") {
        Ok(spec) => spec
            .split(',')
            .map(|s| s.trim().parse().expect("SHEF_LANES must be integers"))
            .collect(),
        Err(_) => vec![1, 2, 4, 8],
    }
}

fn bench_shield_reads_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("shield_read_parallel");
    group.sample_size(20);
    for lanes in lane_counts() {
        let (mut shield, mut shell, mut dram, _) = shielded_setup(4096, MacAlgorithm::HmacSha256);
        let pool = WorkerPool::new(lanes);
        group.throughput(Throughput::Bytes(1 << 20));
        group.bench_function(BenchmarkId::new("stream_1mb", format!("l{lanes}")), |b| {
            b.iter(|| {
                let mut ledger = CostLedger::new();
                shield
                    .read_parallel(
                        &mut shell,
                        &mut dram,
                        &mut ledger,
                        0,
                        1 << 20,
                        AccessMode::Streaming,
                        &pool,
                    )
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_vecadd_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("vecadd_harness");
    group.sample_size(10);
    group.bench_function("baseline_256k", |b| {
        b.iter(|| {
            let mut accel = VectorAdd::new(256 * 1024, 1);
            run_baseline(&mut accel).unwrap()
        })
    });
    group.bench_function("shielded_256k_aes16x", |b| {
        b.iter(|| {
            let mut accel = VectorAdd::new(256 * 1024, 1);
            run_shielded(&mut accel, &CryptoProfile::AES128_16X, 2).unwrap()
        })
    });
    group.finish();
}

fn bench_replay_defences(c: &mut Criterion) {
    use shef_core::shield::engine::EngineSet;
    use shef_core::shield::merkle::MerkleConfig;
    use shef_core::shield::RegionConfig;

    let mut group = c.benchmark_group("replay_defence");
    group.sample_size(20);
    for (name, counters, merkle) in [
        ("counters", true, None),
        (
            "merkle_a8_cached",
            false,
            Some(MerkleConfig {
                arity: 8,
                node_cache_bytes: 16 * 1024,
            }),
        ),
        (
            "merkle_a8_uncached",
            false,
            Some(MerkleConfig {
                arity: 8,
                node_cache_bytes: 0,
            }),
        ),
    ] {
        let region = RegionConfig {
            name: "bench".into(),
            range: MemRange::new(0, 256 * 1024),
            engine_set: EngineSetConfig {
                chunk_size: 512,
                buffer_bytes: 4096,
                counters,
                merkle,
                ..EngineSetConfig::default()
            },
        };
        let dek = DataEncryptionKey::from_bytes([8u8; 32]);
        let mut es = EngineSet::new(region, 0, 32 << 20, 48 << 20, &dek);
        let mut shell = Shell::new();
        let mut dram = Dram::new(1 << 30);
        let mut ledger = CostLedger::new();
        // Provision once with full-chunk writes.
        for start in (0..256 * 1024u64).step_by(512) {
            es.write(
                &mut shell,
                &mut dram,
                &mut ledger,
                start,
                &[0u8; 512],
                AccessMode::Streaming,
            )
            .unwrap();
        }
        es.flush(&mut shell, &mut dram, &mut ledger).unwrap();
        group.bench_function(BenchmarkId::new("rmw_64", name), |b| {
            let mut n = 0u64;
            b.iter(|| {
                n = n.wrapping_mul(6364136223846793005).wrapping_add(97);
                let addr = (n >> 16) % (256 * 1024 - 64);
                let mut ledger = CostLedger::new();
                let got = es
                    .read(
                        &mut shell,
                        &mut dram,
                        &mut ledger,
                        addr,
                        64,
                        AccessMode::Streaming,
                    )
                    .unwrap();
                es.write(
                    &mut shell,
                    &mut dram,
                    &mut ledger,
                    addr,
                    &got,
                    AccessMode::Streaming,
                )
                .unwrap();
                es.flush(&mut shell, &mut dram, &mut ledger).unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_shield_reads,
    bench_shield_reads_parallel,
    bench_vecadd_end_to_end,
    bench_replay_defences
);
criterion_main!(benches);
