//! Regenerates every table and figure of the paper's evaluation under
//! `cargo bench --workspace`.
//!
//! Each experiment lives in its own binary (`src/bin/<name>.rs`) so it
//! can also be run individually with
//! `cargo run --release -p shef-bench --bin <name>`. This bench target
//! drives them all in sequence and forwards their output, so a single
//! `cargo bench` leaves the full paper-vs-measured record in the log
//! (the source of EXPERIMENTS.md).

use std::process::Command;

/// Table/figure regenerators, in paper order. `lanes_debug` is a
/// developer utility and intentionally not part of the sweep.
const EXPERIMENTS: &[(&str, &str)] = &[
    ("table1", "Table 1: Shield component utilization"),
    ("fig5", "Figure 5: vector-add overhead vs input size"),
    ("matmul_micro", "§6.2.2: matrix-multiply microbenchmark"),
    ("table2", "Table 2: SDP overhead across Shield designs"),
    ("fig6", "Figure 6: five accelerators × crypto profiles"),
    ("table3", "Table 3: inclusive utilization per accelerator"),
    ("boot_time", "§6.1: end-to-end secure boot latency"),
    ("dnnweaver_latency", "Appendix A.6: DNNWeaver LeNet latency"),
    (
        "ablations",
        "Design-knob ablations (chunk, buffer, counters, side channel)",
    ),
    (
        "integrity_ablation",
        "Integrity-scheme ablation (counters vs Bonsai Merkle Tree)",
    ),
    (
        "lane_scaling",
        "Parallel-datapath lane scaling (source of the CI bench gate)",
    ),
];

fn main() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_owned());
    let mut failures = Vec::new();
    for (bin, title) in EXPERIMENTS {
        println!();
        println!("################################################################");
        println!("## {title}");
        println!("################################################################");
        let status = Command::new(&cargo)
            .args([
                "run",
                "--release",
                "--quiet",
                "-p",
                "shef-bench",
                "--bin",
                bin,
            ])
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("experiment {bin} exited with {s}");
                failures.push(*bin);
            }
            Err(e) => {
                eprintln!("failed to launch {bin}: {e}");
                failures.push(*bin);
            }
        }
    }
    assert!(
        failures.is_empty(),
        "experiments failed: {failures:?} — see output above"
    );
    println!();
    println!("all {} experiments regenerated", EXPERIMENTS.len());
}
