//! Criterion microbenchmarks of the cryptographic substrate — the
//! software analogues of the Shield's engines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use shef_crypto::aes::Aes;
use shef_crypto::authenc::{AuthEncKey, MacAlgorithm};
use shef_crypto::ctr::{ctr_xor, ChunkIv};
use shef_crypto::ed25519::SigningKey;
use shef_crypto::hmac::hmac_sha256;
use shef_crypto::pmac::pmac;
use shef_crypto::sha2::Sha256;
use shef_crypto::x25519;

fn bench_aes(c: &mut Criterion) {
    let mut group = c.benchmark_group("aes");
    let aes128 = Aes::new_128(&[7u8; 16]);
    let aes256 = Aes::new_256(&[7u8; 32]);
    let block = [0x5au8; 16];
    group.bench_function("aes128_block", |b| b.iter(|| aes128.encrypt_block(&block)));
    group.bench_function("aes256_block", |b| b.iter(|| aes256.encrypt_block(&block)));
    for size in [512usize, 4096] {
        let mut buf = vec![0u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("ctr", size), &size, |b, _| {
            b.iter(|| ctr_xor(&aes128, &ChunkIv::for_chunk([1; 8], 0), &mut buf))
        });
    }
    group.finish();
}

fn bench_hashes(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash");
    for size in [512usize, 4096] {
        let data = vec![0xa5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| {
            b.iter(|| Sha256::digest(d))
        });
        group.bench_with_input(BenchmarkId::new("hmac_sha256", size), &data, |b, d| {
            b.iter(|| hmac_sha256(b"key", d))
        });
        let aes = Aes::new_128(&[7u8; 16]);
        group.bench_with_input(BenchmarkId::new("pmac", size), &data, |b, d| {
            b.iter(|| pmac(&aes, d))
        });
        group.bench_with_input(BenchmarkId::new("ghash", size), &data, |b, d| {
            b.iter(|| shef_crypto::ghash::ghash(&[0x25u8; 16], b"", d))
        });
    }
    group.finish();
}

fn bench_authenc(c: &mut Criterion) {
    let mut group = c.benchmark_group("authenc");
    for (name, alg) in [
        ("ctr_hmac", MacAlgorithm::HmacSha256),
        ("ctr_pmac", MacAlgorithm::PmacAes),
        ("ctr_gcm", MacAlgorithm::AesGcm),
    ] {
        let mut key = AuthEncKey::from_bytes([9u8; 32], alg);
        let data = vec![0x11u8; 4096];
        group.throughput(Throughput::Bytes(4096));
        group.bench_function(format!("{name}_seal_4k"), |b| {
            b.iter(|| key.seal(&data, b"chunk"))
        });
    }
    group.finish();
}

fn bench_asymmetric(c: &mut Criterion) {
    let mut group = c.benchmark_group("asymmetric");
    let key = SigningKey::from_seed(&[3u8; 32]);
    let msg = vec![0x42u8; 256];
    let sig = key.sign(&msg);
    group.bench_function("ed25519_sign", |b| b.iter(|| key.sign(&msg)));
    group.bench_function("ed25519_verify", |b| {
        b.iter(|| key.verifying_key().verify(&msg, &sig).unwrap())
    });
    let secret = [0x77u8; 32];
    let peer = x25519::public_key(&[0x88u8; 32]);
    group.bench_function("x25519_dh", |b| {
        b.iter(|| x25519::shared_secret(&secret, &peer))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_aes,
    bench_hashes,
    bench_authenc,
    bench_asymmetric
);
criterion_main!(benches);
