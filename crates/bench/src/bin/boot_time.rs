//! Regenerates the **§6.1** end-to-end boot measurement: "the boot
//! process, from power-on to bitstream loading, completes in 5.1
//! seconds … relatively small compared to the commonly-observed 40+
//! second boot time of CSP VM instances, plus the approximate 6.2
//! seconds of bitstream loading time we observe on F1."
//!
//! This runs the *real* secure-boot + attestation + bitstream-load chain
//! on the simulated board and reports the modelled phase latencies.

use shef_bench::{header, kv_row};
use shef_core::shield::{EngineSetConfig, MemRange, ShieldConfig};
use shef_core::workflow::TestBench;

fn main() {
    header("§6.1: end-to-end secure boot timing (Ultra96 model)");

    let mut bench = TestBench::new("boot-bench");
    let board = bench
        .fresh_board(b"die-boot-bench")
        .expect("provisioning succeeds");
    let config = ShieldConfig::builder()
        .region(
            "data",
            MemRange::new(0, 1 << 20),
            EngineSetConfig::default(),
        )
        .build()
        .expect("valid config");
    let product = bench
        .vendor
        .package_accelerator("bitcoin-miner", config, vec![0xB7; 4096])
        .expect("packaging succeeds");
    let (instance, _dek) = bench
        .data_owner
        .deploy(board, &mut bench.vendor, &bench.manufacturer, &product)
        .expect("deploy succeeds");

    let t = &instance.boot_report.timing;
    kv_row(
        "BootROM + firmware decrypt",
        &format!("{:>8.0} ms", t.bootrom_ms),
    );
    kv_row(
        "Security Kernel measurement",
        &format!("{:>8.0} ms", t.measure_kernel_ms),
    );
    kv_row(
        "Attestation key derivation",
        &format!("{:>8.0} ms", t.key_derivation_ms),
    );
    kv_row(
        "Kernel start + monitor arm",
        &format!("{:>8.0} ms", t.kernel_start_ms),
    );
    kv_row(
        "Shell static-region load",
        &format!("{:>8.0} ms", t.shell_load_ms),
    );
    kv_row(
        "TOTAL (power-on to bitstream load)",
        &format!("{:>8.1} s", t.total_ms() / 1000.0),
    );
    println!();
    kv_row("paper measurement", "5.1 s (Ultra96)");
    kv_row("reference: CSP VM boot", "40+ s");
    kv_row("reference: F1 bitstream load", "~6.2 s");
    println!();
    println!(
        "attested accelerator: '{}' loaded and provisioned = {}",
        instance.accel_id,
        instance.shield.is_provisioned()
    );
}
