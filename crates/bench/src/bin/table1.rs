//! Regenerates **Table 1**: Shield component utilization on AWS F1.
//!
//! The per-component absolute numbers are the paper's own Vivado
//! measurements (they seed our area model); this binary recomputes the
//! device percentages from the modelled VU9P totals and checks them
//! against the percentages printed in the paper.

use shef_bench::{header, kv_row};
use shef_core::shield::area::{component, Resources};

fn row(name: &str, r: Resources, paper_pct: (f64, f64, f64)) {
    kv_row(
        name,
        &format!(
            "BRAM {:>4} ({:.2}% / paper {:.2}%)  LUT {:>5} ({:.2}% / paper {:.2}%)  REG {:>5} ({:.2}% / paper {:.2}%)",
            r.bram,
            r.bram_pct(),
            paper_pct.0,
            r.lut,
            r.lut_pct(),
            paper_pct.1,
            r.reg,
            r.reg_pct(),
            paper_pct.2,
        ),
    );
}

fn main() {
    header("Table 1: Shield component utilization on AWS F1");
    row("Controller", component::CONTROLLER, (0.0, 0.26, 0.03));
    row(
        "Engine Set (base)",
        component::ENGINE_SET_BASE,
        (0.12, 0.12, 0.14),
    );
    row(
        "Reg. Interface",
        component::REG_INTERFACE,
        (0.0, 0.36, 0.11),
    );
    row("AES-4x", component::AES_4X, (0.0, 0.27, 0.13));
    row("AES-16x", component::AES_16X, (0.0, 0.32, 0.13));
    row("HMAC", component::HMAC, (0.0, 0.44, 0.15));
    row("PMAC", component::PMAC, (0.0, 0.28, 0.14));
    kv_row("OCM", "variable (buffers + counters), 382 Mb pool");
    println!();
    println!(
        "device totals used for percentages: {} LUT, {} REG, {} BRAM36",
        shef_core::shield::area::DEVICE_LUTS,
        shef_core::shield::area::DEVICE_REGS,
        shef_core::shield::area::DEVICE_BRAM36,
    );
}
