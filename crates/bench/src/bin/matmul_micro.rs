//! Regenerates the **§6.2.2 matrix-multiply microbenchmark** result:
//! "which yielded similar, but less pronounced, insights (maximum
//! overhead of 1.26x for AES/4x) as matrix multiplication involves more
//! computation per data accessed."

use shef_accel::harness::overhead;
use shef_accel::matmul::MatMul;
use shef_accel::{Accelerator, CryptoProfile};
use shef_bench::{header, overhead_row};

fn main() {
    header("§6.2.2: matrix-multiply microbenchmark");
    let mut max_4x: f64 = 0.0;
    for n in [128usize, 256, 512] {
        let make = move || Box::new(MatMul::new(n, 31)) as Box<dyn Accelerator>;
        let r4 = overhead(&make, &CryptoProfile::AES128_4X).expect("run succeeds");
        let r16 = overhead(&make, &CryptoProfile::AES128_16X).expect("run succeeds");
        assert!(r4.shielded_verified && r16.shielded_verified);
        max_4x = max_4x.max(r4.normalized);
        overhead_row(&format!("{n}x{n} AES-128/4x"), r4.normalized, None);
        overhead_row(&format!("{n}x{n} AES-128/16x"), r16.normalized, None);
    }
    println!();
    overhead_row("maximum AES-128/4x overhead", max_4x, Some(1.26));
    println!("(the paper reports only the maximum; larger matrices hide crypto");
    println!(" behind O(n^3) compute, exactly the paper's arithmetic-intensity point)");
}
