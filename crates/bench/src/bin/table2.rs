//! Regenerates **Table 2**: SDP throughput overhead across Shield
//! designs (1 MB file accesses, 4 KB authentication blocks, two engine
//! sets with 16 KB buffers).
//!
//! Paper row: 298 %, 297 %, 59 %, 20 %, 20 % — the HMAC→PMAC swap and
//! engine scaling are the story; the saturation point at 8×/16× engines
//! marks where crypto stops being the bottleneck.

use shef_accel::harness::overhead;
use shef_accel::sdp::{SdpEngineConfig, SdpStore};
use shef_accel::{Accelerator, CryptoProfile};
use shef_bench::{header, kv_row};

fn main() {
    header("Table 2: SDP performance overhead across Shield designs");
    let paper = [298.0, 297.0, 59.0, 20.0, 20.0];
    for ((label, engines), paper_pct) in SdpEngineConfig::table2_columns().into_iter().zip(paper) {
        let make = move || Box::new(SdpStore::table2_workload(engines, 77)) as Box<dyn Accelerator>;
        let report = overhead(&make, &CryptoProfile::AES128_16X).expect("run succeeds");
        assert!(report.shielded_verified && report.baseline_verified);
        let pct = (report.normalized - 1.0) * 100.0;
        kv_row(
            label,
            &format!("measured={pct:>6.0}%   paper={paper_pct:>4.0}%"),
        );
    }
    println!();
    println!("(overhead = normalized slowdown - 1, as in the paper's Table 2)");

    // Extension beyond the paper: the same workload with this repo's
    // third MAC engine. One GHASH engine sustains what took 4 PMAC
    // engines — the §5.2.2 engine-swap story taken one step further.
    println!();
    header("Extension (not in paper): GHASH/GCM engine on the Table 2 workload");
    for (label, engines) in [
        (
            "4xEng/16x/GCM (1 MAC engine)",
            SdpEngineConfig {
                aes_engines: 4,
                sbox: shef_crypto::aes::SBoxParallelism::X16,
                mac: shef_crypto::authenc::MacAlgorithm::AesGcm,
                mac_engines: 1,
            },
        ),
        (
            "8xEng/16x/GCM (2 MAC engines)",
            SdpEngineConfig {
                aes_engines: 8,
                sbox: shef_crypto::aes::SBoxParallelism::X16,
                mac: shef_crypto::authenc::MacAlgorithm::AesGcm,
                mac_engines: 2,
            },
        ),
    ] {
        let make = move || Box::new(SdpStore::table2_workload(engines, 77)) as Box<dyn Accelerator>;
        let report = overhead(&make, &CryptoProfile::AES128_16X).expect("run succeeds");
        assert!(report.shielded_verified && report.baseline_verified);
        let pct = (report.normalized - 1.0) * 100.0;
        kv_row(label, &format!("measured={pct:>6.0}%   paper=  n/a"));
    }
}
