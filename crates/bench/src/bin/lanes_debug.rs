//! Developer utility: prints the full cost-ledger lane breakdown for a
//! given accelerator/profile, to diagnose what the bottleneck model is
//! charging. Not part of the paper's tables.

use shef_accel::harness::{run_baseline, run_shielded};
use shef_accel::sdp::{SdpEngineConfig, SdpStore};
use shef_accel::CryptoProfile;

fn dump(tag: &str, report: &shef_accel::harness::RunReport) {
    println!(
        "--- {tag}: bottleneck={} serial={:?}",
        report.cycles.0,
        report.ledger.serial()
    );
    let mut lanes: Vec<_> = report.ledger.lanes().collect();
    lanes.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    for (lane, cycles) in lanes.into_iter().take(12) {
        println!("    {lane:<28} {}", cycles.0);
    }
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "sdp2".into());
    match which.as_str() {
        "sdp2" => {
            let engines = SdpEngineConfig::table2_columns()[2].1;
            let mut accel = SdpStore::table2_workload(engines, 77);
            let b = run_baseline(&mut accel).unwrap();
            dump("sdp baseline", &b);
            let mut accel = SdpStore::table2_workload(engines, 77);
            let s = run_shielded(&mut accel, &CryptoProfile::AES128_16X, 42).unwrap();
            dump("sdp 4xPMAC shielded", &s);
        }
        other => {
            // Generic: run any named accelerator family added here later.
            eprintln!("unknown target {other}");
        }
    }
}
