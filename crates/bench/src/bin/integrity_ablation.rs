//! Integrity-scheme ablation: on-chip counters vs Bonsai Merkle Trees.
//!
//! §5.2.2 makes a quantitative claim without a table: "Merkle Trees are
//! expensive for FPGA designs that need to access every tree node from
//! DRAM, unlike CPUs that can benefit from multiple tiers of caches …
//! \[with on-chip counters\] only one extra DRAM access is needed,
//! eliminating excessive off-chip accesses associated with Merkle
//! Trees." This harness implements the Merkle baseline the paper argues
//! against and measures exactly that comparison on a feature-map-like
//! random-access read-modify-write workload.
//!
//! A second sweep exercises the swappable-MAC-engine claim of §5.2.2 by
//! comparing the HMAC, PMAC and GHASH/GCM engines on one streaming
//! region.

use shef_bench::{header, kv_row};
use shef_core::shield::area::engine_set as engine_set_area;
use shef_core::shield::config::{EngineSetConfig, MemRange, RegionConfig};
use shef_core::shield::engine::{AccessMode, EngineSet};
use shef_core::shield::merkle::MerkleConfig;
use shef_core::shield::timing::chunk_crypto_cost;
use shef_core::shield::DataEncryptionKey;
use shef_crypto::authenc::MacAlgorithm;
use shef_fpga::clock::CostLedger;
use shef_fpga::dram::Dram;
use shef_fpga::shell::Shell;

/// Region geometry: 1 MB of feature-map-like state in 64 B chunks — the
/// DNNWeaver feature-map shape of §6.2.4 ("the feature maps cover
/// approximately 1 MB of memory", C_mem = 64 B).
const REGION_LEN: u64 = 1 << 20;
const CHUNK: usize = 64;
const BUFFER: usize = 4 * 1024;
const OPS: usize = 4_000;

struct SchemeResult {
    label: String,
    bottleneck: u64,
    dram_reads: u64,
    dram_writes: u64,
    extra_reads_per_op: f64,
    ocm_kbits: u64,
}

fn region(counters: bool, merkle: Option<MerkleConfig>) -> RegionConfig {
    RegionConfig {
        name: "fmap".into(),
        range: MemRange::new(0, REGION_LEN),
        engine_set: EngineSetConfig {
            chunk_size: CHUNK,
            buffer_bytes: BUFFER,
            counters,
            merkle,
            ..EngineSetConfig::default()
        },
    }
}

/// Random-access read-modify-write trace, deterministic across schemes.
fn addresses() -> Vec<u64> {
    let mut state = 0x243f_6a88_85a3_08d3u64;
    (0..OPS)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 20) % (REGION_LEN - CHUNK as u64)
        })
        .collect()
}

fn run_scheme(label: &str, counters: bool, merkle: Option<MerkleConfig>) -> SchemeResult {
    let region = region(counters, merkle);
    let area = engine_set_area(&region.engine_set, REGION_LEN);
    let dek = DataEncryptionKey::from_bytes([0x17u8; 32]);
    let mut es = EngineSet::new(region, 0, 48 << 20, 56 << 20, &dek);
    let mut shell = Shell::new();
    let mut dram = Dram::new(1 << 30);
    let mut ledger = CostLedger::new();

    // Warm the region with one sequential write pass (provisioning), then
    // reset accounting so only the steady-state RMW trace is measured.
    for chunk_start in (0..REGION_LEN).step_by(CHUNK) {
        es.write(
            &mut shell,
            &mut dram,
            &mut ledger,
            chunk_start,
            &[0u8; CHUNK],
            AccessMode::Streaming,
        )
        .expect("warm-up write");
    }
    es.flush(&mut shell, &mut dram, &mut ledger)
        .expect("warm-up flush");
    dram.reset_accounting();
    let mut ledger = CostLedger::new();

    let mut baseline_reads = 0u64;
    for (i, &addr) in addresses().iter().enumerate() {
        let mut word = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                addr,
                8,
                AccessMode::Streaming,
            )
            .expect("trace read");
        word[0] = word[0].wrapping_add(1);
        es.write(
            &mut shell,
            &mut dram,
            &mut ledger,
            addr,
            &word,
            AccessMode::Streaming,
        )
        .expect("trace write");
        baseline_reads += 1;
        // Periodic flush models the kernel's working-set turnover.
        if i % 512 == 511 {
            es.flush(&mut shell, &mut dram, &mut ledger)
                .expect("periodic flush");
        }
    }
    es.flush(&mut shell, &mut dram, &mut ledger)
        .expect("final flush");

    ledger.merge(dram.ledger());
    let stats = dram.stats();
    // "Extra" reads: DRAM read bursts beyond the one data+tag pair per
    // buffer miss. The MAC-only scheme defines the floor.
    let misses = es.stats().misses;
    SchemeResult {
        label: label.to_owned(),
        bottleneck: ledger.bottleneck().0,
        dram_reads: stats.read_bursts,
        dram_writes: stats.write_bursts,
        extra_reads_per_op: (stats.read_bursts.saturating_sub(misses * 2)) as f64
            / baseline_reads as f64,
        ocm_kbits: area.ocm_bits / 1024,
    }
}

fn integrity_sweep() {
    header(
        "Integrity ablation: replay-protection scheme (1 MB fmap, C=64B, 4 KB buffer, 4k RMW ops)",
    );
    let schemes: Vec<SchemeResult> = vec![
        run_scheme("MAC only (no replay protection)", false, None),
        run_scheme("on-chip counters (ShEF, §5.2.2)", true, None),
        run_scheme(
            "Bonsai MT, arity 8, no node cache",
            false,
            Some(MerkleConfig {
                arity: 8,
                node_cache_bytes: 0,
            }),
        ),
        run_scheme(
            "Bonsai MT, arity 8, 16 KB cache",
            false,
            Some(MerkleConfig {
                arity: 8,
                node_cache_bytes: 16 * 1024,
            }),
        ),
        run_scheme(
            "Bonsai MT, arity 32, no node cache",
            false,
            Some(MerkleConfig {
                arity: 32,
                node_cache_bytes: 0,
            }),
        ),
    ];
    let floor = schemes[0].bottleneck.max(1);
    println!(
        "{:<38} {:>10} {:>9} {:>11} {:>11} {:>10} {:>9}",
        "scheme", "cycles", "slowdown", "rd bursts", "wr bursts", "extra rd/op", "OCM Kb"
    );
    for s in &schemes {
        println!(
            "{:<38} {:>10} {:>8.2}x {:>11} {:>11} {:>10.2} {:>9}",
            s.label,
            s.bottleneck,
            s.bottleneck as f64 / floor as f64,
            s.dram_reads,
            s.dram_writes,
            s.extra_reads_per_op,
            s.ocm_kbits,
        );
    }
    println!();
    kv_row(
        "paper claim (§5.2.2)",
        "counters need 'only one extra DRAM access' vs the tree's per-node walks",
    );
    kv_row(
        "expected shape",
        "counters ≈ MAC-only + OCM; BMT pays node traffic; cache recovers most of it",
    );
    println!();
}

fn mac_engine_sweep() {
    header("MAC-engine ablation: HMAC vs PMAC vs GHASH/GCM (streaming 1 MB, C=4KB)");
    println!(
        "{:<12} {:>14} {:>16} {:>12} {:>10}",
        "engine", "lane cyc/MB", "blk latency", "LUT/engine", "REG/engine"
    );
    for mac in [
        MacAlgorithm::HmacSha256,
        MacAlgorithm::PmacAes,
        MacAlgorithm::AesGcm,
    ] {
        let cfg = EngineSetConfig {
            chunk_size: 4096,
            mac,
            aes_engines: 4,
            mac_engines: 1,
            ..EngineSetConfig::default()
        };
        let chunks = (1u64 << 20) / 4096;
        let cost = chunk_crypto_cost(&cfg, 4096);
        let area = shef_core::shield::area::mac_engine(mac);
        println!(
            "{:<12} {:>14} {:>12} cyc {:>12} {:>10}",
            mac.to_string(),
            cost.lane.0 * chunks,
            cost.latency.0,
            area.lut,
            area.reg,
        );
    }
    println!();
    kv_row(
        "takeaway",
        "GHASH matches PMAC's within-chunk parallelism at a higher per-engine rate",
    );
    kv_row(
        "paper hook (§5.2.2)",
        "'IP Vendors can simply substitute a new cryptographic engine in their place'",
    );
}

fn end_to_end_dnnweaver() {
    use shef_accel::dnnweaver::DnnWeaver;
    use shef_accel::harness::{run_baseline, run_shielded};
    use shef_accel::CryptoProfile;

    header("End-to-end: DNNWeaver feature maps, counters vs Bonsai Merkle Tree");
    let baseline = {
        let mut d = DnnWeaver::new(1, 5);
        run_baseline(&mut d).expect("baseline run")
    };
    let counters = {
        let mut d = DnnWeaver::new(1, 5);
        run_shielded(&mut d, &CryptoProfile::AES128_16X, 8).expect("counters run")
    };
    let merkle = {
        let mut d = DnnWeaver::new(1, 5).with_merkle_fmap();
        run_shielded(&mut d, &CryptoProfile::AES128_16X, 8).expect("merkle run")
    };
    assert!(baseline.outputs_verified && counters.outputs_verified && merkle.outputs_verified);
    let base = baseline.cycles.0.max(1) as f64;
    println!("{:<42} {:>12} {:>9}", "variant", "cycles", "vs base");
    println!(
        "{:<42} {:>12} {:>8.2}x",
        "unshielded baseline", baseline.cycles.0, 1.0
    );
    println!(
        "{:<42} {:>12} {:>8.2}x",
        "on-chip counters (paper config)",
        counters.cycles.0,
        counters.cycles.0 as f64 / base
    );
    println!(
        "{:<42} {:>12} {:>8.2}x",
        "Bonsai MT fmap (arity 8, 16 KB cache)",
        merkle.cycles.0,
        merkle.cycles.0 as f64 / base
    );
    println!();
    kv_row(
        "reading",
        "identical inference results; the tree's node walks land on the fmap lane",
    );
    println!();
}

fn main() {
    integrity_sweep();
    mac_engine_sweep();
    end_to_end_dnnweaver();
}
