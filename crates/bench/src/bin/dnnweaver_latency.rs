//! Regenerates the **Appendix A.6** artifact check: "we observe a
//! latency of 5073 µs for dnnweaver_shield compared to 3054 µs with
//! dnnweaver" — a 1.66× end-to-end inference latency ratio, measured
//! with the full DMA + launch overhead included (unlike Fig. 6's
//! steady-state view).

use shef_accel::dnnweaver::DnnWeaver;
use shef_accel::harness::{run_baseline, run_shielded};
use shef_accel::CryptoProfile;
use shef_bench::{header, kv_row};

fn main() {
    header("Appendix A.6: DNNWeaver LeNet end-to-end latency");
    let mut base = DnnWeaver::new(1, 42);
    let baseline = run_baseline(&mut base).expect("baseline runs");
    let mut shielded_accel = DnnWeaver::new(1, 42);
    let shielded =
        run_shielded(&mut shielded_accel, &CryptoProfile::AES128_16X, 9).expect("shielded runs");
    assert!(baseline.outputs_verified && shielded.outputs_verified);

    kv_row(
        "dnnweaver (baseline)",
        &format!("{:>8.0} µs   paper: 3054 µs", baseline.micros),
    );
    kv_row(
        "dnnweaver_shield",
        &format!("{:>8.0} µs   paper: 5073 µs", shielded.micros),
    );
    kv_row(
        "ratio",
        &format!(
            "{:>8.2}x   paper: {:.2}x",
            shielded.micros / baseline.micros,
            5073.0 / 3054.0
        ),
    );
    println!();
    println!("(absolute µs are simulator-clock values; the paper's are wall-clock on F1 —");
    println!(" the comparable quantity is the ratio)");
}
