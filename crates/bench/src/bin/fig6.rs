//! Regenerates **Figure 6**: normalized execution time of the five
//! evaluation accelerators across Shield configurations
//! (AES-128/16x, AES-256/16x, AES-128/4x, AES-256/4x — plus the
//! AES-128/16x-PMAC variant for DNNWeaver).
//!
//! Paper ranges: Convolution 1.20–1.35×, Digit Recognition 1.85–3.15×,
//! Affine 1.41–2.22×, DNNWeaver 3.20–3.83× (2.31× with PMAC),
//! Bitcoin ≈ 1×.

use shef_accel::affine::AffineTransform;
use shef_accel::bitcoin::Bitcoin;
use shef_accel::conv::{ConvDims, Convolution};
use shef_accel::digitrec::DigitRecognition;
use shef_accel::dnnweaver::DnnWeaver;
use shef_accel::harness::overhead;
use shef_accel::{Accelerator, CryptoProfile};
use shef_bench::{header, overhead_row};

fn sweep(name: &str, make: &dyn Fn() -> Box<dyn Accelerator>, paper: [f64; 4]) {
    println!("--- {name} (STR/RA per paper) ---");
    for ((label, profile), paper_value) in CryptoProfile::fig6_profiles().into_iter().zip(paper) {
        let report = overhead(&make, &profile).expect("run succeeds");
        assert!(
            report.shielded_verified && report.baseline_verified,
            "{name}/{label}: outputs failed verification"
        );
        overhead_row(label, report.normalized, Some(paper_value));
    }
    println!();
}

fn main() {
    header("Figure 6: execution time across Shield configurations");

    sweep(
        "Convolution (batched STR)",
        &|| Box::new(Convolution::new(ConvDims::paper(), 21)) as Box<dyn Accelerator>,
        [1.20, 1.22, 1.30, 1.35],
    );

    sweep(
        "Digit Recognition (STR)",
        &|| Box::new(DigitRecognition::new(8000, 250, 22)) as Box<dyn Accelerator>,
        [1.85, 2.00, 2.90, 3.15],
    );

    sweep(
        "Affine Transformation (RA)",
        &|| Box::new(AffineTransform::paper(23)) as Box<dyn Accelerator>,
        [1.41, 1.55, 2.00, 2.22],
    );

    sweep(
        "DNNWeaver (STR+RA)",
        &|| Box::new(DnnWeaver::new(4, 24)) as Box<dyn Accelerator>,
        [3.20, 3.35, 3.70, 3.83],
    );

    // The §6.2.4 PMAC optimization for DNNWeaver.
    let make_pmac = || Box::new(DnnWeaver::new(4, 24).with_pmac_weights()) as Box<dyn Accelerator>;
    let report = overhead(&make_pmac, &CryptoProfile::AES128_16X_PMAC).expect("run succeeds");
    assert!(report.shielded_verified && report.baseline_verified);
    overhead_row("DNNWeaver AES-128/16x-PMAC", report.normalized, Some(2.31));
    println!();

    sweep(
        "Bitcoin (REG)",
        &|| Box::new(Bitcoin::new(16, 25)) as Box<dyn Accelerator>,
        [1.0, 1.0, 1.0, 1.0],
    );

    println!("(paper values from Fig. 6; every point verified end to end)");
}
