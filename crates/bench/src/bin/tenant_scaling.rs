//! Tenant-scaling sweep of the multi-tenant `ShieldService`, and the
//! second data source for the CI bench gate.
//!
//! Runs a fixed set of workloads through [`run_shielded_service`] at
//! increasing tenant counts on a fixed shard geometry, reporting the
//! *makespan* — the slowest tenant's modelled cycles. Every request
//! crosses admission control and the deterministic min-clock shard
//! arbiter, so the numbers measure the service's scheduling overhead,
//! not wall-clock noise: the baseline for each row is the same
//! workload's single-tenant makespan, and the `overhead` column is the
//! multi-tenant slowdown CI gates on.
//!
//! ```text
//! cargo run --release -p shef-bench --bin tenant_scaling -- \
//!     --tenants 1,2,4 --json BENCH_service.json --telemetry svc.tele.json
//! ```

use shef_accel::dnnweaver::DnnWeaver;
use shef_accel::harness::{run_shielded_service, run_shielded_service_with_telemetry};
use shef_accel::matmul::MatMul;
use shef_accel::vecadd::VectorAdd;
use shef_accel::{Accelerator, CryptoProfile};
use shef_bench::{header, write_bench_json, LaneRecord};
use shef_core::shield::ServiceConfig;
use shef_telemetry::Telemetry;

/// All sweeps replay the same seed so the report is byte-stable.
const SEED: u64 = 42;
/// Fixed shard geometry: two shards of two lanes. Tenants round-robin
/// across shards, so 1 tenant occupies one shard, 4 tenants two each.
const SHARDS: usize = 2;
const LANES_PER_SHARD: usize = 2;

struct Workload {
    name: &'static str,
    profile_name: &'static str,
    profile: CryptoProfile,
    make: Box<dyn Fn() -> Box<dyn Accelerator>>,
}

/// The sweep's workload set: the same crypto-bound mix as the
/// lane-scaling gate, sized down so the full tenant sweep stays fast.
fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "svc_vecadd_64k",
            profile_name: "aes128_4x",
            profile: CryptoProfile::AES128_4X,
            make: Box::new(|| Box::new(VectorAdd::new(64 * 1024, 1))),
        },
        Workload {
            name: "svc_matmul_32",
            profile_name: "aes128_4x",
            profile: CryptoProfile::AES128_4X,
            make: Box::new(|| Box::new(MatMul::new(32, 3))),
        },
        Workload {
            name: "svc_dnnweaver_b1",
            profile_name: "aes256_4x",
            profile: CryptoProfile::AES256_4X,
            make: Box::new(|| Box::new(DnnWeaver::new(1, 5))),
        },
    ]
}

fn parse_args() -> (Vec<usize>, Option<String>, Option<String>) {
    let mut tenants = vec![1usize, 2, 4];
    let mut json = None;
    let mut telemetry = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tenants" => {
                let spec = args
                    .next()
                    .expect("--tenants needs a comma-separated list");
                tenants = spec
                    .split(',')
                    .map(|s| {
                        let n: usize = s.trim().parse().expect("tenant counts must be integers");
                        assert!(n >= 1, "tenant counts must be >= 1");
                        n
                    })
                    .collect();
                assert!(!tenants.is_empty(), "--tenants list is empty");
            }
            "--json" => json = Some(args.next().expect("--json needs a path")),
            "--telemetry" => telemetry = Some(args.next().expect("--telemetry needs a path")),
            other => panic!(
                "unknown argument {other} (expected --tenants LIST, --json PATH or --telemetry PATH)"
            ),
        }
    }
    (tenants, json, telemetry)
}

fn main() {
    let (tenant_counts, json_path, telemetry_path) = parse_args();
    let telemetry = Telemetry::new();
    let config = ServiceConfig {
        shards: SHARDS,
        lanes_per_shard: LANES_PER_SHARD,
        queue_capacity: 64,
        tenant_quota: 32,
    };
    let mut records = Vec::new();

    header("Tenant scaling: multi-tenant Shield service (modelled makespan, deterministic)");
    println!(
        "geometry: {SHARDS} shards x {LANES_PER_SHARD} lanes, seed {SEED}; \
         overhead = makespan vs the same workload single-tenant"
    );
    println!();
    for w in workloads() {
        println!("{} [{}]", w.name, w.profile_name);
        let mut solo_makespan = None;
        for &tenants in &tenant_counts {
            let report = if telemetry_path.is_some() {
                run_shielded_service_with_telemetry(
                    &w.make, &w.profile, SEED, tenants, &config, &telemetry,
                )
            } else {
                run_shielded_service(&w.make, &w.profile, SEED, tenants, &config)
            }
            .unwrap_or_else(|e| panic!("{} at {tenants} tenants failed: {e}", w.name));
            assert!(
                report.all_verified(),
                "{} at {tenants} tenants produced wrong outputs",
                w.name
            );
            assert_eq!(
                report.admitted, report.completed,
                "{} at {tenants} tenants lost an admitted request",
                w.name
            );
            let makespan = report.makespan().0;
            let solo = *solo_makespan.get_or_insert_with(|| {
                if tenants == 1 {
                    makespan
                } else {
                    // The sweep didn't start at 1 tenant; measure the
                    // solo baseline separately so overhead stays
                    // comparable across --tenants lists.
                    run_shielded_service(&w.make, &w.profile, SEED, 1, &config)
                        .unwrap_or_else(|e| panic!("{} solo baseline failed: {e}", w.name))
                        .makespan()
                        .0
                }
            });
            println!(
                "    tenants={tenants:<2}  makespan={makespan:>12} cyc  slowdown={:>5.2}x",
                makespan as f64 / solo.max(1) as f64,
            );
            records.push(LaneRecord {
                workload: format!("{}_t{tenants}", w.name),
                profile: w.profile_name.into(),
                lanes: LANES_PER_SHARD,
                baseline_cycles: solo,
                shield_cycles: makespan,
            });
        }
        println!();
    }

    if let Some(path) = json_path {
        write_bench_json(&path, &records).expect("failed to write bench JSON");
        println!("wrote {} records to {path}", records.len());
    }
    if let Some(path) = telemetry_path {
        let report = telemetry.report();
        std::fs::write(&path, report.to_json()).expect("failed to write telemetry report");
        println!("{}", report.summary_table());
        println!("wrote telemetry report to {path}");
    }
}
