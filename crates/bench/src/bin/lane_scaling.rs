//! Lane-scaling sweep of the parallel Shield datapath, and the data
//! source for the CI bench gate.
//!
//! Runs a fixed set of shield-bound workloads through the serial and
//! multi-lane datapaths, reporting the *modelled* cycle counts from the
//! bottleneck cost model. Everything printed here is deterministic —
//! round-robin job dispatch, no wall-clock — which is what lets CI gate
//! on the numbers instead of treating them as noise.
//!
//! ```text
//! cargo run --release -p shef-bench --bin lane_scaling -- \
//!     --lanes 1,2,4,8 --json BENCH_ci.json --telemetry lanes.tele.json
//! ```
//!
//! `--telemetry PATH` accumulates every shielded run of the sweep into
//! one shared [`shef_telemetry::Telemetry`] registry and writes the
//! line-JSON report (schema `shef-telemetry/v1`) to PATH — the artifact
//! the `telemetry-report` CI job checks with `scripts/check_report.sh`.

use shef_accel::dnnweaver::DnnWeaver;
use shef_accel::harness::{overhead_parallel, overhead_parallel_with_telemetry};
use shef_accel::matmul::MatMul;
use shef_accel::vecadd::VectorAdd;
use shef_accel::{Accelerator, CryptoProfile};
use shef_bench::{header, write_bench_json, LaneRecord};
use shef_telemetry::Telemetry;

struct Workload {
    name: &'static str,
    profile_name: &'static str,
    profile: CryptoProfile,
    make: Box<dyn Fn() -> Box<dyn Accelerator>>,
}

/// The gate's workload set. Intentionally crypto-bound (4× S-box
/// profiles): that is where the engine-set lane is the bottleneck and a
/// datapath regression actually moves the end-to-end number.
fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "vecadd_256k",
            profile_name: "aes128_4x",
            profile: CryptoProfile::AES128_4X,
            make: Box::new(|| Box::new(VectorAdd::new(256 * 1024, 1))),
        },
        Workload {
            name: "matmul_64",
            profile_name: "aes128_4x",
            profile: CryptoProfile::AES128_4X,
            make: Box::new(|| Box::new(MatMul::new(64, 3))),
        },
        Workload {
            name: "dnnweaver_b1",
            profile_name: "aes256_4x",
            profile: CryptoProfile::AES256_4X,
            make: Box::new(|| Box::new(DnnWeaver::new(1, 5))),
        },
    ]
}

fn parse_args() -> (Vec<usize>, Option<String>, Option<String>) {
    let mut lanes = vec![1usize, 2, 4, 8];
    let mut json = None;
    let mut telemetry = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--lanes" => {
                let spec = args.next().expect("--lanes needs a comma-separated list");
                lanes = spec
                    .split(',')
                    .map(|s| {
                        let n: usize = s.trim().parse().expect("lane counts must be integers");
                        assert!(n >= 1, "lane counts must be >= 1");
                        n
                    })
                    .collect();
                assert!(!lanes.is_empty(), "--lanes list is empty");
            }
            "--json" => json = Some(args.next().expect("--json needs a path")),
            "--telemetry" => telemetry = Some(args.next().expect("--telemetry needs a path")),
            other => panic!(
                "unknown argument {other} (expected --lanes LIST, --json PATH or --telemetry PATH)"
            ),
        }
    }
    (lanes, json, telemetry)
}

fn main() {
    let (lane_counts, json_path, telemetry_path) = parse_args();
    let telemetry = Telemetry::new();
    let mut records = Vec::new();

    header("Lane scaling: parallel Shield datapath (modelled cycles, deterministic)");
    for w in workloads() {
        println!("{} [{}]", w.name, w.profile_name);
        let mut one_lane_cycles = None;
        for &lanes in &lane_counts {
            let report = if telemetry_path.is_some() {
                overhead_parallel_with_telemetry(&w.make, &w.profile, lanes, &telemetry)
            } else {
                overhead_parallel(&w.make, &w.profile, lanes)
            }
            .unwrap_or_else(|e| panic!("{} at {lanes} lanes failed: {e}", w.name));
            assert!(
                report.baseline_verified && report.shielded_verified,
                "{} at {lanes} lanes produced wrong outputs",
                w.name
            );
            let shield = report.shielded_cycles.0;
            if lanes == 1 {
                one_lane_cycles = Some(shield);
            }
            let speedup = one_lane_cycles.map(|c| c as f64 / shield as f64);
            println!(
                "    lanes={lanes:<2}  shield={shield:>12} cyc  overhead={:>5.2}x  speedup={}",
                report.normalized,
                speedup.map_or("    n/a".into(), |s| format!("{s:>5.2}x")),
            );
            records.push(LaneRecord {
                workload: w.name.into(),
                profile: w.profile_name.into(),
                lanes,
                baseline_cycles: report.baseline_cycles.0,
                shield_cycles: shield,
            });
        }
        println!();
    }

    if let Some(path) = json_path {
        write_bench_json(&path, &records).expect("failed to write bench JSON");
        println!("wrote {} records to {path}", records.len());
    }
    if let Some(path) = telemetry_path {
        let report = telemetry.report();
        std::fs::write(&path, report.to_json()).expect("failed to write telemetry report");
        println!("{}", report.summary_table());
        println!("wrote telemetry report to {path}");
    }
}
