//! Regenerates **Figure 5**: vector-add throughput overhead vs input
//! vector size for two Shield configurations (AES/4x and AES/16x).
//!
//! Paper shape: near 1× for small vectors (initialization-dominated),
//! rising with size; AES/16x stays below ~1.5×, AES/4x climbs toward
//! ~3.5× once the engines bound throughput.
//!
//! The paper sweeps 8 KB – 80 MB; we sweep 8 KB – 8 MB (the curve has
//! plateaued by 8 MB; larger points only add simulation time — the
//! functional simulator really encrypts every byte).

use shef_accel::harness::overhead;
use shef_accel::vecadd::VectorAdd;
use shef_accel::{Accelerator, CryptoProfile};
use shef_bench::{header, overhead_row};

fn main() {
    header("Figure 5: vector add normalized execution time vs vector size");
    let sizes_kb = [8usize, 80, 800, 8000];
    // Paper curve references (approximate, read off Fig. 5).
    let paper_4x = [1.1, 1.6, 3.0, 3.5];
    let paper_16x = [1.0, 1.1, 1.3, 1.4];

    println!("--- AES-128/4x ---");
    for (i, kb) in sizes_kb.iter().enumerate() {
        let bytes = kb * 1024;
        let make = move || Box::new(VectorAdd::new(bytes, 11)) as Box<dyn Accelerator>;
        let report = overhead(&make, &CryptoProfile::AES128_4X).expect("run succeeds");
        assert!(report.shielded_verified && report.baseline_verified);
        overhead_row(&format!("{kb} KB"), report.normalized, Some(paper_4x[i]));
    }
    println!();
    println!("--- AES-128/16x ---");
    for (i, kb) in sizes_kb.iter().enumerate() {
        let bytes = kb * 1024;
        let make = move || Box::new(VectorAdd::new(bytes, 11)) as Box<dyn Accelerator>;
        let report = overhead(&make, &CryptoProfile::AES128_16X).expect("run succeeds");
        assert!(report.shielded_verified && report.baseline_verified);
        overhead_row(&format!("{kb} KB"), report.normalized, Some(paper_16x[i]));
    }
    println!();
    println!("(paper values read off Fig. 5; workload verified end to end each point)");
}
