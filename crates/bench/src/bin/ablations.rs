//! Ablation studies for the Shield's design knobs (§5.2.1–5.2.2).
//!
//! The paper argues each knob matters; these sweeps quantify them in
//! isolation on the simulator:
//!
//! 1. **Chunk size** `C_mem` — small chunks waste tag bandwidth and MAC
//!    bubbles, huge chunks over-fetch for sparse access ("it is
//!    important to correctly size the chunk granularity").
//! 2. **Buffer capacity** — the cache that makes random access viable.
//! 3. **Freshness counters** — what replay protection costs.
//! 4. **Controlled-channel mitigation** — larger chunks shrink the
//!    observable address alphabet (§5.2 "Side Channels").

use shef_bench::{header, kv_row};

fn main() {
    chunk_size_sweep();
    buffer_sweep();
    counter_cost();
    controlled_channel();
    oram_over_shield();
    lane_sweep();
}

fn chunk_size_sweep() {
    use shef_core::shield::timing::chunk_crypto_cost;
    use shef_core::shield::EngineSetConfig;

    header("Ablation 1: chunk size C_mem (streaming 1 MB through one engine set)");
    println!(
        "{:<12} {:>16} {:>16} {:>14}",
        "C_mem", "lane cyc/MB", "tag overhead", "blk latency"
    );
    for chunk in [64usize, 128, 256, 512, 1024, 4096, 16384] {
        let cfg = EngineSetConfig {
            chunk_size: chunk,
            ..EngineSetConfig::default()
        };
        let chunks = (1 << 20) / chunk as u64;
        let cost = chunk_crypto_cost(&cfg, chunk);
        let lane_total = cost.lane.0 * chunks;
        let tag_pct = 16.0 / chunk as f64 * 100.0;
        println!(
            "{:<12} {:>16} {:>15.1}% {:>11} cyc",
            format!("{chunk} B"),
            lane_total,
            tag_pct,
            cost.latency.0
        );
    }
    println!();
    println!("small chunks pay per-chunk bubbles + 25% tag traffic at 64 B;");
    println!("large chunks amortize both but raise per-chunk blocking latency");
    println!("(the DNNWeaver trade-off) and over-fetch for sparse access.");
    println!();
}

fn buffer_sweep() {
    use shef_accel::affine::AffineTransform;
    use shef_accel::harness::run_shielded;
    use shef_accel::CryptoProfile;

    header("Ablation 2: on-chip buffer capacity (affine transform hit rate)");
    // The affine kernel's Shield uses 4 KB per input set by default; vary
    // it by monkey-patching the config through a custom accel is complex,
    // so report hits/misses at the default and rely on the engine stats.
    let mut accel = AffineTransform::new(256, 1);
    let report = run_shielded(&mut accel, &CryptoProfile::AES128_16X, 5).unwrap();
    assert!(report.outputs_verified);
    let (hits, misses): (u64, u64) = report
        .engine_stats
        .iter()
        .filter(|(name, _)| name.starts_with("img-in"))
        .fold((0, 0), |(h, m), (_, s)| (h + s.hits, m + s.misses));
    kv_row(
        "input sets (4 KB buffers)",
        &format!(
            "{hits} hits / {misses} misses ({:.1}% hit rate)",
            hits as f64 / (hits + misses) as f64 * 100.0
        ),
    );
    println!();
    println!("without the buffer every 4-byte gather would be a full 64 B chunk");
    println!("fill + MAC verify; the buffer turns spatial locality into hits.");
    println!();
}

fn counter_cost() {
    use shef_core::shield::area::{counter_bits, engine_set};
    use shef_core::shield::EngineSetConfig;

    header("Ablation 3: freshness counters (replay protection) cost");
    for (chunk, region_mb) in [(64usize, 1u64), (512, 1), (4096, 1)] {
        let mut with = EngineSetConfig {
            chunk_size: chunk,
            counters: true,
            ..EngineSetConfig::default()
        };
        with.buffer_bytes = 0;
        let without = EngineSetConfig {
            counters: false,
            ..with.clone()
        };
        let region_len = region_mb << 20;
        let a_with = engine_set(&with, region_len);
        let a_without = engine_set(&without, region_len);
        let chunks = region_len.div_ceil(chunk as u64);
        kv_row(
            &format!("C={chunk}B over {region_mb}MB"),
            &format!(
                "{} counters, {} Kb OCM ({} Kb without) — storage-only cost",
                chunks,
                a_with.ocm_bits / 1024,
                a_without.ocm_bits / 1024
            ),
        );
        let _ = counter_bits(chunks);
    }
    println!();
    println!("counters cost on-chip storage only (one extra DRAM access already");
    println!("happens for the tag); the paper's 'simpler and more efficient");
    println!("alternative' to Merkle trees. Disable them for write-once regions.");
    println!();
}

fn controlled_channel() {
    use shef_core::sidechannel::access_granularity_analysis;

    header("Ablation 4: controlled-channel mitigation via C_mem (§5.2)");
    // A data-dependent lookup trace (e.g. a table walk keyed on secrets).
    let trace: Vec<u64> = (0..256u64).map(|i| (i * 1009) % 65536).collect();
    for report in access_granularity_analysis(&trace, &[64, 512, 4096, 65536]) {
        kv_row(
            &format!("C_mem = {} B", report.chunk_size),
            &format!(
                "{} observable addresses from {} secret-dependent accesses",
                report.observable_addresses, report.accesses
            ),
        );
    }
    println!();
    println!("larger chunks collapse the adversary-visible address alphabet —");
    println!("the paper's trade of bandwidth for controlled-channel resistance.");
    println!();
}

fn oram_over_shield() {
    use shef_core::oram::PathOram;
    use shef_core::shield::bus::ShieldedBus;
    use shef_core::shield::{
        AccessMode, DataEncryptionKey, EngineSetConfig, MemRange, Shield, ShieldConfig,
    };
    use shef_crypto::drbg::HmacDrbg;
    use shef_crypto::ecies::EciesKeyPair;
    use shef_fpga::clock::CostLedger;
    use shef_fpga::dram::Dram;
    use shef_fpga::shell::Shell;

    header(
        "Ablation 5: Path ORAM over the Shield (§5.2 'simply added … on top of Shield engines')",
    );

    const N_BLOCKS: u64 = 256;
    const BLOCK: usize = 64;
    const ACCESSES: usize = 512;
    let tree_bytes = PathOram::tree_bytes(N_BLOCKS, BLOCK);

    // One Shield region sized for the ORAM tree, counters on (the tree
    // is read-write by construction).
    let config = ShieldConfig::builder()
        .region(
            "oram-tree",
            MemRange::new(0, tree_bytes.next_multiple_of(512)),
            EngineSetConfig {
                chunk_size: 512,
                buffer_bytes: 16 * 1024,
                counters: true,
                ..EngineSetConfig::default()
            },
        )
        .build()
        .expect("oram shield config");
    let mut shield = Shield::new(config, EciesKeyPair::from_seed(b"oram-ablation")).unwrap();
    let dek = DataEncryptionKey::from_bytes([0x3cu8; 32]);
    shield
        .provision_load_key(&dek.to_load_key(&shield.public_key()))
        .unwrap();
    let mut shell = Shell::new();
    let mut dram = Dram::f1_default();
    let mut ledger = CostLedger::new();

    // Provision the region (write-once pass), then measure.
    let region_len = shield.config().regions[0].range.len;
    {
        use shef_core::shield::bus::MemoryBus;
        let mut bus = ShieldedBus {
            shield: &mut shield,
            shell: &mut shell,
            dram: &mut dram,
            ledger: &mut ledger,
        };
        bus.write(0, &vec![0u8; region_len as usize], AccessMode::Streaming)
            .expect("provision");
        bus.flush().expect("provision flush");
    }
    dram.reset_accounting();
    let mut ledger = CostLedger::new();

    // Baseline: the same logical accesses straight through the Shield
    // (confidential + integral, but address-visible).
    let mut rng = HmacDrbg::from_seed(b"oram-trace");
    let ids: Vec<u64> = (0..ACCESSES).map(|_| rng.next_u64() % N_BLOCKS).collect();
    {
        use shef_core::shield::bus::MemoryBus;
        let mut bus = ShieldedBus {
            shield: &mut shield,
            shell: &mut shell,
            dram: &mut dram,
            ledger: &mut ledger,
        };
        for &id in &ids {
            let _ = bus
                .read(id * BLOCK as u64, BLOCK, AccessMode::Streaming)
                .expect("baseline read");
        }
    }
    let direct_cycles = ledger.bottleneck().0;

    // ORAM: every access becomes one root-to-leaf path read + writeback.
    let mut ledger_oram = CostLedger::new();
    dram.reset_accounting();
    {
        let mut bus = ShieldedBus {
            shield: &mut shield,
            shell: &mut shell,
            dram: &mut dram,
            ledger: &mut ledger_oram,
        };
        let mut oram =
            PathOram::format(&mut bus, 0, N_BLOCKS, BLOCK, b"oram-ablation").expect("format");
        for &id in &ids {
            let _ = oram.read(&mut bus, id).expect("oram read");
        }
        kv_row(
            "stash occupancy after run",
            &format!("{} blocks", oram.stash_len()),
        );
    }
    let oram_cycles = ledger_oram.bottleneck().0;

    kv_row(
        "direct shielded reads",
        &format!("{direct_cycles} cycles for {ACCESSES} × {BLOCK} B"),
    );
    kv_row(
        "Path ORAM reads",
        &format!(
            "{oram_cycles} cycles ({:.1}x) — tree of {} buckets, {} levels touched/access",
            oram_cycles as f64 / direct_cycles.max(1) as f64,
            tree_bytes / (BLOCK + 8) as u64 / 4,
            (64 - (N_BLOCKS.leading_zeros() as u64)),
        ),
    );
    println!();
    println!("ORAM multiplies bandwidth by the path length but leaves the Shield");
    println!("unchanged — address-metadata hiding composes as a bus-level module,");
    println!("exactly the extension path §5.2 describes.");
}

fn lane_sweep() {
    use shef_accel::harness::overhead_parallel;
    use shef_accel::vecadd::VectorAdd;
    use shef_accel::{Accelerator, CryptoProfile};

    header("Ablation 6: engine-set lane fan-out (parallel datapath)");
    // Under-provisioned crypto (4x S-box) on a streaming workload: the
    // engine set is the bottleneck lane, so fanning chunk crypto across
    // worker lanes should walk the overhead back toward 1x until the
    // memory system becomes the bottleneck instead.
    let make = || Box::new(VectorAdd::new(256 * 1024, 1)) as Box<dyn Accelerator>;
    let mut prev: Option<u64> = None;
    for lanes in [1usize, 2, 4, 8] {
        let report = overhead_parallel(&make, &CryptoProfile::AES128_4X, lanes).unwrap();
        assert!(
            report.shielded_verified,
            "lane sweep produced wrong outputs"
        );
        let cycles = report.shielded_cycles.0;
        if let Some(p) = prev {
            assert!(cycles <= p, "adding lanes must never slow the model down");
        }
        prev = Some(cycles);
        kv_row(
            &format!("{lanes} lane(s)"),
            &format!("{cycles} cycles, {:.2}x over baseline", report.normalized),
        );
    }
    println!();
    println!("lanes only help while crypto is the bottleneck; the curve flattens");
    println!("once DMA/DRAM dominates — the same saturation Fig. 6 shows when");
    println!("moving from 4x to 16x S-box provisioning.");
}
