//! Regenerates **Table 3**: inclusive resource utilization on AWS F1 for
//! the largest Shield configuration of each accelerator.
//!
//! Paper row (BRAM / LUT / REG %): Convolution 2.9/11/5.2,
//! Digit Rec. 0.71/3.3/1.4, Affine 2.1/11/5.2, DNNWeaver 3.1/7.1/3.5,
//! Bitcoin 0/1.4/0.42.

use shef_accel::affine::AffineTransform;
use shef_accel::bitcoin::Bitcoin;
use shef_accel::conv::{ConvDims, Convolution};
use shef_accel::digitrec::DigitRecognition;
use shef_accel::dnnweaver::DnnWeaver;
use shef_accel::{Accelerator, CryptoProfile};
use shef_bench::{header, kv_row};
use shef_core::shield::area::shield_area;

fn row(name: &str, accel: &dyn Accelerator, paper: (f64, f64, f64)) {
    // "Largest Shield configuration" = AES-16x engines everywhere.
    let cfg = accel.shield_config(&CryptoProfile::AES128_16X);
    let r = shield_area(&cfg);
    kv_row(
        name,
        &format!(
            "BRAM {:>5.2}% (paper {:>4.2}%)  LUT {:>5.2}% (paper {:>4.1}%)  REG {:>5.2}% (paper {:>4.2}%)",
            r.bram_pct(),
            paper.0,
            r.lut_pct(),
            paper.1,
            r.reg_pct(),
            paper.2,
        ),
    );
}

fn main() {
    header("Table 3: inclusive Shield utilization per accelerator (largest config)");
    row(
        "Convolution",
        &Convolution::new(ConvDims::paper(), 0),
        (2.9, 11.0, 5.2),
    );
    row(
        "Digit Recognition",
        &DigitRecognition::new(2016, 100, 0),
        (0.71, 3.3, 1.4),
    );
    row("Affine", &AffineTransform::paper(0), (2.1, 11.0, 5.2));
    row("DNNWeaver", &DnnWeaver::new(1, 0), (3.1, 7.1, 3.5));
    row("Bitcoin", &Bitcoin::new(16, 0), (0.0, 1.4, 0.42));
    println!();
    println!("(percentages of 894k LUT / 1.79M REG / 1680 BRAM36 as in Table 1)");
}
