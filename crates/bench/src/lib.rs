//! Shared reporting helpers for the table/figure regenerators.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (§6), printing `measured` next to `paper` so the
//! comparison in EXPERIMENTS.md is mechanical. Run them with
//! `cargo run --release -p shef-bench --bin <name>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Prints a section header.
pub fn header(title: &str) {
    println!();
    println!("=== {title} ===");
    println!();
}

/// Prints one measured-vs-paper row for a normalized overhead.
pub fn overhead_row(label: &str, measured: f64, paper: Option<f64>) {
    match paper {
        Some(p) => println!("{label:<32} measured={measured:>6.2}x   paper={p:>6.2}x"),
        None => println!("{label:<32} measured={measured:>6.2}x   paper=   n/a"),
    }
}

/// Prints one measured-vs-paper row for a percentage.
pub fn percent_row(label: &str, measured: f64, paper: Option<f64>) {
    match paper {
        Some(p) => println!("{label:<32} measured={measured:>6.2}%   paper={p:>6.2}%"),
        None => println!("{label:<32} measured={measured:>6.2}%   paper=   n/a"),
    }
}

/// Prints a free-form key/value row.
pub fn kv_row(label: &str, value: &str) {
    println!("{label:<32} {value}");
}

/// Formats cycles as microseconds at the F1 clock.
#[must_use]
pub fn cycles_to_us(cycles: shef_fpga::clock::Cycles) -> f64 {
    shef_fpga::clock::ClockDomain::F1_DEFAULT.cycles_to_us(cycles)
}

#[cfg(test)]
mod tests {
    #[test]
    fn cycles_to_us_at_250mhz() {
        assert_eq!(super::cycles_to_us(shef_fpga::clock::Cycles(250)), 1.0);
    }
}
