//! Shared reporting helpers for the table/figure regenerators.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (§6), printing `measured` next to `paper` so the
//! comparison in EXPERIMENTS.md is mechanical. Run them with
//! `cargo run --release -p shef-bench --bin <name>`.
//!
//! This library crate only holds the formatting shared by those
//! binaries — section headers and measured-vs-paper rows:
//!
//! ```
//! shef_bench::header("Fig. 5 — vecadd overhead");
//! shef_bench::overhead_row("AES128_16X", 1.18, Some(1.2));
//! shef_bench::overhead_row("unvalidated point", 2.41, None);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Prints a section header.
pub fn header(title: &str) {
    println!();
    println!("=== {title} ===");
    println!();
}

/// Prints one measured-vs-paper row for a normalized overhead.
pub fn overhead_row(label: &str, measured: f64, paper: Option<f64>) {
    match paper {
        Some(p) => println!("{label:<32} measured={measured:>6.2}x   paper={p:>6.2}x"),
        None => println!("{label:<32} measured={measured:>6.2}x   paper=   n/a"),
    }
}

/// Prints one measured-vs-paper row for a percentage.
pub fn percent_row(label: &str, measured: f64, paper: Option<f64>) {
    match paper {
        Some(p) => println!("{label:<32} measured={measured:>6.2}%   paper={p:>6.2}%"),
        None => println!("{label:<32} measured={measured:>6.2}%   paper=   n/a"),
    }
}

/// Prints a free-form key/value row.
pub fn kv_row(label: &str, value: &str) {
    println!("{label:<32} {value}");
}

/// Formats cycles as microseconds at the F1 clock.
#[must_use]
pub fn cycles_to_us(cycles: shef_fpga::clock::Cycles) -> f64 {
    shef_fpga::clock::ClockDomain::F1_DEFAULT.cycles_to_us(cycles)
}

/// One `BENCH_*.json` measurement: the modelled (deterministic) cycle
/// counts for a workload at a given lane fan-out. The CI bench gate
/// diffs these records across commits, so the numbers must come from
/// the cost model, never wall-clock.
#[derive(Debug, Clone)]
pub struct LaneRecord {
    /// Workload label (stable across commits; the diff join key).
    pub workload: String,
    /// Crypto profile label.
    pub profile: String,
    /// Worker-pool lanes (1 = the serial datapath's charge).
    pub lanes: usize,
    /// Insecure-baseline modelled cycles.
    pub baseline_cycles: u64,
    /// Shielded modelled cycles at this lane count.
    pub shield_cycles: u64,
}

impl LaneRecord {
    /// Shielded / baseline overhead ratio.
    #[must_use]
    pub fn overhead(&self) -> f64 {
        self.shield_cycles as f64 / self.baseline_cycles.max(1) as f64
    }

    /// Serializes as a single JSON object on one line (the bench-diff
    /// script is line-oriented awk; keep it that way).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"workload\": \"{}\", \"profile\": \"{}\", \"lanes\": {}, \"baseline_cycles\": {}, \"shield_cycles\": {}, \"overhead\": {:.4}}}",
            self.workload, self.profile, self.lanes, self.baseline_cycles, self.shield_cycles,
            self.overhead()
        )
    }
}

/// Writes a `BENCH_*.json` report: a schema header plus one record per
/// line, so shell tooling can diff it without a JSON parser.
///
/// # Errors
///
/// Propagates I/O errors from creating or writing `path`.
pub fn write_bench_json(path: &str, records: &[LaneRecord]) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{\"schema\": \"shef-bench-lanes/v1\", \"records\": [")?;
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        writeln!(f, "{}{}", r.to_json_line(), sep)?;
    }
    writeln!(f, "]}}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::LaneRecord;

    #[test]
    fn cycles_to_us_at_250mhz() {
        assert_eq!(super::cycles_to_us(shef_fpga::clock::Cycles(250)), 1.0);
    }

    #[test]
    fn lane_record_json_is_one_line() {
        let r = LaneRecord {
            workload: "vecadd_256k".into(),
            profile: "aes128_4x".into(),
            lanes: 4,
            baseline_cycles: 1000,
            shield_cycles: 1500,
        };
        let line = r.to_json_line();
        assert!(!line.contains('\n'));
        assert!(line.contains("\"lanes\": 4"));
        assert!(line.contains("\"overhead\": 1.5000"));
    }
}
