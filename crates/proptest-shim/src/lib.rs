//! A vendored, deterministic, API-compatible subset of the `proptest`
//! crate.
//!
//! This workspace builds fully offline (the container image has no
//! crates-io access), so the real `proptest` cannot be fetched. The
//! property tests are written against the standard proptest surface —
//! `proptest!`, `prop_oneof!`, `Just`, `any`, range and collection
//! strategies, `prop_map`, `prop_assert*`, `prop_assume!`,
//! `ProptestConfig::with_cases` — and this shim implements exactly that
//! subset, so the tests compile unchanged against the real crate if it
//! is ever substituted back via `[workspace.dependencies]`.
//!
//! Unlike the real proptest there is no shrinking: a failing case
//! reports the property name, the case number, and the assertion
//! message. Generation is fully deterministic (a fixed seed mixed with
//! the property name and case index), so failures reproduce exactly
//! across runs and machines:
//!
//! ```
//! use proptest::prelude::*;
//!
//! let even = (0u32..100).prop_map(|x| x * 2);
//! let mut rng = TestRng::from_seed(7);
//! assert_eq!(even.sample(&mut rng) % 2, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Deterministic splitmix64 generator driving all value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Error type threaded out of a property body by the `prop_assert*`
/// and `prop_assume!` macros.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property does not hold; carries the assertion message.
    Fail(String),
    /// The generated inputs were rejected by `prop_assume!`.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value from the strategy.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample(rng)
    }
}

/// A strategy that always yields a clone of its payload.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A uniform choice between type-erased strategies; built by
/// [`prop_oneof!`].
pub struct Union<V> {
    variants: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over the given variants (at least one).
    #[must_use]
    pub fn new(variants: Vec<BoxedStrategy<V>>) -> Self {
        assert!(
            !variants.is_empty(),
            "prop_oneof! needs at least one variant"
        );
        Union { variants }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = (rng.next_u64() as usize) % self.variants.len();
        self.variants[idx].sample(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}
impl_arbitrary_tuple!(A);
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                (self.start as u128 + u128::from(rng.next_u64()) % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128) - (start as u128) + 1;
                (start as u128 + u128::from(rng.next_u64()) % span) as $t
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX as u128) - (self.start as u128) + 1;
                (self.start as u128 + u128::from(rng.next_u64()) % span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident => $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A => 0);
impl_tuple_strategy!(A => 0, B => 1);
impl_tuple_strategy!(A => 0, B => 1, C => 2);
impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// A strategy for `Vec`s with element strategy `S` and a length
    /// drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Hashes a property name into a base seed, so every property draws an
/// independent deterministic stream.
#[must_use]
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Declares property tests. Supports the standard proptest forms:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn my_prop(x in 0u32..10, v in proptest::collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                let mut __case: u32 = 0;
                let mut __rejects: u32 = 0;
                while __case < __config.cases {
                    let __stream = u64::from(__case) + (u64::from(__rejects) << 32);
                    let mut __rng = $crate::TestRng::from_seed(
                        __seed ^ __stream.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $( let $pat = $crate::Strategy::sample(&($strat), &mut __rng); )*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        Ok(()) => __case += 1,
                        Err($crate::TestCaseError::Reject) => {
                            __rejects += 1;
                            assert!(
                                __rejects < __config.cases.saturating_mul(64).max(1024),
                                "proptest-shim: {} rejected too many cases (prop_assume too strict)",
                                stringify!($name),
                            );
                        }
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest-shim: property {} failed at case {}: {}",
                                stringify!($name), __case, msg,
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Builds a strategy choosing uniformly between the given strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts a condition inside a property, failing the case (not
/// panicking) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond),
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r,
            )));
        }
    }};
}

/// Asserts two values are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
            )));
        }
    }};
}

/// Rejects the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism() {
        let mut a = TestRng::from_seed(42);
        let mut b = TestRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            let x = Strategy::sample(&(10u32..20), &mut rng);
            assert!((10..20).contains(&x));
            let y = Strategy::sample(&(1u8..=255), &mut rng);
            assert!(y >= 1);
            let z = Strategy::sample(&(1u64..), &mut rng);
            assert!(z >= 1);
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..200 {
            let v = Strategy::sample(&crate::collection::vec(any::<u8>(), 3..9), &mut rng);
            assert!((3..9).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_end_to_end(x in 0u32..100, v in crate::collection::vec(any::<u8>(), 0..8),
                            pick in prop_oneof![Just(1u8), Just(2), 5u8..7]) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert!(v.len() < 8);
            prop_assert!(pick == 1 || pick == 2 || (5..7).contains(&pick));
            prop_assert_eq!(x + 1, 1 + x);
            prop_assert_ne!(x, x + 1);
        }
    }
}
