//! Telemetry determinism: two identical traces must export
//! byte-identical line-JSON reports, on the serial datapath and on the
//! parallel datapath at every gated lane count. This is the property
//! the `telemetry-report` CI job enforces end-to-end with `cmp`.

use shef_core::shield::config::{EngineSetConfig, MemRange, RegionConfig};
use shef_core::shield::engine::{AccessMode, EngineSet};
use shef_core::shield::{client, DataEncryptionKey, WorkerPool};
use shef_fpga::clock::CostLedger;
use shef_fpga::dram::Dram;
use shef_fpga::shell::Shell;
use shef_telemetry::Telemetry;
use shef_testkit::{run_campaign, CampaignTelemetry};

const REGION_BASE: u64 = 0x1000;
const CHUNK: usize = 512;
const NUM_CHUNKS: u64 = 32;
const REGION_LEN: u64 = CHUNK as u64 * NUM_CHUNKS;
const TAG_BASE: u64 = 0x20_0000;
const MERKLE_BASE: u64 = 0x30_0000;

/// Drives one fixed read/write/flush trace and returns the exported
/// line-JSON telemetry report. `lanes == 0` selects the serial path.
fn drive_trace(lanes: usize) -> String {
    let telemetry = Telemetry::new();
    let region = RegionConfig {
        name: "tele".into(),
        range: MemRange::new(REGION_BASE, REGION_LEN),
        engine_set: EngineSetConfig {
            chunk_size: CHUNK,
            buffer_bytes: CHUNK * 8,
            counters: true,
            zero_fill_writes: false,
            ..EngineSetConfig::default()
        },
    };
    let dek = DataEncryptionKey::from_bytes([0x2Au8; 32]);
    let mut es = EngineSet::new(region.clone(), 0, TAG_BASE, MERKLE_BASE, &dek);
    es.attach_telemetry(&telemetry);
    let mut dram = Dram::new(1 << 22);
    dram.attach_telemetry(&telemetry);
    let enc = client::encrypt_region(&dek, &region, &vec![0u8; REGION_LEN as usize], 0);
    dram.tamper_write(REGION_BASE, &enc.ciphertext);
    dram.tamper_write(TAG_BASE, &enc.tags);
    let mut shell = Shell::new();
    let mut ledger = CostLedger::new();
    let pool = WorkerPool::new(lanes.max(1));
    pool.attach_telemetry(&telemetry);

    let payload = vec![0xC4u8; CHUNK * 6];
    if lanes == 0 {
        es.write(
            &mut shell,
            &mut dram,
            &mut ledger,
            REGION_BASE + CHUNK as u64,
            &payload,
            AccessMode::Streaming,
        )
        .unwrap();
        let back = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                REGION_BASE + CHUNK as u64,
                payload.len(),
                AccessMode::Streaming,
            )
            .unwrap();
        assert_eq!(back, payload);
        es.flush(&mut shell, &mut dram, &mut ledger).unwrap();
    } else {
        es.write_chunks(
            &mut shell,
            &mut dram,
            &mut ledger,
            REGION_BASE + CHUNK as u64,
            &payload,
            AccessMode::Streaming,
            &pool,
        )
        .unwrap();
        let back = es
            .read_chunks(
                &mut shell,
                &mut dram,
                &mut ledger,
                REGION_BASE + CHUNK as u64,
                payload.len(),
                AccessMode::Streaming,
                &pool,
            )
            .unwrap();
        assert_eq!(back, payload);
        es.flush_parallel(&mut shell, &mut dram, &mut ledger, &pool)
            .unwrap();
    }
    telemetry.report().to_json()
}

#[test]
fn serial_trace_reports_are_byte_identical() {
    assert_eq!(drive_trace(0), drive_trace(0));
}

#[test]
fn parallel_trace_reports_are_byte_identical_at_every_lane_count() {
    for lanes in [1usize, 2, 4] {
        let a = drive_trace(lanes);
        let b = drive_trace(lanes);
        assert_eq!(a, b, "report diverged at {lanes} lanes");
    }
}

#[test]
fn parallel_report_actually_contains_the_datapath() {
    let json = drive_trace(4);
    for needle in [
        "\"schema\": \"shef-telemetry/v1\"",
        "shield.engine.walk",
        "shield.engine.crypto",
        "shield.engine.landing",
        "shield.pool.batches",
        "fpga.dram.bytes_read",
    ] {
        assert!(json.contains(needle), "missing {needle} in:\n{json}");
    }
}

#[test]
fn campaign_verdict_counters_are_deterministic_and_pre_registered() {
    let export = || {
        let telemetry = Telemetry::new();
        let tele = CampaignTelemetry::bind(&telemetry);
        for record in run_campaign(2, &[1, 2]) {
            tele.record(&record.report);
        }
        telemetry.report().to_json()
    };
    let a = export();
    assert_eq!(a, export());
    // Forbidden verdicts are explicit zeros, not absent keys.
    assert!(a.contains("\"name\": \"fault.verdict.silent_corruption\", \"value\": 0"));
    assert!(a.contains("\"name\": \"fault.verdict.hang\", \"value\": 0"));
}
