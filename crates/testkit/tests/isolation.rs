//! Cross-tenant isolation of the multi-tenant `ShieldService`: three
//! contracts a co-tenant must never be able to break.
//!
//! 1. **Plaintext non-leakage** — tenant A's plaintext never appears in
//!    tenant B's completions, nor anywhere in either tenant's
//!    adversary-visible DRAM.
//! 2. **Key-domain separation** — the same plaintext at the same
//!    address encrypts to different ciphertext and different tags under
//!    different tenants, because each tenant's working keys live in an
//!    HKDF domain derived from its name.
//! 3. **Failure containment** — tampering that poisons tenant A's
//!    engine sets fail-stops *A only*; tenant B's requests neither
//!    reject nor stall, and A is readmitted once its poison is cleared.

use shef_attest::AttestationEnvironment;
use shef_core::fault::ShieldFault;
use shef_core::shield::engine::AccessMode;
use shef_core::shield::{
    DataEncryptionKey, EngineSetConfig, MemRange, RequestId, ServiceConfig, ServiceRequest,
    ShieldConfig, ShieldService, TenantId,
};
use shef_core::ShefError;

const REGION_BASE: u64 = 0x1000;
const CHUNK: usize = 512;
const NUM_CHUNKS: u64 = 8;
const REGION_LEN: u64 = CHUNK as u64 * NUM_CHUNKS;

fn tenant_config() -> ShieldConfig {
    ShieldConfig::builder()
        .region(
            "data",
            MemRange::new(REGION_BASE, REGION_LEN),
            EngineSetConfig {
                chunk_size: CHUNK,
                buffer_bytes: CHUNK * 2,
                ..EngineSetConfig::default()
            },
        )
        .build()
        .expect("valid config")
}

fn service_with(names: &[&str]) -> (ShieldService, Vec<TenantId>) {
    let mut env =
        AttestationEnvironment::new(b"testkit.isolation-tests").expect("attestation fixture");
    let mut service = ShieldService::new(
        ServiceConfig {
            shards: 2,
            lanes_per_shard: 2,
            queue_capacity: 64,
            tenant_quota: 32,
        },
        env.verifier_public(),
    )
    .expect("service constructs");
    // Each tenant seals its own DEK to the enclave; the shared master
    // key only lives owner-side to keep the derived domains stable.
    let master = DataEncryptionKey::from_bytes([0x61u8; 32]);
    let ids = names
        .iter()
        .map(|n| {
            let grant = env
                .onboard(n, master.tenant_key(n).to_bytes())
                .expect("tenant attests");
            service
                .register_tenant(n, tenant_config(), &grant)
                .expect("tenant registers")
        })
        .collect();
    (service, ids)
}

fn write_req(chunk: u64, data: Vec<u8>) -> ServiceRequest {
    ServiceRequest::Write {
        addr: REGION_BASE + chunk * CHUNK as u64,
        data,
        mode: AccessMode::Streaming,
    }
}

fn read_req(chunk: u64) -> ServiceRequest {
    ServiceRequest::Read {
        addr: REGION_BASE + chunk * CHUNK as u64,
        len: CHUNK,
        mode: AccessMode::Streaming,
    }
}

/// Whether `needle` occurs anywhere in `haystack`.
fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    haystack
        .windows(needle.len())
        .any(|window| window == needle)
}

/// Tenant A's plaintext shows up in A's own completions and nowhere
/// else: not in B's completions for the same address, and not in
/// either tenant's raw (adversary-visible) DRAM.
#[test]
fn plaintext_never_leaks_across_tenant_views() {
    let (mut service, ids) = service_with(&["alpha", "beta"]);
    let (a, b) = (ids[0], ids[1]);
    let secret = b"TOP-SECRET-GENOME-FRAGMENT-0xA5".repeat(17)[..CHUNK].to_vec();
    let b_data = vec![0x11u8; CHUNK];

    service
        .submit(a, write_req(0, secret.clone()))
        .expect("admitted");
    service.submit(a, ServiceRequest::Flush).expect("admitted");
    service
        .submit(b, write_req(0, b_data.clone()))
        .expect("admitted");
    service.submit(b, read_req(0)).expect("admitted");
    let completions = service.drain();

    for c in &completions {
        let payload = c.payload.as_ref().expect("clean run");
        if c.tenant == b {
            if let Some(bytes) = payload {
                assert_eq!(bytes, &b_data, "B reads its own data at the shared address");
                assert!(
                    !contains(bytes, &secret[..32]),
                    "A's plaintext leaked into B's completion"
                );
            }
        }
    }

    // The adversary (Shell / co-tenant with physical DRAM access) sees
    // only ciphertext: the secret appears in neither DRAM image.
    for &tenant in &[a, b] {
        let image = service
            .tenant_dram(tenant)
            .tamper_read(REGION_BASE, REGION_LEN as usize);
        assert!(
            !contains(&image, &secret[..32]),
            "plaintext visible in raw DRAM of tenant {tenant:?}"
        );
    }
}

/// Same address, same plaintext, different tenants: ciphertext and
/// tags must differ, proving the per-tenant HKDF key domains really
/// separate the working keys.
#[test]
fn tenant_key_domains_separate_ciphertext_and_tags() {
    let (mut service, ids) = service_with(&["alpha", "beta"]);
    let data = vec![0xC3u8; CHUNK];
    for &tenant in &ids {
        service
            .submit(tenant, write_req(0, data.clone()))
            .expect("admitted");
        service
            .submit(tenant, ServiceRequest::Flush)
            .expect("admitted");
    }
    for c in service.drain() {
        c.payload.expect("clean run");
    }
    let tag_base = tenant_config().tag_base(0);
    let ct_a = service.tenant_dram(ids[0]).tamper_read(REGION_BASE, CHUNK);
    let tags_a = service.tenant_dram(ids[0]).tamper_read(tag_base, 16);
    let ct_b = service.tenant_dram(ids[1]).tamper_read(REGION_BASE, CHUNK);
    let tags_b = service.tenant_dram(ids[1]).tamper_read(tag_base, 16);
    assert_ne!(ct_a, ct_b, "tenant key domains must not collide");
    assert_ne!(tags_a, tags_b, "tenant MAC domains must not collide");
    assert_ne!(ct_a, data, "ciphertext, not plaintext, in DRAM");
    assert_ne!(ct_b, data, "ciphertext, not plaintext, in DRAM");
}

/// The derived tenant keys are deterministic: re-registering the same
/// tenant name in a fresh service reproduces the exact ciphertext.
#[test]
fn tenant_key_domains_are_deterministic_across_services() {
    let image = |()| {
        let (mut service, ids) = service_with(&["alpha"]);
        service
            .submit(ids[0], write_req(0, vec![0x3Cu8; CHUNK]))
            .expect("admitted");
        service
            .submit(ids[0], ServiceRequest::Flush)
            .expect("admitted");
        for c in service.drain() {
            c.payload.expect("clean run");
        }
        service.tenant_dram(ids[0]).tamper_read(REGION_BASE, CHUNK)
    };
    assert_eq!(image(()), image(()), "same name, same master, same bytes");
}

/// Poisoning tenant A's engine set (via tampered DRAM) fail-stops A
/// alone: B's in-flight and follow-up requests all succeed, A reports
/// its poisoned region, and clearing the poison readmits A.
#[test]
fn poisoned_tenant_does_not_reject_or_stall_others() {
    let (mut service, ids) = service_with(&["alpha", "beta"]);
    let (a, b) = (ids[0], ids[1]);

    // Seed both tenants, flush so chunk 0 is DRAM-resident.
    for &tenant in &[a, b] {
        service
            .submit(tenant, write_req(0, vec![0x77u8; CHUNK]))
            .expect("admitted");
        service
            .submit(tenant, ServiceRequest::Flush)
            .expect("admitted");
    }
    for c in service.drain() {
        c.payload.expect("clean seed phase");
    }

    // Adversary flips a ciphertext bit in A's DRAM only.
    let mut byte = service.tenant_dram(a).tamper_read(REGION_BASE, 1);
    byte[0] ^= 0x80;
    service.tenant_dram(a).tamper_write(REGION_BASE, &byte);

    // Interleave a victim read with bystander traffic.
    let a_read = service.submit(a, read_req(0)).expect("admitted");
    let mut b_reqs: Vec<RequestId> = Vec::new();
    for _ in 0..4 {
        b_reqs.push(service.submit(b, read_req(0)).expect("admitted"));
    }
    let a_after: RequestId = service.submit(a, read_req(0)).expect("admitted");
    let completions = service.drain();
    assert_eq!(completions.len(), 6, "nobody starves");

    // A's tampered read is detected; A's next access is fail-stopped by
    // the poisoned engine set.
    let payload_of = |id: RequestId| {
        &completions
            .iter()
            .find(|c| c.request == id)
            .expect("completed")
            .payload
    };
    assert!(
        matches!(payload_of(a_read), Err(ShefError::IntegrityViolation(_))),
        "tampered chunk must be detected: {:?}",
        payload_of(a_read)
    );
    assert!(
        matches!(
            payload_of(a_after),
            Err(ShefError::Fault(ShieldFault::Poisoned { .. }))
        ),
        "post-detection access must be fail-stopped: {:?}",
        payload_of(a_after)
    );

    // B is untouched: every bystander read succeeded with its own data.
    for id in b_reqs {
        match payload_of(id) {
            Ok(Some(bytes)) => assert_eq!(bytes, &vec![0x77u8; CHUNK]),
            other => panic!("bystander request failed during A's poisoning: {other:?}"),
        }
    }

    // The poison is visible, scoped to A, and clearable.
    assert_eq!(service.tenant_shield(a).poisoned_regions(), vec!["data"]);
    assert!(service.tenant_shield(b).poisoned_regions().is_empty());
    service.tenant_shield(a).clear_poison();

    // Repair A's DRAM (undo the flip) and verify A is readmitted.
    let mut byte = service.tenant_dram(a).tamper_read(REGION_BASE, 1);
    byte[0] ^= 0x80;
    service.tenant_dram(a).tamper_write(REGION_BASE, &byte);
    let again = service.submit(a, read_req(0)).expect("admitted");
    let completions = service.drain();
    match &completions
        .iter()
        .find(|c| c.request == again)
        .expect("completed")
        .payload
    {
        Ok(Some(bytes)) => assert_eq!(bytes, &vec![0x77u8; CHUNK]),
        other => panic!("A not readmitted after clearing poison: {other:?}"),
    }
}

/// An aborted tenant's buffered state stays private and bounded: the
/// bystander keeps full throughput while the victim's buffered bytes
/// are still accounted to the victim's own engine set.
#[test]
fn abort_containment_keeps_bystander_throughput() {
    let (mut service, ids) = service_with(&["alpha", "beta"]);
    let (a, b) = (ids[0], ids[1]);
    service
        .submit(a, write_req(0, vec![0x55u8; CHUNK]))
        .expect("admitted");
    service
        .submit(b, write_req(0, vec![0x66u8; CHUNK]))
        .expect("admitted");
    service.submit(b, read_req(0)).expect("admitted");
    service.abort_tenant(a);
    let completions = service.drain();
    assert_eq!(completions.len(), 3, "nobody starves under an abort");
    for c in &completions {
        if c.tenant == a {
            assert!(
                matches!(
                    &c.payload,
                    Err(ShefError::Fault(ShieldFault::TenantAborted { .. }))
                ),
                "aborted tenant's request must fail-stop: {:?}",
                c.payload
            );
        } else {
            c.payload.as_ref().expect("bystander unaffected");
        }
    }
    // The aborted write never executed, so A buffered nothing; B's
    // write is (or was) buffered in B's own engine set only.
    let a_buffered: u64 = service
        .tenant_shield(a)
        .engine_stats()
        .iter()
        .map(|(_, s)| s.bytes_written)
        .sum();
    assert_eq!(a_buffered, 0, "aborted work must not touch the datapath");
}
