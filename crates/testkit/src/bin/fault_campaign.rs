//! Fault-injection campaign sweep: seeds × fault classes × lane
//! counts, each scenario under a watchdog, emitting a line-oriented
//! JSON verdict matrix. Exits non-zero if any scenario produces a
//! verdict outside the allowlist (`silent_corruption`, `hang`) — this
//! is the CI gate.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::mpsc;
use std::time::Duration;

use shef_telemetry::Telemetry;
use shef_testkit::{
    campaign_plan, json_escape, run_plan, CampaignRecord, CampaignTelemetry, DataPath, FaultClass,
    FaultPlan, ScenarioReport, Scheme, Verdict,
};

struct Args {
    seeds: u64,
    lanes: Vec<usize>,
    json: Option<String>,
    telemetry: Option<String>,
    timeout_secs: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: 32,
        lanes: vec![1, 2, 4],
        json: None,
        telemetry: None,
        timeout_secs: 60,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seeds" => {
                let v = it.next().expect("--seeds needs a value");
                args.seeds = v.parse().expect("--seeds: not a number");
            }
            "--lanes" => {
                let v = it.next().expect("--lanes needs a comma-separated list");
                args.lanes = v
                    .split(',')
                    .map(|s| s.trim().parse().expect("--lanes: not a number"))
                    .collect();
            }
            "--json" => args.json = Some(it.next().expect("--json needs a path")),
            "--telemetry" => {
                args.telemetry = Some(it.next().expect("--telemetry needs a path"));
            }
            "--timeout-secs" => {
                let v = it.next().expect("--timeout-secs needs a value");
                args.timeout_secs = v.parse().expect("--timeout-secs: not a number");
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: fault_campaign [--seeds N] [--lanes 1,2,4] \
                     [--json PATH] [--telemetry PATH] [--timeout-secs N]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
    }
    assert!(args.seeds > 0, "--seeds must be positive");
    assert!(
        !args.lanes.is_empty(),
        "--lanes must name at least one lane count"
    );
    args
}

/// Runs one plan on a helper thread with a wall-clock budget. A
/// scenario that neither returns nor panics within the budget is the
/// `hang` verdict the taxonomy forbids; the zombie thread is leaked
/// and the process exits via the gate at the end.
fn run_with_watchdog(plan: FaultPlan, budget: Duration) -> ScenarioReport {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let report = std::panic::catch_unwind(|| run_plan(&plan));
        let _ = tx.send(report);
    });
    match rx.recv_timeout(budget) {
        Ok(Ok(report)) => report,
        Ok(Err(_)) => ScenarioReport {
            verdict: Verdict::SilentCorruption,
            probe: None,
            detail: "scenario panicked instead of returning a verdict".into(),
        },
        Err(_) => ScenarioReport {
            verdict: Verdict::Hang,
            probe: None,
            detail: format!("scenario exceeded the {}s watchdog", budget.as_secs()),
        },
    }
}

fn main() {
    let args = parse_args();
    // Injected lane panics unwind with the default hook installed,
    // which would spray "thread panicked" noise over the sweep output;
    // the campaign engine catches every unwind it provokes.
    std::panic::set_hook(Box::new(|_| {}));

    let budget = Duration::from_secs(args.timeout_secs);
    let telemetry = Telemetry::new();
    let campaign_tele = CampaignTelemetry::bind(&telemetry);
    let mut records: Vec<CampaignRecord> = Vec::new();
    let mut disallowed = 0usize;

    for seed in 0..args.seeds {
        for class in FaultClass::ALL {
            for &lanes in &args.lanes {
                let path = if lanes <= 1 && !class.uses_pool() {
                    DataPath::Serial
                } else {
                    DataPath::Parallel { lanes }
                };
                let plan = campaign_plan(seed, class, lanes, path);
                let scheme = plan.scheme;
                let report = run_with_watchdog(plan, budget);
                campaign_tele.record(&report);
                if !report.is_allowed() {
                    disallowed += 1;
                    eprintln!(
                        "FORBIDDEN: seed={seed} class={} scheme={} lanes={lanes} -> {} ({})",
                        class.as_str(),
                        scheme.as_str(),
                        report.verdict,
                        report.detail
                    );
                }
                records.push(CampaignRecord {
                    seed,
                    class: Some(class),
                    scheme,
                    lanes,
                    path: path.label(),
                    report,
                });
            }
        }
    }
    // Fault-free baselines: must come back clean on every scheme/path.
    for scheme in Scheme::ALL {
        for &lanes in &args.lanes {
            for (seed, path) in [
                (0u64, DataPath::Serial),
                (1u64, DataPath::Parallel { lanes }),
            ] {
                let report = run_with_watchdog(FaultPlan::clean(seed, scheme, path), budget);
                campaign_tele.record(&report);
                if report.verdict != Verdict::Clean {
                    disallowed += 1;
                    eprintln!(
                        "FORBIDDEN: clean baseline scheme={} lanes={lanes} -> {} ({})",
                        scheme.as_str(),
                        report.verdict,
                        report.detail
                    );
                }
                records.push(CampaignRecord {
                    seed,
                    class: None,
                    scheme,
                    lanes,
                    path: path.label(),
                    report,
                });
            }
        }
    }

    // Summary matrix: verdict histogram per fault class.
    let mut histogram: BTreeMap<&'static str, BTreeMap<&'static str, usize>> = BTreeMap::new();
    for r in &records {
        let class = r.class.map_or("baseline", FaultClass::as_str);
        *histogram
            .entry(class)
            .or_default()
            .entry(r.report.verdict.as_str())
            .or_default() += 1;
    }
    println!("fault campaign: {} scenarios", records.len());
    for (class, verdicts) in &histogram {
        let row: Vec<String> = verdicts.iter().map(|(v, n)| format!("{v}={n}")).collect();
        println!("  {class:<20} {}", row.join(" "));
    }

    if let Some(path) = &args.json {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"schema\": \"shef-fault-campaign/v1\", \"seeds\": {}, \"lanes\": \"{}\", \"scenarios\": {}, \"disallowed\": {}}}\n",
            args.seeds,
            json_escape(
                &args
                    .lanes
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            records.len(),
            disallowed,
        ));
        for r in &records {
            out.push_str(&r.to_json_line());
            out.push('\n');
        }
        let mut f = std::fs::File::create(path).expect("create --json output file");
        f.write_all(out.as_bytes()).expect("write --json output");
        println!("wrote {} ({} records)", path, records.len());
    }

    if let Some(path) = &args.telemetry {
        let report = telemetry.report();
        std::fs::write(path, report.to_json()).expect("write --telemetry output");
        println!("{}", report.summary_table());
        println!("wrote telemetry report to {path}");
    }

    if disallowed > 0 {
        eprintln!("fault campaign FAILED: {disallowed} forbidden verdict(s)");
        std::process::exit(1);
    }
    println!("fault campaign passed: no silent corruption, no hangs");
    // Watchdog zombies (if any) would otherwise keep the process
    // alive; exit explicitly.
    std::process::exit(0);
}
