//! # shef-testkit: deterministic fault-injection campaigns for the Shield
//!
//! ShEF's security story is *detect and contain*: the Shield must turn
//! every tampering attempt by an adversary who owns the host, Shell,
//! DRAM and debug ports (paper §2.5) into a machine-checkable verdict,
//! and must never corrupt data silently or hang. This crate makes that
//! contract executable. A seeded [`FaultPlan`] schedules faults at
//! named injection points; [`run_plan`] drives a full read/write/flush
//! trace against a faulted Shield datapath next to an un-instrumented
//! golden twin and classifies what happened.
//!
//! ## Outcome taxonomy
//!
//! | Verdict | Meaning |
//! |---|---|
//! | [`Verdict::DetectedSpoof`] | Tampered bytes/tag rejected by authentication |
//! | [`Verdict::DetectedSplice`] | Relocated ciphertext rejected (address binding) |
//! | [`Verdict::DetectedReplay`] | Stale-but-valid data rejected (freshness binding) |
//! | [`Verdict::Drained`] | Lane death absorbed; every staged victim seal landed |
//! | [`Verdict::Poisoned`] | Post-detection traffic fail-stopped by containment |
//! | [`Verdict::RecoveredAfterRetry`] | Transient lane fault absorbed by the bounded retry |
//! | [`Verdict::Masked`] | Fault injected but provably never consumed |
//! | [`Verdict::Clean`] | Fault-free plan, byte-identical to the golden twin |
//! | [`Verdict::SilentCorruption`] | **Forbidden**: wrong bytes accepted, or containment breached |
//! | [`Verdict::Hang`] | **Forbidden**: scenario exceeded its watchdog budget |
//!
//! The first eight verdicts are allowlisted; `SilentCorruption` and
//! `Hang` fail the campaign gate.
//!
//! ## Writing a `FaultPlan`
//!
//! A plan is a seed (all randomness is a deterministic LCG of it), an
//! integrity scheme, a datapath selection, a trace length, and a list
//! of [`FaultEvent`]s. [`FaultPlan::single`] derives a one-fault plan
//! from a seed; [`FaultPlan::randomized`] schedules several memory
//! faults for property tests; or build the struct directly:
//!
//! ```
//! use shef_testkit::{run_plan, DataPath, FaultClass, FaultEvent, FaultPlan, Scheme};
//!
//! let plan = FaultPlan {
//!     seed: 7,
//!     scheme: Scheme::Counters,
//!     path: DataPath::Parallel { lanes: 4 },
//!     ops: 24,
//!     events: vec![FaultEvent {
//!         at_op: 5,
//!         class: FaultClass::DramBitFlip,
//!         chunk: 3,
//!         byte: 17,
//!         flip: 0x40,
//!     }],
//! };
//! let report = run_plan(&plan);
//! assert!(report.is_allowed(), "{report:?}");
//! ```
//!
//! Injection points are addressed by module path ([`InjectionPoint`]):
//! `fpga::dram` (ciphertext and tag arenas), `fpga::ports` (debug
//! ports), `core::wire` (frame encoding), `shield::stream` (sealed
//! frame payloads), `shield::regif` (sealed register writes) and
//! `shield::pool` (worker lanes). The `shield::engine` containment
//! state is probed after every detected integrity failure: the next
//! operation must be rejected by the poisoned engine set.
//!
//! The remote-attestation protocol has its own injection points —
//! `attest::quote` (forged quote signatures), `attest::verifier.nonce`
//! (replayed transcripts), `attest::kernel.measure` (an unregistered
//! Shield bitstream) and `attest::session.sealed_dek` (sealed tenant
//! keys spliced between sessions). Each must land in its typed
//! `AttestError` and leave the honest protocol round able to complete;
//! an accepted forgery, replay, rogue measurement or spliced key is
//! `SilentCorruption` like any other containment breach.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use shef_attest::{AttestError, AttestationEnvironment, AttestationTicket};
use shef_core::attacks::{splice_chunks, ReplaySnapshot};
use shef_core::fault::ShieldFault;
use shef_core::shield::config::{EngineSetConfig, MemRange, RegionConfig, RegisterInterfaceConfig};
use shef_core::shield::engine::{AccessMode, EngineSet};
use shef_core::shield::merkle::MerkleConfig;
use shef_core::shield::regif::RegisterInterface;
use shef_core::shield::stream::{StreamEndpoint, StreamFrame};
use shef_core::shield::{
    client, Completion, DataEncryptionKey, RequestId, ServiceConfig, ServiceRequest, ShieldConfig,
    ShieldService, TenantId, WorkerPool,
};
use shef_core::ShefError;
use shef_crypto::authenc::MacAlgorithm;
use shef_fpga::clock::CostLedger;
use shef_fpga::dram::Dram;
use shef_fpga::ports::{DebugPort, DebugPorts, PortAccessOutcome};
use shef_fpga::shell::Shell;

/// Chunk size of the campaign region.
pub const CHUNK: usize = 512;
/// Chunks in the campaign region.
pub const NUM_CHUNKS: u64 = 16;
/// Campaign region length in bytes.
pub const REGION_LEN: u64 = CHUNK as u64 * NUM_CHUNKS;
/// Default trace length of a generated plan.
pub const DEFAULT_OPS: usize = 24;

const REGION_BASE: u64 = 0x1000;
const TAG_BASE: u64 = 0x10_0000;
const MERKLE_BASE: u64 = 0x20_0000;
const BUFFER_LINES: usize = 4;
const TAG_LEN: usize = 16;

/// Deterministic 64-bit LCG (Knuth's MMIX constants) — the only source
/// of randomness in the campaign engine.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Replay-defence scheme of the campaign region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Per-chunk MACs only: spoof/splice detection, no freshness.
    MacOnly,
    /// On-chip freshness counters.
    Counters,
    /// DRAM-resident Bonsai Merkle tree.
    Merkle,
}

impl Scheme {
    /// All schemes, for sweeps.
    pub const ALL: [Scheme; 3] = [Scheme::MacOnly, Scheme::Counters, Scheme::Merkle];

    /// Stable lowercase label for reports.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Scheme::MacOnly => "mac_only",
            Scheme::Counters => "counters",
            Scheme::Merkle => "merkle",
        }
    }
}

/// Which Shield datapath a plan drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataPath {
    /// The serial per-chunk path (`read`/`write`/`flush`).
    Serial,
    /// The batched parallel path over a worker pool.
    Parallel {
        /// Worker-pool lanes.
        lanes: usize,
    },
}

impl DataPath {
    /// Stable label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DataPath::Serial => "serial",
            DataPath::Parallel { .. } => "parallel",
        }
    }

    fn lanes(self) -> usize {
        match self {
            DataPath::Serial => 1,
            DataPath::Parallel { lanes } => lanes.max(1),
        }
    }
}

/// The injectable fault classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Flip one ciphertext byte of a chunk in DRAM.
    DramBitFlip,
    /// Flip one byte of a chunk's MAC tag in the DRAM tag arena.
    TagBitFlip,
    /// Copy one chunk's ciphertext + tag over a sibling chunk.
    CiphertextSplice,
    /// Replay a stale (provision-time) ciphertext + tag snapshot.
    StaleReplay,
    /// Truncate an authenticated stream frame on the wire.
    WireTruncate,
    /// Flip one byte of an authenticated stream frame on the wire.
    WireCorrupt,
    /// Flip one byte of a sealed register write.
    RegisterTamper,
    /// One-shot worker-lane panic (transient fault).
    LanePanic,
    /// Sticky worker-lane panic (the inline retry dies too).
    LanePanicSticky,
    /// Adversarial poke at a monitored debug port.
    DebugPortPoke,
    /// Drop one admitted request from the multi-tenant service queue.
    AdmissionDrop,
    /// Sticky lane panic inside one tenant's service shard.
    ShardPanic,
    /// Abort one tenant mid-batch while its requests are queued.
    TenantAbort,
    /// Forge a quote: flip one byte of the Attestation-Key signature.
    AttestQuoteForge,
    /// Replay a complete, previously verified quote transcript.
    AttestNonceReplay,
    /// Attest a Shield bitstream outside the known-good registry.
    AttestWrongMeasurement,
    /// Splice a sealed-DEK blob from another attestation session into
    /// a verifier-issued ticket.
    AttestDekTamper,
}

impl FaultClass {
    /// Every fault class, in campaign sweep order.
    pub const ALL: [FaultClass; 17] = [
        FaultClass::DramBitFlip,
        FaultClass::TagBitFlip,
        FaultClass::CiphertextSplice,
        FaultClass::StaleReplay,
        FaultClass::WireTruncate,
        FaultClass::WireCorrupt,
        FaultClass::RegisterTamper,
        FaultClass::LanePanic,
        FaultClass::LanePanicSticky,
        FaultClass::DebugPortPoke,
        FaultClass::AdmissionDrop,
        FaultClass::ShardPanic,
        FaultClass::TenantAbort,
        FaultClass::AttestQuoteForge,
        FaultClass::AttestNonceReplay,
        FaultClass::AttestWrongMeasurement,
        FaultClass::AttestDekTamper,
    ];

    /// The memory-datapath classes (drivable by an LCG trace).
    pub const MEMORY: [FaultClass; 6] = [
        FaultClass::DramBitFlip,
        FaultClass::TagBitFlip,
        FaultClass::CiphertextSplice,
        FaultClass::StaleReplay,
        FaultClass::LanePanic,
        FaultClass::LanePanicSticky,
    ];

    /// Stable lowercase label for reports.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            FaultClass::DramBitFlip => "dram_bit_flip",
            FaultClass::TagBitFlip => "tag_bit_flip",
            FaultClass::CiphertextSplice => "ciphertext_splice",
            FaultClass::StaleReplay => "stale_replay",
            FaultClass::WireTruncate => "wire_truncate",
            FaultClass::WireCorrupt => "wire_corrupt",
            FaultClass::RegisterTamper => "register_tamper",
            FaultClass::LanePanic => "lane_panic",
            FaultClass::LanePanicSticky => "lane_panic_sticky",
            FaultClass::DebugPortPoke => "debug_port_poke",
            FaultClass::AdmissionDrop => "admission_drop",
            FaultClass::ShardPanic => "shard_panic",
            FaultClass::TenantAbort => "tenant_abort",
            FaultClass::AttestQuoteForge => "attest_quote_forge",
            FaultClass::AttestNonceReplay => "attest_nonce_replay",
            FaultClass::AttestWrongMeasurement => "attest_wrong_measurement",
            FaultClass::AttestDekTamper => "attest_dek_tamper",
        }
    }

    /// Where this class injects.
    #[must_use]
    pub fn injection_point(self) -> InjectionPoint {
        match self {
            FaultClass::DramBitFlip | FaultClass::CiphertextSplice | FaultClass::StaleReplay => {
                InjectionPoint::DramData
            }
            FaultClass::TagBitFlip => InjectionPoint::DramTags,
            FaultClass::WireTruncate => InjectionPoint::WireFrame,
            FaultClass::WireCorrupt => InjectionPoint::ShieldStream,
            FaultClass::RegisterTamper => InjectionPoint::ShieldRegif,
            FaultClass::LanePanic | FaultClass::LanePanicSticky => InjectionPoint::ShieldPool,
            FaultClass::DebugPortPoke => InjectionPoint::DebugPorts,
            FaultClass::AdmissionDrop | FaultClass::ShardPanic | FaultClass::TenantAbort => {
                InjectionPoint::ShieldService
            }
            FaultClass::AttestQuoteForge => InjectionPoint::AttestQuote,
            FaultClass::AttestNonceReplay => InjectionPoint::AttestNonce,
            FaultClass::AttestWrongMeasurement => InjectionPoint::AttestMeasurement,
            FaultClass::AttestDekTamper => InjectionPoint::AttestSealedDek,
        }
    }

    /// Schemes under which this class is *detectable*. Replaying a
    /// stale block under `MacOnly` is undetectable by design — the
    /// paper adds counters/BMT precisely to close it — so campaigns
    /// never schedule that combination.
    #[must_use]
    pub fn valid_schemes(self) -> &'static [Scheme] {
        match self {
            FaultClass::StaleReplay => &[Scheme::Counters, Scheme::Merkle],
            _ => &[Scheme::MacOnly, Scheme::Counters, Scheme::Merkle],
        }
    }

    /// Whether the class is exercised by a memory trace.
    #[must_use]
    pub fn is_memory(self) -> bool {
        Self::MEMORY.contains(&self)
    }

    /// Whether the class needs the worker pool (the serial path has no
    /// lanes to kill, so these faults are structurally [`Verdict::Masked`]
    /// there). [`FaultClass::ShardPanic`] also qualifies: it kills a
    /// lane inside a service shard's pool.
    #[must_use]
    pub fn uses_pool(self) -> bool {
        matches!(
            self,
            FaultClass::LanePanic | FaultClass::LanePanicSticky | FaultClass::ShardPanic
        )
    }
}

/// A named injection point, addressed by module path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectionPoint {
    /// `fpga::dram` — region ciphertext arena.
    DramData,
    /// `fpga::dram` — chunk-tag arena.
    DramTags,
    /// `fpga::ports` — JTAG/ICAP/virtual-JTAG monitors.
    DebugPorts,
    /// `core::wire` — frame encoding between endpoints.
    WireFrame,
    /// `shield::stream` — sealed frame payloads.
    ShieldStream,
    /// `shield::regif` — sealed register interface.
    ShieldRegif,
    /// `shield::pool` — worker lanes of the parallel datapath.
    ShieldPool,
    /// `shield::service` — the multi-tenant admission queue and shards.
    ShieldService,
    /// `attest::quote` — the Attestation-Key signature over a quote.
    AttestQuote,
    /// `attest::verifier.nonce` — the verifier's freshness window.
    AttestNonce,
    /// `attest::kernel.measure` — the measured Shield bitstream.
    AttestMeasurement,
    /// `attest::session.sealed_dek` — the AES-GCM-sealed tenant DEK.
    AttestSealedDek,
}

impl InjectionPoint {
    /// Stable label for reports.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            InjectionPoint::DramData => "fpga::dram.data",
            InjectionPoint::DramTags => "fpga::dram.tags",
            InjectionPoint::DebugPorts => "fpga::ports",
            InjectionPoint::WireFrame => "core::wire.frame",
            InjectionPoint::ShieldStream => "shield::stream.recv",
            InjectionPoint::ShieldRegif => "shield::regif.host",
            InjectionPoint::ShieldPool => "shield::pool.lane",
            InjectionPoint::ShieldService => "shield::service.queue",
            InjectionPoint::AttestQuote => "attest::quote",
            InjectionPoint::AttestNonce => "attest::verifier.nonce",
            InjectionPoint::AttestMeasurement => "attest::kernel.measure",
            InjectionPoint::AttestSealedDek => "attest::session.sealed_dek",
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Trace-op index before which the fault is injected.
    pub at_op: usize,
    /// What to inject.
    pub class: FaultClass,
    /// Target chunk (memory classes; taken mod [`NUM_CHUNKS`]).
    pub chunk: u32,
    /// Byte offset within the target (flips/truncation; taken mod the
    /// target length).
    pub byte: usize,
    /// Nonzero XOR mask for flip classes.
    pub flip: u8,
}

/// A seeded, deterministic fault schedule (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the LCG that drives the trace and all fault targeting.
    pub seed: u64,
    /// Integrity scheme of the campaign region.
    pub scheme: Scheme,
    /// Which datapath the faulted run drives (the golden twin is
    /// always the un-instrumented serial path).
    pub path: DataPath,
    /// Trace length in operations.
    pub ops: usize,
    /// Scheduled faults, injected before the op they name.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A fault-free plan: must come back [`Verdict::Clean`].
    #[must_use]
    pub fn clean(seed: u64, scheme: Scheme, path: DataPath) -> Self {
        FaultPlan {
            seed,
            scheme,
            path,
            ops: DEFAULT_OPS,
            events: Vec::new(),
        }
    }

    /// A single-fault plan with seed-derived targeting. Panics if the
    /// class is undetectable under `scheme` (see
    /// [`FaultClass::valid_schemes`]).
    #[must_use]
    pub fn single(seed: u64, class: FaultClass, scheme: Scheme, path: DataPath) -> Self {
        assert!(
            class.valid_schemes().contains(&scheme),
            "{} is undetectable by design under {}",
            class.as_str(),
            scheme.as_str()
        );
        let mut rng = Lcg(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(class as u64 + 1)));
        let event = FaultEvent {
            at_op: 2 + rng.below(DEFAULT_OPS as u64 - 6) as usize,
            class,
            chunk: rng.below(NUM_CHUNKS) as u32,
            byte: rng.below(CHUNK as u64) as usize,
            flip: 1 + rng.below(255) as u8,
        };
        FaultPlan {
            seed,
            scheme,
            path,
            ops: DEFAULT_OPS,
            events: vec![event],
        }
    }

    /// A multi-fault plan over the memory classes only (property-test
    /// generator). Replay events are skipped under `MacOnly`.
    #[must_use]
    pub fn randomized(seed: u64, n_events: usize, scheme: Scheme, path: DataPath) -> Self {
        let mut rng = Lcg(seed.wrapping_mul(0xA24B_AED4_963E_E407).wrapping_add(1));
        let mut events = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            let class = FaultClass::MEMORY[rng.below(FaultClass::MEMORY.len() as u64) as usize];
            if !class.valid_schemes().contains(&scheme) {
                continue;
            }
            events.push(FaultEvent {
                at_op: rng.below(DEFAULT_OPS as u64) as usize,
                class,
                chunk: rng.below(NUM_CHUNKS) as u32,
                byte: rng.below(CHUNK as u64) as usize,
                flip: 1 + rng.below(255) as u8,
            });
        }
        events.sort_by_key(|e| e.at_op);
        FaultPlan {
            seed,
            scheme,
            path,
            ops: DEFAULT_OPS,
            events,
        }
    }
}

/// The machine-checkable outcome taxonomy (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Tampered bytes or tag rejected by chunk/frame authentication.
    DetectedSpoof,
    /// Relocated ciphertext rejected by the address binding.
    DetectedSplice,
    /// Stale-but-authentic data rejected by the freshness binding.
    DetectedReplay,
    /// A dead lane was absorbed: the batch drained, no chunk was lost.
    Drained,
    /// Post-detection traffic was fail-stopped by engine poisoning.
    Poisoned,
    /// A transient lane fault was absorbed by the bounded inline retry.
    RecoveredAfterRetry,
    /// The fault was injected but provably never consumed.
    Masked,
    /// Fault-free plan, byte-identical to the un-instrumented twin.
    Clean,
    /// **Forbidden**: wrong bytes accepted, or containment breached.
    SilentCorruption,
    /// **Forbidden**: the scenario exceeded its watchdog budget.
    Hang,
}

impl Verdict {
    /// Every verdict in the taxonomy, in report order.
    pub const ALL: [Verdict; 10] = [
        Verdict::DetectedSpoof,
        Verdict::DetectedSplice,
        Verdict::DetectedReplay,
        Verdict::Drained,
        Verdict::Poisoned,
        Verdict::RecoveredAfterRetry,
        Verdict::Masked,
        Verdict::Clean,
        Verdict::SilentCorruption,
        Verdict::Hang,
    ];

    /// Whether the verdict is on the campaign allowlist.
    #[must_use]
    pub fn is_allowed(self) -> bool {
        !matches!(self, Verdict::SilentCorruption | Verdict::Hang)
    }

    /// Stable lowercase label for reports.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::DetectedSpoof => "detected_spoof",
            Verdict::DetectedSplice => "detected_splice",
            Verdict::DetectedReplay => "detected_replay",
            Verdict::Drained => "drained",
            Verdict::Poisoned => "poisoned",
            Verdict::RecoveredAfterRetry => "recovered_after_retry",
            Verdict::Masked => "masked",
            Verdict::Clean => "clean",
            Verdict::SilentCorruption => "silent_corruption",
            Verdict::Hang => "hang",
        }
    }
}

impl core::fmt::Display for Verdict {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What one scenario run concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioReport {
    /// Primary verdict: what happened to the injected fault.
    pub verdict: Verdict,
    /// Containment-probe verdict, when the scenario ended in a
    /// detection: [`Verdict::Poisoned`] if the engine fail-stopped the
    /// next access, [`Verdict::Drained`] if a lane death drained
    /// cleanly, [`Verdict::SilentCorruption`] on a containment breach.
    pub probe: Option<Verdict>,
    /// Human-readable context for the verdict matrix.
    pub detail: String,
}

impl ScenarioReport {
    /// Whether both the verdict and the containment probe are on the
    /// campaign allowlist.
    #[must_use]
    pub fn is_allowed(&self) -> bool {
        self.verdict.is_allowed() && self.probe.is_none_or(Verdict::is_allowed)
    }

    fn forbidden(detail: impl Into<String>) -> Self {
        ScenarioReport {
            verdict: Verdict::SilentCorruption,
            probe: None,
            detail: detail.into(),
        }
    }
}

// ---------------------------------------------------------------------
// Memory-trace scenarios
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Read { offset: u64, len: usize },
    Write { offset: u64, len: usize, fill: u8 },
    Flush,
}

/// Reproducible mixed trace: ~45% reads, ~45% writes, ~10% flushes,
/// spans up to 3 chunks at arbitrary alignment.
fn trace(seed: u64, ops: usize) -> Vec<Op> {
    let mut rng = Lcg(seed);
    let max_span = (3 * CHUNK) as u64;
    (0..ops)
        .map(|_| {
            let kind = rng.below(100);
            let offset = rng.below(REGION_LEN - 1);
            let len = (1 + rng.below(max_span)).min(REGION_LEN - offset) as usize;
            if kind < 45 {
                Op::Read { offset, len }
            } else if kind < 90 {
                Op::Write {
                    offset,
                    len,
                    fill: rng.below(256) as u8,
                }
            } else {
                Op::Flush
            }
        })
        .collect()
}

struct Setup {
    es: EngineSet,
    shell: Shell,
    dram: Dram,
    ledger: CostLedger,
}

fn setup(scheme: Scheme) -> Setup {
    let (counters, merkle) = match scheme {
        Scheme::MacOnly => (false, None),
        Scheme::Counters => (true, None),
        Scheme::Merkle => (
            false,
            Some(MerkleConfig {
                arity: 4,
                node_cache_bytes: 512,
            }),
        ),
    };
    let region = RegionConfig {
        name: "fault".into(),
        range: MemRange::new(REGION_BASE, REGION_LEN),
        engine_set: EngineSetConfig {
            chunk_size: CHUNK,
            buffer_bytes: CHUNK * BUFFER_LINES,
            counters,
            merkle,
            zero_fill_writes: false,
            ..EngineSetConfig::default()
        },
    };
    let dek = DataEncryptionKey::from_bytes([0x5Fu8; 32]);
    let es = EngineSet::new(region.clone(), 0, TAG_BASE, MERKLE_BASE, &dek);
    let mut dram = Dram::new(1 << 22);
    let enc = client::encrypt_region(&dek, &region, &vec![0u8; REGION_LEN as usize], 0);
    dram.tamper_write(REGION_BASE, &enc.ciphertext);
    dram.tamper_write(TAG_BASE, &enc.tags);
    Setup {
        es,
        shell: Shell::new(),
        dram,
        ledger: CostLedger::new(),
    }
}

impl Setup {
    fn read(
        &mut self,
        path: DataPath,
        pool: &WorkerPool,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>, ShefError> {
        let addr = REGION_BASE + offset;
        match path {
            DataPath::Serial => self.es.read(
                &mut self.shell,
                &mut self.dram,
                &mut self.ledger,
                addr,
                len,
                AccessMode::Streaming,
            ),
            DataPath::Parallel { .. } => self.es.read_chunks(
                &mut self.shell,
                &mut self.dram,
                &mut self.ledger,
                addr,
                len,
                AccessMode::Streaming,
                pool,
            ),
        }
    }

    fn write(
        &mut self,
        path: DataPath,
        pool: &WorkerPool,
        offset: u64,
        data: &[u8],
    ) -> Result<(), ShefError> {
        let addr = REGION_BASE + offset;
        match path {
            DataPath::Serial => self.es.write(
                &mut self.shell,
                &mut self.dram,
                &mut self.ledger,
                addr,
                data,
                AccessMode::Streaming,
            ),
            DataPath::Parallel { .. } => self.es.write_chunks(
                &mut self.shell,
                &mut self.dram,
                &mut self.ledger,
                addr,
                data,
                AccessMode::Streaming,
                pool,
            ),
        }
    }

    fn flush(&mut self, path: DataPath, pool: &WorkerPool) -> Result<(), ShefError> {
        match path {
            DataPath::Serial => self
                .es
                .flush(&mut self.shell, &mut self.dram, &mut self.ledger),
            DataPath::Parallel { .. } => {
                self.es
                    .flush_parallel(&mut self.shell, &mut self.dram, &mut self.ledger, pool)
            }
        }
    }
}

/// Applies one scheduled fault to the faulted instance.
fn inject(
    ev: &FaultEvent,
    s: &mut Setup,
    pool: &WorkerPool,
    path: DataPath,
    snapshots: &HashMap<u32, ReplaySnapshot>,
) -> bool {
    let chunk = u64::from(ev.chunk) % NUM_CHUNKS;
    match ev.class {
        FaultClass::DramBitFlip => {
            let addr = REGION_BASE + chunk * CHUNK as u64 + (ev.byte % CHUNK) as u64;
            let mut byte = s.dram.tamper_read(addr, 1);
            byte[0] ^= ev.flip.max(1);
            s.dram.tamper_write(addr, &byte);
            true
        }
        FaultClass::TagBitFlip => {
            let addr = TAG_BASE + chunk * TAG_LEN as u64 + (ev.byte % TAG_LEN) as u64;
            let mut byte = s.dram.tamper_read(addr, 1);
            byte[0] ^= ev.flip.max(1);
            s.dram.tamper_write(addr, &byte);
            true
        }
        FaultClass::CiphertextSplice => {
            let src = chunk;
            let dst = (chunk + 1) % NUM_CHUNKS;
            splice_chunks(
                &mut s.dram,
                REGION_BASE + src * CHUNK as u64,
                REGION_BASE + dst * CHUNK as u64,
                CHUNK,
                TAG_BASE + src * TAG_LEN as u64,
                TAG_BASE + dst * TAG_LEN as u64,
                TAG_LEN,
            );
            true
        }
        FaultClass::StaleReplay => {
            snapshots
                .get(&(chunk as u32))
                .expect("snapshot captured for every replay event")
                .replay(&mut s.dram);
            true
        }
        FaultClass::LanePanic | FaultClass::LanePanicSticky => {
            if matches!(path, DataPath::Serial) {
                // The serial path has no lanes to kill: structurally
                // masked (reported as such if nothing else fires).
                return false;
            }
            let nth = (ev.byte % 4) as u64;
            if ev.class == FaultClass::LanePanic {
                pool.arm_lane_panic(nth);
            } else {
                pool.arm_lane_panic_sticky(nth);
            }
            true
        }
        _ => unreachable!("non-memory class in a memory scenario"),
    }
}

/// Maps an (injected class, surfaced error) pair to a verdict. An
/// error kind the class cannot legitimately produce is a broken
/// detection contract and fails the gate.
fn classify(class: FaultClass, err: &ShefError) -> Verdict {
    match (class, err) {
        (FaultClass::DramBitFlip | FaultClass::TagBitFlip, ShefError::IntegrityViolation(_)) => {
            Verdict::DetectedSpoof
        }
        (FaultClass::CiphertextSplice, ShefError::IntegrityViolation(_)) => Verdict::DetectedSplice,
        (FaultClass::StaleReplay, ShefError::IntegrityViolation(_)) => Verdict::DetectedReplay,
        (
            FaultClass::LanePanic | FaultClass::LanePanicSticky,
            ShefError::Fault(ShieldFault::LanePanic { .. }),
        ) => Verdict::Drained,
        (FaultClass::WireTruncate, ShefError::Malformed(_)) => Verdict::DetectedSpoof,
        (
            FaultClass::WireCorrupt,
            ShefError::IntegrityViolation(_) | ShefError::Malformed(_) | ShefError::Crypto(_),
        ) => Verdict::DetectedSpoof,
        (FaultClass::WireCorrupt | FaultClass::WireTruncate, ShefError::ProtocolViolation(_)) => {
            Verdict::DetectedReplay
        }
        (
            FaultClass::RegisterTamper,
            ShefError::Crypto(_) | ShefError::IntegrityViolation(_) | ShefError::Malformed(_),
        ) => Verdict::DetectedSpoof,
        _ => Verdict::SilentCorruption,
    }
}

/// Classifies against every injected class, taking the first match.
fn classify_any(classes: &[FaultClass], err: &ShefError) -> Verdict {
    for &c in classes {
        let v = classify(c, err);
        if v != Verdict::SilentCorruption {
            return v;
        }
    }
    Verdict::SilentCorruption
}

/// Settles a faulted-run failure: classifies the error, then probes
/// the containment contract that the error kind implies.
fn settle_failure(
    plan: &FaultPlan,
    injected: &[FaultClass],
    err: &ShefError,
    faulted: &mut Setup,
    pool: &WorkerPool,
) -> ScenarioReport {
    let verdict = classify_any(injected, err);
    if verdict == Verdict::SilentCorruption {
        return ScenarioReport::forbidden(format!(
            "unexpected error kind for injected {:?}: {err}",
            injected
        ));
    }
    let probe = match err {
        ShefError::IntegrityViolation(_) => {
            // Detection must poison the engine set: the next access is
            // rejected until containment is explicitly cleared.
            let next = faulted.read(plan.path, pool, 0, 1);
            match next {
                Err(ShefError::Fault(ShieldFault::Poisoned { .. })) => Some(Verdict::Poisoned),
                other => {
                    return ScenarioReport::forbidden(format!(
                        "containment breach: post-detection access returned {other:?}"
                    ))
                }
            }
        }
        ShefError::Fault(ShieldFault::LanePanic { .. }) => {
            // A lane death must drain, not poison: the set stays live,
            // the buffer flushes, and a full readback either succeeds
            // or surfaces a *detection* of a co-injected memory fault.
            pool.disarm_lane_panic();
            let drained = faulted
                .flush(plan.path, pool)
                .and_then(|()| faulted.read(plan.path, pool, 0, REGION_LEN as usize));
            match drained {
                Ok(_) => Some(Verdict::Drained),
                Err(ShefError::IntegrityViolation(_))
                    if injected.iter().any(|c| !c.uses_pool()) =>
                {
                    Some(Verdict::Drained)
                }
                Err(e) => {
                    return ScenarioReport::forbidden(format!(
                        "batch not drained after lane death: {e}"
                    ))
                }
            }
        }
        _ => None,
    };
    ScenarioReport {
        verdict,
        probe,
        detail: format!("error: {err}"),
    }
}

fn run_memory_plan(plan: &FaultPlan) -> ScenarioReport {
    let ops = trace(plan.seed, plan.ops);
    let mut golden = setup(plan.scheme);
    let mut faulted = setup(plan.scheme);
    let golden_pool = WorkerPool::new(1);
    let pool = WorkerPool::new(plan.path.lanes());
    // Stale snapshots are captured at provision time (epoch 0) so a
    // later replay actually rolls the chunk back.
    let mut snapshots: HashMap<u32, ReplaySnapshot> = HashMap::new();
    for ev in &plan.events {
        if ev.class == FaultClass::StaleReplay {
            let chunk = u64::from(ev.chunk) % NUM_CHUNKS;
            snapshots.entry(chunk as u32).or_insert_with(|| {
                ReplaySnapshot::capture(
                    &faulted.dram,
                    REGION_BASE + chunk * CHUNK as u64,
                    CHUNK,
                    TAG_BASE + chunk * TAG_LEN as u64,
                    TAG_LEN,
                )
            });
        }
    }
    let mut injected: Vec<FaultClass> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        for ev in plan.events.iter().filter(|e| e.at_op == i) {
            if inject(ev, &mut faulted, &pool, plan.path, &snapshots) {
                injected.push(ev.class);
            }
        }
        let step = match *op {
            Op::Read { offset, len } => {
                let want = golden
                    .read(DataPath::Serial, &golden_pool, offset, len)
                    .expect("golden trace is fault-free");
                match faulted.read(plan.path, &pool, offset, len) {
                    Ok(got) if got == want => Ok(()),
                    Ok(_) => {
                        return ScenarioReport::forbidden(format!(
                            "read at op {i} returned wrong bytes without an error"
                        ))
                    }
                    Err(e) => Err(e),
                }
            }
            Op::Write { offset, len, fill } => {
                let data: Vec<u8> = (0..len).map(|j| fill.wrapping_add(j as u8)).collect();
                golden
                    .write(DataPath::Serial, &golden_pool, offset, &data)
                    .expect("golden trace is fault-free");
                faulted.write(plan.path, &pool, offset, &data)
            }
            Op::Flush => {
                golden
                    .flush(DataPath::Serial, &golden_pool)
                    .expect("golden trace is fault-free");
                faulted.flush(plan.path, &pool)
            }
        };
        if let Err(e) = step {
            if injected.is_empty() {
                return ScenarioReport::forbidden(format!(
                    "fault-free prefix failed at op {i}: {e}"
                ));
            }
            return settle_failure(plan, &injected, &e, &mut faulted, &pool);
        }
    }
    // The trace completed without an error: sweep for latent faults,
    // then require byte-identity with the golden twin.
    pool.disarm_lane_panic();
    if let Err(e) = faulted.flush(plan.path, &pool) {
        if injected.is_empty() {
            return ScenarioReport::forbidden(format!("fault-free final flush failed: {e}"));
        }
        return settle_failure(plan, &injected, &e, &mut faulted, &pool);
    }
    golden
        .flush(DataPath::Serial, &golden_pool)
        .expect("golden trace is fault-free");
    let want = golden
        .read(DataPath::Serial, &golden_pool, 0, REGION_LEN as usize)
        .expect("golden trace is fault-free");
    match faulted.read(plan.path, &pool, 0, REGION_LEN as usize) {
        Ok(got) if got == want => {}
        Ok(_) => return ScenarioReport::forbidden("final readback differs from golden twin"),
        Err(e) => {
            if injected.is_empty() {
                return ScenarioReport::forbidden(format!("fault-free final readback failed: {e}"));
            }
            return settle_failure(plan, &injected, &e, &mut faulted, &pool);
        }
    }
    let stats = faulted.es.stats();
    let (verdict, detail) = if stats.recovered_retries > 0 {
        (
            Verdict::RecoveredAfterRetry,
            format!(
                "{} job(s) recovered by the bounded retry",
                stats.recovered_retries
            ),
        )
    } else if stats.drained_seals > 0 {
        (
            Verdict::Drained,
            format!("{} victim seal(s) drained inline", stats.drained_seals),
        )
    } else if plan.events.is_empty() {
        (
            Verdict::Clean,
            "fault-free plan, byte-identical".to_string(),
        )
    } else {
        (
            Verdict::Masked,
            "fault injected but never consumed".to_string(),
        )
    };
    ScenarioReport {
        verdict,
        probe: None,
        detail,
    }
}

// ---------------------------------------------------------------------
// Wire / register / debug-port scenarios
// ---------------------------------------------------------------------

fn run_wire_plan(plan: &FaultPlan, ev: &FaultEvent) -> ScenarioReport {
    let dek = DataEncryptionKey::from_bytes([0x5Fu8; 32]);
    let mut client_side = StreamEndpoint::client_side(&dek, "pcie0", MacAlgorithm::HmacSha256);
    let mut shield_side = StreamEndpoint::shield_side(&dek, "pcie0", MacAlgorithm::HmacSha256);
    let mut rng = Lcg(plan.seed);
    for i in 0..plan.ops {
        let len = 1 + rng.below(128) as usize;
        let payload: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        let frame = client_side.send(&payload);
        let mut bytes = frame.to_bytes();
        if i == ev.at_op {
            match ev.class {
                FaultClass::WireTruncate => bytes.truncate(ev.byte % bytes.len()),
                FaultClass::WireCorrupt => {
                    let pos = ev.byte % bytes.len();
                    bytes[pos] ^= ev.flip.max(1);
                }
                _ => unreachable!("non-wire class in a wire scenario"),
            }
        }
        let received = StreamFrame::from_bytes(&bytes).and_then(|f| shield_side.recv(&f));
        match received {
            Ok(got) => {
                if got != payload {
                    return ScenarioReport::forbidden(format!(
                        "frame {i} accepted with wrong payload"
                    ));
                }
                if i == ev.at_op {
                    // The flip landed on bytes the decoder never
                    // consumed is impossible here (every frame byte is
                    // load-bearing), but stay honest if it ever isn't.
                    return ScenarioReport {
                        verdict: Verdict::Masked,
                        probe: None,
                        detail: "tampered frame decoded to the original payload".into(),
                    };
                }
            }
            Err(e) if i == ev.at_op => {
                let verdict = classify(ev.class, &e);
                if verdict == Verdict::SilentCorruption {
                    return ScenarioReport::forbidden(format!(
                        "unexpected error kind for {}: {e}",
                        ev.class.as_str()
                    ));
                }
                // Recovery probe: the receiver must not have advanced
                // its window on the rejected frame — a clean
                // retransmission of the same frame is accepted.
                return match shield_side.recv(&frame) {
                    Ok(got) if got == payload => ScenarioReport {
                        verdict,
                        probe: None,
                        detail: format!("error: {e}; clean retransmit accepted"),
                    },
                    other => ScenarioReport::forbidden(format!(
                        "retransmit after rejected frame failed: {other:?}"
                    )),
                };
            }
            Err(e) => return ScenarioReport::forbidden(format!("clean frame {i} rejected: {e}")),
        }
    }
    ScenarioReport {
        verdict: Verdict::Masked,
        probe: None,
        detail: "fault op beyond trace end".into(),
    }
}

fn run_register_plan(plan: &FaultPlan, ev: &FaultEvent) -> ScenarioReport {
    let dek = DataEncryptionKey::from_bytes([0x5Fu8; 32]);
    let mut regif = RegisterInterface::new(RegisterInterfaceConfig::default());
    regif.set_key(dek.register_key());
    let mut client_key = dek.register_key();
    let mut rng = Lcg(plan.seed);
    let mut expected: HashMap<usize, u64> = HashMap::new();
    for i in 0..plan.ops {
        let index = rng.below(8) as usize;
        let value = rng.next();
        let mut sealed = match RegisterInterface::client_seal_value(&mut client_key, index, value) {
            Ok(s) => s,
            Err(e) => return ScenarioReport::forbidden(format!("client seal failed: {e}")),
        };
        if i == ev.at_op {
            let pos = ev.byte % sealed.ciphertext.len();
            sealed.ciphertext[pos] ^= ev.flip.max(1);
        }
        match regif.host_write(index, &sealed) {
            Ok(()) if i == ev.at_op => {
                return ScenarioReport::forbidden("tampered register write accepted")
            }
            Ok(()) => {
                expected.insert(index, value);
                if regif.accel_read(index) != value {
                    return ScenarioReport::forbidden("register landed with wrong value");
                }
            }
            Err(e) if i == ev.at_op => {
                let verdict = classify(ev.class, &e);
                if verdict == Verdict::SilentCorruption {
                    return ScenarioReport::forbidden(format!(
                        "unexpected error kind for register tamper: {e}"
                    ));
                }
                // Containment probe: the rejected write must not have
                // touched the register file.
                let now = regif.accel_read(index);
                let want = expected.get(&index).copied().unwrap_or(0);
                if now != want {
                    return ScenarioReport::forbidden(format!(
                        "rejected register write still landed ({now:#x} != {want:#x})"
                    ));
                }
                return ScenarioReport {
                    verdict,
                    probe: None,
                    detail: format!("error: {e}; register file unchanged"),
                };
            }
            Err(e) => {
                return ScenarioReport::forbidden(format!("clean register write rejected: {e}"))
            }
        }
    }
    ScenarioReport {
        verdict: Verdict::Masked,
        probe: None,
        detail: "fault op beyond trace end".into(),
    }
}

fn run_debug_port_plan(plan: &FaultPlan) -> ScenarioReport {
    let mut ports = DebugPorts::new();
    ports.arm_monitors();
    let port = [DebugPort::Jtag, DebugPort::Icap, DebugPort::VirtualJtag][(plan.seed % 3) as usize];
    match ports.adversarial_access(port, "injected debug-port poke") {
        PortAccessOutcome::BlockedAndLogged => {
            if ports.pending_events().is_empty() {
                return ScenarioReport::forbidden("blocked access left no tamper event");
            }
            ScenarioReport {
                verdict: Verdict::DetectedSpoof,
                probe: None,
                detail: format!("{port:?} poke blocked and logged"),
            }
        }
        outcome => ScenarioReport::forbidden(format!(
            "monitored debug-port poke not blocked: {outcome:?}"
        )),
    }
}

// ---------------------------------------------------------------------
// Multi-tenant service scenarios
// ---------------------------------------------------------------------

/// Chunks usable by a service trace; the last chunk of the region is
/// reserved for the post-fault recovery probe.
const SERVICE_USABLE_CHUNKS: u64 = NUM_CHUNKS - 1;
const SERVICE_PROBE_CHUNK: u64 = NUM_CHUNKS - 1;

/// One planned service request plus the payload a correct run must
/// return for it (reads carry the plaintext the per-tenant FIFO order
/// guarantees; writes and flushes complete with no payload).
struct PlannedRequest {
    request: ServiceRequest,
    is_read: bool,
    expect: Option<Vec<u8>>,
}

/// Full-chunk request trace for one tenant: starts with a write + read
/// of the same chunk (so every trace has at least one read to target),
/// then mixes writes, reads of previously written chunks, and flushes.
/// The expected payloads are simulated sequentially, which is exactly
/// the per-tenant FIFO order the service guarantees.
fn service_trace(rng: &mut Lcg, ops: usize) -> Vec<PlannedRequest> {
    let chunk_data =
        |fill: u8| -> Vec<u8> { (0..CHUNK).map(|j| fill.wrapping_add(j as u8)).collect() };
    let addr = |chunk: u64| REGION_BASE + chunk * CHUNK as u64;
    // BTreeMap: `keys()` feeds read-target selection, which must be
    // deterministic across processes.
    let mut model: std::collections::BTreeMap<u64, Vec<u8>> = std::collections::BTreeMap::new();
    let mut out = Vec::with_capacity(ops.max(2));
    let first = rng.below(SERVICE_USABLE_CHUNKS);
    let data = chunk_data(rng.below(256) as u8);
    model.insert(first, data.clone());
    out.push(PlannedRequest {
        request: ServiceRequest::Write {
            addr: addr(first),
            data,
            mode: AccessMode::Streaming,
        },
        is_read: false,
        expect: None,
    });
    out.push(PlannedRequest {
        request: ServiceRequest::Read {
            addr: addr(first),
            len: CHUNK,
            mode: AccessMode::Streaming,
        },
        is_read: true,
        expect: Some(model[&first].clone()),
    });
    while out.len() < ops.max(2) {
        let kind = rng.below(100);
        if kind < 50 {
            let chunk = rng.below(SERVICE_USABLE_CHUNKS);
            let data = chunk_data(rng.below(256) as u8);
            model.insert(chunk, data.clone());
            out.push(PlannedRequest {
                request: ServiceRequest::Write {
                    addr: addr(chunk),
                    data,
                    mode: AccessMode::Streaming,
                },
                is_read: false,
                expect: None,
            });
        } else if kind < 90 {
            let written: Vec<u64> = model.keys().copied().collect();
            let chunk = written[rng.below(written.len() as u64) as usize];
            out.push(PlannedRequest {
                request: ServiceRequest::Read {
                    addr: addr(chunk),
                    len: CHUNK,
                    mode: AccessMode::Streaming,
                },
                is_read: true,
                expect: Some(model[&chunk].clone()),
            });
        } else {
            out.push(PlannedRequest {
                request: ServiceRequest::Flush,
                is_read: false,
                expect: None,
            });
        }
    }
    out
}

/// The Shield config every campaign tenant runs: same region geometry
/// as the engine-set scenarios, scheme-selected replay defence.
fn service_shield_config(scheme: Scheme) -> ShieldConfig {
    let (counters, merkle) = match scheme {
        Scheme::MacOnly => (false, None),
        Scheme::Counters => (true, None),
        Scheme::Merkle => (
            false,
            Some(MerkleConfig {
                arity: 4,
                node_cache_bytes: 512,
            }),
        ),
    };
    ShieldConfig::builder()
        .region(
            "fault",
            MemRange::new(REGION_BASE, REGION_LEN),
            EngineSetConfig {
                chunk_size: CHUNK,
                buffer_bytes: CHUNK * BUFFER_LINES,
                counters,
                merkle,
                ..EngineSetConfig::default()
            },
        )
        .build()
        .expect("service campaign config is valid")
}

/// Drives a full victim + bystander round trip on the probe chunk and
/// reports whether the service still serves the tenant correctly.
fn service_probe(service: &mut ShieldService, tenant: TenantId) -> Result<(), String> {
    let addr = REGION_BASE + SERVICE_PROBE_CHUNK * CHUNK as u64;
    let data = vec![0x7Du8; CHUNK];
    let write = service
        .submit(
            tenant,
            ServiceRequest::Write {
                addr,
                data: data.clone(),
                mode: AccessMode::Streaming,
            },
        )
        .map_err(|e| format!("probe write refused: {e}"))?;
    let read = service
        .submit(
            tenant,
            ServiceRequest::Read {
                addr,
                len: CHUNK,
                mode: AccessMode::Streaming,
            },
        )
        .map_err(|e| format!("probe read refused: {e}"))?;
    let completions = service.drain();
    for want in [write, read] {
        match completions.iter().find(|c| c.request == want) {
            None => return Err("probe request lost".into()),
            Some(c) => match &c.payload {
                Ok(Some(bytes)) if c.request == read && *bytes != data => {
                    return Err("probe read returned wrong bytes".into())
                }
                Ok(_) => {}
                Err(e) => return Err(format!("probe request failed: {e}")),
            },
        }
    }
    Ok(())
}

/// Checks one tenant's completions against its planned trace: every
/// request must complete, and — unless `skip_after_error` relaxes the
/// content check past a surfaced fault — every successful read must
/// return the FIFO-ordered expected plaintext.
fn check_tenant_completions(
    who: &str,
    planned: &[(RequestId, usize)],
    trace: &[PlannedRequest],
    completions: &[Completion],
    allow: &dyn Fn(&ShefError) -> bool,
    skip_after_error: bool,
) -> Result<usize, ScenarioReport> {
    let mut errors = 0usize;
    for &(id, idx) in planned {
        let Some(c) = completions.iter().find(|c| c.request == id) else {
            return Err(ScenarioReport {
                verdict: Verdict::Hang,
                probe: None,
                detail: format!("{who} request {idx} admitted but never completed"),
            });
        };
        match &c.payload {
            Ok(payload) => {
                if errors > 0 && skip_after_error {
                    continue;
                }
                if trace[idx].is_read && payload.as_deref() != trace[idx].expect.as_deref() {
                    return Err(ScenarioReport::forbidden(format!(
                        "{who} read {idx} returned wrong bytes without an error"
                    )));
                }
            }
            Err(e) if allow(e) => errors += 1,
            Err(e) => {
                return Err(ScenarioReport::forbidden(format!(
                    "unexpected error kind on {who} request {idx}: {e}"
                )))
            }
        }
    }
    Ok(errors)
}

/// Runs a multi-tenant [`ShieldService`] scenario: a victim and a
/// bystander tenant (on different shards) each submit a full request
/// trace; the fault is injected at the service layer — an admitted
/// request dropped from the queue, a sticky lane panic inside the
/// victim's shard, or a mid-batch tenant abort. The contract: every
/// admitted request still completes (no starvation), the fault surfaces
/// as an explicit error on the victim only, and the bystander's trace
/// is byte-exact throughout.
fn run_service_plan(plan: &FaultPlan, ev: &FaultEvent) -> ScenarioReport {
    let lanes = plan.path.lanes();
    let master = DataEncryptionKey::from_bytes([0x5Fu8; 32]);
    let config = ServiceConfig {
        shards: 2,
        lanes_per_shard: lanes,
        queue_capacity: 4 * DEFAULT_OPS,
        tenant_quota: 2 * DEFAULT_OPS,
    };
    // Tenants enter through the full remote-attestation flow: the
    // owner-derived DEK is sealed to the enclave session and the
    // service admits only the redeemed credential.
    let mut env = match AttestationEnvironment::new(b"testkit.service-plan") {
        Ok(e) => e,
        Err(e) => return ScenarioReport::forbidden(format!("attestation fixture failed: {e}")),
    };
    let mut service = match ShieldService::new(config, env.verifier_public()) {
        Ok(s) => s,
        Err(e) => return ScenarioReport::forbidden(format!("service construction failed: {e}")),
    };
    let mut tenants = Vec::new();
    for name in ["victim", "bystander"] {
        let grant = match env.onboard(name, master.tenant_key(name).to_bytes()) {
            Ok(g) => g,
            Err(e) => return ScenarioReport::forbidden(format!("tenant attestation failed: {e}")),
        };
        match service.register_tenant(name, service_shield_config(plan.scheme), &grant) {
            Ok(id) => tenants.push(id),
            Err(e) => return ScenarioReport::forbidden(format!("tenant registration failed: {e}")),
        }
    }
    let (victim, bystander) = (tenants[0], tenants[1]);

    // Same per-tenant trace shape, independently seeded.
    let mut rng = Lcg(plan
        .seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(3));
    let victim_trace = service_trace(&mut rng, plan.ops);
    let bystander_trace = service_trace(&mut rng, plan.ops);

    // Interleaved admission; remember every (RequestId, trace index).
    let mut victim_ids: Vec<(RequestId, usize)> = Vec::new();
    let mut bystander_ids: Vec<(RequestId, usize)> = Vec::new();
    for i in 0..victim_trace.len().max(bystander_trace.len()) {
        for (tenant, trace, ids) in [
            (victim, &victim_trace, &mut victim_ids),
            (bystander, &bystander_trace, &mut bystander_ids),
        ] {
            if let Some(planned) = trace.get(i) {
                match service.submit(tenant, planned.request.clone()) {
                    Ok(id) => ids.push((id, i)),
                    Err(e) => {
                        return ScenarioReport::forbidden(format!("clean submission rejected: {e}"))
                    }
                }
            }
        }
    }

    // Inject the service-layer fault while the queue is full.
    let mut dropped: Option<RequestId> = None;
    match ev.class {
        FaultClass::AdmissionDrop => {
            let reads: Vec<RequestId> = victim_ids
                .iter()
                .filter(|&&(_, idx)| victim_trace[idx].is_read)
                .map(|&(id, _)| id)
                .collect();
            let target = reads[ev.at_op % reads.len()];
            if !service.inject_queue_drop(target) {
                return ScenarioReport {
                    verdict: Verdict::Masked,
                    probe: None,
                    detail: "drop target was not queued".into(),
                };
            }
            dropped = Some(target);
        }
        FaultClass::ShardPanic => {
            let shard = service.tenant_shard(victim);
            service
                .shard(shard)
                .pool()
                .arm_lane_panic_sticky((ev.byte % 4) as u64);
        }
        FaultClass::TenantAbort => service.abort_tenant(victim),
        _ => unreachable!("non-service class in a service scenario"),
    }

    let completions = service.drain();
    let admitted = victim_ids.len() + bystander_ids.len();
    if completions.len() != admitted {
        return ScenarioReport {
            verdict: Verdict::Hang,
            probe: None,
            detail: format!(
                "{} of {admitted} admitted requests completed",
                completions.len()
            ),
        };
    }

    // The bystander shares nothing with the victim but the service: its
    // whole trace must be clean and byte-exact no matter the fault.
    if let Err(report) = check_tenant_completions(
        "bystander",
        &bystander_ids,
        &bystander_trace,
        &completions,
        &|_| false,
        false,
    ) {
        return ScenarioReport::forbidden(format!(
            "isolation breach ({}): {}",
            ev.class.as_str(),
            report.detail
        ));
    }

    match ev.class {
        FaultClass::AdmissionDrop => {
            let target = dropped.expect("drop armed above");
            let c = completions
                .iter()
                .find(|c| c.request == target)
                .expect("counted above");
            match &c.payload {
                Err(ShefError::Fault(ShieldFault::QueueDrop { tenant }))
                    if tenant.as_str() == "victim" => {}
                other => {
                    return ScenarioReport::forbidden(format!(
                        "dropped request completed as {other:?} instead of a queue-drop fault"
                    ))
                }
            }
            // Every *other* victim request is untouched by the drop.
            let rest: Vec<(RequestId, usize)> = victim_ids
                .iter()
                .copied()
                .filter(|&(id, _)| id != target)
                .collect();
            if let Err(report) = check_tenant_completions(
                "victim",
                &rest,
                &victim_trace,
                &completions,
                &|_| false,
                false,
            ) {
                return report;
            }
            ScenarioReport {
                verdict: Verdict::Drained,
                probe: None,
                detail: "queue drop surfaced explicitly; rest of the batch unaffected".into(),
            }
        }
        FaultClass::ShardPanic => {
            let errors = match check_tenant_completions(
                "victim",
                &victim_ids,
                &victim_trace,
                &completions,
                &|e| matches!(e, ShefError::Fault(ShieldFault::LanePanic { .. })),
                true,
            ) {
                Ok(n) => n,
                Err(report) => return report,
            };
            service
                .shard(service.tenant_shard(victim))
                .pool()
                .disarm_lane_panic();
            // A panic on a seal job is absorbed inline by the engine
            // (the victim seal still lands, no error surfaces); only a
            // panic on an unseal job errors the request. Both are the
            // drain contract — Masked is reserved for a panic that
            // never fired at all.
            let (panics, drained_seals) = service
                .tenant_shield(victim)
                .engine_stats()
                .iter()
                .fold((0u64, 0u64), |(p, d), (_, s)| {
                    (p + s.lane_panics, d + s.drained_seals)
                });
            if errors == 0 && panics == 0 {
                return ScenarioReport {
                    verdict: Verdict::Masked,
                    probe: None,
                    detail: "armed shard panic never fired".into(),
                };
            }
            if errors == 0 && drained_seals == 0 {
                return ScenarioReport::forbidden(
                    "shard panic fired but neither errored nor drained a seal".to_string(),
                );
            }
            match service_probe(&mut service, victim) {
                Ok(()) => ScenarioReport {
                    verdict: Verdict::Drained,
                    probe: Some(Verdict::Drained),
                    detail: format!(
                        "{errors} request(s) failed fast, {drained_seals} seal(s) drained inline; \
                         shard recovered"
                    ),
                },
                Err(e) => {
                    ScenarioReport::forbidden(format!("victim not drained after shard panic: {e}"))
                }
            }
        }
        FaultClass::TenantAbort => {
            for &(id, idx) in &victim_ids {
                let c = completions
                    .iter()
                    .find(|c| c.request == id)
                    .expect("counted above");
                match &c.payload {
                    Err(ShefError::Fault(ShieldFault::TenantAborted { tenant }))
                        if tenant.as_str() == "victim" => {}
                    other => {
                        return ScenarioReport::forbidden(format!(
                            "aborted tenant's request {idx} completed as {other:?}"
                        ))
                    }
                }
            }
            // Containment: new submissions stay fail-stopped until the
            // abort is cleared, then the tenant is fully readmitted.
            if !matches!(
                service.submit(
                    victim,
                    ServiceRequest::Read {
                        addr: REGION_BASE,
                        len: 1,
                        mode: AccessMode::Streaming,
                    },
                ),
                Err(ShefError::Fault(ShieldFault::TenantAborted { .. }))
            ) {
                return ScenarioReport::forbidden(
                    "post-abort submission was not fail-stopped".to_string(),
                );
            }
            service.clear_abort(victim);
            match service_probe(&mut service, victim) {
                Ok(()) => ScenarioReport {
                    verdict: Verdict::Poisoned,
                    probe: Some(Verdict::Poisoned),
                    detail: "mid-batch abort fail-stopped the whole batch; readmitted after clear"
                        .into(),
                },
                Err(e) => ScenarioReport::forbidden(format!(
                    "tenant not readmitted after abort cleared: {e}"
                )),
            }
        }
        _ => unreachable!("non-service class in a service scenario"),
    }
}

/// Builds the deterministic attestation fixture for a plan seed.
fn attest_env_for(seed: u64) -> Result<AttestationEnvironment, ScenarioReport> {
    AttestationEnvironment::new(&seed.to_le_bytes())
        .map_err(|e| ScenarioReport::forbidden(format!("attestation fixture failed: {e}")))
}

/// Splices the sealed-DEK section of ticket `b` into ticket `a` via the
/// canonical wire encoding — the attack an untrusted host relaying
/// tickets can mount without breaking any signature check the *kernel*
/// performs (the kernel trusts the GCM seal, not the verifier
/// signature, so the seal itself must bind the session).
fn splice_sealed_dek(a: &AttestationTicket, b: &AttestationTicket) -> Option<AttestationTicket> {
    // Ticket layout: len(tenant)‖tenant ‖ measurement[32] ‖ session[32]
    // ‖ len(sealed)‖sealed ‖ verifier_pub[32] ‖ signature[64], where
    // sealed = len(ct)‖ct[32] ‖ tag[16] → 56 bytes including prefixes.
    const SEALED_SECTION: usize = 4 + (4 + 32) + 16;
    let mut bytes = a.to_bytes();
    let b_bytes = b.to_bytes();
    let a_off = 4 + a.tenant().len() + 64;
    let b_off = 4 + b.tenant().len() + 64;
    bytes[a_off..a_off + SEALED_SECTION].copy_from_slice(&b_bytes[b_off..b_off + SEALED_SECTION]);
    AttestationTicket::from_bytes(&bytes).ok()
}

/// Runs a remote-attestation scenario: an honest device/verifier pair
/// is attacked mid-protocol with a forged quote signature, a replayed
/// transcript, an unregistered (tampered) Shield bitstream, or a
/// sealed-DEK blob spliced between sessions. The contract mirrors the
/// datapath scenarios: every attack must surface as its *typed*
/// `AttestError` (mapped to a detection verdict), and the honest
/// protocol round must still complete afterwards — the containment
/// probe reports [`Verdict::Clean`] when it does.
fn run_attest_plan(plan: &FaultPlan, ev: &FaultEvent) -> ScenarioReport {
    let mut env = match attest_env_for(plan.seed) {
        Ok(e) => e,
        Err(report) => return report,
    };
    let dek = [(plan.seed as u8) ^ 0x5A; 32];

    // Every scenario ends by proving the honest path still works; a
    // detection that bricks the honest tenant is containment done wrong.
    let honest_probe = |env: &mut AttestationEnvironment| -> Result<(), AttestError> {
        env.onboard("victim-probe", dek).map(|_| ())
    };

    match ev.class {
        FaultClass::AttestQuoteForge => {
            let challenge = env.verifier_mut().challenge();
            let mut quote = match env.kernel_mut().quote(&challenge) {
                Ok(q) => q,
                Err(e) => return ScenarioReport::forbidden(format!("honest quote failed: {e}")),
            };
            quote.signature.0[ev.byte % 64] ^= if ev.flip == 0 { 1 } else { ev.flip };
            match env
                .verifier_mut()
                .verify_and_provision(&quote, "victim", dek)
            {
                Err(AttestError::BadSignature(_)) => {}
                Ok(_) => {
                    return ScenarioReport::forbidden(
                        "forged quote signature was accepted".to_string(),
                    )
                }
                Err(other) => {
                    return ScenarioReport::forbidden(format!(
                        "forged quote rejected with wrong class: {other}"
                    ))
                }
            }
            // The failed forgery must not have burned the session: the
            // genuine kernel can still answer the same challenge.
            let genuine = match env.kernel_mut().quote(&challenge) {
                Ok(q) => q,
                Err(e) => return ScenarioReport::forbidden(format!("honest re-quote failed: {e}")),
            };
            match env
                .verifier_mut()
                .verify_and_provision(&genuine, "victim", dek)
            {
                Ok(_) => ScenarioReport {
                    verdict: Verdict::DetectedSpoof,
                    probe: Some(Verdict::Clean),
                    detail: "forged quote signature rejected; honest session preserved".into(),
                },
                Err(e) => {
                    ScenarioReport::forbidden(format!("forgery burned the honest session: {e}"))
                }
            }
        }
        FaultClass::AttestNonceReplay => {
            let challenge = env.verifier_mut().challenge();
            let quote = match env.kernel_mut().quote(&challenge) {
                Ok(q) => q,
                Err(e) => return ScenarioReport::forbidden(format!("honest quote failed: {e}")),
            };
            let ticket = match env
                .verifier_mut()
                .verify_and_provision(&quote, "victim", dek)
            {
                Ok(t) => t,
                Err(e) => return ScenarioReport::forbidden(format!("honest verify failed: {e}")),
            };
            if let Err(e) = env.kernel_mut().redeem(&ticket) {
                return ScenarioReport::forbidden(format!("honest redeem failed: {e}"));
            }
            // Replay the complete genuine transcript.
            match env
                .verifier_mut()
                .verify_and_provision(&quote, "victim", dek)
            {
                Err(AttestError::ReplayedNonce) => {}
                Ok(_) => {
                    return ScenarioReport::forbidden(
                        "replayed quote transcript was accepted".to_string(),
                    )
                }
                Err(other) => {
                    return ScenarioReport::forbidden(format!(
                        "replay rejected with wrong class: {other}"
                    ))
                }
            }
            // And the redeemed ticket is one-shot on-device.
            if !matches!(
                env.kernel_mut().redeem(&ticket),
                Err(AttestError::UnknownSession)
            ) {
                return ScenarioReport::forbidden(
                    "ticket redeemed twice on the kernel".to_string(),
                );
            }
            match honest_probe(&mut env) {
                Ok(()) => ScenarioReport {
                    verdict: Verdict::DetectedReplay,
                    probe: Some(Verdict::Clean),
                    detail: "replayed transcript and double-redeem rejected; fresh rounds fine"
                        .into(),
                },
                Err(e) => {
                    ScenarioReport::forbidden(format!("fresh round failed after replay: {e}"))
                }
            }
        }
        FaultClass::AttestWrongMeasurement => {
            // The adversary swaps in a Shield bitstream the Data Owner
            // never audited; the kernel measures honestly, so the quote
            // carries a digest outside the known-good registry.
            let mut rogue = shef_attest::env::DEMO_BITSTREAM.to_vec();
            let idx = ev.byte % rogue.len();
            rogue[idx] ^= if ev.flip == 0 { 1 } else { ev.flip };
            env.kernel_mut()
                .load_shield_bitstream(shef_attest::env::BITSTREAM_LABEL, &rogue);
            let challenge = env.verifier_mut().challenge();
            let quote = match env.kernel_mut().quote(&challenge) {
                Ok(q) => q,
                Err(e) => return ScenarioReport::forbidden(format!("quote failed: {e}")),
            };
            match env
                .verifier_mut()
                .verify_and_provision(&quote, "victim", dek)
            {
                Err(AttestError::UnknownMeasurement(_)) => {}
                Ok(_) => {
                    return ScenarioReport::forbidden(
                        "unregistered bitstream measurement was accepted".to_string(),
                    )
                }
                Err(other) => {
                    return ScenarioReport::forbidden(format!(
                        "wrong measurement rejected with wrong class: {other}"
                    ))
                }
            }
            // A pristine honest device still attests.
            let mut fresh = match attest_env_for(plan.seed.wrapping_add(1)) {
                Ok(e) => e,
                Err(report) => return report,
            };
            match honest_probe(&mut fresh) {
                Ok(()) => ScenarioReport {
                    verdict: Verdict::DetectedSpoof,
                    probe: Some(Verdict::Clean),
                    detail: "unknown measurement refused by the registry; honest device fine"
                        .into(),
                },
                Err(e) => ScenarioReport::forbidden(format!("honest device failed: {e}")),
            }
        }
        FaultClass::AttestDekTamper => {
            // Two sessions on the same kernel; the host splices the
            // bystander's sealed DEK into the victim's ticket.
            let ch_a = env.verifier_mut().challenge();
            let q_a = match env.kernel_mut().quote(&ch_a) {
                Ok(q) => q,
                Err(e) => return ScenarioReport::forbidden(format!("quote A failed: {e}")),
            };
            let t_a = match env.verifier_mut().verify_and_provision(&q_a, "victim", dek) {
                Ok(t) => t,
                Err(e) => return ScenarioReport::forbidden(format!("verify A failed: {e}")),
            };
            let ch_b = env.verifier_mut().challenge();
            let q_b = match env.kernel_mut().quote(&ch_b) {
                Ok(q) => q,
                Err(e) => return ScenarioReport::forbidden(format!("quote B failed: {e}")),
            };
            let t_b = match env
                .verifier_mut()
                .verify_and_provision(&q_b, "bystander", [0xB5u8; 32])
            {
                Ok(t) => t,
                Err(e) => return ScenarioReport::forbidden(format!("verify B failed: {e}")),
            };
            let Some(spliced) = splice_sealed_dek(&t_a, &t_b) else {
                return ScenarioReport::forbidden("spliced ticket failed to re-parse".to_string());
            };
            match env.kernel_mut().redeem(&spliced) {
                Err(AttestError::SealTamper(_)) => {}
                Ok(_) => {
                    return ScenarioReport::forbidden(
                        "cross-session sealed DEK splice was unsealed".to_string(),
                    )
                }
                Err(other) => {
                    return ScenarioReport::forbidden(format!(
                        "DEK splice rejected with wrong class: {other}"
                    ))
                }
            }
            // The failed redeem must not consume the session: the
            // genuine tickets both still redeem.
            match (env.kernel_mut().redeem(&t_a), env.kernel_mut().redeem(&t_b)) {
                (Ok(_), Ok(_)) => ScenarioReport {
                    verdict: Verdict::DetectedSplice,
                    probe: Some(Verdict::Clean),
                    detail: "spliced sealed DEK failed authenticated decryption; \
                             genuine tickets unaffected"
                        .into(),
                },
                (a, b) => ScenarioReport::forbidden(format!(
                    "splice attempt burned an honest session: victim={a:?} bystander={b:?}"
                )),
            }
        }
        _ => unreachable!("non-attest class in an attestation scenario"),
    }
}

/// Runs one plan to a verdict (see the module docs for the scenario
/// families). Plans whose events are all memory-class (or empty) run
/// the full LCG trace against twin engine sets; wire, register,
/// debug-port, multi-tenant service and remote-attestation plans run
/// their own protocol exchanges keyed off the first event.
#[must_use]
pub fn run_plan(plan: &FaultPlan) -> ScenarioReport {
    match plan.events.first() {
        None => run_memory_plan(plan),
        Some(ev) if plan.events.iter().all(|e| e.class.is_memory()) => {
            let _ = ev;
            run_memory_plan(plan)
        }
        Some(ev) => match ev.class {
            FaultClass::WireTruncate | FaultClass::WireCorrupt => run_wire_plan(plan, ev),
            FaultClass::RegisterTamper => run_register_plan(plan, ev),
            FaultClass::DebugPortPoke => run_debug_port_plan(plan),
            FaultClass::AdmissionDrop | FaultClass::ShardPanic | FaultClass::TenantAbort => {
                run_service_plan(plan, ev)
            }
            FaultClass::AttestQuoteForge
            | FaultClass::AttestNonceReplay
            | FaultClass::AttestWrongMeasurement
            | FaultClass::AttestDekTamper => run_attest_plan(plan, ev),
            _ => unreachable!("memory-class plans handled above"),
        },
    }
}

// ---------------------------------------------------------------------
// Campaign sweep + JSON verdict matrix
// ---------------------------------------------------------------------

/// One row of the campaign verdict matrix.
#[derive(Debug, Clone)]
pub struct CampaignRecord {
    /// Plan seed.
    pub seed: u64,
    /// Injected class, or `None` for a fault-free baseline scenario.
    pub class: Option<FaultClass>,
    /// Integrity scheme the scenario ran under.
    pub scheme: Scheme,
    /// Worker-pool lanes of the faulted run.
    pub lanes: usize,
    /// `"serial"` or `"parallel"`.
    pub path: &'static str,
    /// The scenario outcome.
    pub report: ScenarioReport,
}

impl CampaignRecord {
    /// Serializes as a single JSON object on one line (the CI gate is
    /// line-oriented; keep it that way).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let class = self.class.map_or("none", FaultClass::as_str);
        let point = self.class.map_or("none", |c| c.injection_point().as_str());
        let probe = self
            .report
            .probe
            .map_or_else(|| "null".to_string(), |p| format!("\"{p}\""));
        format!(
            "{{\"seed\": {}, \"class\": \"{}\", \"point\": \"{}\", \"scheme\": \"{}\", \"lanes\": {}, \"path\": \"{}\", \"verdict\": \"{}\", \"probe\": {}, \"allowed\": {}, \"detail\": \"{}\"}}",
            self.seed,
            class,
            point,
            self.scheme.as_str(),
            self.lanes,
            self.path,
            self.report.verdict,
            probe,
            self.report.is_allowed(),
            json_escape(&self.report.detail),
        )
    }
}

/// Mirrors campaign verdicts into a [`shef_telemetry::Telemetry`]
/// registry for the exported run report.
///
/// Binding pre-registers a `fault.verdict.<verdict>` counter for
/// **every** verdict in the taxonomy, so the forbidden ones
/// (`silent_corruption`, `hang`) appear in the report as explicit
/// zeros — which is what lets `scripts/check_report.sh` gate on them
/// instead of treating absence as success.
///
/// ```
/// use shef_telemetry::Telemetry;
/// use shef_testkit::{CampaignTelemetry, run_plan, DataPath, FaultClass, FaultPlan, Scheme};
///
/// let telemetry = Telemetry::new();
/// let tele = CampaignTelemetry::bind(&telemetry);
/// let report = run_plan(&FaultPlan::single(3, FaultClass::DramBitFlip, Scheme::MacOnly,
///     DataPath::Serial));
/// tele.record(&report);
/// let snapshot = telemetry.report();
/// assert!(snapshot.counters.iter().any(|(n, v)| n.as_str() == "fault.scenarios" && *v == 1));
/// assert!(snapshot.counters.iter().any(|(n, v)| n.as_str() == "fault.verdict.hang" && *v == 0));
/// ```
#[derive(Debug, Clone)]
pub struct CampaignTelemetry {
    scenarios: shef_telemetry::Counter,
    disallowed: shef_telemetry::Counter,
    verdicts: std::collections::BTreeMap<&'static str, shef_telemetry::Counter>,
}

impl CampaignTelemetry {
    /// Registers the campaign counters (all starting at zero) in
    /// `telemetry`.
    #[must_use]
    pub fn bind(telemetry: &shef_telemetry::Telemetry) -> Self {
        CampaignTelemetry {
            scenarios: telemetry.counter("fault.scenarios"),
            disallowed: telemetry.counter("fault.disallowed"),
            verdicts: Verdict::ALL
                .iter()
                .map(|v| {
                    (
                        v.as_str(),
                        telemetry.counter(&format!("fault.verdict.{}", v.as_str())),
                    )
                })
                .collect(),
        }
    }

    /// Counts one scenario outcome: the primary verdict, the
    /// containment-probe verdict (when present), and whether the
    /// scenario was allowlisted.
    pub fn record(&self, report: &ScenarioReport) {
        self.scenarios.inc();
        self.verdicts[report.verdict.as_str()].inc();
        if let Some(probe) = report.probe {
            self.verdicts[probe.as_str()].inc();
        }
        if !report.is_allowed() {
            self.disallowed.inc();
        }
    }
}

/// Builds the scenario plan for one campaign cell (shared between the
/// sweep and the serial-vs-parallel equivalence tests).
#[must_use]
pub fn campaign_plan(seed: u64, class: FaultClass, lanes: usize, path: DataPath) -> FaultPlan {
    let schemes = class.valid_schemes();
    let scheme = schemes[(seed as usize) % schemes.len()];
    let _ = lanes;
    FaultPlan::single(seed, class, scheme, path)
}

/// Sweeps seeds × fault classes × lane counts (plus fault-free
/// baselines) and returns the verdict matrix. Lane count 1 runs the
/// serial datapath for classes that do not need the pool.
#[must_use]
pub fn run_campaign(seeds: u64, lane_counts: &[usize]) -> Vec<CampaignRecord> {
    let mut records = Vec::new();
    for seed in 0..seeds {
        for class in FaultClass::ALL {
            for &lanes in lane_counts {
                let path = if lanes <= 1 && !class.uses_pool() {
                    DataPath::Serial
                } else {
                    DataPath::Parallel { lanes }
                };
                let plan = campaign_plan(seed, class, lanes, path);
                let report = run_plan(&plan);
                records.push(CampaignRecord {
                    seed,
                    class: Some(class),
                    scheme: plan.scheme,
                    lanes,
                    path: path.label(),
                    report,
                });
            }
        }
    }
    // Fault-free baselines: every scheme × lane count must be Clean.
    for scheme in Scheme::ALL {
        for &lanes in lane_counts {
            for (seed, path) in [
                (0u64, DataPath::Serial),
                (1u64, DataPath::Parallel { lanes }),
            ] {
                let plan = FaultPlan::clean(seed, scheme, path);
                let report = run_plan(&plan);
                records.push(CampaignRecord {
                    seed,
                    class: None,
                    scheme,
                    lanes,
                    path: path.label(),
                    report,
                });
            }
        }
    }
    records
}

/// Minimal JSON string escaping for detail fields.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_plans_are_clean_on_both_paths() {
        for scheme in Scheme::ALL {
            for path in [DataPath::Serial, DataPath::Parallel { lanes: 4 }] {
                let r = run_plan(&FaultPlan::clean(11, scheme, path));
                assert_eq!(r.verdict, Verdict::Clean, "{scheme:?} {path:?}: {r:?}");
            }
        }
    }

    #[test]
    fn every_class_yields_an_allowed_verdict() {
        for class in FaultClass::ALL {
            for (seed, path) in [
                (3u64, DataPath::Serial),
                (5u64, DataPath::Parallel { lanes: 4 }),
            ] {
                let plan = campaign_plan(seed, class, path.lanes(), path);
                let r = run_plan(&plan);
                assert!(
                    r.is_allowed(),
                    "{} on {}: {r:?}",
                    class.as_str(),
                    path.label()
                );
            }
        }
    }

    #[test]
    fn bit_flip_is_detected_and_poisons() {
        let plan = FaultPlan {
            seed: 1,
            scheme: Scheme::Counters,
            path: DataPath::Parallel { lanes: 2 },
            ops: DEFAULT_OPS,
            events: vec![FaultEvent {
                at_op: 0,
                class: FaultClass::DramBitFlip,
                chunk: 0,
                byte: 0,
                flip: 1,
            }],
        };
        let r = run_plan(&plan);
        // Chunk 0 is read by the final sweep at the latest, so the flip
        // is either detected (poison probe) or overwritten (masked).
        assert!(
            matches!(r.verdict, Verdict::DetectedSpoof | Verdict::Masked),
            "{r:?}"
        );
        if r.verdict == Verdict::DetectedSpoof {
            assert_eq!(r.probe, Some(Verdict::Poisoned), "{r:?}");
        }
    }

    #[test]
    fn json_lines_are_escaped() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
