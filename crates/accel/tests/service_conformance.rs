//! Service-vs-parallel conformance over the full accelerator suite:
//! `run_shielded_service` with a single tenant must be bit-identical to
//! `run_shielded_parallel` for every workload — same modelled cycles,
//! same cost ledger, same engine-set statistics, outputs verified
//! against the golden model — across 1, 2 and 4 lanes per shard. The
//! admission queue, shard arbiter and tenant key derivation may not
//! perturb the datapath by even one cycle.

use shef_accel::affine::AffineTransform;
use shef_accel::bitcoin::Bitcoin;
use shef_accel::conv::{ConvDims, Convolution};
use shef_accel::digitrec::DigitRecognition;
use shef_accel::dnnweaver::DnnWeaver;
use shef_accel::harness::{run_shielded_parallel, run_shielded_service};
use shef_accel::matmul::MatMul;
use shef_accel::sdp::{SdpEngineConfig, SdpOp, SdpStore};
use shef_accel::vecadd::VectorAdd;
use shef_accel::{Accelerator, CryptoProfile};
use shef_core::shield::{ServiceConfig, WorkerPool};

const SEED: u64 = 42;

fn assert_service_matches_parallel(name: &str, make: &dyn Fn() -> Box<dyn Accelerator>) {
    let profile = CryptoProfile::AES128_4X;
    for lanes in [1usize, 2, 4] {
        let pool = WorkerPool::new(lanes);
        let mut accel = make();
        let parallel = run_shielded_parallel(accel.as_mut(), &profile, SEED, &pool)
            .unwrap_or_else(|e| panic!("{name}: parallel run ({lanes} lanes) failed: {e}"));
        assert!(parallel.outputs_verified, "{name}: parallel not verified");

        let config = ServiceConfig {
            shards: 1,
            lanes_per_shard: lanes,
            queue_capacity: 64,
            tenant_quota: 16,
        };
        let service = run_shielded_service(make, &profile, SEED, 1, &config)
            .unwrap_or_else(|e| panic!("{name}: service run ({lanes} lanes) failed: {e}"));
        assert!(
            service.all_verified(),
            "{name}: service outputs ({lanes} lanes) not verified against the golden model"
        );
        assert_eq!(
            service.admitted, service.completed,
            "{name}: service lost an admitted request"
        );

        let tenant = &service.tenants[0];
        assert_eq!(
            tenant.cycles, parallel.cycles,
            "{name}: modelled cycles drifted at {lanes} lanes ({} != {})",
            tenant.cycles.0, parallel.cycles.0
        );
        assert_eq!(
            tenant.ledger, parallel.ledger,
            "{name}: cost ledger drifted at {lanes} lanes"
        );
        assert_eq!(
            tenant.engine_stats, parallel.engine_stats,
            "{name}: engine-set stats drifted at {lanes} lanes"
        );
    }
}

#[test]
fn vecadd_service_is_bit_identical() {
    assert_service_matches_parallel("vecadd", &|| Box::new(VectorAdd::new(16 * 1024, 3)));
}

#[test]
fn matmul_service_is_bit_identical() {
    assert_service_matches_parallel("matmul", &|| Box::new(MatMul::new(32, 9)));
}

#[test]
fn conv_service_is_bit_identical() {
    assert_service_matches_parallel("conv", &|| Box::new(Convolution::new(ConvDims::small(), 4)));
}

#[test]
fn digitrec_service_is_bit_identical() {
    assert_service_matches_parallel("digitrec", &|| Box::new(DigitRecognition::new(32, 50, 7)));
}

#[test]
fn affine_service_is_bit_identical() {
    assert_service_matches_parallel("affine", &|| Box::new(AffineTransform::new(64, 3)));
}

#[test]
fn dnnweaver_service_is_bit_identical() {
    assert_service_matches_parallel("dnnweaver", &|| Box::new(DnnWeaver::new(1, 5)));
}

#[test]
fn dnnweaver_merkle_service_is_bit_identical() {
    assert_service_matches_parallel("dnnweaver+merkle", &|| {
        Box::new(DnnWeaver::new(1, 5).with_merkle_fmap())
    });
}

#[test]
fn bitcoin_service_is_bit_identical() {
    assert_service_matches_parallel("bitcoin", &|| Box::new(Bitcoin::new(10, 3)));
}

#[test]
fn sdp_service_is_bit_identical() {
    let engines = SdpEngineConfig::table2_columns()[2].1;
    assert_service_matches_parallel("sdp", &|| {
        Box::new(SdpStore::new(
            4096,
            2,
            vec![SdpOp::Get(0), SdpOp::Put(1), SdpOp::Get(1)],
            engines,
            1,
        ))
    });
}

/// Multi-tenant sanity on top of the per-workload identity: with four
/// tenants on two shards every tenant still verifies, and tenants that
/// landed on the same shard report identical cycles (same workload,
/// same key-independent costs).
#[test]
fn four_tenants_two_shards_all_verify() {
    let config = ServiceConfig {
        shards: 2,
        lanes_per_shard: 2,
        queue_capacity: 64,
        tenant_quota: 16,
    };
    let report = run_shielded_service(
        &|| Box::new(VectorAdd::new(4 * 1024, 5)),
        &CryptoProfile::AES128_4X,
        SEED,
        4,
        &config,
    )
    .expect("service run");
    assert!(report.all_verified());
    assert_eq!(report.tenants.len(), 4);
    assert_eq!(report.admitted, report.completed);
    assert_eq!(report.shard_clocks.len(), 2);
    // All four tenants run the same workload; modelled per-tenant cost
    // is identical because crypto costs are length-based.
    let first = report.tenants[0].cycles;
    for t in &report.tenants {
        assert_eq!(t.cycles, first, "tenant {} cycles drifted", t.tenant);
    }
}
