//! The parallel multi-lane datapath must be a pure performance
//! transform: for every accelerator workload in the suite, a shielded
//! run through `run_shielded_parallel` has to produce bit-identical
//! outputs (the golden-model check inside the harness proves the bytes)
//! and identical functional engine-set statistics — same hits, misses,
//! write-backs and traffic — as the serial datapath. Only the modelled
//! cycles may change, and only downward.

use shef_accel::affine::AffineTransform;
use shef_accel::bitcoin::Bitcoin;
use shef_accel::conv::{ConvDims, Convolution};
use shef_accel::digitrec::DigitRecognition;
use shef_accel::dnnweaver::DnnWeaver;
use shef_accel::harness::{run_shielded, run_shielded_parallel};
use shef_accel::matmul::MatMul;
use shef_accel::sdp::{SdpEngineConfig, SdpOp, SdpStore};
use shef_accel::vecadd::VectorAdd;
use shef_accel::{Accelerator, CryptoProfile};
use shef_core::shield::{EngineSetStats, WorkerPool};

const SEED: u64 = 42;

/// The functional subset of the stats: everything except the
/// parallel-datapath observability counters, which legitimately differ.
fn functional(s: &EngineSetStats) -> (u64, u64, u64, u64, u64, u64, u64) {
    (
        s.hits,
        s.misses,
        s.writebacks,
        s.integrity_failures,
        s.bytes_read,
        s.bytes_written,
        s.zero_fills,
    )
}

fn assert_parallel_matches_serial(name: &str, make: &dyn Fn() -> Box<dyn Accelerator>) {
    let profile = CryptoProfile::AES128_4X;
    let mut accel = make();
    let serial = run_shielded(accel.as_mut(), &profile, SEED)
        .unwrap_or_else(|e| panic!("{name}: serial run failed: {e}"));
    assert!(
        serial.outputs_verified,
        "{name}: serial outputs not verified"
    );

    for lanes in [1usize, 2, 4] {
        let pool = WorkerPool::new(lanes);
        let mut accel = make();
        let parallel = run_shielded_parallel(accel.as_mut(), &profile, SEED, &pool)
            .unwrap_or_else(|e| panic!("{name}: parallel run ({lanes} lanes) failed: {e}"));
        assert!(
            parallel.outputs_verified,
            "{name}: parallel outputs ({lanes} lanes) not verified against the golden model"
        );

        // No counter drift: region-by-region functional stats equality.
        assert_eq!(
            serial.engine_stats.len(),
            parallel.engine_stats.len(),
            "{name}: engine-set count drifted"
        );
        for ((rs, ss), (rp, sp)) in serial.engine_stats.iter().zip(&parallel.engine_stats) {
            assert_eq!(rs, rp, "{name}: region order drifted");
            assert_eq!(
                functional(ss),
                functional(sp),
                "{name}: stats drift in region '{rs}' at {lanes} lanes"
            );
        }

        // The fan-out may only shrink the modelled time; with one lane
        // the charge is identical to the serial datapath by design.
        assert!(
            parallel.cycles <= serial.cycles,
            "{name}: {lanes} lanes slower than serial ({} > {})",
            parallel.cycles.0,
            serial.cycles.0
        );
        if lanes == 1 {
            assert_eq!(
                parallel.cycles, serial.cycles,
                "{name}: single-lane batching must cost exactly the serial path"
            );
        }
    }
}

#[test]
fn vecadd_parallel_is_bit_identical() {
    assert_parallel_matches_serial("vecadd", &|| Box::new(VectorAdd::new(16 * 1024, 3)));
}

#[test]
fn matmul_parallel_is_bit_identical() {
    assert_parallel_matches_serial("matmul", &|| Box::new(MatMul::new(32, 9)));
}

#[test]
fn conv_parallel_is_bit_identical() {
    assert_parallel_matches_serial("conv", &|| Box::new(Convolution::new(ConvDims::small(), 4)));
}

#[test]
fn digitrec_parallel_is_bit_identical() {
    assert_parallel_matches_serial("digitrec", &|| Box::new(DigitRecognition::new(32, 50, 7)));
}

#[test]
fn affine_parallel_is_bit_identical() {
    assert_parallel_matches_serial("affine", &|| Box::new(AffineTransform::new(64, 3)));
}

#[test]
fn dnnweaver_parallel_is_bit_identical() {
    assert_parallel_matches_serial("dnnweaver", &|| Box::new(DnnWeaver::new(1, 5)));
}

#[test]
fn dnnweaver_merkle_parallel_is_bit_identical() {
    assert_parallel_matches_serial("dnnweaver+merkle", &|| {
        Box::new(DnnWeaver::new(1, 5).with_merkle_fmap())
    });
}

#[test]
fn bitcoin_parallel_is_bit_identical() {
    assert_parallel_matches_serial("bitcoin", &|| Box::new(Bitcoin::new(10, 3)));
}

/// The fault-injection view of the same equivalence claim: for every
/// fault class, the *detection verdict* must not depend on the lane
/// count. A tampered chunk that is rejected by the serial datapath has
/// to be rejected — with the same taxonomy verdict — when the batch is
/// fanned out over 1, 2 or 4 lanes. Lane-death classes have no serial
/// counterpart (there is no lane to kill), so those are only required
/// to agree across the parallel lane counts.
#[test]
fn fault_verdicts_are_lane_count_invariant() {
    use shef_testkit::{campaign_plan, run_plan, DataPath, FaultClass};

    for class in FaultClass::ALL {
        for seed in [3u64, 17, 29] {
            let mut verdicts = Vec::new();
            if !class.uses_pool() {
                let plan = campaign_plan(seed, class, 1, DataPath::Serial);
                let report = run_plan(&plan);
                assert!(
                    report.is_allowed(),
                    "{} seed {seed} serial: {report:?}",
                    class.as_str()
                );
                verdicts.push(("serial", report.verdict));
            }
            for lanes in [1usize, 2, 4] {
                let plan = campaign_plan(seed, class, lanes, DataPath::Parallel { lanes });
                let report = run_plan(&plan);
                assert!(
                    report.is_allowed(),
                    "{} seed {seed} {lanes} lanes: {report:?}",
                    class.as_str()
                );
                verdicts.push(("parallel", report.verdict));
            }
            let (_, first) = verdicts[0];
            assert!(
                verdicts.iter().all(|&(_, v)| v == first),
                "{} seed {seed}: verdict drifted across lane counts: {verdicts:?}",
                class.as_str()
            );
        }
    }
}

#[test]
fn sdp_parallel_is_bit_identical() {
    let engines = SdpEngineConfig::table2_columns()[2].1;
    assert_parallel_matches_serial("sdp", &|| {
        Box::new(SdpStore::new(
            4096,
            2,
            vec![SdpOp::Get(0), SdpOp::Put(1), SdpOp::Get(1)],
            engines,
            1,
        ))
    });
}
