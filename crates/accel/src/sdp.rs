//! SDP: the GDPR-compliant storage node of §6.2.3 and Table 2.
//!
//! "We created an SDP accelerator that performs gets/puts using a
//! key-value store engine on top of the Shield. The Shield encrypts and
//! authenticates file accesses via the user key (to storage) and the TLS
//! key (to the application). … Table 2 shows normalized, steady-state
//! throughput overheads across Shield configurations for 1MB file
//! accesses, using a 4KB authentication block size. We used two
//! identical engine sets each with 16KB buffer — one for the storage
//! device and one for TLS."
//!
//! A `get` streams a file out of the storage region and re-emits it into
//! the TLS staging region (application-facing); a `put` goes the other
//! way. Both regions carry independent keys — exactly the paper's
//! "user key" / "TLS key" split, realized through per-region key
//! derivation.

use shef_core::shield::bus::MemoryBus;
use shef_core::shield::{AccessMode, EngineSetConfig, MemRange, ShieldConfig};
use shef_core::ShefError;
use shef_crypto::authenc::MacAlgorithm;

use crate::{workload_bytes, Accelerator, CryptoProfile, RegionData};

const STORAGE_BASE: u64 = 0;
const TLS_BASE: u64 = 8 << 30;
const BURST: usize = 4096;
/// KV datapath copy rate: bytes per cycle.
const COPY_BYTES_PER_CYCLE: u64 = 64;

/// One key-value operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SdpOp {
    /// Read file `i` from storage to the application (TLS) side.
    Get(usize),
    /// Write the application's buffer for slot `i` into storage.
    Put(usize),
}

/// One Table 2 engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SdpEngineConfig {
    /// AES engines per set.
    pub aes_engines: usize,
    /// S-box parallelism.
    pub sbox: shef_crypto::aes::SBoxParallelism,
    /// MAC family.
    pub mac: MacAlgorithm,
    /// MAC engines per set (the paper scales PMAC engines with AES).
    pub mac_engines: usize,
}

impl SdpEngineConfig {
    /// The five Table 2 columns, in order.
    #[must_use]
    pub fn table2_columns() -> [(&'static str, SdpEngineConfig); 5] {
        use shef_crypto::aes::SBoxParallelism::{X16, X4};
        [
            (
                "4xEng/4x/HMAC",
                SdpEngineConfig {
                    aes_engines: 4,
                    sbox: X4,
                    mac: MacAlgorithm::HmacSha256,
                    mac_engines: 1,
                },
            ),
            (
                "4xEng/16x/HMAC",
                SdpEngineConfig {
                    aes_engines: 4,
                    sbox: X16,
                    mac: MacAlgorithm::HmacSha256,
                    mac_engines: 1,
                },
            ),
            (
                "4xEng/16x/PMAC",
                SdpEngineConfig {
                    aes_engines: 4,
                    sbox: X16,
                    mac: MacAlgorithm::PmacAes,
                    mac_engines: 4,
                },
            ),
            (
                "8xEng/16x/PMAC",
                SdpEngineConfig {
                    aes_engines: 8,
                    sbox: X16,
                    mac: MacAlgorithm::PmacAes,
                    mac_engines: 8,
                },
            ),
            (
                "16xEng/16x/PMAC",
                SdpEngineConfig {
                    aes_engines: 16,
                    sbox: X16,
                    mac: MacAlgorithm::PmacAes,
                    mac_engines: 16,
                },
            ),
        ]
    }
}

/// The SDP storage-node accelerator.
#[derive(Debug, Clone)]
pub struct SdpStore {
    file_bytes: usize,
    n_files: usize,
    ops: Vec<SdpOp>,
    engines: SdpEngineConfig,
    files: Vec<u8>,
    app_buffers: Vec<u8>,
}

impl SdpStore {
    /// Creates a store with `n_files` files of `file_bytes` each and a
    /// workload of operations, under a Table 2 engine configuration.
    ///
    /// # Panics
    ///
    /// Panics if `file_bytes` is not a positive multiple of 4 KB, if
    /// there are no files, or if an op references a missing file.
    #[must_use]
    pub fn new(
        file_bytes: usize,
        n_files: usize,
        ops: Vec<SdpOp>,
        engines: SdpEngineConfig,
        seed: u64,
    ) -> Self {
        assert!(
            file_bytes > 0 && file_bytes.is_multiple_of(4096),
            "file size must be a positive multiple of 4 KB"
        );
        assert!(n_files > 0, "need at least one file");
        for op in &ops {
            let idx = match op {
                SdpOp::Get(i) | SdpOp::Put(i) => *i,
            };
            assert!(idx < n_files, "op references file {idx} beyond {n_files}");
        }
        SdpStore {
            file_bytes,
            n_files,
            ops,
            engines,
            files: workload_bytes(seed.wrapping_add(3000), file_bytes * n_files),
            app_buffers: workload_bytes(seed.wrapping_add(4000), file_bytes * n_files),
        }
    }

    /// The Table 2 workload: steady-state gets of 1 MB files.
    #[must_use]
    pub fn table2_workload(engines: SdpEngineConfig, seed: u64) -> Self {
        let n_files = 4;
        let ops = (0..n_files).map(SdpOp::Get).collect();
        Self::new(1 << 20, n_files, ops, engines, seed)
    }

    fn region_len(&self) -> u64 {
        (self.file_bytes * self.n_files) as u64
    }

    fn file_range(&self, i: usize) -> (u64, usize) {
        ((i * self.file_bytes) as u64, self.file_bytes)
    }
}

impl Accelerator for SdpStore {
    fn id(&self) -> &str {
        "sdp"
    }

    fn shield_config(&self, profile: &CryptoProfile) -> ShieldConfig {
        // Two identical engine sets, 16 KB buffers, C = 4 KB.
        let es = EngineSetConfig {
            aes_engines: self.engines.aes_engines,
            sbox: self.engines.sbox,
            key_size: profile.key_size,
            mac: self.engines.mac,
            mac_engines: self.engines.mac_engines,
            chunk_size: 4096,
            buffer_bytes: 16 * 1024,
            counters: false,
            zero_fill_writes: true,
            merkle: None,
        };
        ShieldConfig::builder()
            .region(
                "storage",
                MemRange::new(STORAGE_BASE, self.region_len()),
                es.clone(),
            )
            .region("tls", MemRange::new(TLS_BASE, self.region_len()), es)
            .build()
            .expect("sdp config is valid")
    }

    fn inputs(&self) -> Vec<RegionData> {
        let mut inputs = vec![RegionData::new("storage", self.files.clone())];
        // Application buffers for puts are staged in the TLS region.
        if self.ops.iter().any(|op| matches!(op, SdpOp::Put(_))) {
            inputs.push(RegionData::new("tls", self.app_buffers.clone()));
        }
        inputs
    }

    fn expected_outputs(&self) -> Vec<RegionData> {
        // Model the final state of both regions after the op sequence.
        let mut storage = self.files.clone();
        let mut tls = if self.ops.iter().any(|op| matches!(op, SdpOp::Put(_))) {
            self.app_buffers.clone()
        } else {
            vec![0u8; self.file_bytes * self.n_files]
        };
        for op in &self.ops {
            match op {
                SdpOp::Get(i) => {
                    let (off, len) = self.file_range(*i);
                    let off = off as usize;
                    tls[off..off + len].copy_from_slice(&storage[off..off + len]);
                }
                SdpOp::Put(i) => {
                    let (off, len) = self.file_range(*i);
                    let off = off as usize;
                    storage[off..off + len].copy_from_slice(&tls[off..off + len]);
                }
            }
        }
        // Only read back the file slots the workload actually wrote: a
        // `get` delivers through the TLS region, a `put` lands in
        // storage. (The paper measures get/put throughput, not a
        // full-store audit; reading back untouched slots would dilute
        // the measured overhead on both sides and, for never-written
        // slots, would not authenticate at all.)
        let mut got: Vec<usize> = Vec::new();
        let mut put: Vec<usize> = Vec::new();
        for op in &self.ops {
            match op {
                SdpOp::Get(i) if !got.contains(i) => got.push(*i),
                SdpOp::Put(i) if !put.contains(i) => put.push(*i),
                _ => {}
            }
        }
        let mut outputs = Vec::new();
        for i in got {
            let (off, len) = self.file_range(i);
            outputs.push(RegionData::at(
                "tls",
                off,
                tls[off as usize..off as usize + len].to_vec(),
            ));
        }
        for i in put {
            let (off, len) = self.file_range(i);
            outputs.push(RegionData::at(
                "storage",
                off,
                storage[off as usize..off as usize + len].to_vec(),
            ));
        }
        outputs
    }

    fn run(&mut self, bus: &mut dyn MemoryBus) -> Result<(), ShefError> {
        let ops = self.ops.clone();
        for op in ops {
            let (src_base, dst_base, idx) = match op {
                SdpOp::Get(i) => (STORAGE_BASE, TLS_BASE, i),
                SdpOp::Put(i) => (TLS_BASE, STORAGE_BASE, i),
            };
            let (off, len) = self.file_range(idx);
            let mut moved = 0usize;
            while moved < len {
                let take = BURST.min(len - moved);
                let data = bus.read(src_base + off + moved as u64, take, AccessMode::Streaming)?;
                bus.compute(take as u64 / COPY_BYTES_PER_CYCLE);
                bus.write(dst_base + off + moved as u64, &data, AccessMode::Streaming)?;
                moved += take;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_baseline, run_shielded};

    fn engines() -> SdpEngineConfig {
        SdpEngineConfig::table2_columns()[2].1 // 4xEng/16x/PMAC
    }

    #[test]
    fn gets_move_files_to_tls() {
        let mut s = SdpStore::new(4096, 2, vec![SdpOp::Get(0), SdpOp::Get(1)], engines(), 1);
        assert!(run_baseline(&mut s).unwrap().outputs_verified);
        let mut s = SdpStore::new(4096, 2, vec![SdpOp::Get(0), SdpOp::Get(1)], engines(), 1);
        assert!(
            run_shielded(&mut s, &CryptoProfile::AES128_16X, 2)
                .unwrap()
                .outputs_verified
        );
    }

    #[test]
    fn puts_move_buffers_to_storage() {
        let mut s = SdpStore::new(4096, 2, vec![SdpOp::Put(1)], engines(), 1);
        assert!(run_baseline(&mut s).unwrap().outputs_verified);
        let mut s = SdpStore::new(4096, 2, vec![SdpOp::Put(1)], engines(), 1);
        assert!(
            run_shielded(&mut s, &CryptoProfile::AES128_16X, 2)
                .unwrap()
                .outputs_verified
        );
    }

    #[test]
    fn pmac_configs_beat_hmac_configs() {
        // The Table 2 story in miniature.
        let cols = SdpEngineConfig::table2_columns();
        let hmac = cols[1].1;
        let pmac = cols[2].1;
        let mut s = SdpStore::new(64 * 1024, 1, vec![SdpOp::Get(0)], hmac, 3);
        let hmac_cycles = run_shielded(&mut s, &CryptoProfile::AES128_16X, 2)
            .unwrap()
            .cycles;
        let mut s = SdpStore::new(64 * 1024, 1, vec![SdpOp::Get(0)], pmac, 3);
        let pmac_cycles = run_shielded(&mut s, &CryptoProfile::AES128_16X, 2)
            .unwrap()
            .cycles;
        assert!(pmac_cycles < hmac_cycles);
    }

    #[test]
    fn table2_columns_are_the_paper_sweep() {
        let cols = SdpEngineConfig::table2_columns();
        assert_eq!(cols.len(), 5);
        assert_eq!(cols[0].1.aes_engines, 4);
        assert_eq!(cols[4].1.aes_engines, 16);
        assert_eq!(cols[0].1.mac, MacAlgorithm::HmacSha256);
        assert_eq!(cols[2].1.mac, MacAlgorithm::PmacAes);
    }

    #[test]
    #[should_panic(expected = "multiple of 4 KB")]
    fn bad_file_size_rejected() {
        let _ = SdpStore::new(1000, 1, vec![], engines(), 0);
    }

    #[test]
    #[should_panic(expected = "beyond")]
    fn out_of_range_op_rejected() {
        let _ = SdpStore::new(4096, 1, vec![SdpOp::Get(5)], engines(), 0);
    }
}
