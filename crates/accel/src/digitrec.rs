//! Digit recognition — the Rosetta MNIST workload of Fig. 6.
//!
//! Rosetta's digit recognition is a k-nearest-neighbour classifier over
//! bit-packed 196-byte digit images, with the training set baked into
//! on-chip ROM (part of the bitstream). Test images *stream in* and
//! labels *stream out* with no batching — hence the paper's
//! configuration: "2 engine sets for inputs and 1 engine set for outputs
//! with total 24KB and 12KB buffer, respectively, each with one AES and
//! HMAC engine … a large C_mem of 512 bytes" (overheads 1.85–3.15×).

use shef_core::shield::bus::MemoryBus;
use shef_core::shield::{AccessMode, EngineSetConfig, ShieldConfig};
use shef_core::ShefError;

use crate::{stripe_regions, with_profile, workload_bytes, Accelerator, CryptoProfile, RegionData};

const TEST_BASE: u64 = 0;
const LABEL_BASE: u64 = 1 << 30;
/// Bit-packed 28×28 digit: 49 u32 words.
pub const IMAGE_BYTES: usize = 196;
/// Twenty whole images per burst, so bursts never split an image.
const BURST: usize = IMAGE_BYTES * 20;
/// Training references compared per cycle by the parallel Hamming
/// array (the training set lives in on-chip ROM).
const PARALLEL_REFS: u64 = 64;

/// The digit-recognition accelerator (1-NN over Hamming distance).
#[derive(Debug, Clone)]
pub struct DigitRecognition {
    n_test: usize,
    n_train: usize,
    test: Vec<u8>,
    train: Vec<u8>,
    train_labels: Vec<u8>,
}

impl DigitRecognition {
    /// Creates a classifier with synthetic MNIST-shaped data.
    ///
    /// # Panics
    ///
    /// Panics if `n_test` is not a positive multiple of 32 or if
    /// `n_train` is zero. (Multiples of 32 keep the streaming regions
    /// chunk-aligned.)
    #[must_use]
    pub fn new(n_test: usize, n_train: usize, seed: u64) -> Self {
        assert!(
            n_test > 0 && n_test.is_multiple_of(32),
            "n_test must be a positive multiple of 32"
        );
        assert!(n_train > 0, "need at least one training image");
        let train = workload_bytes(seed.wrapping_add(1), n_train * IMAGE_BYTES);
        // Test images are noisy copies of random training images, so
        // nearest-neighbour has actual structure to find.
        let picks = workload_bytes(seed.wrapping_add(2), n_test * 8);
        let noise = workload_bytes(seed.wrapping_add(3), n_test * IMAGE_BYTES);
        let mut test = vec![0u8; n_test * IMAGE_BYTES];
        for t in 0..n_test {
            let pick = u64::from_le_bytes(picks[t * 8..(t + 1) * 8].try_into().expect("8 bytes"))
                as usize
                % n_train;
            for b in 0..IMAGE_BYTES {
                // Flip a sparse subset of bits as noise.
                let n = noise[t * IMAGE_BYTES + b];
                let flip = if n > 250 { 1u8 << (n % 8) } else { 0 };
                test[t * IMAGE_BYTES + b] = train[pick * IMAGE_BYTES + b] ^ flip;
            }
        }
        let train_labels: Vec<u8> = workload_bytes(seed.wrapping_add(4), n_train)
            .iter()
            .map(|b| b % 10)
            .collect();
        DigitRecognition {
            n_test,
            n_train,
            test,
            train,
            train_labels,
        }
    }

    fn classify(&self, image: &[u8]) -> u8 {
        let mut best = (u32::MAX, 0u8);
        for t in 0..self.n_train {
            let candidate = &self.train[t * IMAGE_BYTES..(t + 1) * IMAGE_BYTES];
            let dist: u32 = image
                .iter()
                .zip(candidate.iter())
                .map(|(a, b)| (a ^ b).count_ones())
                .sum();
            if dist < best.0 {
                best = (dist, self.train_labels[t]);
            }
        }
        best.1
    }

    fn golden_labels(&self) -> Vec<u8> {
        (0..self.n_test)
            .map(|i| self.classify(&self.test[i * IMAGE_BYTES..(i + 1) * IMAGE_BYTES]))
            .collect()
    }

    fn test_bytes(&self) -> usize {
        self.n_test * IMAGE_BYTES
    }

    /// Output region: 4 bytes per label, padded to chunk alignment.
    fn label_bytes(&self) -> usize {
        let raw = self.n_test * 4;
        raw.div_ceil(512) * 512
    }
}

impl Accelerator for DigitRecognition {
    fn id(&self) -> &str {
        "digitrec"
    }

    fn shield_config(&self, profile: &CryptoProfile) -> ShieldConfig {
        // Paper: 2 input sets (24 KB buffer total), 1 output set (12 KB),
        // C = 512 B, one AES + one HMAC each.
        let in_es = with_profile(
            EngineSetConfig {
                chunk_size: 512,
                buffer_bytes: 12 * 1024,
                ..EngineSetConfig::default()
            },
            profile,
        );
        let out_es = with_profile(
            EngineSetConfig {
                chunk_size: 512,
                buffer_bytes: 12 * 1024,
                zero_fill_writes: true,
                ..EngineSetConfig::default()
            },
            profile,
        );
        let test_len = (self.test_bytes() as u64).div_ceil(1024) * 1024;
        let mut builder = ShieldConfig::builder();
        builder = stripe_regions(builder, "digits", TEST_BASE, test_len, 2, &in_es);
        builder = builder.region(
            "labels",
            shef_core::shield::MemRange::new(LABEL_BASE, self.label_bytes() as u64),
            out_es,
        );
        builder.build().expect("digitrec config is valid")
    }

    fn inputs(&self) -> Vec<RegionData> {
        let test_len = self.test_bytes().div_ceil(1024) * 1024;
        let mut padded = self.test.clone();
        padded.resize(test_len, 0);
        let half = test_len / 2;
        vec![
            RegionData::new("digits0", padded[..half].to_vec()),
            RegionData::new("digits1", padded[half..].to_vec()),
        ]
    }

    fn expected_outputs(&self) -> Vec<RegionData> {
        let mut out = vec![0u8; self.label_bytes()];
        for (i, label) in self.golden_labels().iter().enumerate() {
            out[i * 4] = *label;
        }
        vec![RegionData::new("labels", out)]
    }

    fn run(&mut self, bus: &mut dyn MemoryBus) -> Result<(), ShefError> {
        let total = self.test_bytes();
        let mut labels = vec![0u8; self.label_bytes()];
        let mut offset = 0usize;
        while offset < total {
            let take = BURST.min(total - offset);
            let burst = bus.read(TEST_BASE + offset as u64, take, AccessMode::Streaming)?;
            for (i, image) in burst.chunks_exact(IMAGE_BYTES).enumerate() {
                let global_idx = (offset + i * IMAGE_BYTES) / IMAGE_BYTES;
                if global_idx < self.n_test {
                    labels[global_idx * 4] = self.classify(image);
                }
                bus.compute((self.n_train as u64).div_ceil(PARALLEL_REFS));
            }
            offset += take;
        }
        bus.write(LABEL_BASE, &labels, AccessMode::Streaming)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_baseline, run_shielded};

    #[test]
    fn classification_is_consistent_both_ways() {
        let mut d = DigitRecognition::new(32, 50, 7);
        assert!(run_baseline(&mut d).unwrap().outputs_verified);
        let mut d = DigitRecognition::new(32, 50, 7);
        assert!(
            run_shielded(&mut d, &CryptoProfile::AES256_16X, 5)
                .unwrap()
                .outputs_verified
        );
    }

    #[test]
    fn noiseless_copy_classifies_to_source_label() {
        let d = DigitRecognition::new(32, 20, 1);
        // Classifying a training image itself returns its own label
        // (distance zero beats everything).
        for t in [0usize, 7, 19] {
            let img = &d.train[t * IMAGE_BYTES..(t + 1) * IMAGE_BYTES];
            // There may be duplicate-distance ties only if another image
            // is identical; with random data that has negligible odds.
            assert_eq!(d.classify(img), d.train_labels[t]);
        }
    }

    #[test]
    fn config_matches_paper_layout() {
        let d = DigitRecognition::new(64, 10, 0);
        let cfg = d.shield_config(&CryptoProfile::AES128_16X);
        assert_eq!(cfg.regions.len(), 3); // 2 in + 1 out
        let in_buf: usize = cfg
            .regions
            .iter()
            .filter(|r| r.name.starts_with("digits"))
            .map(|r| r.engine_set.buffer_bytes)
            .sum();
        assert_eq!(in_buf, 24 * 1024);
    }

    #[test]
    #[should_panic(expected = "multiple of 32")]
    fn bad_test_count_rejected() {
        let _ = DigitRecognition::new(30, 10, 0);
    }
}
