//! The ShEF evaluation accelerators (§6.2).
//!
//! Every workload of the paper's evaluation is modelled here as an
//! [`Accelerator`]: a golden-model computation plus the memory/register
//! traffic it generates, written once against
//! [`shef_core::shield::bus::MemoryBus`] so the same kernel runs both
//! shielded and as the insecure baseline.
//!
//! | Accelerator | Paper workload | Pattern |
//! |---|---|---|
//! | [`vecadd::VectorAdd`] | Fig. 5 microbenchmark | streaming |
//! | [`matmul::MatMul`] | §6.2.2 microbenchmark | streaming + reuse |
//! | [`conv::Convolution`] | Xilinx CNN conv layer | batched streaming |
//! | [`digitrec::DigitRecognition`] | Rosetta MNIST BNN | streaming |
//! | [`affine::AffineTransform`] | Xilinx vision kernel | random access |
//! | [`dnnweaver::DnnWeaver`] | DNNWeaver LeNet | streaming + RMW |
//! | [`bitcoin::Bitcoin`] | SHA-256d miner | register-only |
//! | [`sdp::SdpStore`] | SDP GDPR storage node (§6.2.3) | line-rate KV |
//!
//! The [`harness`] module provisions inputs, runs a kernel shielded and
//! unshielded, verifies outputs, and reports modelled execution time —
//! the machinery behind every table and figure regenerator in
//! `shef-bench`:
//!
//! ```
//! use shef_accel::harness::run_shielded;
//! use shef_accel::vecadd::VectorAdd;
//! use shef_accel::CryptoProfile;
//!
//! let mut accel = VectorAdd::new(2048, 1); // one 2 KB stripe per vector
//! let report = run_shielded(&mut accel, &CryptoProfile::AES128_16X, 1).expect("runs");
//! assert!(report.outputs_verified, "shielded output matches the golden model");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affine;
pub mod bitcoin;
pub mod conv;
pub mod digitrec;
pub mod dnnweaver;
pub mod harness;
pub mod matmul;
pub mod sdp;
pub mod vecadd;

use shef_core::shield::bus::MemoryBus;
use shef_core::shield::{EngineSetConfig, MemRange, ShieldConfig};
use shef_core::ShefError;
use shef_crypto::aes::{AesKeySize, SBoxParallelism};
use shef_crypto::authenc::MacAlgorithm;

/// The crypto-configuration axis swept by Fig. 5, Fig. 6 and Table 2:
/// AES key size, S-box parallelism, and the MAC engine family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CryptoProfile {
    /// AES key size.
    pub key_size: AesKeySize,
    /// S-box duplication factor.
    pub sbox: SBoxParallelism,
    /// MAC family (HMAC default; PMAC for the optimized variants).
    pub mac: MacAlgorithm,
}

impl CryptoProfile {
    /// `AES-128/16x` with HMAC — the fastest standard profile.
    pub const AES128_16X: CryptoProfile = CryptoProfile {
        key_size: AesKeySize::Aes128,
        sbox: SBoxParallelism::X16,
        mac: MacAlgorithm::HmacSha256,
    };
    /// `AES-256/16x` with HMAC.
    pub const AES256_16X: CryptoProfile = CryptoProfile {
        key_size: AesKeySize::Aes256,
        sbox: SBoxParallelism::X16,
        mac: MacAlgorithm::HmacSha256,
    };
    /// `AES-128/4x` with HMAC.
    pub const AES128_4X: CryptoProfile = CryptoProfile {
        key_size: AesKeySize::Aes128,
        sbox: SBoxParallelism::X4,
        mac: MacAlgorithm::HmacSha256,
    };
    /// `AES-256/4x` with HMAC.
    pub const AES256_4X: CryptoProfile = CryptoProfile {
        key_size: AesKeySize::Aes256,
        sbox: SBoxParallelism::X4,
        mac: MacAlgorithm::HmacSha256,
    };
    /// `AES-128/16x` with PMAC — the DNNWeaver optimization of §6.2.4.
    pub const AES128_16X_PMAC: CryptoProfile = CryptoProfile {
        key_size: AesKeySize::Aes128,
        sbox: SBoxParallelism::X16,
        mac: MacAlgorithm::PmacAes,
    };

    /// The four standard Fig. 6 profiles, in the figure's legend order.
    #[must_use]
    pub fn fig6_profiles() -> [(&'static str, CryptoProfile); 4] {
        [
            ("AES-128/16x", Self::AES128_16X),
            ("AES-256/16x", Self::AES256_16X),
            ("AES-128/4x", Self::AES128_4X),
            ("AES-256/4x", Self::AES256_4X),
        ]
    }
}

/// Plaintext contents of one named region (inputs to provision, or
/// expected outputs to verify).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionData {
    /// Region name from the Shield configuration.
    pub region: String,
    /// Byte offset from the region base (must be chunk-aligned).
    pub offset: u64,
    /// Plaintext bytes, starting at `offset`.
    pub data: Vec<u8>,
}

impl RegionData {
    /// Data starting at the region base.
    #[must_use]
    pub fn new(region: &str, data: Vec<u8>) -> Self {
        RegionData {
            region: region.to_owned(),
            offset: 0,
            data,
        }
    }

    /// Data starting at a chunk-aligned `offset` inside the region.
    #[must_use]
    pub fn at(region: &str, offset: u64, data: Vec<u8>) -> Self {
        RegionData {
            region: region.to_owned(),
            offset,
            data,
        }
    }
}

/// A modelled FPGA accelerator: golden computation + traffic shape.
pub trait Accelerator {
    /// Stable identifier (matches the paper's benchmark names).
    fn id(&self) -> &str;

    /// The Shield configuration the IP Vendor would compile for this
    /// accelerator under the given crypto profile (§6.2.4 choices).
    fn shield_config(&self, profile: &CryptoProfile) -> ShieldConfig;

    /// Plaintext input regions the Data Owner provisions before launch.
    fn inputs(&self) -> Vec<RegionData>;

    /// Expected plaintext output-region contents (golden model). Output
    /// regions named here must be write-once (epoch 0) so the Data
    /// Owner can verify them after readback.
    fn expected_outputs(&self) -> Vec<RegionData>;

    /// Register values the host writes before launch (index, value).
    fn host_pre(&self) -> Vec<(usize, u64)> {
        Vec::new()
    }

    /// Host-side check of result registers after the run.
    ///
    /// # Errors
    ///
    /// Propagates register-channel errors.
    fn host_post(
        &self,
        _read_reg: &mut dyn FnMut(usize) -> Result<u64, ShefError>,
    ) -> Result<bool, ShefError> {
        Ok(true)
    }

    /// Executes the kernel against a memory bus.
    ///
    /// # Errors
    ///
    /// Propagates bus errors (unmapped addresses, integrity failures).
    fn run(&mut self, bus: &mut dyn MemoryBus) -> Result<(), ShefError>;
}

/// Adds `stripes` equal regions named `prefix0..prefixN` covering
/// `[base, base + total_len)`, one engine set each — the paper's way of
/// scaling bandwidth ("partitioning the address space to use multiple
/// engine sets").
///
/// # Panics
///
/// Panics if `total_len` is not divisible by `stripes`.
#[must_use]
pub fn stripe_regions(
    mut builder: shef_core::shield::config::ShieldConfigBuilder,
    prefix: &str,
    base: u64,
    total_len: u64,
    stripes: usize,
    engine_set: &EngineSetConfig,
) -> shef_core::shield::config::ShieldConfigBuilder {
    assert_eq!(
        total_len % stripes as u64,
        0,
        "stripe length must divide evenly"
    );
    let stripe_len = total_len / stripes as u64;
    for i in 0..stripes {
        builder = builder.region(
            &format!("{prefix}{i}"),
            MemRange::new(base + i as u64 * stripe_len, stripe_len),
            engine_set.clone(),
        );
    }
    builder
}

/// Applies a crypto profile to an engine-set template.
#[must_use]
pub fn with_profile(mut es: EngineSetConfig, profile: &CryptoProfile) -> EngineSetConfig {
    es.key_size = profile.key_size;
    es.sbox = profile.sbox;
    es.mac = profile.mac;
    es
}

/// Deterministic pseudo-random byte generator for workload inputs.
#[must_use]
pub fn workload_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = shef_crypto::drbg::HmacDrbg::from_seed(&seed.to_le_bytes());
    let mut out = vec![0u8; len];
    rng.fill_bytes(&mut out);
    out
}

/// Little-endian u32 view helpers used by the integer golden models.
#[must_use]
pub fn bytes_to_u32s(bytes: &[u8]) -> Vec<u32> {
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
        .collect()
}

/// Inverse of [`bytes_to_u32s`].
#[must_use]
pub fn u32s_to_bytes(words: &[u32]) -> Vec<u8> {
    words.iter().flat_map(|w| w.to_le_bytes()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_constants_are_distinct() {
        let profiles = CryptoProfile::fig6_profiles();
        for (i, (_, a)) in profiles.iter().enumerate() {
            for (_, b) in profiles.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn striping_builds_disjoint_regions() {
        let es = EngineSetConfig::default();
        let builder = stripe_regions(ShieldConfig::builder(), "in", 0, 4096 * 4, 4, &es);
        let cfg = builder.build().unwrap();
        assert_eq!(cfg.regions.len(), 4);
        assert_eq!(cfg.regions[0].name, "in0");
        assert_eq!(cfg.regions[3].range.start, 4096 * 3);
    }

    #[test]
    fn u32_round_trip() {
        let words = vec![1u32, 0xdead_beef, u32::MAX];
        assert_eq!(bytes_to_u32s(&u32s_to_bytes(&words)), words);
    }

    #[test]
    fn workload_bytes_deterministic() {
        assert_eq!(workload_bytes(7, 100), workload_bytes(7, 100));
        assert_ne!(workload_bytes(7, 100), workload_bytes(8, 100));
    }

    #[test]
    fn with_profile_overrides_crypto_fields() {
        let es = with_profile(EngineSetConfig::default(), &CryptoProfile::AES256_4X);
        assert_eq!(es.key_size, AesKeySize::Aes256);
        assert_eq!(es.sbox, SBoxParallelism::X4);
        assert_eq!(es.mac, MacAlgorithm::HmacSha256);
    }
}
