//! Matrix multiplication — the second §6.2.2 microbenchmark.
//!
//! "We analyzed similarly a matrix multiply microbenchmark, which
//! yielded similar, but less pronounced, insights (maximum overhead of
//! 1.26x for AES/4x) as matrix multiplication involves more computation
//! per data accessed."
//!
//! The model streams B once into on-chip memory (the VU9P's 382 Mb pool
//! easily holds the paper-scale operand), streams A, and streams C out —
//! one pass over each operand with O(n³) compute, which is what gives
//! matmul its higher arithmetic intensity than vecadd.

use shef_core::shield::bus::MemoryBus;
use shef_core::shield::{AccessMode, EngineSetConfig, MemRange, ShieldConfig};
use shef_core::ShefError;

use crate::{
    bytes_to_u32s, u32s_to_bytes, with_profile, workload_bytes, Accelerator, CryptoProfile,
    RegionData,
};

const MAT_A_BASE: u64 = 0;
const MAT_B_BASE: u64 = 1 << 30;
const MAT_C_BASE: u64 = 2 << 30;
const BURST: usize = 4096;
/// Systolic array: 256 MACs per cycle.
const MACS_PER_CYCLE: u64 = 256;

/// The matrix-multiply accelerator (square u32 matrices, wrapping
/// arithmetic).
#[derive(Debug, Clone)]
pub struct MatMul {
    n: usize,
    a: Vec<u32>,
    b: Vec<u32>,
}

impl MatMul {
    /// Creates an `n × n` multiply.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a positive multiple of 16.
    #[must_use]
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(
            n > 0 && n.is_multiple_of(16),
            "matrix dimension must be a positive multiple of 16"
        );
        let a = bytes_to_u32s(&workload_bytes(seed.wrapping_add(100), n * n * 4));
        let b = bytes_to_u32s(&workload_bytes(seed.wrapping_add(200), n * n * 4));
        MatMul { n, a, b }
    }

    fn golden(&self) -> Vec<u32> {
        let n = self.n;
        let mut c = vec![0u32; n * n];
        for i in 0..n {
            for k in 0..n {
                let aik = self.a[i * n + k];
                for j in 0..n {
                    c[i * n + j] = c[i * n + j].wrapping_add(aik.wrapping_mul(self.b[k * n + j]));
                }
            }
        }
        c
    }

    fn bytes(&self) -> usize {
        self.n * self.n * 4
    }
}

impl Accelerator for MatMul {
    fn id(&self) -> &str {
        "matmul"
    }

    fn shield_config(&self, profile: &CryptoProfile) -> ShieldConfig {
        let es = with_profile(
            EngineSetConfig {
                chunk_size: 512,
                ..EngineSetConfig::default()
            },
            profile,
        );
        let out_es = EngineSetConfig {
            zero_fill_writes: true,
            ..es.clone()
        };
        let len = self.bytes() as u64;
        ShieldConfig::builder()
            .region("mat-a", MemRange::new(MAT_A_BASE, len), es.clone())
            .region("mat-b", MemRange::new(MAT_B_BASE, len), es)
            .region("mat-c", MemRange::new(MAT_C_BASE, len), out_es)
            .build()
            .expect("matmul config is valid")
    }

    fn inputs(&self) -> Vec<RegionData> {
        vec![
            RegionData::new("mat-a", u32s_to_bytes(&self.a)),
            RegionData::new("mat-b", u32s_to_bytes(&self.b)),
        ]
    }

    fn expected_outputs(&self) -> Vec<RegionData> {
        vec![RegionData::new("mat-c", u32s_to_bytes(&self.golden()))]
    }

    fn run(&mut self, bus: &mut dyn MemoryBus) -> Result<(), ShefError> {
        let n = self.n;
        let total = self.bytes();
        // Stream B once into on-chip storage.
        let mut b_words = Vec::with_capacity(n * n);
        let mut offset = 0usize;
        while offset < total {
            let take = BURST.min(total - offset);
            let chunk = bus.read(MAT_B_BASE + offset as u64, take, AccessMode::Streaming)?;
            b_words.extend(bytes_to_u32s(&chunk));
            offset += take;
        }
        // Stream A row by row, compute, stream C out.
        let row_bytes = n * 4;
        for i in 0..n {
            let row = bus.read(
                MAT_A_BASE + (i * row_bytes) as u64,
                row_bytes,
                AccessMode::Streaming,
            )?;
            let a_row = bytes_to_u32s(&row);
            let mut c_row = vec![0u32; n];
            for k in 0..n {
                let aik = a_row[k];
                for (j, c) in c_row.iter_mut().enumerate() {
                    *c = c.wrapping_add(aik.wrapping_mul(b_words[k * n + j]));
                }
            }
            bus.compute((n as u64 * n as u64).div_ceil(MACS_PER_CYCLE));
            bus.write(
                MAT_C_BASE + (i * row_bytes) as u64,
                &u32s_to_bytes(&c_row),
                AccessMode::Streaming,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_baseline, run_shielded};

    #[test]
    fn small_matmul_is_correct() {
        let mut m = MatMul::new(32, 9);
        assert!(run_baseline(&mut m).unwrap().outputs_verified);
        let mut m = MatMul::new(32, 9);
        assert!(
            run_shielded(&mut m, &CryptoProfile::AES128_4X, 2)
                .unwrap()
                .outputs_verified
        );
    }

    #[test]
    fn golden_model_identity() {
        // A × I = A.
        let mut m = MatMul::new(16, 1);
        let n = m.n;
        m.b = (0..n * n)
            .map(|idx| if idx / n == idx % n { 1u32 } else { 0 })
            .collect();
        assert_eq!(m.golden(), m.a);
    }

    #[test]
    fn overhead_is_mild_thanks_to_arithmetic_intensity() {
        // The paper's point: matmul overhead < vecadd overhead at the
        // same profile, because compute hides crypto.
        let mut m = MatMul::new(64, 3);
        let base = run_baseline(&mut m).unwrap();
        let mut m = MatMul::new(64, 3);
        let shielded = run_shielded(&mut m, &CryptoProfile::AES128_4X, 2).unwrap();
        let ratio = shielded.cycles.0 as f64 / base.cycles.0 as f64;
        assert!(ratio < 2.0, "matmul overhead should be mild, got {ratio}");
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn bad_dimension_rejected() {
        let _ = MatMul::new(10, 0);
    }
}
