//! CNN convolution layer — the Xilinx reference workload of Fig. 6.
//!
//! "A convolutional layer from a neural network with an input size of
//! 27×27×96, a filter size of 5×5, and an output size of 27×27×256 with
//! 32-bit values … Convolution achieves high parallelism by streaming in
//! batches of feature maps and filters, and streaming out each output
//! feature map. We configure the Shield to match the high parallelism by
//! using 8 engine sets for input images and weights and 4 engine sets
//! for output filters, each with one AES and HMAC engine. We use a
//! buffer of 128KB in the read set and 64KB in the write set. We
//! configure C_mem to be 512 bytes."
//!
//! The datapath tiles output channels into groups and re-streams the
//! input feature maps once per group (standard output-stationary
//! dataflow), which is what keeps the workload memory-intensive enough
//! for the Shield to matter (paper overheads: 1.20–1.35×).

use shef_core::shield::bus::MemoryBus;
use shef_core::shield::{AccessMode, EngineSetConfig, ShieldConfig};
use shef_core::ShefError;

use crate::{
    bytes_to_u32s, stripe_regions, u32s_to_bytes, with_profile, workload_bytes, Accelerator,
    CryptoProfile, RegionData,
};

const IFMAP_BASE: u64 = 0;
const WEIGHTS_BASE: u64 = 1 << 30;
const OFMAP_BASE: u64 = 2 << 30;
const BURST: usize = 4096;
/// Systolic array width: MACs per cycle.
const MACS_PER_CYCLE: u64 = 24_576;
/// Output channels computed per input pass (on-chip accumulator tile).
const CHANNEL_TILE: usize = 128;

/// Convolution layer dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvDims {
    /// Input height/width.
    pub hw: usize,
    /// Input channels.
    pub in_ch: usize,
    /// Filter height/width.
    pub k: usize,
    /// Output channels.
    pub out_ch: usize,
    /// Batch size.
    pub batch: usize,
}

impl ConvDims {
    /// The paper's layer: 27×27×96 ⊗ 5×5 → 27×27×256 (same padding).
    #[must_use]
    pub fn paper() -> Self {
        ConvDims {
            hw: 27,
            in_ch: 96,
            k: 5,
            out_ch: 256,
            batch: 4,
        }
    }

    /// A small layer for fast tests.
    #[must_use]
    pub fn small() -> Self {
        ConvDims {
            hw: 8,
            in_ch: 4,
            k: 3,
            out_ch: 8,
            batch: 2,
        }
    }

    fn ifmap_words(&self) -> usize {
        self.batch * self.hw * self.hw * self.in_ch
    }

    fn weight_words(&self) -> usize {
        self.out_ch * self.in_ch * self.k * self.k
    }

    fn ofmap_words(&self) -> usize {
        self.batch * self.hw * self.hw * self.out_ch
    }

    fn macs(&self) -> u64 {
        self.ofmap_words() as u64 * (self.in_ch * self.k * self.k) as u64
    }
}

/// The convolution accelerator.
#[derive(Debug, Clone)]
pub struct Convolution {
    dims: ConvDims,
    ifmap: Vec<u32>,
    weights: Vec<u32>,
}

/// Pads a byte length up so it stripes evenly at chunk granularity.
fn pad_len(words: usize, stripes: u64, chunk: u64) -> u64 {
    let bytes = (words * 4) as u64;
    let quantum = stripes * chunk;
    bytes.div_ceil(quantum) * quantum
}

impl Convolution {
    /// Creates the layer with deterministic inputs.
    #[must_use]
    pub fn new(dims: ConvDims, seed: u64) -> Self {
        let ifmap = bytes_to_u32s(&workload_bytes(
            seed.wrapping_add(11),
            dims.ifmap_words() * 4,
        ))
        .iter()
        .map(|w| w % 256)
        .collect();
        let weights = bytes_to_u32s(&workload_bytes(
            seed.wrapping_add(22),
            dims.weight_words() * 4,
        ))
        .iter()
        .map(|w| w % 16)
        .collect();
        Convolution {
            dims,
            ifmap,
            weights,
        }
    }

    /// The layer's dimensions.
    #[must_use]
    pub fn dims(&self) -> ConvDims {
        self.dims
    }

    fn ifmap_at(&self, b: usize, y: isize, x: isize, c: usize) -> u32 {
        let hw = self.dims.hw as isize;
        if y < 0 || y >= hw || x < 0 || x >= hw {
            return 0; // same padding
        }
        let idx =
            ((b * self.dims.hw + y as usize) * self.dims.hw + x as usize) * self.dims.in_ch + c;
        self.ifmap[idx]
    }

    fn weight_at(&self, oc: usize, c: usize, ky: usize, kx: usize) -> u32 {
        let d = &self.dims;
        self.weights[((oc * d.in_ch + c) * d.k + ky) * d.k + kx]
    }

    fn golden(&self) -> Vec<u32> {
        let d = self.dims;
        let pad = (d.k / 2) as isize;
        let mut out = vec![0u32; d.ofmap_words()];
        for b in 0..d.batch {
            for y in 0..d.hw {
                for x in 0..d.hw {
                    for oc in 0..d.out_ch {
                        let mut acc = 0u32;
                        for ky in 0..d.k {
                            for kx in 0..d.k {
                                for c in 0..d.in_ch {
                                    let iy = y as isize + ky as isize - pad;
                                    let ix = x as isize + kx as isize - pad;
                                    acc = acc.wrapping_add(
                                        self.ifmap_at(b, iy, ix, c)
                                            .wrapping_mul(self.weight_at(oc, c, ky, kx)),
                                    );
                                }
                            }
                        }
                        out[((b * d.hw + y) * d.hw + x) * d.out_ch + oc] = acc;
                    }
                }
            }
        }
        out
    }
}

impl Accelerator for Convolution {
    fn id(&self) -> &str {
        "convolution"
    }

    fn shield_config(&self, profile: &CryptoProfile) -> ShieldConfig {
        let d = self.dims;
        // Paper: 8 read sets (inputs + weights) with 128 KB total read
        // buffer, 4 write sets with 64 KB, C = 512 B.
        let read_es = with_profile(
            EngineSetConfig {
                chunk_size: 512,
                buffer_bytes: 16 * 1024, // × 8 sets = 128 KB
                ..EngineSetConfig::default()
            },
            profile,
        );
        let write_es = with_profile(
            EngineSetConfig {
                chunk_size: 512,
                buffer_bytes: 16 * 1024, // × 4 sets = 64 KB
                zero_fill_writes: true,
                ..EngineSetConfig::default()
            },
            profile,
        );
        let if_len = pad_len(d.ifmap_words(), 4, 512);
        let w_len = pad_len(d.weight_words(), 4, 512);
        let of_len = pad_len(d.ofmap_words(), 4, 512);
        let mut builder = ShieldConfig::builder();
        builder = stripe_regions(builder, "ifmap", IFMAP_BASE, if_len, 4, &read_es);
        builder = stripe_regions(builder, "weights", WEIGHTS_BASE, w_len, 4, &read_es);
        builder = stripe_regions(builder, "ofmap", OFMAP_BASE, of_len, 4, &write_es);
        builder.build().expect("conv config is valid")
    }

    fn inputs(&self) -> Vec<RegionData> {
        let d = self.dims;
        let if_len = pad_len(d.ifmap_words(), 4, 512) as usize;
        let w_len = pad_len(d.weight_words(), 4, 512) as usize;
        let mut ifmap_bytes = u32s_to_bytes(&self.ifmap);
        ifmap_bytes.resize(if_len, 0);
        let mut weight_bytes = u32s_to_bytes(&self.weights);
        weight_bytes.resize(w_len, 0);
        let mut out = Vec::new();
        for (i, part) in ifmap_bytes.chunks(if_len / 4).enumerate() {
            out.push(RegionData::new(&format!("ifmap{i}"), part.to_vec()));
        }
        for (i, part) in weight_bytes.chunks(w_len / 4).enumerate() {
            out.push(RegionData::new(&format!("weights{i}"), part.to_vec()));
        }
        out
    }

    fn expected_outputs(&self) -> Vec<RegionData> {
        let d = self.dims;
        let of_len = pad_len(d.ofmap_words(), 4, 512) as usize;
        let mut bytes = u32s_to_bytes(&self.golden());
        bytes.resize(of_len, 0);
        bytes
            .chunks(of_len / 4)
            .enumerate()
            .map(|(i, part)| RegionData::new(&format!("ofmap{i}"), part.to_vec()))
            .collect()
    }

    fn run(&mut self, bus: &mut dyn MemoryBus) -> Result<(), ShefError> {
        let d = self.dims;
        let if_bytes = d.ifmap_words() * 4;
        let w_bytes = d.weight_words() * 4;
        let of_bytes = d.ofmap_words() * 4;
        let groups = d.out_ch.div_ceil(CHANNEL_TILE);
        // Output-stationary tiling: per channel group, stream the group's
        // weights once and re-stream the whole input feature map.
        let group_w_bytes = w_bytes / groups;
        for g in 0..groups {
            let mut offset = 0usize;
            while offset < group_w_bytes {
                let take = BURST.min(group_w_bytes - offset);
                let _ = bus.read(
                    WEIGHTS_BASE + (g * group_w_bytes + offset) as u64,
                    take,
                    AccessMode::Streaming,
                )?;
                offset += take;
            }
            let mut offset = 0usize;
            while offset < if_bytes {
                let take = BURST.min(if_bytes - offset);
                let _ = bus.read(IFMAP_BASE + offset as u64, take, AccessMode::Streaming)?;
                offset += take;
            }
            bus.compute(d.macs() / groups as u64 / MACS_PER_CYCLE);
        }
        // The functional result comes from the golden model (the traffic
        // above models the dataflow; recomputing 1.8 G MACs through the
        // byte-level bus would model nothing extra).
        let out_bytes = u32s_to_bytes(&self.golden());
        let mut offset = 0usize;
        while offset < of_bytes {
            let take = BURST.min(of_bytes - offset);
            bus.write(
                OFMAP_BASE + offset as u64,
                &out_bytes[offset..offset + take],
                AccessMode::Streaming,
            )?;
            offset += take;
        }
        bus.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_baseline, run_shielded};

    #[test]
    fn small_conv_is_correct_both_ways() {
        let mut c = Convolution::new(ConvDims::small(), 4);
        assert!(run_baseline(&mut c).unwrap().outputs_verified);
        let mut c = Convolution::new(ConvDims::small(), 4);
        assert!(
            run_shielded(&mut c, &CryptoProfile::AES128_16X, 3)
                .unwrap()
                .outputs_verified
        );
    }

    #[test]
    fn paper_dims_sizes() {
        let d = ConvDims::paper();
        assert_eq!(d.ifmap_words() * 4, 4 * 27 * 27 * 96 * 4);
        assert_eq!(d.weight_words() * 4, 256 * 96 * 5 * 5 * 4);
        assert_eq!(d.macs(), 4 * 27 * 27 * 256_u64 * (96 * 25));
    }

    #[test]
    fn config_matches_paper_layout() {
        let c = Convolution::new(ConvDims::small(), 0);
        let cfg = c.shield_config(&CryptoProfile::AES128_16X);
        // 8 read sets + 4 write sets.
        assert_eq!(cfg.regions.len(), 12);
        let read_buf: usize = cfg
            .regions
            .iter()
            .filter(|r| !r.name.starts_with("ofmap"))
            .map(|r| r.engine_set.buffer_bytes)
            .sum();
        assert_eq!(read_buf, 128 * 1024);
        let write_buf: usize = cfg
            .regions
            .iter()
            .filter(|r| r.name.starts_with("ofmap"))
            .map(|r| r.engine_set.buffer_bytes)
            .sum();
        assert_eq!(write_buf, 64 * 1024);
    }

    #[test]
    fn golden_same_padding_edges() {
        // A 1-channel identity filter reproduces the input.
        let dims = ConvDims {
            hw: 4,
            in_ch: 1,
            k: 3,
            out_ch: 1,
            batch: 1,
        };
        let mut c = Convolution::new(dims, 0);
        c.weights = vec![0, 0, 0, 0, 1, 0, 0, 0, 0]; // centre tap
        assert_eq!(c.golden(), c.ifmap);
    }
}
