//! Affine image transformation — the Xilinx vision workload of Fig. 6.
//!
//! "An affine transformation kernel over 512×512 input images …
//! Affine Transformation reads non-sequential data, but reads each
//! address once with no writes [to the same location]. Thus … we can
//! save on-chip memory by disabling integrity counters. Since Affine
//! Transformation accesses data at consistent chunks of 64B, we use 8
//! engine sets for inputs with a total 32KB buffer and 4 engine sets for
//! outputs with a total 16KB buffer" (overheads 1.41–2.22×).
//!
//! The kernel inverse-maps every output pixel through an affine matrix
//! and gathers the nearest source pixel — the classic random-access
//! pattern with small chunks and heavy per-chunk tag overhead.

use shef_core::shield::bus::MemoryBus;
use shef_core::shield::{AccessMode, EngineSetConfig, ShieldConfig};
use shef_core::ShefError;

use crate::{
    bytes_to_u32s, stripe_regions, u32s_to_bytes, with_profile, workload_bytes, Accelerator,
    CryptoProfile, RegionData,
};

const SRC_BASE: u64 = 0;
const DST_BASE: u64 = 1 << 30;
/// Pixels processed per cycle by the address-generation datapath.
const PIXELS_PER_CYCLE: u64 = 4;

/// Fixed-point affine transform (16.16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AffineMatrix {
    /// Row 0: x' = (a·x + b·y) >> 16 + tx.
    pub a: i32,
    /// See `a`.
    pub b: i32,
    /// Translation in x.
    pub tx: i32,
    /// Row 1: y' = (c·x + d·y) >> 16 + ty.
    pub c: i32,
    /// See `c`.
    pub d: i32,
    /// Translation in y.
    pub ty: i32,
}

impl AffineMatrix {
    /// A mild rotation + shift: exercises spatial-but-non-sequential
    /// access, as the paper's kernel does.
    #[must_use]
    pub fn rotation_like() -> Self {
        // cos(20°)≈0.94, sin(20°)≈0.34 in 16.16 fixed point.
        AffineMatrix {
            a: 61_603,
            b: 22_417,
            tx: -60,
            c: -22_417,
            d: 61_603,
            ty: 120,
        }
    }
}

/// The affine-transform accelerator.
#[derive(Debug, Clone)]
pub struct AffineTransform {
    size: usize,
    src: Vec<u32>,
    matrix: AffineMatrix,
}

impl AffineTransform {
    /// Creates a transform over a `size × size` 32-bit image.
    ///
    /// # Panics
    ///
    /// Panics unless `size` is a positive multiple of 64.
    #[must_use]
    pub fn new(size: usize, seed: u64) -> Self {
        assert!(
            size > 0 && size.is_multiple_of(64),
            "image size must be a positive multiple of 64"
        );
        AffineTransform {
            size,
            src: bytes_to_u32s(&workload_bytes(seed.wrapping_add(77), size * size * 4)),
            matrix: AffineMatrix::rotation_like(),
        }
    }

    /// The paper's 512×512 configuration.
    #[must_use]
    pub fn paper(seed: u64) -> Self {
        Self::new(512, seed)
    }

    fn map(&self, x: usize, y: usize) -> Option<(usize, usize)> {
        let m = self.matrix;
        let sx = ((m.a as i64 * x as i64 + m.b as i64 * y as i64) >> 16) as i32 + m.tx;
        let sy = ((m.c as i64 * x as i64 + m.d as i64 * y as i64) >> 16) as i32 + m.ty;
        if sx < 0 || sy < 0 || sx >= self.size as i32 || sy >= self.size as i32 {
            None
        } else {
            Some((sx as usize, sy as usize))
        }
    }

    fn golden(&self) -> Vec<u32> {
        let mut out = vec![0u32; self.size * self.size];
        for y in 0..self.size {
            for x in 0..self.size {
                if let Some((sx, sy)) = self.map(x, y) {
                    out[y * self.size + x] = self.src[sy * self.size + sx];
                }
            }
        }
        out
    }

    fn image_bytes(&self) -> usize {
        self.size * self.size * 4
    }
}

impl Accelerator for AffineTransform {
    fn id(&self) -> &str {
        "affine"
    }

    fn shield_config(&self, profile: &CryptoProfile) -> ShieldConfig {
        // Paper: C = 64 B, 8 input sets (32 KB buffer total), 4 output
        // sets (16 KB), counters disabled.
        let in_es = with_profile(
            EngineSetConfig {
                chunk_size: 64,
                buffer_bytes: 4 * 1024, // × 8 = 32 KB
                ..EngineSetConfig::default()
            },
            profile,
        );
        let out_es = with_profile(
            EngineSetConfig {
                chunk_size: 64,
                buffer_bytes: 4 * 1024, // × 4 = 16 KB
                zero_fill_writes: true,
                ..EngineSetConfig::default()
            },
            profile,
        );
        let len = self.image_bytes() as u64;
        let mut builder = ShieldConfig::builder();
        builder = stripe_regions(builder, "img-in", SRC_BASE, len, 8, &in_es);
        builder = stripe_regions(builder, "img-out", DST_BASE, len, 4, &out_es);
        builder.build().expect("affine config is valid")
    }

    fn inputs(&self) -> Vec<RegionData> {
        let bytes = u32s_to_bytes(&self.src);
        let stripe = bytes.len() / 8;
        (0..8)
            .map(|i| {
                RegionData::new(
                    &format!("img-in{i}"),
                    bytes[i * stripe..(i + 1) * stripe].to_vec(),
                )
            })
            .collect()
    }

    fn expected_outputs(&self) -> Vec<RegionData> {
        let bytes = u32s_to_bytes(&self.golden());
        let stripe = bytes.len() / 4;
        (0..4)
            .map(|i| {
                RegionData::new(
                    &format!("img-out{i}"),
                    bytes[i * stripe..(i + 1) * stripe].to_vec(),
                )
            })
            .collect()
    }

    fn run(&mut self, bus: &mut dyn MemoryBus) -> Result<(), ShefError> {
        let size = self.size;
        let mut out_row = vec![0u32; size];
        // The datapath keeps one 64-byte line register (present in both
        // the baseline and shielded designs), so consecutive gathers
        // along the transform's path coalesce into chunk-sized reads —
        // "affine accesses data at consistent chunks of 64B" (§6.2.4).
        let mut line: Option<(u64, Vec<u8>)> = None;
        for y in 0..size {
            for (x, out) in out_row.iter_mut().enumerate() {
                *out = match self.map(x, y) {
                    Some((sx, sy)) => {
                        let addr = SRC_BASE + ((sy * size + sx) * 4) as u64;
                        let chunk_addr = addr & !63;
                        if line.as_ref().map(|(a, _)| *a) != Some(chunk_addr) {
                            let data = bus.read(chunk_addr, 64, AccessMode::Streaming)?;
                            line = Some((chunk_addr, data));
                        }
                        let (_, data) = line.as_ref().expect("just filled");
                        let off = (addr - chunk_addr) as usize;
                        u32::from_le_bytes(data[off..off + 4].try_into().expect("4 bytes"))
                    }
                    None => 0,
                };
            }
            bus.compute(size as u64 / PIXELS_PER_CYCLE);
            bus.write(
                DST_BASE + (y * size * 4) as u64,
                &u32s_to_bytes(&out_row),
                AccessMode::Streaming,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_baseline, run_shielded};

    #[test]
    fn transform_is_correct_both_ways() {
        let mut a = AffineTransform::new(64, 3);
        assert!(run_baseline(&mut a).unwrap().outputs_verified);
        let mut a = AffineTransform::new(64, 3);
        assert!(
            run_shielded(&mut a, &CryptoProfile::AES128_16X, 9)
                .unwrap()
                .outputs_verified
        );
    }

    #[test]
    fn identity_matrix_is_identity() {
        let mut a = AffineTransform::new(64, 1);
        a.matrix = AffineMatrix {
            a: 1 << 16,
            b: 0,
            tx: 0,
            c: 0,
            d: 1 << 16,
            ty: 0,
        };
        assert_eq!(a.golden(), a.src);
    }

    #[test]
    fn out_of_bounds_maps_to_zero() {
        let mut a = AffineTransform::new(64, 1);
        // Huge translation pushes every source lookup out of bounds.
        a.matrix = AffineMatrix {
            a: 1 << 16,
            b: 0,
            tx: 10_000,
            c: 0,
            d: 1 << 16,
            ty: 0,
        };
        assert!(a.golden().iter().all(|&p| p == 0));
    }

    #[test]
    fn config_matches_paper_layout() {
        let a = AffineTransform::new(128, 0);
        let cfg = a.shield_config(&CryptoProfile::AES128_16X);
        assert_eq!(cfg.regions.len(), 12);
        assert!(cfg.regions.iter().all(|r| r.engine_set.chunk_size == 64));
        assert!(cfg.regions.iter().all(|r| !r.engine_set.counters));
    }

    #[test]
    #[should_panic(expected = "multiple of 64")]
    fn bad_size_rejected() {
        let _ = AffineTransform::new(100, 0);
    }
}
