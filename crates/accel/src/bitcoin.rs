//! Bitcoin mining — the register-only workload of Fig. 6.
//!
//! "Bitcoin operates on small data (a 76 byte block header) and only
//! outputs a 4 byte nonce. We optimize for area by simply leveraging the
//! register interface, with one AES and one HMAC engine, to secure
//! communication. Because Bitcoin performs significant computation for
//! each input, we observe almost no overheads."
//!
//! The kernel performs a real SHA-256d search: it appends candidate
//! nonces to the header and double-hashes until the digest has the
//! requested number of leading zero bits.

use shef_core::shield::bus::MemoryBus;
use shef_core::shield::{RegisterInterfaceConfig, ShieldConfig};
use shef_core::ShefError;
use shef_crypto::sha2::Sha256;

use crate::{workload_bytes, Accelerator, CryptoProfile, RegionData};

/// Block-header length (Bitcoin header minus the nonce field).
pub const HEADER_BYTES: usize = 76;
/// Register holding the found nonce after the run.
pub const NONCE_REG: usize = 10;
/// Register holding the "found" flag.
pub const FOUND_REG: usize = 11;
/// Cycles per hash attempt: three SHA-256 compressions at 64
/// cycles each (80-byte message = 2 blocks, plus the second hash).
pub const CYCLES_PER_HASH: u64 = 192;

/// The mining accelerator.
#[derive(Debug, Clone)]
pub struct Bitcoin {
    header: [u8; HEADER_BYTES],
    difficulty_bits: u32,
}

/// Computes SHA-256d over `header || nonce`.
#[must_use]
pub fn sha256d(header: &[u8; HEADER_BYTES], nonce: u32) -> [u8; 32] {
    let mut message = [0u8; HEADER_BYTES + 4];
    message[..HEADER_BYTES].copy_from_slice(header);
    message[HEADER_BYTES..].copy_from_slice(&nonce.to_le_bytes());
    Sha256::digest(&Sha256::digest(&message))
}

/// Counts leading zero bits of a digest.
#[must_use]
pub fn leading_zero_bits(digest: &[u8; 32]) -> u32 {
    let mut zeros = 0u32;
    for byte in digest {
        if *byte == 0 {
            zeros += 8;
        } else {
            zeros += byte.leading_zeros();
            break;
        }
    }
    zeros
}

impl Bitcoin {
    /// Creates a miner for a synthetic block header.
    ///
    /// `difficulty_bits` is the required number of leading zero bits.
    /// The paper mines at difficulty 24; tests use smaller values so the
    /// (real) search stays fast, and the cycle model scales identically.
    ///
    /// # Panics
    ///
    /// Panics if `difficulty_bits` exceeds 28 (the search would not
    /// terminate in reasonable simulation time).
    #[must_use]
    pub fn new(difficulty_bits: u32, seed: u64) -> Self {
        assert!(
            difficulty_bits <= 28,
            "difficulty above 28 bits is impractical in simulation"
        );
        let header: [u8; HEADER_BYTES] = workload_bytes(seed.wrapping_add(900), HEADER_BYTES)
            .try_into()
            .expect("fixed length");
        Bitcoin {
            header,
            difficulty_bits,
        }
    }

    /// The target difficulty.
    #[must_use]
    pub fn difficulty_bits(&self) -> u32 {
        self.difficulty_bits
    }

    fn search(&self) -> (u32, u64) {
        let mut tries = 0u64;
        let mut nonce = 0u32;
        loop {
            tries += 1;
            if leading_zero_bits(&sha256d(&self.header, nonce)) >= self.difficulty_bits {
                return (nonce, tries);
            }
            nonce = nonce.wrapping_add(1);
        }
    }
}

impl Accelerator for Bitcoin {
    fn id(&self) -> &str {
        "bitcoin"
    }

    fn shield_config(&self, _profile: &CryptoProfile) -> ShieldConfig {
        // Register interface only: no memory regions at all (Table 3
        // reports 0 % BRAM for Bitcoin).
        ShieldConfig::builder()
            .register_interface(RegisterInterfaceConfig {
                num_registers: 16,
                hide_addresses: false,
            })
            .build()
            .expect("bitcoin config is valid")
    }

    fn inputs(&self) -> Vec<RegionData> {
        Vec::new()
    }

    fn expected_outputs(&self) -> Vec<RegionData> {
        Vec::new()
    }

    fn host_pre(&self) -> Vec<(usize, u64)> {
        // Header packed into registers 0..9, 8 bytes each (last word
        // carries 4 real bytes).
        let mut padded = [0u8; 80];
        padded[..HEADER_BYTES].copy_from_slice(&self.header);
        padded
            .chunks_exact(8)
            .enumerate()
            .map(|(i, c)| (i, u64::from_le_bytes(c.try_into().expect("8 bytes"))))
            .collect()
    }

    fn host_post(
        &self,
        read_reg: &mut dyn FnMut(usize) -> Result<u64, ShefError>,
    ) -> Result<bool, ShefError> {
        let found = read_reg(FOUND_REG)?;
        let nonce = read_reg(NONCE_REG)? as u32;
        if found != 1 {
            return Ok(false);
        }
        Ok(leading_zero_bits(&sha256d(&self.header, nonce)) >= self.difficulty_bits)
    }

    fn run(&mut self, bus: &mut dyn MemoryBus) -> Result<(), ShefError> {
        // Read the header back out of the (plaintext-side) registers.
        let mut packed = [0u8; 80];
        for i in 0..10 {
            packed[i * 8..(i + 1) * 8].copy_from_slice(&bus.reg_read(i).to_le_bytes());
        }
        let mut header = [0u8; HEADER_BYTES];
        header.copy_from_slice(&packed[..HEADER_BYTES]);
        debug_assert_eq!(
            header, self.header,
            "register channel must deliver the header"
        );
        let (nonce, tries) = self.search();
        bus.compute(tries * CYCLES_PER_HASH);
        bus.reg_write(NONCE_REG, nonce as u64);
        bus.reg_write(FOUND_REG, 1);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_baseline, run_shielded};

    #[test]
    fn mines_a_valid_nonce_both_ways() {
        let mut b = Bitcoin::new(10, 3);
        assert!(run_baseline(&mut b).unwrap().outputs_verified);
        let mut b = Bitcoin::new(10, 3);
        assert!(
            run_shielded(&mut b, &CryptoProfile::AES128_16X, 4)
                .unwrap()
                .outputs_verified
        );
    }

    #[test]
    fn overhead_is_negligible() {
        // Fig. 6: Bitcoin ≈ 1.0× across all profiles.
        let mut b = Bitcoin::new(12, 3);
        let base = run_baseline(&mut b).unwrap();
        let mut b = Bitcoin::new(12, 3);
        let shielded = run_shielded(&mut b, &CryptoProfile::AES256_4X, 4).unwrap();
        let ratio = shielded.cycles.0 as f64 / base.cycles.0 as f64;
        assert!(ratio < 1.05, "bitcoin overhead should be ~1.0, got {ratio}");
    }

    #[test]
    fn leading_zero_bit_counting() {
        let mut digest = [0xffu8; 32];
        assert_eq!(leading_zero_bits(&digest), 0);
        digest[0] = 0;
        digest[1] = 0x0f;
        assert_eq!(leading_zero_bits(&digest), 12);
        assert_eq!(leading_zero_bits(&[0u8; 32]), 256);
    }

    #[test]
    fn difficulty_determines_work() {
        let easy = Bitcoin::new(4, 1).search().1;
        let hard = Bitcoin::new(12, 1).search().1;
        assert!(hard >= easy);
    }

    #[test]
    #[should_panic(expected = "impractical")]
    fn absurd_difficulty_rejected() {
        let _ = Bitcoin::new(29, 0);
    }
}
