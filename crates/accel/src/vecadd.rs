//! Vector-vector addition — the Fig. 5 throughput microbenchmark.
//!
//! "A vector-vector add microbenchmark that streams in two vectors and
//! outputs their sum. The input and output vectors are partitioned and
//! secured with four engine sets each; each set contains one AES-128 and
//! HMAC engine and uses a 512-byte chunk. The actual logic is minimal
//! and the workload is strictly bound by off-chip memory accesses."

use shef_core::shield::bus::MemoryBus;
use shef_core::shield::{AccessMode, EngineSetConfig, ShieldConfig};
use shef_core::ShefError;

use crate::{
    bytes_to_u32s, stripe_regions, u32s_to_bytes, with_profile, workload_bytes, Accelerator,
    CryptoProfile, RegionData,
};

const VEC_A_BASE: u64 = 0;
const VEC_B_BASE: u64 = 1 << 30;
const VEC_OUT_BASE: u64 = 2 << 30;
/// Burst size the datapath uses per iteration.
const BURST: usize = 4096;
/// Adder lanes: 16 u32 additions per cycle.
const LANES: u64 = 16;

/// The vector-add accelerator.
#[derive(Debug, Clone)]
pub struct VectorAdd {
    len_bytes: usize,
    a: Vec<u8>,
    b: Vec<u8>,
}

impl VectorAdd {
    /// Creates a vector-add over two `len_bytes`-long vectors of u32s.
    ///
    /// # Panics
    ///
    /// Panics unless `len_bytes` is a positive multiple of 2 KB (so the
    /// vectors stripe evenly over the paper's engine-set layout).
    #[must_use]
    pub fn new(len_bytes: usize, seed: u64) -> Self {
        assert!(
            len_bytes > 0 && len_bytes.is_multiple_of(2048),
            "vector length must be a positive multiple of 2 KB"
        );
        VectorAdd {
            len_bytes,
            a: workload_bytes(seed.wrapping_mul(2).wrapping_add(1), len_bytes),
            b: workload_bytes(seed.wrapping_mul(2).wrapping_add(2), len_bytes),
        }
    }

    fn sum(&self) -> Vec<u8> {
        let a = bytes_to_u32s(&self.a);
        let b = bytes_to_u32s(&self.b);
        let out: Vec<u32> = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| x.wrapping_add(*y))
            .collect();
        u32s_to_bytes(&out)
    }
}

impl Accelerator for VectorAdd {
    fn id(&self) -> &str {
        "vecadd"
    }

    fn shield_config(&self, profile: &CryptoProfile) -> ShieldConfig {
        // Paper layout: 4 engine sets across the inputs (2 per vector),
        // 4 across the output; 1 AES + 1 HMAC each; C = 512 B.
        let es = with_profile(
            EngineSetConfig {
                chunk_size: 512,
                ..EngineSetConfig::default()
            },
            profile,
        );
        let out_es = EngineSetConfig {
            zero_fill_writes: true,
            ..es.clone()
        };
        let len = self.len_bytes as u64;
        let mut builder = ShieldConfig::builder();
        builder = stripe_regions(builder, "vec-a", VEC_A_BASE, len, 2, &es);
        builder = stripe_regions(builder, "vec-b", VEC_B_BASE, len, 2, &es);
        builder = stripe_regions(builder, "vec-out", VEC_OUT_BASE, len, 4, &out_es);
        builder.build().expect("vecadd config is valid")
    }

    fn inputs(&self) -> Vec<RegionData> {
        let half = self.len_bytes / 2;
        vec![
            RegionData::new("vec-a0", self.a[..half].to_vec()),
            RegionData::new("vec-a1", self.a[half..].to_vec()),
            RegionData::new("vec-b0", self.b[..half].to_vec()),
            RegionData::new("vec-b1", self.b[half..].to_vec()),
        ]
    }

    fn expected_outputs(&self) -> Vec<RegionData> {
        let sum = self.sum();
        let quarter = self.len_bytes / 4;
        (0..4)
            .map(|i| {
                RegionData::new(
                    &format!("vec-out{i}"),
                    sum[i * quarter..(i + 1) * quarter].to_vec(),
                )
            })
            .collect()
    }

    fn run(&mut self, bus: &mut dyn MemoryBus) -> Result<(), ShefError> {
        let mut offset = 0usize;
        while offset < self.len_bytes {
            let take = BURST.min(self.len_bytes - offset);
            let a = bus.read(VEC_A_BASE + offset as u64, take, AccessMode::Streaming)?;
            let b = bus.read(VEC_B_BASE + offset as u64, take, AccessMode::Streaming)?;
            let sum: Vec<u32> = bytes_to_u32s(&a)
                .iter()
                .zip(bytes_to_u32s(&b).iter())
                .map(|(x, y)| x.wrapping_add(*y))
                .collect();
            bus.compute(sum.len() as u64 / LANES);
            bus.write(
                VEC_OUT_BASE + offset as u64,
                &u32s_to_bytes(&sum),
                AccessMode::Streaming,
            )?;
            offset += take;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_baseline, run_shielded};

    #[test]
    fn config_uses_paper_layout() {
        let v = VectorAdd::new(64 * 1024, 0);
        let cfg = v.shield_config(&CryptoProfile::AES128_16X);
        assert_eq!(cfg.regions.len(), 8); // 4 input sets + 4 output sets
        assert!(cfg.regions.iter().all(|r| r.engine_set.chunk_size == 512));
        assert!(cfg.regions.iter().all(|r| r.engine_set.aes_engines == 1));
    }

    #[test]
    fn computes_correct_sums_baseline() {
        let mut v = VectorAdd::new(16 * 1024, 3);
        let report = run_baseline(&mut v).unwrap();
        assert!(report.outputs_verified);
    }

    #[test]
    fn computes_correct_sums_shielded() {
        let mut v = VectorAdd::new(16 * 1024, 3);
        let report = run_shielded(&mut v, &CryptoProfile::AES128_4X, 1).unwrap();
        assert!(report.outputs_verified);
    }

    #[test]
    #[should_panic(expected = "multiple of 2 KB")]
    fn odd_sizes_rejected() {
        let _ = VectorAdd::new(1000, 0);
    }

    #[test]
    fn sixteen_x_is_not_slower_than_four_x() {
        let mk = |_| VectorAdd::new(64 * 1024, 5);
        let mut a = mk(());
        let fast = run_shielded(&mut a, &CryptoProfile::AES128_16X, 1).unwrap();
        let mut b = mk(());
        let slow = run_shielded(&mut b, &CryptoProfile::AES128_4X, 1).unwrap();
        assert!(fast.cycles <= slow.cycles);
    }
}
