//! Execution harness: runs an accelerator shielded and as the insecure
//! baseline, with full cost accounting and output verification.
//!
//! This reproduces the paper's measurement methodology (§6.2, App. A.6):
//! each benchmark exists as a baseline design and a `_shield` design;
//! both are timed end to end (host DMA in → kernel → host DMA out) and
//! the figure reports the ratio.

use shef_core::shield::bus::{MemoryBus, ParallelShieldedBus, PlainBus, ShieldedBus};
use shef_core::shield::{
    client, DataEncryptionKey, EngineSetStats, RegisterInterface, Shield, WorkerPool,
};
use shef_core::ShefError;
use shef_crypto::ecies::EciesKeyPair;
use shef_fpga::clock::{ClockDomain, CostLedger, Cycles};
use shef_fpga::dram::Dram;
use shef_fpga::host::HostCpu;
use shef_fpga::shell::Shell;
use shef_telemetry::{Report, Telemetry};

use crate::{Accelerator, CryptoProfile};

/// Result of one measured run.
#[derive(Debug)]
pub struct RunReport {
    /// Modelled execution time in device cycles (bottleneck model).
    pub cycles: Cycles,
    /// Execution time in microseconds at the F1 fabric clock.
    pub micros: f64,
    /// Full cost breakdown.
    pub ledger: CostLedger,
    /// True if every expected output region matched the golden model
    /// and `host_post` accepted the result registers.
    pub outputs_verified: bool,
    /// Engine-set statistics (shielded runs only).
    pub engine_stats: Vec<(String, EngineSetStats)>,
    /// Telemetry snapshot of the run (empty for baseline runs).
    pub telemetry: Report,
}

impl RunReport {
    fn from_ledger(
        ledger: CostLedger,
        verified: bool,
        stats: Vec<(String, EngineSetStats)>,
        telemetry: Report,
    ) -> Self {
        let cycles = ledger.bottleneck();
        RunReport {
            cycles,
            micros: ClockDomain::F1_DEFAULT.cycles_to_us(cycles),
            ledger,
            outputs_verified: verified,
            engine_stats: stats,
            telemetry,
        }
    }

    /// Human-readable run-report summary: the end-to-end numbers, the
    /// bottleneck lane, then the telemetry breakdown (phase spans and
    /// non-zero counters) from [`shef_telemetry::Report::summary_table`].
    #[must_use]
    pub fn run_report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "cycles {} ({:.2} us at {} MHz), outputs {}",
            self.cycles.0,
            self.micros,
            ClockDomain::F1_DEFAULT.freq_hz() / 1_000_000,
            if self.outputs_verified {
                "verified"
            } else {
                "MISMATCH"
            },
        );
        if let Some(lane) = self.ledger.bottleneck_lane() {
            let _ = writeln!(
                out,
                "bottleneck lane: {lane} ({})",
                self.ledger.lane(lane).0
            );
        }
        out.push_str(&self.telemetry.summary_table());
        out
    }
}

/// Runs `accel` behind a Shield configured with `profile`.
///
/// The measured window covers: input DMA (ciphertext + tags), sealed
/// register writes, the kernel, buffer flush, output DMA and
/// verification-side decryption — matching the paper's end-to-end
/// latencies. Attestation/boot is *not* included (the paper reports it
/// separately in §6.1).
///
/// # Errors
///
/// Propagates configuration, integrity and bus errors.
pub fn run_shielded(
    accel: &mut dyn Accelerator,
    profile: &CryptoProfile,
    seed: u64,
) -> Result<RunReport, ShefError> {
    run_shielded_impl(accel, profile, seed, None, None)
}

/// [`run_shielded`], recording into a caller-supplied telemetry
/// registry so several runs (e.g. a profile sweep) accumulate into one
/// report. The per-run snapshot in [`RunReport::telemetry`] still
/// reflects the shared registry at the end of this run.
///
/// # Errors
///
/// Propagates configuration, integrity and bus errors.
pub fn run_shielded_with_telemetry(
    accel: &mut dyn Accelerator,
    profile: &CryptoProfile,
    seed: u64,
    telemetry: &Telemetry,
) -> Result<RunReport, ShefError> {
    run_shielded_impl(accel, profile, seed, None, Some(telemetry))
}

/// [`run_shielded`] over the parallel multi-lane datapath: the kernel's
/// bursts are batched and their chunk crypto fanned across `pool`'s
/// lanes. Outputs are bit-identical to [`run_shielded`]; only the cost
/// model (and hence the modelled cycles) sees the lane fan-out.
///
/// # Errors
///
/// Propagates configuration, integrity and bus errors.
pub fn run_shielded_parallel(
    accel: &mut dyn Accelerator,
    profile: &CryptoProfile,
    seed: u64,
    pool: &WorkerPool,
) -> Result<RunReport, ShefError> {
    run_shielded_impl(accel, profile, seed, Some(pool), None)
}

/// [`run_shielded_parallel`] with a caller-supplied telemetry registry
/// (see [`run_shielded_with_telemetry`]).
///
/// # Errors
///
/// Propagates configuration, integrity and bus errors.
pub fn run_shielded_parallel_with_telemetry(
    accel: &mut dyn Accelerator,
    profile: &CryptoProfile,
    seed: u64,
    pool: &WorkerPool,
    telemetry: &Telemetry,
) -> Result<RunReport, ShefError> {
    run_shielded_impl(accel, profile, seed, Some(pool), Some(telemetry))
}

fn run_shielded_impl(
    accel: &mut dyn Accelerator,
    profile: &CryptoProfile,
    seed: u64,
    pool: Option<&WorkerPool>,
    telemetry: Option<&Telemetry>,
) -> Result<RunReport, ShefError> {
    let config = accel.shield_config(profile);
    config.validate()?;
    let keypair = EciesKeyPair::from_seed(format!("harness.shield.{seed}").as_bytes());
    let mut shield = Shield::new(config, keypair)?;
    if let Some(telemetry) = telemetry {
        shield.attach_telemetry(telemetry);
    }
    // Everything downstream records into the shield's registry — the
    // caller's when one was attached, the shield's private one otherwise
    // — so RunReport::telemetry always carries the full datapath.
    let run_telemetry = shield.telemetry().clone();
    if let Some(pool) = pool {
        pool.attach_telemetry(&run_telemetry);
    }
    let dek = DataEncryptionKey::from_bytes(
        shef_crypto::drbg::HmacDrbg::from_seed(format!("harness.dek.{seed}").as_bytes())
            .generate_array::<32>(),
    );
    let load_key = dek.to_load_key(&shield.public_key());
    shield.provision_load_key(&load_key)?;

    let mut shell = Shell::new();
    let mut dram = Dram::f1_default();
    dram.attach_telemetry(&run_telemetry);
    let mut host = HostCpu::new();
    let mut ledger = CostLedger::new();

    // Data Owner stages encrypted inputs; host DMAs ciphertext + tags.
    for input in accel.inputs() {
        let (index, region) = find_region(&shield, &input.region)?;
        let chunk = region.engine_set.chunk_size as u64;
        debug_assert_eq!(input.offset % chunk, 0, "offsets must be chunk-aligned");
        let first_chunk = (input.offset / chunk) as u32;
        let enc = client::encrypt_region_at(&dek, &region, first_chunk, &input.data, 0);
        host.dma_to_device(
            &mut shell,
            &mut dram,
            &mut ledger,
            region.range.start + input.offset,
            &enc.ciphertext,
        )?;
        let tag_base = shield.config().tag_base(index) + u64::from(first_chunk) * 16;
        // Tags ride the same DMA batch as the data (chained descriptor).
        host.dma_to_device_chained(&mut shell, &mut dram, &mut ledger, tag_base, &enc.tags)?;
    }

    // Sealed register writes (commands / small data).
    let mut reg_key = dek.register_key();
    for (index, value) in accel.host_pre() {
        let sealed = RegisterInterface::client_seal_value(&mut reg_key, index, value)?;
        shield.host_reg_write(index, &sealed)?;
        // One AXI-Lite crossing per 4-byte beat of the sealed packet.
        ledger.add_serial(Cycles(4 + sealed.to_bytes().len() as u64 / 4));
    }

    // Kernel execution.
    if let Some(pool) = pool {
        let mut bus = ParallelShieldedBus {
            shield: &mut shield,
            shell: &mut shell,
            dram: &mut dram,
            ledger: &mut ledger,
            pool,
        };
        accel.run(&mut bus)?;
        bus.flush()?;
    } else {
        let mut bus = ShieldedBus {
            shield: &mut shield,
            shell: &mut shell,
            dram: &mut dram,
            ledger: &mut ledger,
        };
        accel.run(&mut bus)?;
        bus.flush()?;
    }

    // Output readback + verification.
    let mut verified = true;
    for expected in accel.expected_outputs() {
        let (index, region) = find_region(&shield, &expected.region)?;
        let chunk = region.engine_set.chunk_size as u64;
        debug_assert_eq!(expected.offset % chunk, 0, "offsets must be chunk-aligned");
        let first_chunk = (expected.offset / chunk) as u32;
        let len = expected.data.len();
        let ct = host.dma_from_device(
            &mut shell,
            &mut dram,
            &mut ledger,
            region.range.start + expected.offset,
            len,
        )?;
        let tag_len = client::tag_bytes_for(len, region.engine_set.chunk_size);
        let tags = host.dma_from_device_chained(
            &mut shell,
            &mut dram,
            &mut ledger,
            shield.config().tag_base(index) + u64::from(first_chunk) * 16,
            tag_len,
        )?;
        let plain = client::decrypt_region_at(
            &dek,
            &region,
            first_chunk,
            &ct,
            &tags,
            &client::uniform_epochs(0),
        )?;
        if plain != expected.data {
            verified = false;
        }
    }

    // Result registers.
    let mut read_reg = |index: usize| -> Result<u64, ShefError> {
        let sealed = shield.host_reg_read(index)?;
        RegisterInterface::client_open_value(&dek.register_key(), index, &sealed)
    };
    if !accel.host_post(&mut read_reg)? {
        verified = false;
    }

    let stats = shield.engine_stats();
    let snapshot = shield.telemetry().report();
    ledger.merge(dram.ledger());
    Ok(RunReport::from_ledger(ledger, verified, stats, snapshot))
}

/// Runs `accel` with no Shield: plaintext DMA and direct Shell/DRAM
/// access — the "1×" baseline of every normalized figure.
///
/// # Errors
///
/// Propagates bus errors.
pub fn run_baseline(accel: &mut dyn Accelerator) -> Result<RunReport, ShefError> {
    // Region addressing comes from the same config (any profile works:
    // addresses do not depend on crypto parameters).
    let config = accel.shield_config(&CryptoProfile::AES128_16X);
    let mut shell = Shell::new();
    let mut dram = Dram::f1_default();
    let mut host = HostCpu::new();
    let mut ledger = CostLedger::new();
    let mut regs = vec![0u64; config.register_interface.num_registers];

    for input in accel.inputs() {
        let region = config
            .regions
            .iter()
            .find(|r| r.name == input.region)
            .ok_or_else(|| ShefError::Malformed(format!("unknown region {}", input.region)))?;
        host.dma_to_device(
            &mut shell,
            &mut dram,
            &mut ledger,
            region.range.start + input.offset,
            &input.data,
        )?;
    }
    for (index, value) in accel.host_pre() {
        if let Some(slot) = regs.get_mut(index) {
            *slot = value;
        }
        ledger.add_serial(Cycles(4));
    }

    {
        let mut bus = PlainBus {
            shell: &mut shell,
            dram: &mut dram,
            ledger: &mut ledger,
            regs: &mut regs,
        };
        accel.run(&mut bus)?;
        bus.flush()?;
    }

    let mut verified = true;
    for expected in accel.expected_outputs() {
        let region = config
            .regions
            .iter()
            .find(|r| r.name == expected.region)
            .ok_or_else(|| ShefError::Malformed(format!("unknown region {}", expected.region)))?;
        let got = host.dma_from_device(
            &mut shell,
            &mut dram,
            &mut ledger,
            region.range.start + expected.offset,
            expected.data.len(),
        )?;
        if got != expected.data {
            verified = false;
        }
    }
    let mut read_reg =
        |index: usize| -> Result<u64, ShefError> { Ok(regs.get(index).copied().unwrap_or(0)) };
    if !accel.host_post(&mut read_reg)? {
        verified = false;
    }

    ledger.merge(dram.ledger());
    Ok(RunReport::from_ledger(
        ledger,
        verified,
        Vec::new(),
        Report::default(),
    ))
}

/// Measures the shielded/baseline ratio for one profile.
///
/// # Errors
///
/// Propagates run errors from either side.
pub fn overhead(
    make_accel: &dyn Fn() -> Box<dyn Accelerator>,
    profile: &CryptoProfile,
) -> Result<OverheadReport, ShefError> {
    let mut base = make_accel();
    let baseline = run_baseline(base.as_mut())?;
    let mut shielded_accel = make_accel();
    let shielded = run_shielded(shielded_accel.as_mut(), profile, 42)?;
    Ok(OverheadReport {
        baseline_cycles: baseline.cycles,
        shielded_cycles: shielded.cycles,
        normalized: shielded.cycles.0 as f64 / baseline.cycles.0.max(1) as f64,
        baseline_verified: baseline.outputs_verified,
        shielded_verified: shielded.outputs_verified,
    })
}

/// Measures the shielded/baseline ratio for one profile over the
/// parallel datapath with `lanes` worker lanes.
///
/// # Errors
///
/// Propagates run errors from either side.
pub fn overhead_parallel(
    make_accel: &dyn Fn() -> Box<dyn Accelerator>,
    profile: &CryptoProfile,
    lanes: usize,
) -> Result<OverheadReport, ShefError> {
    let mut base = make_accel();
    let baseline = run_baseline(base.as_mut())?;
    let pool = WorkerPool::new(lanes);
    let mut shielded_accel = make_accel();
    let shielded = run_shielded_parallel(shielded_accel.as_mut(), profile, 42, &pool)?;
    Ok(OverheadReport {
        baseline_cycles: baseline.cycles,
        shielded_cycles: shielded.cycles,
        normalized: shielded.cycles.0 as f64 / baseline.cycles.0.max(1) as f64,
        baseline_verified: baseline.outputs_verified,
        shielded_verified: shielded.outputs_verified,
    })
}

/// [`overhead_parallel`] recording the shielded run into a
/// caller-supplied telemetry registry, so a lane-scaling sweep can
/// accumulate every configuration into one exported report.
///
/// # Errors
///
/// Propagates run errors from either side.
pub fn overhead_parallel_with_telemetry(
    make_accel: &dyn Fn() -> Box<dyn Accelerator>,
    profile: &CryptoProfile,
    lanes: usize,
    telemetry: &Telemetry,
) -> Result<OverheadReport, ShefError> {
    let mut base = make_accel();
    let baseline = run_baseline(base.as_mut())?;
    let pool = WorkerPool::new(lanes);
    let mut shielded_accel = make_accel();
    let shielded = run_shielded_parallel_with_telemetry(
        shielded_accel.as_mut(),
        profile,
        42,
        &pool,
        telemetry,
    )?;
    Ok(OverheadReport {
        baseline_cycles: baseline.cycles,
        shielded_cycles: shielded.cycles,
        normalized: shielded.cycles.0 as f64 / baseline.cycles.0.max(1) as f64,
        baseline_verified: baseline.outputs_verified,
        shielded_verified: shielded.outputs_verified,
    })
}

/// A baseline-vs-shielded comparison.
#[derive(Debug, Clone, Copy)]
pub struct OverheadReport {
    /// Baseline execution cycles.
    pub baseline_cycles: Cycles,
    /// Shielded execution cycles.
    pub shielded_cycles: Cycles,
    /// Shielded / baseline (the y-axis of Fig. 5 and Fig. 6).
    pub normalized: f64,
    /// Baseline output check.
    pub baseline_verified: bool,
    /// Shielded output check.
    pub shielded_verified: bool,
}

fn find_region(
    shield: &Shield,
    name: &str,
) -> Result<(usize, shef_core::shield::RegionConfig), ShefError> {
    shield
        .config()
        .regions
        .iter()
        .enumerate()
        .find(|(_, r)| r.name == name)
        .map(|(i, r)| (i, r.clone()))
        .ok_or_else(|| ShefError::Malformed(format!("unknown region {name}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecadd::VectorAdd;

    #[test]
    fn shielded_and_baseline_agree_on_outputs() {
        let mut accel = VectorAdd::new(8 * 1024, 1);
        let baseline = run_baseline(&mut accel).unwrap();
        assert!(baseline.outputs_verified);
        let mut accel = VectorAdd::new(8 * 1024, 1);
        let shielded = run_shielded(&mut accel, &CryptoProfile::AES128_16X, 7).unwrap();
        assert!(shielded.outputs_verified);
        // Security costs something.
        assert!(shielded.cycles >= baseline.cycles);
    }

    #[test]
    fn parallel_harness_verifies_and_never_slows_down() {
        let mut accel = VectorAdd::new(64 * 1024, 1);
        let serial = run_shielded(&mut accel, &CryptoProfile::AES128_4X, 7).unwrap();
        let mut accel = VectorAdd::new(64 * 1024, 1);
        let pool = WorkerPool::new(4);
        let parallel =
            run_shielded_parallel(&mut accel, &CryptoProfile::AES128_4X, 7, &pool).unwrap();
        assert!(parallel.outputs_verified);
        // Lane fan-out can only shrink the modelled bottleneck.
        assert!(parallel.cycles <= serial.cycles);
        // And the engine sets actually dispatched batch work.
        assert!(parallel
            .engine_stats
            .iter()
            .any(|(_, s)| s.parallel_batches > 0 && s.parallel_speedup() > 1.0));
    }

    #[test]
    fn run_report_snapshots_full_datapath_telemetry() {
        let telemetry = shef_telemetry::Telemetry::new();
        let pool = WorkerPool::new(2);
        let mut accel = VectorAdd::new(8 * 1024, 1);
        let report = run_shielded_parallel_with_telemetry(
            &mut accel,
            &CryptoProfile::AES128_4X,
            7,
            &pool,
            &telemetry,
        )
        .unwrap();
        let counter = |name: &str| {
            report
                .telemetry
                .counters
                .iter()
                .find(|(n, _)| n.as_str() == name)
                .map(|(_, v)| *v)
        };
        // Engine, pool and DRAM layers all land in one registry.
        assert!(counter("shield.engine.bytes_read").unwrap() > 0);
        assert!(counter("shield.pool.batches").unwrap() > 0);
        assert!(counter("fpga.dram.bytes_written").unwrap() > 0);
        // Phase spans were traced on the deterministic clock.
        assert!(report.telemetry.scopes.contains_key("shield.engine.crypto"));
        // The snapshot is of the caller's registry.
        assert_eq!(telemetry.report().to_json(), report.telemetry.to_json(),);
        // The summary renders the headline numbers.
        let table = report.run_report();
        assert!(table.contains("outputs verified"));
        assert!(table.contains("shield.engine.walk"));
    }

    #[test]
    fn baseline_report_has_empty_telemetry() {
        let mut accel = VectorAdd::new(8 * 1024, 1);
        let report = run_baseline(&mut accel).unwrap();
        assert!(report.telemetry.counters.is_empty());
        assert!(report.telemetry.spans.is_empty());
    }

    #[test]
    fn overhead_reports_ratio() {
        let make = || Box::new(VectorAdd::new(8 * 1024, 1)) as Box<dyn Accelerator>;
        let report = overhead(&make, &CryptoProfile::AES128_4X).unwrap();
        assert!(report.normalized >= 1.0);
        assert!(report.baseline_verified && report.shielded_verified);
    }

    #[test]
    fn slower_profile_is_not_faster() {
        let make = || Box::new(VectorAdd::new(256 * 1024, 1)) as Box<dyn Accelerator>;
        let fast = overhead(&make, &CryptoProfile::AES128_16X).unwrap();
        let slow = overhead(&make, &CryptoProfile::AES256_4X).unwrap();
        assert!(slow.normalized >= fast.normalized);
    }
}
