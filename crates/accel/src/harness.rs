//! Execution harness: runs an accelerator shielded and as the insecure
//! baseline, with full cost accounting and output verification.
//!
//! This reproduces the paper's measurement methodology (§6.2, App. A.6):
//! each benchmark exists as a baseline design and a `_shield` design;
//! both are timed end to end (host DMA in → kernel → host DMA out) and
//! the figure reports the ratio.

use shef_core::shield::bus::{MemoryBus, ParallelShieldedBus, PlainBus, ShieldedBus, ACCEL_LANE};
use shef_core::shield::engine::AccessMode;
use shef_core::shield::{
    client, DataEncryptionKey, EngineSetStats, RegisterInterface, ServiceConfig, ServiceRequest,
    Shield, ShieldService, TenantId, WorkerPool,
};
use shef_core::ShefError;
use shef_crypto::ecies::EciesKeyPair;
use shef_fpga::clock::{ClockDomain, CostLedger, Cycles};
use shef_fpga::dram::Dram;
use shef_fpga::host::HostCpu;
use shef_fpga::shell::Shell;
use shef_telemetry::{Report, Telemetry};

use crate::{Accelerator, CryptoProfile};

/// Result of one measured run.
#[derive(Debug)]
pub struct RunReport {
    /// Modelled execution time in device cycles (bottleneck model).
    pub cycles: Cycles,
    /// Execution time in microseconds at the F1 fabric clock.
    pub micros: f64,
    /// Full cost breakdown.
    pub ledger: CostLedger,
    /// True if every expected output region matched the golden model
    /// and `host_post` accepted the result registers.
    pub outputs_verified: bool,
    /// Engine-set statistics (shielded runs only).
    pub engine_stats: Vec<(String, EngineSetStats)>,
    /// Telemetry snapshot of the run (empty for baseline runs).
    pub telemetry: Report,
}

impl RunReport {
    fn from_ledger(
        ledger: CostLedger,
        verified: bool,
        stats: Vec<(String, EngineSetStats)>,
        telemetry: Report,
    ) -> Self {
        let cycles = ledger.bottleneck();
        RunReport {
            cycles,
            micros: ClockDomain::F1_DEFAULT.cycles_to_us(cycles),
            ledger,
            outputs_verified: verified,
            engine_stats: stats,
            telemetry,
        }
    }

    /// Human-readable run-report summary: the end-to-end numbers, the
    /// bottleneck lane, then the telemetry breakdown (phase spans and
    /// non-zero counters) from [`shef_telemetry::Report::summary_table`].
    #[must_use]
    pub fn run_report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "cycles {} ({:.2} us at {} MHz), outputs {}",
            self.cycles.0,
            self.micros,
            ClockDomain::F1_DEFAULT.freq_hz() / 1_000_000,
            if self.outputs_verified {
                "verified"
            } else {
                "MISMATCH"
            },
        );
        if let Some(lane) = self.ledger.bottleneck_lane() {
            let _ = writeln!(
                out,
                "bottleneck lane: {lane} ({})",
                self.ledger.lane(lane).0
            );
        }
        out.push_str(&self.telemetry.summary_table());
        out
    }
}

/// Runs `accel` behind a Shield configured with `profile`.
///
/// The measured window covers: input DMA (ciphertext + tags), sealed
/// register writes, the kernel, buffer flush, output DMA and
/// verification-side decryption — matching the paper's end-to-end
/// latencies. Attestation/boot is *not* included (the paper reports it
/// separately in §6.1).
///
/// # Errors
///
/// Propagates configuration, integrity and bus errors.
pub fn run_shielded(
    accel: &mut dyn Accelerator,
    profile: &CryptoProfile,
    seed: u64,
) -> Result<RunReport, ShefError> {
    run_shielded_impl(accel, profile, seed, None, None)
}

/// [`run_shielded`], recording into a caller-supplied telemetry
/// registry so several runs (e.g. a profile sweep) accumulate into one
/// report. The per-run snapshot in [`RunReport::telemetry`] still
/// reflects the shared registry at the end of this run.
///
/// # Errors
///
/// Propagates configuration, integrity and bus errors.
pub fn run_shielded_with_telemetry(
    accel: &mut dyn Accelerator,
    profile: &CryptoProfile,
    seed: u64,
    telemetry: &Telemetry,
) -> Result<RunReport, ShefError> {
    run_shielded_impl(accel, profile, seed, None, Some(telemetry))
}

/// [`run_shielded`] over the parallel multi-lane datapath: the kernel's
/// bursts are batched and their chunk crypto fanned across `pool`'s
/// lanes. Outputs are bit-identical to [`run_shielded`]; only the cost
/// model (and hence the modelled cycles) sees the lane fan-out.
///
/// # Errors
///
/// Propagates configuration, integrity and bus errors.
pub fn run_shielded_parallel(
    accel: &mut dyn Accelerator,
    profile: &CryptoProfile,
    seed: u64,
    pool: &WorkerPool,
) -> Result<RunReport, ShefError> {
    run_shielded_impl(accel, profile, seed, Some(pool), None)
}

/// [`run_shielded_parallel`] with a caller-supplied telemetry registry
/// (see [`run_shielded_with_telemetry`]).
///
/// # Errors
///
/// Propagates configuration, integrity and bus errors.
pub fn run_shielded_parallel_with_telemetry(
    accel: &mut dyn Accelerator,
    profile: &CryptoProfile,
    seed: u64,
    pool: &WorkerPool,
    telemetry: &Telemetry,
) -> Result<RunReport, ShefError> {
    run_shielded_impl(accel, profile, seed, Some(pool), Some(telemetry))
}

fn run_shielded_impl(
    accel: &mut dyn Accelerator,
    profile: &CryptoProfile,
    seed: u64,
    pool: Option<&WorkerPool>,
    telemetry: Option<&Telemetry>,
) -> Result<RunReport, ShefError> {
    let config = accel.shield_config(profile);
    config.validate()?;
    let keypair = EciesKeyPair::from_seed(format!("harness.shield.{seed}").as_bytes());
    let mut shield = Shield::new(config, keypair)?;
    if let Some(telemetry) = telemetry {
        shield.attach_telemetry(telemetry);
    }
    // Everything downstream records into the shield's registry — the
    // caller's when one was attached, the shield's private one otherwise
    // — so RunReport::telemetry always carries the full datapath.
    let run_telemetry = shield.telemetry().clone();
    if let Some(pool) = pool {
        pool.attach_telemetry(&run_telemetry);
    }
    let dek = DataEncryptionKey::from_bytes(
        shef_crypto::drbg::HmacDrbg::from_seed(format!("harness.dek.{seed}").as_bytes())
            .generate_array::<32>(),
    );
    let load_key = dek.to_load_key(&shield.public_key());
    shield.provision_load_key(&load_key)?;

    let mut shell = Shell::new();
    let mut dram = Dram::f1_default();
    dram.attach_telemetry(&run_telemetry);
    let mut host = HostCpu::new();
    let mut ledger = CostLedger::new();

    // Data Owner stages encrypted inputs; host DMAs ciphertext + tags.
    for input in accel.inputs() {
        let (index, region) = find_region(&shield, &input.region)?;
        let chunk = region.engine_set.chunk_size as u64;
        debug_assert_eq!(input.offset % chunk, 0, "offsets must be chunk-aligned");
        let first_chunk = (input.offset / chunk) as u32;
        let enc = client::encrypt_region_at(&dek, &region, first_chunk, &input.data, 0);
        host.dma_to_device(
            &mut shell,
            &mut dram,
            &mut ledger,
            region.range.start + input.offset,
            &enc.ciphertext,
        )?;
        let tag_base = shield.config().tag_base(index) + u64::from(first_chunk) * 16;
        // Tags ride the same DMA batch as the data (chained descriptor).
        host.dma_to_device_chained(&mut shell, &mut dram, &mut ledger, tag_base, &enc.tags)?;
    }

    // Sealed register writes (commands / small data).
    let mut reg_key = dek.register_key();
    for (index, value) in accel.host_pre() {
        let sealed = RegisterInterface::client_seal_value(&mut reg_key, index, value)?;
        shield.host_reg_write(index, &sealed)?;
        // One AXI-Lite crossing per 4-byte beat of the sealed packet.
        ledger.add_serial(Cycles(4 + sealed.to_bytes().len() as u64 / 4));
    }

    // Kernel execution.
    if let Some(pool) = pool {
        let mut bus = ParallelShieldedBus {
            shield: &mut shield,
            shell: &mut shell,
            dram: &mut dram,
            ledger: &mut ledger,
            pool,
        };
        accel.run(&mut bus)?;
        bus.flush()?;
    } else {
        let mut bus = ShieldedBus {
            shield: &mut shield,
            shell: &mut shell,
            dram: &mut dram,
            ledger: &mut ledger,
        };
        accel.run(&mut bus)?;
        bus.flush()?;
    }

    // Output readback + verification.
    let mut verified = true;
    for expected in accel.expected_outputs() {
        let (index, region) = find_region(&shield, &expected.region)?;
        let chunk = region.engine_set.chunk_size as u64;
        debug_assert_eq!(expected.offset % chunk, 0, "offsets must be chunk-aligned");
        let first_chunk = (expected.offset / chunk) as u32;
        let len = expected.data.len();
        let ct = host.dma_from_device(
            &mut shell,
            &mut dram,
            &mut ledger,
            region.range.start + expected.offset,
            len,
        )?;
        let tag_len = client::tag_bytes_for(len, region.engine_set.chunk_size);
        let tags = host.dma_from_device_chained(
            &mut shell,
            &mut dram,
            &mut ledger,
            shield.config().tag_base(index) + u64::from(first_chunk) * 16,
            tag_len,
        )?;
        let plain = client::decrypt_region_at(
            &dek,
            &region,
            first_chunk,
            &ct,
            &tags,
            &client::uniform_epochs(0),
        )?;
        if plain != expected.data {
            verified = false;
        }
    }

    // Result registers.
    let mut read_reg = |index: usize| -> Result<u64, ShefError> {
        let sealed = shield.host_reg_read(index)?;
        RegisterInterface::client_open_value(&dek.register_key(), index, &sealed)
    };
    if !accel.host_post(&mut read_reg)? {
        verified = false;
    }

    let stats = shield.engine_stats();
    let snapshot = shield.telemetry().report();
    ledger.merge(dram.ledger());
    Ok(RunReport::from_ledger(ledger, verified, stats, snapshot))
}

/// Runs `accel` with no Shield: plaintext DMA and direct Shell/DRAM
/// access — the "1×" baseline of every normalized figure.
///
/// # Errors
///
/// Propagates bus errors.
pub fn run_baseline(accel: &mut dyn Accelerator) -> Result<RunReport, ShefError> {
    // Region addressing comes from the same config (any profile works:
    // addresses do not depend on crypto parameters).
    let config = accel.shield_config(&CryptoProfile::AES128_16X);
    let mut shell = Shell::new();
    let mut dram = Dram::f1_default();
    let mut host = HostCpu::new();
    let mut ledger = CostLedger::new();
    let mut regs = vec![0u64; config.register_interface.num_registers];

    for input in accel.inputs() {
        let region = config
            .regions
            .iter()
            .find(|r| r.name == input.region)
            .ok_or_else(|| ShefError::Malformed(format!("unknown region {}", input.region)))?;
        host.dma_to_device(
            &mut shell,
            &mut dram,
            &mut ledger,
            region.range.start + input.offset,
            &input.data,
        )?;
    }
    for (index, value) in accel.host_pre() {
        if let Some(slot) = regs.get_mut(index) {
            *slot = value;
        }
        ledger.add_serial(Cycles(4));
    }

    {
        let mut bus = PlainBus {
            shell: &mut shell,
            dram: &mut dram,
            ledger: &mut ledger,
            regs: &mut regs,
        };
        accel.run(&mut bus)?;
        bus.flush()?;
    }

    let mut verified = true;
    for expected in accel.expected_outputs() {
        let region = config
            .regions
            .iter()
            .find(|r| r.name == expected.region)
            .ok_or_else(|| ShefError::Malformed(format!("unknown region {}", expected.region)))?;
        let got = host.dma_from_device(
            &mut shell,
            &mut dram,
            &mut ledger,
            region.range.start + expected.offset,
            expected.data.len(),
        )?;
        if got != expected.data {
            verified = false;
        }
    }
    let mut read_reg =
        |index: usize| -> Result<u64, ShefError> { Ok(regs.get(index).copied().unwrap_or(0)) };
    if !accel.host_post(&mut read_reg)? {
        verified = false;
    }

    ledger.merge(dram.ledger());
    Ok(RunReport::from_ledger(
        ledger,
        verified,
        Vec::new(),
        Report::default(),
    ))
}

/// Measures the shielded/baseline ratio for one profile.
///
/// # Errors
///
/// Propagates run errors from either side.
pub fn overhead(
    make_accel: &dyn Fn() -> Box<dyn Accelerator>,
    profile: &CryptoProfile,
) -> Result<OverheadReport, ShefError> {
    let mut base = make_accel();
    let baseline = run_baseline(base.as_mut())?;
    let mut shielded_accel = make_accel();
    let shielded = run_shielded(shielded_accel.as_mut(), profile, 42)?;
    Ok(OverheadReport {
        baseline_cycles: baseline.cycles,
        shielded_cycles: shielded.cycles,
        normalized: shielded.cycles.0 as f64 / baseline.cycles.0.max(1) as f64,
        baseline_verified: baseline.outputs_verified,
        shielded_verified: shielded.outputs_verified,
    })
}

/// Measures the shielded/baseline ratio for one profile over the
/// parallel datapath with `lanes` worker lanes.
///
/// # Errors
///
/// Propagates run errors from either side.
pub fn overhead_parallel(
    make_accel: &dyn Fn() -> Box<dyn Accelerator>,
    profile: &CryptoProfile,
    lanes: usize,
) -> Result<OverheadReport, ShefError> {
    let mut base = make_accel();
    let baseline = run_baseline(base.as_mut())?;
    let pool = WorkerPool::new(lanes);
    let mut shielded_accel = make_accel();
    let shielded = run_shielded_parallel(shielded_accel.as_mut(), profile, 42, &pool)?;
    Ok(OverheadReport {
        baseline_cycles: baseline.cycles,
        shielded_cycles: shielded.cycles,
        normalized: shielded.cycles.0 as f64 / baseline.cycles.0.max(1) as f64,
        baseline_verified: baseline.outputs_verified,
        shielded_verified: shielded.outputs_verified,
    })
}

/// [`overhead_parallel`] recording the shielded run into a
/// caller-supplied telemetry registry, so a lane-scaling sweep can
/// accumulate every configuration into one exported report.
///
/// # Errors
///
/// Propagates run errors from either side.
pub fn overhead_parallel_with_telemetry(
    make_accel: &dyn Fn() -> Box<dyn Accelerator>,
    profile: &CryptoProfile,
    lanes: usize,
    telemetry: &Telemetry,
) -> Result<OverheadReport, ShefError> {
    let mut base = make_accel();
    let baseline = run_baseline(base.as_mut())?;
    let pool = WorkerPool::new(lanes);
    let mut shielded_accel = make_accel();
    let shielded = run_shielded_parallel_with_telemetry(
        shielded_accel.as_mut(),
        profile,
        42,
        &pool,
        telemetry,
    )?;
    Ok(OverheadReport {
        baseline_cycles: baseline.cycles,
        shielded_cycles: shielded.cycles,
        normalized: shielded.cycles.0 as f64 / baseline.cycles.0.max(1) as f64,
        baseline_verified: baseline.outputs_verified,
        shielded_verified: shielded.outputs_verified,
    })
}

/// A baseline-vs-shielded comparison.
#[derive(Debug, Clone, Copy)]
pub struct OverheadReport {
    /// Baseline execution cycles.
    pub baseline_cycles: Cycles,
    /// Shielded execution cycles.
    pub shielded_cycles: Cycles,
    /// Shielded / baseline (the y-axis of Fig. 5 and Fig. 6).
    pub normalized: f64,
    /// Baseline output check.
    pub baseline_verified: bool,
    /// Shielded output check.
    pub shielded_verified: bool,
}

/// One tenant's slice of a [`ServiceRunReport`]: the same end-to-end
/// measurement [`RunReport`] makes for a single-tenant run, read off
/// the tenant's private ledger and engine sets.
#[derive(Debug)]
pub struct TenantRunReport {
    /// Tenant name (`tenant0..tenantN` in registration order).
    pub tenant: String,
    /// Modelled execution time in device cycles (bottleneck model over
    /// the tenant's private ledger, DRAM charges merged).
    pub cycles: Cycles,
    /// Execution time in microseconds at the F1 fabric clock.
    pub micros: f64,
    /// Full per-tenant cost breakdown.
    pub ledger: CostLedger,
    /// True if the tenant's output regions matched the golden model and
    /// `host_post` accepted the result registers.
    pub outputs_verified: bool,
    /// The tenant's engine-set statistics.
    pub engine_stats: Vec<(String, EngineSetStats)>,
}

/// Result of one [`run_shielded_service`] run: per-tenant measurements
/// plus the service-level scheduling picture.
#[derive(Debug)]
pub struct ServiceRunReport {
    /// One report per tenant, in registration order.
    pub tenants: Vec<TenantRunReport>,
    /// Final logical clock of every shard, in shard order.
    pub shard_clocks: Vec<Cycles>,
    /// Requests the admission queue accepted over the whole run.
    pub admitted: u64,
    /// Completions the service delivered (equals `admitted` on a clean
    /// run — the starvation-freedom invariant).
    pub completed: u64,
    /// Telemetry snapshot of the run (service, engine, pool and DRAM
    /// instruments in one registry).
    pub telemetry: Report,
}

impl ServiceRunReport {
    /// True if every tenant's outputs verified.
    #[must_use]
    pub fn all_verified(&self) -> bool {
        self.tenants.iter().all(|t| t.outputs_verified)
    }

    /// The slowest tenant's modelled cycles — the figure a tenant-
    /// scaling sweep plots.
    #[must_use]
    pub fn makespan(&self) -> Cycles {
        self.tenants
            .iter()
            .map(|t| t.cycles)
            .max()
            .unwrap_or_default()
    }
}

/// Adapter driving one tenant's kernel through the service: every bus
/// operation is submitted to the admission queue and drained to a
/// completion, so the request still crosses admission control and the
/// shard scheduler. Compute occupancy and register traffic bypass the
/// queue and charge the tenant directly, exactly like
/// [`ParallelShieldedBus`].
struct ServiceBus<'a> {
    service: &'a mut ShieldService,
    tenant: TenantId,
}

impl ServiceBus<'_> {
    fn roundtrip(&mut self, request: ServiceRequest) -> Result<Option<Vec<u8>>, ShefError> {
        let id = self.service.submit(self.tenant, request)?;
        let completion = self
            .service
            .drain()
            .into_iter()
            .find(|c| c.request == id)
            .ok_or_else(|| {
                ShefError::ProtocolViolation("service lost an admitted request".into())
            })?;
        completion.payload
    }
}

impl MemoryBus for ServiceBus<'_> {
    fn read(&mut self, addr: u64, len: usize, mode: AccessMode) -> Result<Vec<u8>, ShefError> {
        self.roundtrip(ServiceRequest::Read { addr, len, mode })
            .map(Option::unwrap_or_default)
    }

    fn write(&mut self, addr: u64, data: &[u8], mode: AccessMode) -> Result<(), ShefError> {
        self.roundtrip(ServiceRequest::Write {
            addr,
            data: data.to_vec(),
            mode,
        })
        .map(|_| ())
    }

    fn flush(&mut self) -> Result<(), ShefError> {
        self.roundtrip(ServiceRequest::Flush).map(|_| ())
    }

    fn compute(&mut self, cycles: u64) {
        self.service
            .tenant_ledger_mut(self.tenant)
            .add_busy(ACCEL_LANE, Cycles(cycles));
    }

    fn reg_read(&mut self, index: usize) -> u64 {
        self.service
            .tenant_shield(self.tenant)
            .registers()
            .accel_read(index)
    }

    fn reg_write(&mut self, index: usize, value: u64) {
        self.service
            .tenant_shield(self.tenant)
            .registers()
            .accel_write(index, value);
    }
}

/// Runs `tenants` instances of one workload through a
/// [`ShieldService`], each tenant in its own key domain and address
/// namespace. The measured window per tenant matches [`run_shielded`]:
/// input DMA (ciphertext + tags), sealed register writes, the kernel
/// (every burst crossing admission + shard dispatch), flush, output DMA
/// and verification-side decryption. With one tenant and a one-shard
/// service of `lanes` lanes this is bit-identical to
/// [`run_shielded_parallel`] at `lanes` — the differential conformance
/// suite pins exactly that.
///
/// # Errors
///
/// Propagates configuration, admission, integrity and bus errors.
pub fn run_shielded_service(
    make_accel: &dyn Fn() -> Box<dyn Accelerator>,
    profile: &CryptoProfile,
    seed: u64,
    tenants: usize,
    service_config: &ServiceConfig,
) -> Result<ServiceRunReport, ShefError> {
    run_shielded_service_impl(make_accel, profile, seed, tenants, service_config, None)
}

/// [`run_shielded_service`] with a caller-supplied telemetry registry
/// (see [`run_shielded_with_telemetry`]).
///
/// # Errors
///
/// Propagates configuration, admission, integrity and bus errors.
pub fn run_shielded_service_with_telemetry(
    make_accel: &dyn Fn() -> Box<dyn Accelerator>,
    profile: &CryptoProfile,
    seed: u64,
    tenants: usize,
    service_config: &ServiceConfig,
    telemetry: &Telemetry,
) -> Result<ServiceRunReport, ShefError> {
    run_shielded_service_impl(
        make_accel,
        profile,
        seed,
        tenants,
        service_config,
        Some(telemetry),
    )
}

fn run_shielded_service_impl(
    make_accel: &dyn Fn() -> Box<dyn Accelerator>,
    profile: &CryptoProfile,
    seed: u64,
    tenants: usize,
    service_config: &ServiceConfig,
    telemetry: Option<&Telemetry>,
) -> Result<ServiceRunReport, ShefError> {
    if tenants == 0 {
        return Err(ShefError::InvalidConfig(
            "service run needs >= 1 tenant".into(),
        ));
    }
    let master = DataEncryptionKey::from_bytes(
        shef_crypto::drbg::HmacDrbg::from_seed(format!("harness.service.master.{seed}").as_bytes())
            .generate_array::<32>(),
    );
    let mut env =
        shef_attest::AttestationEnvironment::new(format!("harness.service.{seed}").as_bytes())?;
    let mut service = ShieldService::new(service_config.clone(), env.verifier_public())?;
    if let Some(telemetry) = telemetry {
        service.attach_telemetry(telemetry);
    }
    let run_telemetry = service.telemetry().clone();

    // Register every tenant and stage its encrypted inputs before any
    // kernel runs (the Data Owners provision independently).
    let mut ids: Vec<TenantId> = Vec::with_capacity(tenants);
    let mut accels: Vec<Box<dyn Accelerator>> = Vec::with_capacity(tenants);
    let mut host = HostCpu::new();
    for i in 0..tenants {
        let name = format!("tenant{i}");
        let accel = make_accel();
        let config = accel.shield_config(profile);
        config.validate()?;
        let grant = env.onboard(&name, master.tenant_key(&name).to_bytes())?;
        let id = service.register_tenant(&name, config, &grant)?;
        let dek = master.tenant_key(&name);
        for input in accel.inputs() {
            let (shield, shell, dram, ledger) = service.tenant_datapath(id);
            let (index, region) = find_region(shield, &input.region)?;
            let chunk = region.engine_set.chunk_size as u64;
            debug_assert_eq!(input.offset % chunk, 0, "offsets must be chunk-aligned");
            let first_chunk = (input.offset / chunk) as u32;
            let enc = client::encrypt_region_at(&dek, &region, first_chunk, &input.data, 0);
            host.dma_to_device(
                shell,
                dram,
                ledger,
                region.range.start + input.offset,
                &enc.ciphertext,
            )?;
            let tag_base = shield.config().tag_base(index) + u64::from(first_chunk) * 16;
            host.dma_to_device_chained(shell, dram, ledger, tag_base, &enc.tags)?;
        }
        let mut reg_key = dek.register_key();
        for (index, value) in accel.host_pre() {
            let sealed = RegisterInterface::client_seal_value(&mut reg_key, index, value)?;
            let (shield, _, _, ledger) = service.tenant_datapath(id);
            shield.host_reg_write(index, &sealed)?;
            ledger.add_serial(Cycles(4 + sealed.to_bytes().len() as u64 / 4));
        }
        ids.push(id);
        accels.push(accel);
    }

    // Kernel execution: each tenant's bursts cross admission control
    // and the min-clock shard arbiter.
    for (id, accel) in ids.iter().zip(accels.iter_mut()) {
        let mut bus = ServiceBus {
            service: &mut service,
            tenant: *id,
        };
        accel.run(&mut bus)?;
        bus.flush()?;
    }

    // Output readback + client-side verification per tenant.
    let mut verified = vec![true; tenants];
    for (i, (id, accel)) in ids.iter().zip(accels.iter()).enumerate() {
        let dek = master.tenant_key(&format!("tenant{i}"));
        for expected in accel.expected_outputs() {
            let (shield, shell, dram, ledger) = service.tenant_datapath(*id);
            let (index, region) = find_region(shield, &expected.region)?;
            let chunk = region.engine_set.chunk_size as u64;
            debug_assert_eq!(expected.offset % chunk, 0, "offsets must be chunk-aligned");
            let first_chunk = (expected.offset / chunk) as u32;
            let len = expected.data.len();
            let tag_base = shield.config().tag_base(index) + u64::from(first_chunk) * 16;
            let ct = host.dma_from_device(
                shell,
                dram,
                ledger,
                region.range.start + expected.offset,
                len,
            )?;
            let tag_len = client::tag_bytes_for(len, region.engine_set.chunk_size);
            let tags = host.dma_from_device_chained(shell, dram, ledger, tag_base, tag_len)?;
            let plain = client::decrypt_region_at(
                &dek,
                &region,
                first_chunk,
                &ct,
                &tags,
                &client::uniform_epochs(0),
            )?;
            if plain != expected.data {
                verified[i] = false;
            }
        }
        let reg_key = dek.register_key();
        let mut read_reg = |index: usize| -> Result<u64, ShefError> {
            let sealed = service.tenant_shield(*id).host_reg_read(index)?;
            RegisterInterface::client_open_value(&reg_key, index, &sealed)
        };
        if !accel.host_post(&mut read_reg)? {
            verified[i] = false;
        }
    }

    let mut tenant_reports = Vec::with_capacity(tenants);
    for (i, id) in ids.iter().enumerate() {
        let stats = service.tenant_shield(*id).engine_stats();
        let mut ledger = service.tenant_ledger(*id).clone();
        ledger.merge(service.tenant_dram(*id).ledger());
        let cycles = ledger.bottleneck();
        tenant_reports.push(TenantRunReport {
            tenant: service.tenant_name(*id).to_owned(),
            cycles,
            micros: ClockDomain::F1_DEFAULT.cycles_to_us(cycles),
            ledger,
            outputs_verified: verified[i],
            engine_stats: stats,
        });
    }
    let shard_clocks = (0..service.shard_count())
        .map(|s| service.shard(s).clock())
        .collect();
    let snapshot = run_telemetry.report();
    let counter = |name: &str| {
        snapshot
            .counters
            .iter()
            .find(|(n, _)| n.as_str() == name)
            .map_or(0, |(_, v)| *v)
    };
    Ok(ServiceRunReport {
        tenants: tenant_reports,
        shard_clocks,
        admitted: counter("shield.service.admitted"),
        completed: counter("shield.service.completed"),
        telemetry: snapshot,
    })
}

fn find_region(
    shield: &Shield,
    name: &str,
) -> Result<(usize, shef_core::shield::RegionConfig), ShefError> {
    shield
        .config()
        .regions
        .iter()
        .enumerate()
        .find(|(_, r)| r.name == name)
        .map(|(i, r)| (i, r.clone()))
        .ok_or_else(|| ShefError::Malformed(format!("unknown region {name}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecadd::VectorAdd;

    #[test]
    fn shielded_and_baseline_agree_on_outputs() {
        let mut accel = VectorAdd::new(8 * 1024, 1);
        let baseline = run_baseline(&mut accel).unwrap();
        assert!(baseline.outputs_verified);
        let mut accel = VectorAdd::new(8 * 1024, 1);
        let shielded = run_shielded(&mut accel, &CryptoProfile::AES128_16X, 7).unwrap();
        assert!(shielded.outputs_verified);
        // Security costs something.
        assert!(shielded.cycles >= baseline.cycles);
    }

    #[test]
    fn parallel_harness_verifies_and_never_slows_down() {
        let mut accel = VectorAdd::new(64 * 1024, 1);
        let serial = run_shielded(&mut accel, &CryptoProfile::AES128_4X, 7).unwrap();
        let mut accel = VectorAdd::new(64 * 1024, 1);
        let pool = WorkerPool::new(4);
        let parallel =
            run_shielded_parallel(&mut accel, &CryptoProfile::AES128_4X, 7, &pool).unwrap();
        assert!(parallel.outputs_verified);
        // Lane fan-out can only shrink the modelled bottleneck.
        assert!(parallel.cycles <= serial.cycles);
        // And the engine sets actually dispatched batch work.
        assert!(parallel
            .engine_stats
            .iter()
            .any(|(_, s)| s.parallel_batches > 0 && s.parallel_speedup() > 1.0));
    }

    #[test]
    fn run_report_snapshots_full_datapath_telemetry() {
        let telemetry = shef_telemetry::Telemetry::new();
        let pool = WorkerPool::new(2);
        let mut accel = VectorAdd::new(8 * 1024, 1);
        let report = run_shielded_parallel_with_telemetry(
            &mut accel,
            &CryptoProfile::AES128_4X,
            7,
            &pool,
            &telemetry,
        )
        .unwrap();
        let counter = |name: &str| {
            report
                .telemetry
                .counters
                .iter()
                .find(|(n, _)| n.as_str() == name)
                .map(|(_, v)| *v)
        };
        // Engine, pool and DRAM layers all land in one registry.
        assert!(counter("shield.engine.bytes_read").unwrap() > 0);
        assert!(counter("shield.pool.batches").unwrap() > 0);
        assert!(counter("fpga.dram.bytes_written").unwrap() > 0);
        // Phase spans were traced on the deterministic clock.
        assert!(report.telemetry.scopes.contains_key("shield.engine.crypto"));
        // The snapshot is of the caller's registry.
        assert_eq!(telemetry.report().to_json(), report.telemetry.to_json(),);
        // The summary renders the headline numbers.
        let table = report.run_report();
        assert!(table.contains("outputs verified"));
        assert!(table.contains("shield.engine.walk"));
    }

    #[test]
    fn one_tenant_service_run_matches_the_parallel_datapath() {
        let make = || Box::new(VectorAdd::new(16 * 1024, 1)) as Box<dyn Accelerator>;
        let pool = WorkerPool::new(2);
        let mut accel = VectorAdd::new(16 * 1024, 1);
        let parallel =
            run_shielded_parallel(&mut accel, &CryptoProfile::AES128_4X, 11, &pool).unwrap();
        let config = ServiceConfig {
            shards: 1,
            lanes_per_shard: 2,
            ..ServiceConfig::default()
        };
        let service =
            run_shielded_service(&make, &CryptoProfile::AES128_4X, 11, 1, &config).unwrap();
        assert!(service.all_verified());
        assert_eq!(service.tenants.len(), 1);
        let tenant = &service.tenants[0];
        assert_eq!(tenant.cycles, parallel.cycles);
        assert_eq!(tenant.ledger, parallel.ledger);
        assert_eq!(tenant.engine_stats, parallel.engine_stats);
        assert_eq!(service.admitted, service.completed);
    }

    #[test]
    fn multi_tenant_service_run_verifies_every_tenant() {
        let make = || Box::new(VectorAdd::new(8 * 1024, 1)) as Box<dyn Accelerator>;
        let config = ServiceConfig {
            shards: 2,
            lanes_per_shard: 2,
            ..ServiceConfig::default()
        };
        let report = run_shielded_service(&make, &CryptoProfile::AES128_4X, 3, 4, &config).unwrap();
        assert_eq!(report.tenants.len(), 4);
        assert!(report.all_verified());
        assert_eq!(report.admitted, report.completed, "no request lost");
        // Tenants split across both shards, and both shards worked.
        assert_eq!(report.shard_clocks.len(), 2);
        assert!(report.shard_clocks.iter().all(|c| c.0 > 0));
        // Same-seed runs are byte-identical at the scheduling level.
        let again = run_shielded_service(&make, &CryptoProfile::AES128_4X, 3, 4, &config).unwrap();
        assert_eq!(report.shard_clocks, again.shard_clocks);
        assert_eq!(report.makespan(), again.makespan());
        assert_eq!(
            report.telemetry.to_json(),
            again.telemetry.to_json(),
            "service telemetry must be deterministic"
        );
    }

    #[test]
    fn baseline_report_has_empty_telemetry() {
        let mut accel = VectorAdd::new(8 * 1024, 1);
        let report = run_baseline(&mut accel).unwrap();
        assert!(report.telemetry.counters.is_empty());
        assert!(report.telemetry.spans.is_empty());
    }

    #[test]
    fn overhead_reports_ratio() {
        let make = || Box::new(VectorAdd::new(8 * 1024, 1)) as Box<dyn Accelerator>;
        let report = overhead(&make, &CryptoProfile::AES128_4X).unwrap();
        assert!(report.normalized >= 1.0);
        assert!(report.baseline_verified && report.shielded_verified);
    }

    #[test]
    fn slower_profile_is_not_faster() {
        let make = || Box::new(VectorAdd::new(256 * 1024, 1)) as Box<dyn Accelerator>;
        let fast = overhead(&make, &CryptoProfile::AES128_16X).unwrap();
        let slow = overhead(&make, &CryptoProfile::AES256_4X).unwrap();
        assert!(slow.normalized >= fast.normalized);
    }
}
