//! DNNWeaver running LeNet — the mixed-pattern workload of Fig. 6.
//!
//! "DNNWeaver performs both streaming reads for weights and arbitrary
//! accesses for feature maps. Weights are only read in large chunks,
//! while feature maps require multiple reads and writes for small
//! chunks. … The weights engine set uses a large C_mem of 4KB, and 4 AES
//! and 1 HMAC engine with total 128KB buffer and no integrity counters.
//! The feature map engine set uses a smaller C_mem value of 64B, and
//! similarly 4 AES and 1 HMAC engine with total 64KB of buffer. As the
//! feature maps cover approximately 1MB of memory, 16KB of on-chip
//! storage is used for integrity counters."
//!
//! The paper's headline bottleneck lives here: "overheads are primarily
//! due to DNNWeaver waiting for long HMAC computations for large 4KB
//! chunks for weights before issuing more bursts" — weight reads are
//! **blocking** — and §6.2.4's fix swaps the weight-set HMAC for 4 PMAC
//! engines, cutting overhead from 3.20× to 2.31×.

use shef_core::shield::bus::MemoryBus;
use shef_core::shield::{AccessMode, EngineSetConfig, MemRange, ShieldConfig};
use shef_core::ShefError;
use shef_crypto::authenc::MacAlgorithm;

use crate::{
    bytes_to_u32s, u32s_to_bytes, with_profile, workload_bytes, Accelerator, CryptoProfile,
    RegionData,
};

const WEIGHTS_BASE: u64 = 0;
const FMAP_BASE: u64 = 1 << 30;
const RESULT_BASE: u64 = 2 << 30;
/// DNNWeaver's modest MAC array.
const MACS_PER_CYCLE: u64 = 64;

// LeNet-5 shape on a 28×28 input.
const IN_HW: usize = 28;
const C1_FILTERS: usize = 6;
const C1_K: usize = 5;
const C1_OUT_HW: usize = IN_HW - C1_K + 1; // 24
const P1_HW: usize = C1_OUT_HW / 2; // 12
const C2_FILTERS: usize = 16;
const C2_K: usize = 5;
const C2_OUT_HW: usize = P1_HW - C2_K + 1; // 8
const P2_HW: usize = C2_OUT_HW / 2; // 4
const FC1_IN: usize = C2_FILTERS * P2_HW * P2_HW; // 256
const FC1_OUT: usize = 120;
const FC2_OUT: usize = 84;
const FC3_OUT: usize = 10;

const C1_W: usize = C1_FILTERS * C1_K * C1_K;
const C2_W: usize = C2_FILTERS * C1_FILTERS * C2_K * C2_K;
const FC1_W: usize = FC1_IN * FC1_OUT;
const FC2_W: usize = FC1_OUT * FC2_OUT;
const FC3_W: usize = FC2_OUT * FC3_OUT;
/// Total weight words for the network.
pub const TOTAL_WEIGHT_WORDS: usize = C1_W + C2_W + FC1_W + FC2_W + FC3_W;

// Feature-map region layout (word offsets).
const FM_INPUT: usize = 0;
const FM_ACT1: usize = 1024;
const FM_POOL1: usize = FM_ACT1 + C1_FILTERS * C1_OUT_HW * C1_OUT_HW + 256;
const FM_ACT2: usize = FM_POOL1 + C1_FILTERS * P1_HW * P1_HW + 256;
const FM_POOL2: usize = FM_ACT2 + C2_FILTERS * C2_OUT_HW * C2_OUT_HW + 256;
const FM_FC1: usize = FM_POOL2 + FC1_IN + 256;
const FM_FC2: usize = FM_FC1 + FC1_OUT + 256;

/// The DNNWeaver/LeNet accelerator.
#[derive(Debug, Clone)]
pub struct DnnWeaver {
    batch: usize,
    weights: Vec<i32>,
    images: Vec<Vec<i32>>,
    /// Use PMAC engines on the weight set (§6.2.4 optimization).
    pub pmac_weights: bool,
    /// Protect feature-map freshness with a Bonsai Merkle Tree instead
    /// of on-chip counters — the §5.2.2 baseline, here wired into a
    /// real accelerator so the trade is measurable end to end.
    pub merkle_fmap: bool,
}

fn quantize(words: Vec<u32>, range: i32) -> Vec<i32> {
    words
        .iter()
        .map(|w| (*w % (2 * range as u32)) as i32 - range)
        .collect()
}

impl DnnWeaver {
    /// Creates a LeNet inference over `batch` synthetic images.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn new(batch: usize, seed: u64) -> Self {
        assert!(batch > 0, "batch must be positive");
        let weights = quantize(
            bytes_to_u32s(&workload_bytes(
                seed.wrapping_add(501),
                TOTAL_WEIGHT_WORDS * 4,
            )),
            8,
        );
        let images = (0..batch)
            .map(|i| {
                quantize(
                    bytes_to_u32s(&workload_bytes(
                        seed.wrapping_add(600 + i as u64),
                        IN_HW * IN_HW * 4,
                    )),
                    64,
                )
            })
            .collect();
        DnnWeaver {
            batch,
            weights,
            images,
            pmac_weights: false,
            merkle_fmap: false,
        }
    }

    /// Enables the PMAC weight-set variant of §6.2.4.
    #[must_use]
    pub fn with_pmac_weights(mut self) -> Self {
        self.pmac_weights = true;
        self
    }

    /// Swaps the feature-map replay defence from on-chip counters to a
    /// DRAM-resident Bonsai Merkle Tree (16 KB verified-node cache).
    #[must_use]
    pub fn with_merkle_fmap(mut self) -> Self {
        self.merkle_fmap = true;
        self
    }

    fn weight_slices(&self) -> [(usize, usize); 5] {
        let mut off = 0;
        let mut out = [(0usize, 0usize); 5];
        for (i, len) in [C1_W, C2_W, FC1_W, FC2_W, FC3_W].iter().enumerate() {
            out[i] = (off, *len);
            off += len;
        }
        out
    }

    fn forward(&self, image: &[i32]) -> Vec<i32> {
        let slices = self.weight_slices();
        let w = |i: usize| &self.weights[slices[i].0..slices[i].0 + slices[i].1];
        // conv1 (valid) + relu.
        let mut act1 = vec![0i32; C1_FILTERS * C1_OUT_HW * C1_OUT_HW];
        for f in 0..C1_FILTERS {
            for y in 0..C1_OUT_HW {
                for x in 0..C1_OUT_HW {
                    let mut acc = 0i32;
                    for ky in 0..C1_K {
                        for kx in 0..C1_K {
                            acc = acc.wrapping_add(
                                image[(y + ky) * IN_HW + (x + kx)]
                                    .wrapping_mul(w(0)[(f * C1_K + ky) * C1_K + kx]),
                            );
                        }
                    }
                    act1[(f * C1_OUT_HW + y) * C1_OUT_HW + x] = acc.max(0);
                }
            }
        }
        // 2×2 max pool.
        let mut pool1 = vec![0i32; C1_FILTERS * P1_HW * P1_HW];
        for f in 0..C1_FILTERS {
            for y in 0..P1_HW {
                for x in 0..P1_HW {
                    let mut m = i32::MIN;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            m = m.max(act1[(f * C1_OUT_HW + 2 * y + dy) * C1_OUT_HW + 2 * x + dx]);
                        }
                    }
                    pool1[(f * P1_HW + y) * P1_HW + x] = m;
                }
            }
        }
        // conv2 + relu.
        let mut act2 = vec![0i32; C2_FILTERS * C2_OUT_HW * C2_OUT_HW];
        for f in 0..C2_FILTERS {
            for y in 0..C2_OUT_HW {
                for x in 0..C2_OUT_HW {
                    let mut acc = 0i32;
                    for c in 0..C1_FILTERS {
                        for ky in 0..C2_K {
                            for kx in 0..C2_K {
                                let wi = ((f * C1_FILTERS + c) * C2_K + ky) * C2_K + kx;
                                acc = acc.wrapping_add(
                                    pool1[(c * P1_HW + y + ky) * P1_HW + (x + kx)]
                                        .wrapping_mul(w(1)[wi]),
                                );
                            }
                        }
                    }
                    act2[(f * C2_OUT_HW + y) * C2_OUT_HW + x] = acc.max(0);
                }
            }
        }
        // pool2.
        let mut pool2 = vec![0i32; FC1_IN];
        for f in 0..C2_FILTERS {
            for y in 0..P2_HW {
                for x in 0..P2_HW {
                    let mut m = i32::MIN;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            m = m.max(act2[(f * C2_OUT_HW + 2 * y + dy) * C2_OUT_HW + 2 * x + dx]);
                        }
                    }
                    pool2[(f * P2_HW + y) * P2_HW + x] = m;
                }
            }
        }
        // Fully connected stack.
        let fc = |input: &[i32], weights: &[i32], n_out: usize, relu: bool| -> Vec<i32> {
            (0..n_out)
                .map(|o| {
                    let mut acc = 0i32;
                    for (i, v) in input.iter().enumerate() {
                        acc = acc.wrapping_add(v.wrapping_mul(weights[o * input.len() + i]));
                    }
                    if relu {
                        acc.max(0)
                    } else {
                        acc
                    }
                })
                .collect()
        };
        let fc1 = fc(&pool2, w(2), FC1_OUT, true);
        let fc2 = fc(&fc1, w(3), FC2_OUT, true);
        fc(&fc2, w(4), FC3_OUT, false)
    }

    fn weights_bytes_padded(&self) -> usize {
        (TOTAL_WEIGHT_WORDS * 4).div_ceil(4096) * 4096
    }

    fn result_bytes(&self) -> usize {
        (self.batch * FC3_OUT * 4).div_ceil(512) * 512
    }
}

impl Accelerator for DnnWeaver {
    fn id(&self) -> &str {
        "dnnweaver"
    }

    fn shield_config(&self, profile: &CryptoProfile) -> ShieldConfig {
        // Weight set: C=4KB, 4 AES + 1 HMAC (or 4 PMAC), 128 KB buffer,
        // no counters.
        let weights_mac = if self.pmac_weights {
            (MacAlgorithm::PmacAes, 4)
        } else {
            (profile.mac, 1)
        };
        let weights_es = EngineSetConfig {
            aes_engines: 4,
            sbox: profile.sbox,
            key_size: profile.key_size,
            mac: weights_mac.0,
            mac_engines: weights_mac.1,
            chunk_size: 4096,
            buffer_bytes: 128 * 1024,
            counters: false,
            zero_fill_writes: false,
            merkle: None,
        };
        // Feature-map set: C=64B, 4 AES + 1 HMAC, 64 KB buffer, and a
        // replay defence — on-chip counters by default, or the Merkle
        // baseline when `merkle_fmap` is set.
        let fmap_es = with_profile(
            EngineSetConfig {
                aes_engines: 4,
                mac_engines: 1,
                chunk_size: 64,
                buffer_bytes: 64 * 1024,
                counters: !self.merkle_fmap,
                merkle: self.merkle_fmap.then_some({
                    shef_core::shield::MerkleConfig {
                        arity: 8,
                        node_cache_bytes: 16 * 1024,
                    }
                }),
                // Activations are fully written before being read, so
                // write misses zero-fill instead of fetching garbage.
                zero_fill_writes: true,
                ..EngineSetConfig::default()
            },
            profile,
        );
        let result_es = with_profile(
            EngineSetConfig {
                chunk_size: 512,
                zero_fill_writes: true,
                ..EngineSetConfig::default()
            },
            profile,
        );
        ShieldConfig::builder()
            .region(
                "weights",
                MemRange::new(WEIGHTS_BASE, self.weights_bytes_padded() as u64),
                weights_es,
            )
            .region("fmap", MemRange::new(FMAP_BASE, 1 << 20), fmap_es)
            .region(
                "result",
                MemRange::new(RESULT_BASE, self.result_bytes() as u64),
                result_es,
            )
            .build()
            .expect("dnnweaver config is valid")
    }

    fn inputs(&self) -> Vec<RegionData> {
        let mut weight_bytes =
            u32s_to_bytes(&self.weights.iter().map(|w| *w as u32).collect::<Vec<_>>());
        weight_bytes.resize(self.weights_bytes_padded(), 0);
        // Feature-map region starts with the input images back to back at
        // FM_INPUT (one image resident at a time; DNNWeaver reloads per
        // inference).
        vec![RegionData::new("weights", weight_bytes)]
    }

    fn expected_outputs(&self) -> Vec<RegionData> {
        let mut out = vec![0u8; self.result_bytes()];
        for (b, image) in self.images.iter().enumerate() {
            let scores = self.forward(image);
            let bytes = u32s_to_bytes(&scores.iter().map(|s| *s as u32).collect::<Vec<_>>());
            out[b * FC3_OUT * 4..(b + 1) * FC3_OUT * 4].copy_from_slice(&bytes);
        }
        vec![RegionData::new("result", out)]
    }

    fn run(&mut self, bus: &mut dyn MemoryBus) -> Result<(), ShefError> {
        let slices = self.weight_slices();
        let total_macs: u64 = (C1_FILTERS * C1_OUT_HW * C1_OUT_HW * C1_K * C1_K) as u64
            + (C2_FILTERS * C2_OUT_HW * C2_OUT_HW * C1_FILTERS * C2_K * C2_K) as u64
            + (FC1_W + FC2_W + FC3_W) as u64;
        let images = self.images.clone();
        for (b, image) in images.iter().enumerate() {
            // Load the image into the feature-map region (64 B traffic).
            let img_bytes = u32s_to_bytes(&image.iter().map(|v| *v as u32).collect::<Vec<_>>());
            bus.write(
                FMAP_BASE + (FM_INPUT * 4) as u64,
                &img_bytes,
                AccessMode::Streaming,
            )?;
            // Per layer: stream that layer's weights with BLOCKING 4 KB
            // reads (the DNNWeaver bottleneck), touch the feature maps.
            let fm_offsets = [FM_ACT1, FM_ACT2, FM_FC1, FM_FC2, FM_POOL2];
            for (layer, (w_off, w_len)) in slices.iter().enumerate() {
                let mut read = 0usize;
                let byte_off = w_off * 4;
                let byte_len = w_len * 4;
                while read < byte_len {
                    let take = 4096.min(byte_len - read);
                    let _ = bus.read(
                        WEIGHTS_BASE + (byte_off + read) as u64,
                        take,
                        AccessMode::Blocking,
                    )?;
                    read += take;
                }
                // Feature-map read-modify-write traffic for this layer.
                let fm_words = match layer {
                    0 => C1_FILTERS * C1_OUT_HW * C1_OUT_HW,
                    1 => C2_FILTERS * C2_OUT_HW * C2_OUT_HW,
                    2 => FC1_OUT,
                    3 => FC2_OUT,
                    _ => FC3_OUT,
                };
                let fm_base = FMAP_BASE + (fm_offsets[layer] * 4) as u64;
                let zeros = vec![0u8; fm_words * 4];
                bus.write(fm_base, &zeros, AccessMode::Streaming)?;
                let _ = bus.read(fm_base, fm_words * 4, AccessMode::Streaming)?;
            }
            bus.compute(total_macs / MACS_PER_CYCLE);
            // Real result from the golden network, written to the result
            // region.
            let scores = self.forward(image);
            let bytes = u32s_to_bytes(&scores.iter().map(|s| *s as u32).collect::<Vec<_>>());
            bus.write(
                RESULT_BASE + (b * FC3_OUT * 4) as u64,
                &bytes,
                AccessMode::Streaming,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_baseline, run_shielded};

    #[test]
    fn lenet_shapes() {
        assert_eq!(C1_OUT_HW, 24);
        assert_eq!(P1_HW, 12);
        assert_eq!(C2_OUT_HW, 8);
        assert_eq!(FC1_IN, 256);
        assert_eq!(TOTAL_WEIGHT_WORDS, 150 + 2400 + 30720 + 10080 + 840);
    }

    #[test]
    fn inference_is_correct_both_ways() {
        let mut d = DnnWeaver::new(1, 5);
        assert!(run_baseline(&mut d).unwrap().outputs_verified);
        let mut d = DnnWeaver::new(1, 5);
        assert!(
            run_shielded(&mut d, &CryptoProfile::AES128_16X, 8)
                .unwrap()
                .outputs_verified
        );
    }

    #[test]
    fn pmac_variant_is_faster() {
        // §6.2.4: swapping the weight-set HMAC for 4 PMAC engines lowers
        // the blocking-stall overhead.
        let mut hmac = DnnWeaver::new(2, 5);
        let hmac_report = run_shielded(&mut hmac, &CryptoProfile::AES128_16X, 8).unwrap();
        let mut pmac = DnnWeaver::new(2, 5).with_pmac_weights();
        let pmac_report = run_shielded(&mut pmac, &CryptoProfile::AES128_16X, 8).unwrap();
        assert!(
            pmac_report.cycles < hmac_report.cycles,
            "PMAC {} must beat HMAC {}",
            pmac_report.cycles,
            hmac_report.cycles
        );
    }

    #[test]
    fn forward_is_deterministic() {
        let d = DnnWeaver::new(1, 9);
        assert_eq!(d.forward(&d.images[0]), d.forward(&d.images[0]));
    }

    #[test]
    fn merkle_fmap_variant_is_correct_but_slower() {
        // The §5.2.2 trade on a real accelerator: a Merkle-protected
        // feature map still computes the right answer, but pays tree
        // walks the on-chip counters avoid.
        let mut counters = DnnWeaver::new(1, 5);
        let counters_report = run_shielded(&mut counters, &CryptoProfile::AES128_16X, 8).unwrap();
        assert!(counters_report.outputs_verified);
        let mut merkle = DnnWeaver::new(1, 5).with_merkle_fmap();
        let merkle_report = run_shielded(&mut merkle, &CryptoProfile::AES128_16X, 8).unwrap();
        assert!(merkle_report.outputs_verified);
        assert!(
            merkle_report.cycles > counters_report.cycles,
            "Merkle fmap {} must cost more than counters {}",
            merkle_report.cycles,
            counters_report.cycles
        );
    }

    #[test]
    fn merkle_fmap_config_is_valid_and_tree_backed() {
        let d = DnnWeaver::new(1, 0).with_merkle_fmap();
        let cfg = d.shield_config(&CryptoProfile::AES128_16X);
        cfg.validate().unwrap();
        let fmap = cfg.regions.iter().find(|r| r.name == "fmap").unwrap();
        assert!(!fmap.engine_set.counters);
        assert!(fmap.engine_set.merkle.is_some());
    }

    #[test]
    fn config_matches_paper() {
        let d = DnnWeaver::new(1, 0);
        let cfg = d.shield_config(&CryptoProfile::AES128_16X);
        let weights = cfg.regions.iter().find(|r| r.name == "weights").unwrap();
        assert_eq!(weights.engine_set.chunk_size, 4096);
        assert_eq!(weights.engine_set.aes_engines, 4);
        assert_eq!(weights.engine_set.buffer_bytes, 128 * 1024);
        let fmap = cfg.regions.iter().find(|r| r.name == "fmap").unwrap();
        assert_eq!(fmap.engine_set.chunk_size, 64);
        assert!(fmap.engine_set.counters);
        assert_eq!(fmap.range.len, 1 << 20);
    }
}
