//! Differential conformance: the multi-tenant `ShieldService` with a
//! single tenant must be an exact functional wrapper around the
//! parallel Shield datapath. For every workload, scheme and lane
//! count, the same trace driven through `ShieldService::{submit,drain}`
//! and through `Shield::{read,write,flush}_parallel` (keyed with the
//! same tenant-derived DEK) must produce byte-identical read payloads,
//! byte-identical DRAM ciphertext and tag arenas, and an identical
//! datapath cost ledger — the shard arbiter may only ever charge its
//! own clock, never the tenant.

use shef_core::shield::merkle::MerkleConfig;
use shef_core::shield::{
    AccessMode, DataEncryptionKey, EngineSetConfig, MemRange, ServiceConfig, ServiceRequest,
    Shield, ShieldConfig, ShieldService, WorkerPool,
};
use shef_crypto::ecies::EciesKeyPair;
use shef_fpga::clock::CostLedger;
use shef_fpga::dram::Dram;
use shef_fpga::shell::Shell;

const REGION_BASE: u64 = 0x1000;
const CHUNK: usize = 512;
const NUM_CHUNKS: u64 = 16;
const REGION_LEN: u64 = CHUNK as u64 * NUM_CHUNKS;
const TENANT: &str = "solo";

/// Deterministic 64-bit LCG (MMIX constants), matching the testkit's.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

#[derive(Debug, Clone)]
enum Op {
    Write { chunk: u64, fill: u8 },
    Read { chunk: u64 },
    Flush,
}

/// Full-chunk trace: writes, reads of previously written chunks, and
/// flushes, identical on both sides of the differential.
fn trace(seed: u64, ops: usize) -> Vec<Op> {
    let mut rng = Lcg(seed);
    let first = rng.below(NUM_CHUNKS);
    let mut written = vec![first];
    let mut out = vec![
        Op::Write {
            chunk: first,
            fill: rng.below(256) as u8,
        },
        Op::Read { chunk: first },
    ];
    while out.len() < ops {
        let kind = rng.below(100);
        if kind < 50 {
            let chunk = rng.below(NUM_CHUNKS);
            if !written.contains(&chunk) {
                written.push(chunk);
            }
            out.push(Op::Write {
                chunk,
                fill: rng.below(256) as u8,
            });
        } else if kind < 90 {
            out.push(Op::Read {
                chunk: written[rng.below(written.len() as u64) as usize],
            });
        } else {
            out.push(Op::Flush);
        }
    }
    out
}

fn chunk_data(fill: u8) -> Vec<u8> {
    (0..CHUNK).map(|j| fill.wrapping_add(j as u8)).collect()
}

#[derive(Debug, Clone, Copy)]
enum Scheme {
    MacOnly,
    Counters,
    Merkle,
}

fn shield_config(scheme: Scheme) -> ShieldConfig {
    let (counters, merkle) = match scheme {
        Scheme::MacOnly => (false, None),
        Scheme::Counters => (true, None),
        Scheme::Merkle => (
            false,
            Some(MerkleConfig {
                arity: 4,
                node_cache_bytes: 512,
            }),
        ),
    };
    ShieldConfig::builder()
        .region(
            "data",
            MemRange::new(REGION_BASE, REGION_LEN),
            EngineSetConfig {
                chunk_size: CHUNK,
                buffer_bytes: CHUNK * 4,
                counters,
                merkle,
                ..EngineSetConfig::default()
            },
        )
        .build()
        .expect("valid config")
}

/// Drives `ops` through a one-tenant service; returns the read
/// payloads in completion order plus the final tenant state.
fn run_service(
    scheme: Scheme,
    lanes: usize,
    ops: &[Op],
) -> (Vec<Vec<u8>>, CostLedger, Vec<u8>, Vec<u8>) {
    let master = DataEncryptionKey::from_bytes([0x33u8; 32]);
    let mut env = shef_attest::AttestationEnvironment::new(b"core.service-equivalence")
        .expect("attestation fixture");
    let mut service = ShieldService::new(
        ServiceConfig {
            shards: 1,
            lanes_per_shard: lanes,
            queue_capacity: 256,
            tenant_quota: 256,
        },
        env.verifier_public(),
    )
    .expect("service constructs");
    let grant = env
        .onboard(TENANT, master.tenant_key(TENANT).to_bytes())
        .expect("tenant attests");
    let tenant = service
        .register_tenant(TENANT, shield_config(scheme), &grant)
        .expect("tenant registers");
    for op in ops {
        let request = match *op {
            Op::Write { chunk, fill } => ServiceRequest::Write {
                addr: REGION_BASE + chunk * CHUNK as u64,
                data: chunk_data(fill),
                mode: AccessMode::Streaming,
            },
            Op::Read { chunk } => ServiceRequest::Read {
                addr: REGION_BASE + chunk * CHUNK as u64,
                len: CHUNK,
                mode: AccessMode::Streaming,
            },
            Op::Flush => ServiceRequest::Flush,
        };
        service.submit(tenant, request).expect("admitted");
    }
    let completions = service.drain();
    assert_eq!(completions.len(), ops.len(), "every request completes");
    let mut reads = Vec::new();
    for c in completions {
        if let Some(bytes) = c.payload.expect("clean trace") {
            reads.push(bytes);
        }
    }
    // Final flush so the DRAM images are comparable.
    service
        .submit(tenant, ServiceRequest::Flush)
        .expect("admitted");
    for c in service.drain() {
        c.payload.expect("final flush is clean");
    }
    let ledger = service.tenant_ledger(tenant).clone();
    let config = shield_config(scheme);
    let dram = service.tenant_dram(tenant);
    let ciphertext = dram.tamper_read(REGION_BASE, REGION_LEN as usize);
    let tags = dram.tamper_read(config.tag_base(0), (NUM_CHUNKS * 16) as usize);
    (reads, ledger, ciphertext, tags)
}

/// Drives the same ops straight through the parallel datapath, keyed
/// with the tenant-derived DEK the service provisions for `TENANT`.
fn run_parallel(
    scheme: Scheme,
    lanes: usize,
    ops: &[Op],
) -> (Vec<Vec<u8>>, CostLedger, Vec<u8>, Vec<u8>) {
    let master = DataEncryptionKey::from_bytes([0x33u8; 32]);
    let dek = master.tenant_key(TENANT);
    let config = shield_config(scheme);
    let mut shield = Shield::new(
        config.clone(),
        EciesKeyPair::from_seed(b"service-equivalence-twin"),
    )
    .expect("shield constructs");
    shield
        .provision_load_key(&dek.to_load_key(&shield.public_key()))
        .expect("key provisioning");
    let mut shell = Shell::new();
    let mut dram = Dram::f1_default();
    let mut ledger = CostLedger::new();
    let pool = WorkerPool::new(lanes);
    let mut reads = Vec::new();
    for op in ops {
        match *op {
            Op::Write { chunk, fill } => shield
                .write_parallel(
                    &mut shell,
                    &mut dram,
                    &mut ledger,
                    REGION_BASE + chunk * CHUNK as u64,
                    &chunk_data(fill),
                    AccessMode::Streaming,
                    &pool,
                )
                .expect("clean trace"),
            Op::Read { chunk } => reads.push(
                shield
                    .read_parallel(
                        &mut shell,
                        &mut dram,
                        &mut ledger,
                        REGION_BASE + chunk * CHUNK as u64,
                        CHUNK,
                        AccessMode::Streaming,
                        &pool,
                    )
                    .expect("clean trace"),
            ),
            Op::Flush => shield
                .flush_parallel(&mut shell, &mut dram, &mut ledger, &pool)
                .expect("clean trace"),
        }
    }
    shield
        .flush_parallel(&mut shell, &mut dram, &mut ledger, &pool)
        .expect("final flush is clean");
    let ciphertext = dram.tamper_read(REGION_BASE, REGION_LEN as usize);
    let tags = dram.tamper_read(config.tag_base(0), (NUM_CHUNKS * 16) as usize);
    (reads, ledger, ciphertext, tags)
}

fn assert_equivalent(scheme: Scheme, lanes: usize, seed: u64) {
    let ops = trace(seed, 32);
    let (svc_reads, svc_ledger, svc_ct, svc_tags) = run_service(scheme, lanes, &ops);
    let (par_reads, par_ledger, par_ct, par_tags) = run_parallel(scheme, lanes, &ops);
    assert_eq!(
        svc_reads, par_reads,
        "{scheme:?} {lanes} lanes seed {seed}: read payloads drifted"
    );
    assert_eq!(
        svc_ledger, par_ledger,
        "{scheme:?} {lanes} lanes seed {seed}: tenant ledger drifted — the arbiter must \
         charge only the shard clock"
    );
    assert_eq!(
        svc_ct, par_ct,
        "{scheme:?} {lanes} lanes seed {seed}: DRAM ciphertext drifted"
    );
    assert_eq!(
        svc_tags, par_tags,
        "{scheme:?} {lanes} lanes seed {seed}: DRAM tag arena drifted"
    );
}

#[test]
fn one_tenant_service_is_bit_identical_mac_only() {
    for lanes in [1usize, 2, 4] {
        for seed in [7u64, 21] {
            assert_equivalent(Scheme::MacOnly, lanes, seed);
        }
    }
}

#[test]
fn one_tenant_service_is_bit_identical_counters() {
    for lanes in [1usize, 2, 4] {
        for seed in [7u64, 21] {
            assert_equivalent(Scheme::Counters, lanes, seed);
        }
    }
}

#[test]
fn one_tenant_service_is_bit_identical_merkle() {
    for lanes in [1usize, 2, 4] {
        for seed in [7u64, 21] {
            assert_equivalent(Scheme::Merkle, lanes, seed);
        }
    }
}

/// Different tenant names derive different key domains: the twin keyed
/// with the *wrong* tenant's DEK must produce different ciphertext for
/// the same plaintext trace.
#[test]
fn tenant_key_domain_changes_the_ciphertext() {
    let ops = vec![Op::Write { chunk: 0, fill: 9 }, Op::Flush];
    let (_, _, svc_ct, _) = run_service(Scheme::MacOnly, 2, &ops);

    let master = DataEncryptionKey::from_bytes([0x33u8; 32]);
    let other = master.tenant_key("someone-else");
    let config = shield_config(Scheme::MacOnly);
    let mut shield = Shield::new(config, EciesKeyPair::from_seed(b"other-tenant-twin"))
        .expect("shield constructs");
    shield
        .provision_load_key(&other.to_load_key(&shield.public_key()))
        .expect("key provisioning");
    let mut shell = Shell::new();
    let mut dram = Dram::f1_default();
    let mut ledger = CostLedger::new();
    let pool = WorkerPool::new(2);
    shield
        .write_parallel(
            &mut shell,
            &mut dram,
            &mut ledger,
            REGION_BASE,
            &chunk_data(9),
            AccessMode::Streaming,
            &pool,
        )
        .expect("clean write");
    shield
        .flush_parallel(&mut shell, &mut dram, &mut ledger, &pool)
        .expect("clean flush");
    let other_ct = dram.tamper_read(REGION_BASE, CHUNK);
    assert_ne!(
        svc_ct[..CHUNK],
        other_ct[..],
        "same plaintext under different tenant key domains must not collide"
    );
}
