//! Deterministic stress tests for the parallel worker-pool datapath.
//!
//! A fixed LCG drives long mixed read/write/flush traces over twin
//! engine sets — one served by the serial datapath, one by the batched
//! parallel datapath — across lane counts and integrity schemes. The
//! parallel path must be byte-for-byte identical: every read returns
//! the same bytes, the functional statistics never drift, and the DRAM
//! image (ciphertext, tag arena, Merkle arena) ends up identical.
//!
//! Everything here is deterministic by construction: job→lane
//! assignment is round-robin in dispatch order, so two runs with the
//! same trace and lane count must also produce identical cost ledgers.

use shef_core::shield::config::{EngineSetConfig, MemRange, RegionConfig};
use shef_core::shield::engine::{AccessMode, EngineSet, EngineSetStats};
use shef_core::shield::merkle::MerkleConfig;
use shef_core::shield::{client, DataEncryptionKey, WorkerPool};
use shef_fpga::clock::CostLedger;
use shef_fpga::dram::Dram;
use shef_fpga::shell::Shell;

const REGION_BASE: u64 = 0x1000;
const TAG_BASE: u64 = 0x10_0000;
const MERKLE_BASE: u64 = 0x20_0000;

/// Deterministic 64-bit LCG (Knuth's MMIX constants).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

#[derive(Debug, Clone)]
enum Op {
    Read { offset: u64, len: usize },
    Write { offset: u64, len: usize, fill: u8 },
    Flush,
}

/// A reproducible mixed trace: ~45% reads, ~45% writes, ~10% flushes,
/// spans up to 5 chunks long at arbitrary byte alignment.
fn trace(seed: u64, ops: usize, region_len: u64, chunk: usize) -> Vec<Op> {
    let mut rng = Lcg(seed);
    let max_span = (5 * chunk) as u64;
    (0..ops)
        .map(|_| {
            let kind = rng.below(100);
            let offset = rng.below(region_len - 1);
            let len = (1 + rng.below(max_span)).min(region_len - offset) as usize;
            if kind < 45 {
                Op::Read { offset, len }
            } else if kind < 90 {
                Op::Write {
                    offset,
                    len,
                    fill: rng.below(256) as u8,
                }
            } else {
                Op::Flush
            }
        })
        .collect()
}

#[derive(Debug, Clone, Copy)]
enum Scheme {
    MacOnly,
    Counters,
    Merkle,
}

struct Setup {
    es: EngineSet,
    shell: Shell,
    dram: Dram,
    ledger: CostLedger,
}

fn setup(scheme: Scheme, chunk: usize, buffer_lines: usize, region_len: u64) -> Setup {
    let (counters, merkle) = match scheme {
        Scheme::MacOnly => (false, None),
        Scheme::Counters => (true, None),
        Scheme::Merkle => (
            false,
            Some(MerkleConfig {
                arity: 4,
                node_cache_bytes: 512,
            }),
        ),
    };
    let region = RegionConfig {
        name: "stress".into(),
        range: MemRange::new(REGION_BASE, region_len),
        engine_set: EngineSetConfig {
            chunk_size: chunk,
            buffer_bytes: chunk * buffer_lines,
            counters,
            merkle,
            zero_fill_writes: false,
            ..EngineSetConfig::default()
        },
    };
    let dek = DataEncryptionKey::from_bytes([0x51u8; 32]);
    let es = EngineSet::new(region.clone(), 0, TAG_BASE, MERKLE_BASE, &dek);
    let mut dram = Dram::new(1 << 22);
    let enc = client::encrypt_region(&dek, &region, &vec![0u8; region_len as usize], 0);
    dram.tamper_write(REGION_BASE, &enc.ciphertext);
    dram.tamper_write(TAG_BASE, &enc.tags);
    Setup {
        es,
        shell: Shell::new(),
        dram,
        ledger: CostLedger::new(),
    }
}

fn functional(s: EngineSetStats) -> (u64, u64, u64, u64, u64, u64, u64) {
    (
        s.hits,
        s.misses,
        s.writebacks,
        s.integrity_failures,
        s.bytes_read,
        s.bytes_written,
        s.zero_fills,
    )
}

/// Replays `ops` through the serial path on one setup and the parallel
/// path (at `lanes`) on a twin, asserting byte-for-byte agreement at
/// every step and identical end state.
fn run_twins(scheme: Scheme, chunk: usize, buffer_lines: usize, lanes: usize, ops: &[Op]) {
    let region_len = 32 * chunk as u64; // M = 32 chunks per trace
    let mut serial = setup(scheme, chunk, buffer_lines, region_len);
    let mut par = setup(scheme, chunk, buffer_lines, region_len);
    let pool = WorkerPool::new(lanes);
    let mode = AccessMode::Streaming;

    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Read { offset, len } => {
                let addr = REGION_BASE + offset;
                let a = serial
                    .es
                    .read(
                        &mut serial.shell,
                        &mut serial.dram,
                        &mut serial.ledger,
                        addr,
                        len,
                        mode,
                    )
                    .unwrap();
                let b = par
                    .es
                    .read_chunks(
                        &mut par.shell,
                        &mut par.dram,
                        &mut par.ledger,
                        addr,
                        len,
                        mode,
                        &pool,
                    )
                    .unwrap();
                assert_eq!(
                    a, b,
                    "read drift at step {step} ({lanes} lanes, {scheme:?})"
                );
            }
            Op::Write { offset, len, fill } => {
                let addr = REGION_BASE + offset;
                let data: Vec<u8> = (0..len).map(|i| fill.wrapping_add(i as u8)).collect();
                serial
                    .es
                    .write(
                        &mut serial.shell,
                        &mut serial.dram,
                        &mut serial.ledger,
                        addr,
                        &data,
                        mode,
                    )
                    .unwrap();
                par.es
                    .write_chunks(
                        &mut par.shell,
                        &mut par.dram,
                        &mut par.ledger,
                        addr,
                        &data,
                        mode,
                        &pool,
                    )
                    .unwrap();
            }
            Op::Flush => {
                serial
                    .es
                    .flush(&mut serial.shell, &mut serial.dram, &mut serial.ledger)
                    .unwrap();
                par.es
                    .flush_parallel(&mut par.shell, &mut par.dram, &mut par.ledger, &pool)
                    .unwrap();
            }
        }
        assert_eq!(
            functional(serial.es.stats()),
            functional(par.es.stats()),
            "counter drift at step {step} ({lanes} lanes, {scheme:?})"
        );
    }

    // Drain both buffers, then the sealed DRAM images must agree bit
    // for bit: ciphertext, tag arena, and (for Merkle) the node arena.
    serial
        .es
        .flush(&mut serial.shell, &mut serial.dram, &mut serial.ledger)
        .unwrap();
    par.es
        .flush_parallel(&mut par.shell, &mut par.dram, &mut par.ledger, &pool)
        .unwrap();
    assert_eq!(
        serial.dram.tamper_read(REGION_BASE, region_len as usize),
        par.dram.tamper_read(REGION_BASE, region_len as usize),
        "sealed region image drift ({lanes} lanes, {scheme:?})"
    );
    assert_eq!(
        serial.dram.tamper_read(TAG_BASE, 32 * 1024),
        par.dram.tamper_read(TAG_BASE, 32 * 1024),
        "tag arena drift ({lanes} lanes, {scheme:?})"
    );
    if matches!(scheme, Scheme::Merkle) {
        assert_eq!(
            serial.dram.tamper_read(MERKLE_BASE, 32 * 1024),
            par.dram.tamper_read(MERKLE_BASE, 32 * 1024),
            "merkle arena drift ({lanes} lanes)"
        );
    }

    // Lane fan-out must conserve the total crypto work: the sum over
    // the engine set's lane group equals the serial path's single lane.
    let lane_name = serial.es.lane().to_owned();
    assert_eq!(
        par.ledger.group_total(&lane_name),
        serial.ledger.lane(&lane_name),
        "crypto cycles not conserved ({lanes} lanes, {scheme:?})"
    );
}

#[test]
fn mixed_trace_matches_serial_across_lane_counts() {
    let ops = trace(0xD06F00D, 120, 32 * 256, 256);
    for lanes in [1usize, 2, 3, 4, 8] {
        run_twins(Scheme::MacOnly, 256, 4, lanes, &ops);
    }
}

#[test]
fn mixed_trace_matches_serial_with_counters() {
    let ops = trace(0xC0FFEE, 100, 32 * 256, 256);
    for lanes in [2usize, 4] {
        run_twins(Scheme::Counters, 256, 3, lanes, &ops);
    }
}

#[test]
fn mixed_trace_matches_serial_with_merkle() {
    let ops = trace(0xBEEF, 80, 32 * 256, 256);
    for lanes in [2usize, 4] {
        run_twins(Scheme::Merkle, 256, 3, lanes, &ops);
    }
}

#[test]
fn tiny_buffer_forces_constant_eviction() {
    // A single-line buffer makes every multi-chunk batch exercise the
    // in-batch eviction hazards (seal-before-fill, open-before-seal).
    let ops = trace(0xA5A5A5, 80, 32 * 128, 128);
    for lanes in [2usize, 4] {
        run_twins(Scheme::MacOnly, 128, 1, lanes, &ops);
        run_twins(Scheme::Counters, 128, 1, lanes, &ops);
    }
}

#[test]
fn parallel_replay_is_deterministic() {
    // Same trace + same lane count twice: modelled costs are defined by
    // round-robin dispatch order, never thread scheduling, so the full
    // ledgers — not just the totals — must be identical.
    let ops = trace(0x5EED, 90, 32 * 256, 256);
    let run = || {
        let mut s = setup(Scheme::Counters, 256, 3, 32 * 256);
        let pool = WorkerPool::new(4);
        let mut outputs = Vec::new();
        for op in &ops {
            match *op {
                Op::Read { offset, len } => outputs.push(
                    s.es.read_chunks(
                        &mut s.shell,
                        &mut s.dram,
                        &mut s.ledger,
                        REGION_BASE + offset,
                        len,
                        AccessMode::Streaming,
                        &pool,
                    )
                    .unwrap(),
                ),
                Op::Write { offset, len, fill } => {
                    let data: Vec<u8> = (0..len).map(|i| fill.wrapping_add(i as u8)).collect();
                    s.es.write_chunks(
                        &mut s.shell,
                        &mut s.dram,
                        &mut s.ledger,
                        REGION_BASE + offset,
                        &data,
                        AccessMode::Streaming,
                        &pool,
                    )
                    .unwrap();
                }
                Op::Flush => {
                    s.es.flush_parallel(&mut s.shell, &mut s.dram, &mut s.ledger, &pool)
                        .unwrap();
                }
            }
        }
        (outputs, s.ledger, s.es.stats())
    };
    let (out_a, ledger_a, stats_a) = run();
    let (out_b, ledger_b, stats_b) = run();
    assert_eq!(out_a, out_b);
    assert_eq!(
        ledger_a, ledger_b,
        "parallel cost model is nondeterministic"
    );
    assert_eq!(functional(stats_a), functional(stats_b));
    assert_eq!(stats_a.lane_cycles_max, stats_b.lane_cycles_max);
    assert_eq!(stats_a.queue_depth_hwm, stats_b.queue_depth_hwm);
}
