//! Property-based tests of the Shield datapath: coherence against a
//! reference memory under random traces, across all integrity schemes.
//!
//! These are the invariants the paper's security argument leans on:
//!
//! * a Shielded region behaves exactly like flat memory to the
//!   accelerator, for *any* engine-set configuration (chunk size,
//!   buffer, counters, Merkle tree) and *any* access trace;
//! * Merkle-tree counters agree with an ideal counter map under any
//!   bump sequence, arity, and cache size;
//! * configurations survive serialization (they are hashed into
//!   bitstreams, so the encoding must be canonical).

use proptest::prelude::*;
use shef_core::shield::config::{EngineSetConfig, MemRange, RegionConfig};
use shef_core::shield::engine::{AccessMode, EngineSet};
use shef_core::shield::merkle::{MerkleConfig, MerkleTree};
use shef_core::shield::{DataEncryptionKey, ShieldConfig};
use shef_crypto::authenc::MacAlgorithm;
use shef_fpga::clock::CostLedger;
use shef_fpga::dram::Dram;
use shef_fpga::shell::Shell;

const REGION_BASE: u64 = 0x1000;
const REGION_LEN: u64 = 16 * 1024;
const TAG_BASE: u64 = 0x10_0000;
const MERKLE_BASE: u64 = 0x20_0000;

/// One step of a random accelerator trace.
#[derive(Debug, Clone)]
enum Op {
    Read { offset: u64, len: usize },
    Write { offset: u64, byte: u8, len: usize },
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..REGION_LEN - 1, 1usize..700).prop_map(|(offset, len)| Op::Read {
            offset,
            len: len.min((REGION_LEN - offset) as usize),
        }),
        (0..REGION_LEN - 1, any::<u8>(), 1usize..700).prop_map(|(offset, byte, len)| {
            Op::Write {
                offset,
                byte,
                len: len.min((REGION_LEN - offset) as usize),
            }
        }),
        Just(Op::Flush),
    ]
}

/// Replay-protection scheme under test.
#[derive(Debug, Clone, Copy)]
enum Scheme {
    MacOnly,
    Counters,
    Merkle { arity: usize, cache: usize },
}

fn scheme_strategy() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::MacOnly),
        Just(Scheme::Counters),
        (
            prop_oneof![Just(2usize), Just(4), Just(8), Just(16)],
            0usize..4096
        )
            .prop_map(|(arity, cache)| Scheme::Merkle { arity, cache }),
    ]
}

fn engine_for(
    chunk: usize,
    buffer_lines: usize,
    scheme: Scheme,
    zero_fill: bool,
) -> (EngineSet, RegionConfig, DataEncryptionKey) {
    let (counters, merkle) = match scheme {
        Scheme::MacOnly => (false, None),
        Scheme::Counters => (true, None),
        Scheme::Merkle { arity, cache } => (
            false,
            Some(MerkleConfig {
                arity,
                node_cache_bytes: cache,
            }),
        ),
    };
    let region = RegionConfig {
        name: "prop".into(),
        range: MemRange::new(REGION_BASE, REGION_LEN),
        engine_set: EngineSetConfig {
            chunk_size: chunk,
            buffer_bytes: chunk * buffer_lines,
            counters,
            merkle,
            // Zero-fill is only coherent for write-once regions (§5.2.2);
            // random read-modify-write traces must not enable it.
            zero_fill_writes: zero_fill,
            ..EngineSetConfig::default()
        },
    };
    let dek = DataEncryptionKey::from_bytes([0x51u8; 32]);
    let es = EngineSet::new(region.clone(), 0, TAG_BASE, MERKLE_BASE, &dek);
    (es, region, dek)
}

/// Stages epoch-0 zeros into DRAM exactly as the Data Owner would — the
/// Shield can only authenticate memory somebody provisioned.
fn provision_zeros(region: &RegionConfig, dek: &DataEncryptionKey, dram: &mut Dram) {
    let enc =
        shef_core::shield::client::encrypt_region(dek, region, &vec![0u8; REGION_LEN as usize], 0);
    dram.tamper_write(REGION_BASE, &enc.ciphertext);
    dram.tamper_write(TAG_BASE, &enc.tags);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The shielded region is indistinguishable from flat memory for any
    /// trace, chunk size, buffer size, and integrity scheme.
    #[test]
    fn engine_set_coheres_with_reference_memory(
        chunk_pow in 6u32..12,            // 64 B .. 2 KB chunks
        buffer_lines in 0usize..5,        // 0 = single staging line
        scheme in scheme_strategy(),
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let chunk = 1usize << chunk_pow;
        let (mut es, region, dek) = engine_for(chunk, buffer_lines, scheme, false);
        let mut shell = Shell::new();
        let mut dram = Dram::new(1 << 24);
        let mut ledger = CostLedger::new();
        let mut reference = vec![0u8; REGION_LEN as usize];
        provision_zeros(&region, &dek, &mut dram);

        for op in &ops {
            match *op {
                Op::Read { offset, len } => {
                    let got = es
                        .read(&mut shell, &mut dram, &mut ledger, REGION_BASE + offset, len, AccessMode::Streaming)
                        .expect("untampered read never fails");
                    prop_assert_eq!(&got[..], &reference[offset as usize..offset as usize + len]);
                }
                Op::Write { offset, byte, len } => {
                    let data = vec![byte; len];
                    es.write(&mut shell, &mut dram, &mut ledger, REGION_BASE + offset, &data, AccessMode::Streaming)
                        .expect("untampered write never fails");
                    reference[offset as usize..offset as usize + len].fill(byte);
                }
                Op::Flush => {
                    es.flush(&mut shell, &mut dram, &mut ledger).expect("flush never fails");
                }
            }
        }
        // Final flush + full readback through a fresh pass.
        es.flush(&mut shell, &mut dram, &mut ledger).expect("final flush");
        let full = es
            .read(&mut shell, &mut dram, &mut ledger, REGION_BASE, REGION_LEN as usize, AccessMode::Streaming)
            .expect("full readback");
        prop_assert_eq!(full, reference);
    }

    /// After any trace, flipping any single ciphertext byte in DRAM is
    /// detected on the next (uncached) read of that chunk.
    #[test]
    fn any_byte_flip_is_detected(
        scheme in scheme_strategy(),
        writes in proptest::collection::vec((0..REGION_LEN - 64, any::<u8>()), 1..8),
        victim in 0..REGION_LEN,
        flip in 1u8..=255,
    ) {
        let (mut es, region, dek) = engine_for(256, 0, scheme, false);
        let mut shell = Shell::new();
        let mut dram = Dram::new(1 << 24);
        let mut ledger = CostLedger::new();
        provision_zeros(&region, &dek, &mut dram);
        for &(offset, byte) in &writes {
            es.write(&mut shell, &mut dram, &mut ledger, REGION_BASE + offset, &[byte; 64], AccessMode::Streaming)
                .expect("write");
        }
        es.flush(&mut shell, &mut dram, &mut ledger).expect("flush");
        // Ensure the victim chunk exists in DRAM (zero-fill regions may
        // not have been written): write it explicitly, then flush.
        let chunk_start = REGION_BASE + (victim / 256) * 256;
        es.write(&mut shell, &mut dram, &mut ledger, chunk_start, &[0x77; 256], AccessMode::Streaming)
            .expect("victim write");
        es.flush(&mut shell, &mut dram, &mut ledger).expect("victim flush");
        es.clear_merkle_cache();
        // Adversary flips one ciphertext byte.
        let addr = REGION_BASE + victim;
        let mut b = dram.tamper_read(addr, 1);
        b[0] ^= flip;
        dram.tamper_write(addr, &b);
        let chunk_of_victim = REGION_BASE + (victim / 256) * 256;
        let result = es.read(&mut shell, &mut dram, &mut ledger, chunk_of_victim, 256, AccessMode::Streaming);
        prop_assert!(result.is_err(), "flip at {addr:#x} must be detected");
    }

    /// Merkle counters track an ideal counter map for any bump sequence.
    #[test]
    fn merkle_counters_match_reference(
        arity in prop_oneof![Just(2usize), Just(3), Just(8), Just(17), Just(64)],
        cache in 0usize..2048,
        num_counters in 1u64..300,
        bumps in proptest::collection::vec(any::<u16>(), 0..60),
    ) {
        let cfg = MerkleConfig { arity, node_cache_bytes: cache };
        let mut tree = MerkleTree::new(cfg, [9u8; 32], 0x8000, num_counters, "prop.merkle");
        let mut shell = Shell::new();
        let mut dram = Dram::new(1 << 24);
        let mut ledger = CostLedger::new();
        let mut reference = std::collections::HashMap::new();
        for &raw in &bumps {
            let idx = (u64::from(raw) % num_counters) as u32;
            let expect = reference.entry(idx).or_insert(0u64);
            *expect += 1;
            let got = tree
                .bump(&mut shell, &mut dram, &mut ledger, idx, AccessMode::Streaming)
                .expect("bump");
            prop_assert_eq!(got, *expect);
        }
        for (idx, expect) in reference {
            let got = tree
                .counter(&mut shell, &mut dram, &mut ledger, idx, AccessMode::Streaming)
                .expect("counter read");
            prop_assert_eq!(got, expect);
        }
    }

    /// Shield configurations (including Merkle settings) round-trip
    /// through the canonical byte encoding hashed into bitstreams.
    #[test]
    fn config_serialization_round_trips(
        chunk_pow in 4u32..16,
        aes_engines in 1usize..8,
        mac_engines in 1usize..8,
        mac_pick in 0u8..3,
        buffer_chunks in 0usize..16,
        scheme in scheme_strategy(),
        hide in any::<bool>(),
    ) {
        let chunk = 1usize << chunk_pow;
        let (counters, merkle) = match scheme {
            Scheme::MacOnly => (false, None),
            Scheme::Counters => (true, None),
            Scheme::Merkle { arity, cache } =>
                (false, Some(MerkleConfig { arity, node_cache_bytes: cache })),
        };
        let es = EngineSetConfig {
            chunk_size: chunk,
            aes_engines,
            mac_engines,
            mac: match mac_pick {
                0 => MacAlgorithm::HmacSha256,
                1 => MacAlgorithm::PmacAes,
                _ => MacAlgorithm::AesGcm,
            },
            buffer_bytes: chunk * buffer_chunks,
            counters,
            merkle,
            ..EngineSetConfig::default()
        };
        let cfg = ShieldConfig::builder()
            .region("r", MemRange::new(0, 1 << 20), es)
            .register_interface(shef_core::shield::RegisterInterfaceConfig {
                num_registers: 16,
                hide_addresses: hide,
            })
            .build()
            .expect("valid by construction");
        let parsed = ShieldConfig::from_bytes(&cfg.to_bytes()).expect("parse");
        prop_assert_eq!(parsed, cfg);
    }
}
