//! Property tests of the multi-tenant service scheduler: for *any*
//! tenant count, shard geometry, admission bounds and interleaved
//! request trace, the service must be starvation-free — every admitted
//! request yields exactly one completion, even when requests are
//! rejected at admission — and fully deterministic: the same seed
//! replays to an identical completion sequence and identical shard
//! logical clocks.

use proptest::prelude::*;
use shef_core::shield::engine::AccessMode;
use shef_core::shield::{
    DataEncryptionKey, EngineSetConfig, MemRange, RequestId, ServiceConfig, ServiceRequest,
    ShieldConfig, ShieldService, TenantId,
};
use shef_core::ShefError;
use shef_fpga::clock::Cycles;

const REGION_BASE: u64 = 0x1000;
const CHUNK: usize = 512;
const NUM_CHUNKS: u64 = 8;
const REGION_LEN: u64 = CHUNK as u64 * NUM_CHUNKS;

/// Deterministic 64-bit LCG (MMIX constants), matching the testkit's.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

fn tenant_config() -> ShieldConfig {
    ShieldConfig::builder()
        .region(
            "data",
            MemRange::new(REGION_BASE, REGION_LEN),
            EngineSetConfig {
                chunk_size: CHUNK,
                buffer_bytes: CHUNK * 2,
                ..EngineSetConfig::default()
            },
        )
        .build()
        .expect("valid config")
}

/// Seed-derived request for one tenant: full-chunk writes, reads of
/// chunks that tenant has already written, and flushes.
fn next_request(rng: &mut Lcg, written: &mut Vec<u64>) -> ServiceRequest {
    let kind = rng.below(100);
    if written.is_empty() || kind < 50 {
        let chunk = rng.below(NUM_CHUNKS);
        if !written.contains(&chunk) {
            written.push(chunk);
        }
        ServiceRequest::Write {
            addr: REGION_BASE + chunk * CHUNK as u64,
            data: vec![rng.below(256) as u8; CHUNK],
            mode: AccessMode::Streaming,
        }
    } else if kind < 90 {
        let chunk = written[rng.below(written.len() as u64) as usize];
        ServiceRequest::Read {
            addr: REGION_BASE + chunk * CHUNK as u64,
            len: CHUNK,
            mode: AccessMode::Streaming,
        }
    } else {
        ServiceRequest::Flush
    }
}

struct RunResult {
    admitted: Vec<RequestId>,
    rejected: usize,
    /// (tenant index, raw request id, payload rendered for equality).
    completions: Vec<(usize, u64, String)>,
    shard_clocks: Vec<Cycles>,
}

/// Builds the service, interleaves seed-derived submissions across all
/// tenants round-robin, drains, and snapshots everything observable.
fn run_once(
    seed: u64,
    tenants: usize,
    shards: usize,
    lanes: usize,
    queue_capacity: usize,
    tenant_quota: usize,
    ops_per_tenant: usize,
) -> RunResult {
    let config = ServiceConfig {
        shards,
        lanes_per_shard: lanes,
        queue_capacity,
        tenant_quota: tenant_quota.min(queue_capacity),
    };
    let master = DataEncryptionKey::from_bytes([0x44u8; 32]);
    let mut env = shef_attest::AttestationEnvironment::new(b"core.service-props")
        .expect("attestation fixture");
    let mut service =
        ShieldService::new(config, env.verifier_public()).expect("service constructs");
    let ids: Vec<TenantId> = (0..tenants)
        .map(|i| {
            let name = format!("tenant{i}");
            let grant = env
                .onboard(&name, master.tenant_key(&name).to_bytes())
                .expect("tenant attests");
            service
                .register_tenant(&name, tenant_config(), &grant)
                .expect("tenant registers")
        })
        .collect();
    let mut rng = Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1));
    let mut written: Vec<Vec<u64>> = vec![Vec::new(); tenants];
    let mut admitted = Vec::new();
    let mut rejected = 0usize;
    for _ in 0..ops_per_tenant {
        for (i, &tenant) in ids.iter().enumerate() {
            let request = next_request(&mut rng, &mut written[i]);
            match service.submit(tenant, request) {
                Ok(id) => admitted.push(id),
                Err(ShefError::Fault(_)) => rejected += 1,
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
    }
    let completions = service
        .drain()
        .into_iter()
        .map(|c| {
            (
                c.tenant.index(),
                c.request.raw(),
                format!("{:?}", c.payload),
            )
        })
        .collect();
    let shard_clocks = (0..service.shard_count())
        .map(|s| service.shard(s).clock())
        .collect();
    RunResult {
        admitted,
        rejected,
        completions,
        shard_clocks,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Starvation freedom: every admitted request completes exactly
    /// once — rejected submissions are rejected *at admission*, never
    /// silently dropped after the fact.
    #[test]
    fn every_admitted_request_completes_exactly_once(
        seed in 0u64..1024,
        tenants in 1usize..5,
        shards in 1usize..4,
        lanes in 1usize..5,
        queue_capacity in 4usize..48,
        ops_per_tenant in 1usize..12,
    ) {
        let r = run_once(seed, tenants, shards, lanes, queue_capacity, queue_capacity, ops_per_tenant);
        prop_assert_eq!(r.admitted.len() + r.rejected, tenants * ops_per_tenant);
        prop_assert_eq!(r.completions.len(), r.admitted.len());
        for id in &r.admitted {
            prop_assert_eq!(
                r.completions.iter().filter(|(_, raw, _)| *raw == id.raw()).count(),
                1
            );
        }
    }

    /// A tight per-tenant quota starves nobody either: submissions over
    /// quota reject with an admission fault, and the admitted prefix
    /// still completes in full.
    #[test]
    fn quota_rejections_never_lose_admitted_requests(
        seed in 0u64..1024,
        tenants in 1usize..4,
        ops_per_tenant in 4usize..16,
    ) {
        let r = run_once(seed, tenants, 2, 2, 64, 2, ops_per_tenant);
        prop_assert!(r.rejected > 0 || ops_per_tenant <= 2, "quota of 2 must bite");
        prop_assert_eq!(r.completions.len(), r.admitted.len());
    }

    /// Determinism: the same seed and geometry replays to an identical
    /// completion sequence (order, tenants, payloads) and identical
    /// shard logical clocks.
    #[test]
    fn same_seed_replays_byte_identically(
        seed in 0u64..1024,
        tenants in 1usize..4,
        shards in 1usize..4,
        lanes in 1usize..5,
        ops_per_tenant in 1usize..10,
    ) {
        let a = run_once(seed, tenants, shards, lanes, 64, 64, ops_per_tenant);
        let b = run_once(seed, tenants, shards, lanes, 64, 64, ops_per_tenant);
        prop_assert_eq!(a.completions, b.completions);
        prop_assert_eq!(a.shard_clocks, b.shard_clocks);
    }

    /// The shard arbiter's clock only ever moves forward, and every
    /// shard that dispatched work has a nonzero clock.
    #[test]
    fn shard_clocks_advance_monotonically(
        seed in 0u64..1024,
        tenants in 1usize..4,
        shards in 1usize..4,
        ops_per_tenant in 1usize..10,
    ) {
        let r = run_once(seed, tenants, shards, 2, 64, 64, ops_per_tenant);
        // Tenant i lands on shard i % shards, so with >= 1 op per
        // tenant every occupied shard must have advanced.
        for (s, clock) in r.shard_clocks.iter().enumerate() {
            let occupied = (0..tenants).any(|t| t % shards == s);
            prop_assert_eq!(clock.0 > 0, occupied && !r.completions.is_empty());
        }
    }
}
