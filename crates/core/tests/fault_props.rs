//! Property tests of the fault-injection outcome taxonomy: for *any*
//! seeded `FaultPlan` over the memory datapath, the Shield must land
//! on an allowlisted verdict — never `SilentCorruption`, never a
//! containment breach — and a fault-free plan must be byte-identical
//! to the un-instrumented golden twin on both datapaths.

use proptest::prelude::*;
use shef_testkit::{run_plan, DataPath, FaultClass, FaultPlan, Scheme, Verdict};

fn scheme_strategy() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::MacOnly),
        Just(Scheme::Counters),
        Just(Scheme::Merkle),
    ]
}

fn path_strategy() -> impl Strategy<Value = DataPath> {
    prop_oneof![
        Just(DataPath::Serial),
        (1usize..=4).prop_map(|lanes| DataPath::Parallel { lanes }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any single-fault plan resolves to an allowlisted verdict, and a
    /// detected integrity failure always comes with a successful
    /// containment probe (the probe itself would report
    /// `SilentCorruption` on a breach, failing `is_allowed`).
    #[test]
    fn single_fault_plans_never_corrupt_silently(
        seed in 0u64..1024,
        class_idx in 0usize..FaultClass::ALL.len(),
        scheme in scheme_strategy(),
        path in path_strategy(),
    ) {
        let class = FaultClass::ALL[class_idx];
        prop_assume!(class.valid_schemes().contains(&scheme));
        let plan = FaultPlan::single(seed, class, scheme, path);
        let report = run_plan(&plan);
        prop_assert!(report.is_allowed(), "{}: {report:?}", class.as_str());
        prop_assert_ne!(report.verdict, Verdict::SilentCorruption);
        prop_assert_ne!(report.verdict, Verdict::Hang);
    }

    /// Plans with several scheduled memory faults (overlapping chunks,
    /// mixed classes, lane deaths on top of tampering) still resolve
    /// to allowlisted verdicts.
    #[test]
    fn multi_fault_memory_plans_never_corrupt_silently(
        seed in 0u64..1024,
        n_events in 1usize..5,
        scheme in scheme_strategy(),
        path in path_strategy(),
    ) {
        let plan = FaultPlan::randomized(seed, n_events, scheme, path);
        let report = run_plan(&plan);
        prop_assert!(report.is_allowed(), "{report:?}");
    }

    /// A fault-free plan is byte-identical to the golden twin on every
    /// scheme and datapath: the verdict is exactly `Clean`.
    #[test]
    fn fault_free_plans_are_byte_identical(
        seed in 0u64..1024,
        scheme in scheme_strategy(),
        path in path_strategy(),
    ) {
        let report = run_plan(&FaultPlan::clean(seed, scheme, path));
        prop_assert!(report.verdict == Verdict::Clean, "{report:?}");
        prop_assert!(report.probe.is_none());
    }
}
