//! Error types for the ShEF core.

use shef_crypto::CryptoError;
use shef_fpga::FpgaError;

use crate::fault::ShieldFault;

/// Errors raised anywhere in the ShEF workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShefError {
    /// A cryptographic operation failed (tag mismatch, bad signature…).
    Crypto(CryptoError),
    /// The platform substrate raised an error.
    Fpga(FpgaError),
    /// A message or image failed to deserialize.
    Malformed(String),
    /// Attestation failed verification; the reason is for the audit log.
    AttestationFailed(String),
    /// The Shield detected an integrity violation (spoof/splice/replay).
    IntegrityViolation(String),
    /// An operation required a key that has not been provisioned.
    KeyNotProvisioned(String),
    /// A Shield configuration is invalid (overlapping regions, zero
    /// engines…).
    InvalidConfig(String),
    /// The secure-boot chain failed.
    BootFailed(String),
    /// Tampering was detected by the Security Kernel's monitors.
    TamperDetected(String),
    /// An access fell outside every configured Shield region.
    UnmappedAddress(u64),
    /// A party violated protocol order (e.g. loading a bitstream before
    /// attestation).
    ProtocolViolation(String),
    /// A contained Shield datapath fault with defined degradation
    /// semantics (lane panic after drain, poisoned engine set…).
    Fault(ShieldFault),
}

impl core::fmt::Display for ShefError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ShefError::Crypto(e) => write!(f, "crypto error: {e}"),
            ShefError::Fpga(e) => write!(f, "platform error: {e}"),
            ShefError::Malformed(m) => write!(f, "malformed input: {m}"),
            ShefError::AttestationFailed(m) => write!(f, "attestation failed: {m}"),
            ShefError::IntegrityViolation(m) => write!(f, "integrity violation: {m}"),
            ShefError::KeyNotProvisioned(m) => write!(f, "key not provisioned: {m}"),
            ShefError::InvalidConfig(m) => write!(f, "invalid shield configuration: {m}"),
            ShefError::BootFailed(m) => write!(f, "secure boot failed: {m}"),
            ShefError::TamperDetected(m) => write!(f, "tamper detected: {m}"),
            ShefError::UnmappedAddress(a) => write!(f, "address {a:#x} not in any shield region"),
            ShefError::ProtocolViolation(m) => write!(f, "protocol violation: {m}"),
            ShefError::Fault(e) => write!(f, "shield fault: {e}"),
        }
    }
}

impl std::error::Error for ShefError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShefError::Crypto(e) => Some(e),
            ShefError::Fpga(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CryptoError> for ShefError {
    fn from(e: CryptoError) -> Self {
        ShefError::Crypto(e)
    }
}

impl From<FpgaError> for ShefError {
    fn from(e: FpgaError) -> Self {
        ShefError::Fpga(e)
    }
}

impl From<shef_attest::AttestError> for ShefError {
    fn from(e: shef_attest::AttestError) -> Self {
        ShefError::AttestationFailed(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ShefError::UnmappedAddress(0x1000);
        assert!(e.to_string().contains("0x1000"));
        let e: ShefError = CryptoError::TagMismatch.into();
        assert!(e.to_string().contains("tag"));
        let e: ShefError = FpgaError::FirmwareAuthentication.into();
        assert!(e.to_string().contains("firmware"));
        let e = ShefError::Fault(ShieldFault::Poisoned { region: "r".into() });
        assert!(e.to_string().contains("poisoned"));
    }

    #[test]
    fn source_chain() {
        use std::error::Error;
        let e: ShefError = CryptoError::BadSignature.into();
        assert!(e.source().is_some());
        assert!(ShefError::Malformed("x".into()).source().is_none());
    }
}
