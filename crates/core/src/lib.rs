//! # ShEF core: Shielded Enclaves for Cloud FPGAs
//!
//! This crate implements the ShEF framework of Zhao, Gao & Kozyrakis
//! (ASPLOS 2022) on top of the simulated cloud-FPGA platform in
//! [`shef_fpga`]:
//!
//! * [`boot`] — the secure boot chain (§4 "Secure Boot"): BootROM → SPB
//!   firmware → measured Security Kernel with a device-bound Attestation
//!   Key.
//! * [`attest`] — the remote attestation protocol of Fig. 3, three-party
//!   (Data Owner ↔ IP Vendor ↔ Security Kernel) over untrusted channels.
//! * [`bitstream`] — the partial-bitstream container: accelerator logic,
//!   Shield configuration and the embedded private Shield Encryption Key,
//!   sealed under the Bitstream Encryption Key.
//! * [`shield`] — the ShEF Shield (§5): a configurable wrapper that
//!   interposes authenticated encryption on the register and memory
//!   interfaces between accelerator and Shell, with per-region engine
//!   sets, buffers and freshness counters, plus area and timing models.
//! * [`pki`] — the certificate authority machinery binding device keys
//!   to the Manufacturer and Security-Kernel hashes to a public list.
//! * [`workflow`] — the four parties (Manufacturer, CSP, IP Vendor, Data
//!   Owner) and the eleven-step lifecycle of Fig. 2 as a typed API.
//! * [`attacks`] — the adversarial harness used to demonstrate that the
//!   threat-model attacks (Shell man-in-the-middle, DRAM spoof/splice/
//!   replay, JTAG tamper, bitstream swaps) are detected.
//! * [`sidechannel`] — §5.2 countermeasures: active-fence generation and
//!   access-pattern width analysis.
//! * [`oram`] — the paper's suggested extension: a Path ORAM controller
//!   over the Shield's generic memory interface, closing the address
//!   side channel entirely.
//!
//! ## Quickstart
//!
//! A Shield starts from a validated configuration — named regions, each
//! with its own engine set:
//!
//! ```
//! use shef_core::shield::{EngineSetConfig, MemRange, ShieldConfig};
//!
//! let config = ShieldConfig::builder()
//!     .region("data", MemRange::new(0x1000, 0x2000), EngineSetConfig::default())
//!     .build()
//!     .expect("valid config");
//! assert_eq!(config.regions.len(), 1);
//! ```
//!
//! See `examples/quickstart.rs` at the workspace root for the full
//! eleven-step lifecycle; the crate-level integration tests
//! (`tests/end_to_end.rs`) exercise every path. `docs/ARCHITECTURE.md`
//! maps the crates and walks the datapath; `docs/SECURITY_MODEL.md`
//! states the threat model this crate defends against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod attest;
pub mod bitstream;
pub mod boot;
pub mod error;
pub mod fault;
pub mod oram;
pub mod pki;
pub mod shield;
pub mod sidechannel;
pub mod workflow;

mod wire;

pub use error::ShefError;
pub use fault::ShieldFault;
