//! The ShEF secure boot chain (§3 steps 6–7, §4 "Secure Boot").
//!
//! ```text
//! BootROM ──decrypts──▶ SPB firmware ──measures──▶ Security Kernel
//!    │                        │                          │
//!    └─ AES device key        └─ private device key      └─ Attestation Key
//!       (e-fuses)                (inside encrypted fw)      bound to (device, H(SecKrnl))
//! ```
//!
//! The SPB firmware "reads the Security Kernel out of the boot medium and
//! hashes it … signs the hash with the private device key \[and\] uses the
//! resulting value to seed a key generator to produce a unique asymmetric
//! Attestation Key pair", then certifies it with
//! `σ_SecKrnl = Sign_DeviceKey(H(SecKrnl), AttestKey_pub)`.
//!
//! Because our signatures are deterministic Ed25519, the derived
//! Attestation Key is a pure function of (device key, kernel binary):
//! re-booting the same kernel on the same device reproduces the same
//! identity, exactly as the paper intends.

use shef_crypto::drbg::HmacDrbg;
use shef_crypto::ecies::EciesKeyPair;
use shef_crypto::ed25519::{Signature, SigningKey, VerifyingKey};
use shef_crypto::sha2::{Sha256, Sha512};
use shef_fpga::board::{image_names, Board};
use shef_fpga::processor::KernelImage;

use crate::wire::{Reader, Writer};
use crate::ShefError;

/// Private-memory slot names used by the Security Kernel.
pub mod slots {
    /// Seed of the attestation signing key.
    pub const ATTEST_SIGN_SEED: &str = "attest-sign-seed";
    /// Seed of the attestation Diffie–Hellman key.
    pub const ATTEST_DH_SEED: &str = "attest-dh-seed";
    /// σ_SecKrnl certificate bytes.
    pub const SIGMA_SECKRNL: &str = "sigma-seckrnl";
    /// Measured kernel hash.
    pub const KERNEL_HASH: &str = "kernel-hash";
    /// Established attestation session key (after a challenge).
    pub const SESSION_KEY: &str = "session-key";
    /// Nonce of the in-flight attestation session.
    pub const SESSION_NONCE: &str = "session-nonce";
}

/// The payload the Manufacturer seals inside the SPB firmware: the
/// asymmetric private device key (§3 step 2).
#[derive(Clone)]
pub struct FirmwarePayload {
    /// Seed of the device signing key.
    pub device_key_seed: [u8; 32],
}

impl core::fmt::Debug for FirmwarePayload {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FirmwarePayload").finish_non_exhaustive()
    }
}

impl FirmwarePayload {
    /// Serializes for sealing.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_str("shef.firmware.v1");
        w.put_fixed(&self.device_key_seed);
        w.finish()
    }

    /// Parses a decrypted firmware payload.
    ///
    /// # Errors
    ///
    /// Returns [`ShefError::Malformed`] on bad layout.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ShefError> {
        let mut r = Reader::new(bytes);
        let tag = r.get_str()?;
        if tag != "shef.firmware.v1" {
            return Err(ShefError::Malformed("bad firmware payload tag".into()));
        }
        let device_key_seed = r.get_fixed::<32>()?;
        r.finish()?;
        Ok(FirmwarePayload { device_key_seed })
    }

    /// The device signing key held by this firmware.
    #[must_use]
    pub fn device_signing_key(&self) -> SigningKey {
        SigningKey::from_seed(&self.device_key_seed)
    }
}

/// Message over which σ_SecKrnl is computed.
#[must_use]
pub fn seckrnl_cert_message(
    kernel_hash: &[u8; 32],
    attest_sign_public: &VerifyingKey,
    attest_dh_public: &[u8; 32],
) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_str("shef.sigma-seckrnl.v1");
    w.put_fixed(kernel_hash);
    w.put_fixed(&attest_sign_public.0);
    w.put_fixed(attest_dh_public);
    w.finish()
}

/// Public outcome of a successful secure boot.
#[derive(Debug, Clone)]
pub struct BootReport {
    /// SHA-256 of the Security Kernel binary.
    pub kernel_hash: [u8; 32],
    /// The attestation signing public key.
    pub attest_sign_public: VerifyingKey,
    /// The attestation Diffie–Hellman public key.
    pub attest_dh_public: [u8; 32],
    /// Device certificate over the kernel hash and attestation keys.
    pub sigma_seckrnl: Signature,
    /// Modelled boot latency.
    pub timing: BootTiming,
}

/// Boot-phase latency model, calibrated to the paper's Ultra96
/// measurement: "the boot process, from power-on to bitstream loading,
/// completes in 5.1 seconds" (§6.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootTiming {
    /// BootROM execution + firmware decryption (ms).
    pub bootrom_ms: f64,
    /// Security Kernel read + hash (ms).
    pub measure_kernel_ms: f64,
    /// Attestation key derivation + certificate (ms).
    pub key_derivation_ms: f64,
    /// Kernel load onto the dedicated core + monitor arming (ms).
    pub kernel_start_ms: f64,
    /// Shell static-region configuration (ms).
    pub shell_load_ms: f64,
}

impl BootTiming {
    /// The Ultra96 calibration from §6.1.
    #[must_use]
    pub fn ultra96() -> Self {
        BootTiming {
            bootrom_ms: 900.0,
            measure_kernel_ms: 650.0,
            key_derivation_ms: 250.0,
            kernel_start_ms: 300.0,
            shell_load_ms: 3_000.0,
        }
    }

    /// Total boot latency in milliseconds.
    #[must_use]
    pub fn total_ms(&self) -> f64 {
        self.bootrom_ms
            + self.measure_kernel_ms
            + self.key_derivation_ms
            + self.kernel_start_ms
            + self.shell_load_ms
    }
}

/// Derives the attestation keys from a device signature over the kernel
/// hash, per §4: the signature seeds a key generator.
#[must_use]
pub fn derive_attestation_keys(
    device_key: &SigningKey,
    kernel_hash: &[u8; 32],
) -> (SigningKey, EciesKeyPair) {
    let mut msg = b"shef.attest-seed.v1".to_vec();
    msg.extend_from_slice(kernel_hash);
    let sig = device_key.sign(&msg);
    let digest = Sha512::digest(&sig.0);
    let sign_seed: [u8; 32] = digest[..32].try_into().expect("lower half");
    let mut dh_drbg = HmacDrbg::from_seed(&digest);
    dh_drbg.reseed(b"shef.attest.dh");
    let sign_key = SigningKey::from_seed(&sign_seed);
    let dh_key = EciesKeyPair::generate(&mut dh_drbg);
    (sign_key, dh_key)
}

/// Executes the full secure boot chain on a board.
///
/// On success the Security Kernel is running on the dedicated processor
/// with the attestation keys in its private memory, and the tamper
/// monitors are armed.
///
/// # Errors
///
/// * [`ShefError::Fpga`] if BootROM rejects the firmware or images are
///   missing.
/// * [`ShefError::Malformed`] if the firmware payload is corrupt.
pub fn secure_boot(board: &mut Board) -> Result<BootReport, ShefError> {
    // 1. BootROM: decrypt + authenticate the SPB firmware.
    let enc_fw = board.boot_medium.load(image_names::SPB_FIRMWARE)?.to_vec();
    let payload_bytes = board
        .device
        .spb
        .boot_rom(&mut board.device.keystore, &enc_fw)?;
    let firmware = FirmwarePayload::from_bytes(&payload_bytes)?;
    let device_key = firmware.device_signing_key();

    // 2. Firmware measures the Security Kernel.
    let kernel = board
        .boot_medium
        .load(image_names::SECURITY_KERNEL)?
        .to_vec();
    let kernel_hash = Sha256::digest(&kernel);

    // 3. Attestation keys bound to (device, kernel).
    let (attest_sign, attest_dh) = derive_attestation_keys(&device_key, &kernel_hash);
    let attest_sign_public = attest_sign.verifying_key();
    let attest_dh_public = attest_dh.public_key().0;
    let sigma_seckrnl = device_key.sign(&seckrnl_cert_message(
        &kernel_hash,
        &attest_sign_public,
        &attest_dh_public,
    ));

    // 4. Load the kernel onto the dedicated processor; hand it the keys
    //    through on-chip shared memory. The kernel never sees the device
    //    key itself.
    board.device.sk_processor.load_kernel(KernelImage {
        binary: kernel,
        hash: kernel_hash,
    });
    let mem = board.device.sk_processor.private_memory();
    // Reconstruct seeds the same way derive_attestation_keys did: store
    // the generator inputs rather than raw secrets where possible.
    mem.store(
        slots::ATTEST_SIGN_SEED,
        attest_sign_seed_bytes(&device_key, &kernel_hash).to_vec(),
    );
    mem.store(
        slots::ATTEST_DH_SEED,
        attest_dh_seed_bytes(&device_key, &kernel_hash).to_vec(),
    );
    mem.store(slots::SIGMA_SECKRNL, sigma_seckrnl.0.to_vec());
    mem.store(slots::KERNEL_HASH, kernel_hash.to_vec());

    // 5. The kernel starts its continuous monitors.
    board.device.ports.arm_monitors();

    Ok(BootReport {
        kernel_hash,
        attest_sign_public,
        attest_dh_public,
        sigma_seckrnl,
        timing: BootTiming::ultra96(),
    })
}

/// Seed bytes for the attestation signing key (shared derivation between
/// the firmware and the kernel's private-memory copy).
fn attest_sign_seed_bytes(device_key: &SigningKey, kernel_hash: &[u8; 32]) -> [u8; 32] {
    let mut msg = b"shef.attest-seed.v1".to_vec();
    msg.extend_from_slice(kernel_hash);
    let sig = device_key.sign(&msg);
    let digest = Sha512::digest(&sig.0);
    digest[..32].try_into().expect("lower half")
}

/// Seed bytes for the attestation DH key.
fn attest_dh_seed_bytes(device_key: &SigningKey, kernel_hash: &[u8; 32]) -> [u8; 64] {
    let mut msg = b"shef.attest-seed.v1".to_vec();
    msg.extend_from_slice(kernel_hash);
    let sig = device_key.sign(&msg);
    Sha512::digest(&sig.0)
}

/// Reconstructs the Security Kernel's attestation keys from private
/// memory (what kernel code does at runtime).
///
/// # Errors
///
/// Returns [`ShefError::BootFailed`] if the kernel was not booted.
pub fn kernel_attestation_keys(board: &mut Board) -> Result<(SigningKey, EciesKeyPair), ShefError> {
    let mem = board.device.sk_processor.private_memory();
    let sign_seed = mem
        .load(slots::ATTEST_SIGN_SEED)
        .ok_or_else(|| ShefError::BootFailed("attestation keys not provisioned".into()))?;
    let sign_seed: [u8; 32] = sign_seed
        .try_into()
        .map_err(|_| ShefError::BootFailed("corrupt attestation seed".into()))?;
    let dh_seed = mem
        .load(slots::ATTEST_DH_SEED)
        .ok_or_else(|| ShefError::BootFailed("attestation DH seed missing".into()))?
        .to_vec();
    let sign_key = SigningKey::from_seed(&sign_seed);
    let mut dh_drbg = HmacDrbg::from_seed(&dh_seed);
    dh_drbg.reseed(b"shef.attest.dh");
    let dh_key = EciesKeyPair::generate(&mut dh_drbg);
    Ok((sign_key, dh_key))
}

#[cfg(test)]
mod tests {
    use super::*;
    use shef_fpga::keystore::KeyProtection;
    use shef_fpga::spb::seal_firmware;

    fn provisioned_board() -> Board {
        let mut board = Board::new(b"die-boot-test");
        let device_aes = [0x10u8; 32];
        board
            .device
            .keystore
            .burn_aes_key(device_aes, KeyProtection::PufWrapped)
            .unwrap();
        let fw = FirmwarePayload {
            device_key_seed: [0x20u8; 32],
        };
        board.boot_medium.store(
            image_names::SPB_FIRMWARE,
            seal_firmware(&device_aes, &fw.to_bytes()),
        );
        board.boot_medium.store(
            image_names::SECURITY_KERNEL,
            b"shef security kernel v1".to_vec(),
        );
        board
    }

    #[test]
    fn boot_succeeds_on_provisioned_board() {
        let mut board = provisioned_board();
        let report = secure_boot(&mut board).unwrap();
        assert!(board.device.sk_processor.is_running());
        assert!(board.device.ports.monitors_armed());
        assert_eq!(
            report.kernel_hash,
            Sha256::digest(b"shef security kernel v1")
        );
    }

    #[test]
    fn attestation_key_bound_to_kernel_binary() {
        let mut board = provisioned_board();
        let report1 = secure_boot(&mut board).unwrap();
        // Same device, same kernel → same identity on re-boot.
        board.device.power_cycle();
        let report2 = secure_boot(&mut board).unwrap();
        assert_eq!(report1.attest_sign_public, report2.attest_sign_public);
        // Different kernel → different identity.
        board.device.power_cycle();
        board
            .boot_medium
            .store(image_names::SECURITY_KERNEL, b"EVIL kernel".to_vec());
        let report3 = secure_boot(&mut board).unwrap();
        assert_ne!(report1.attest_sign_public, report3.attest_sign_public);
        assert_ne!(report1.kernel_hash, report3.kernel_hash);
    }

    #[test]
    fn sigma_seckrnl_verifies_under_device_key() {
        let mut board = provisioned_board();
        let report = secure_boot(&mut board).unwrap();
        let device_public = SigningKey::from_seed(&[0x20u8; 32]).verifying_key();
        let msg = seckrnl_cert_message(
            &report.kernel_hash,
            &report.attest_sign_public,
            &report.attest_dh_public,
        );
        device_public.verify(&msg, &report.sigma_seckrnl).unwrap();
    }

    #[test]
    fn kernel_keys_recoverable_from_private_memory() {
        let mut board = provisioned_board();
        let report = secure_boot(&mut board).unwrap();
        let (sign, dh) = kernel_attestation_keys(&mut board).unwrap();
        assert_eq!(sign.verifying_key(), report.attest_sign_public);
        assert_eq!(dh.public_key().0, report.attest_dh_public);
    }

    #[test]
    fn boot_fails_with_wrong_device_key_firmware() {
        let mut board = provisioned_board();
        // Replace firmware with one sealed under a different AES key.
        let fw = FirmwarePayload {
            device_key_seed: [0x20u8; 32],
        };
        board.boot_medium.store(
            image_names::SPB_FIRMWARE,
            seal_firmware(&[0xEEu8; 32], &fw.to_bytes()),
        );
        assert!(secure_boot(&mut board).is_err());
        assert!(!board.device.sk_processor.is_running());
    }

    #[test]
    fn boot_fails_without_kernel_image() {
        let mut board = Board::new(b"die-2");
        board
            .device
            .keystore
            .burn_aes_key([0x10u8; 32], KeyProtection::EFuse)
            .unwrap();
        let fw = FirmwarePayload {
            device_key_seed: [0x20u8; 32],
        };
        board.boot_medium.store(
            image_names::SPB_FIRMWARE,
            seal_firmware(&[0x10u8; 32], &fw.to_bytes()),
        );
        assert!(matches!(
            secure_boot(&mut board),
            Err(ShefError::Fpga(shef_fpga::FpgaError::MissingImage(_)))
        ));
    }

    #[test]
    fn unbooted_board_has_no_attestation_keys() {
        let mut board = provisioned_board();
        assert!(matches!(
            kernel_attestation_keys(&mut board),
            Err(ShefError::BootFailed(_))
        ));
    }

    #[test]
    fn boot_timing_matches_paper() {
        let t = BootTiming::ultra96();
        assert!(
            (t.total_ms() - 5_100.0).abs() < 1.0,
            "total {}",
            t.total_ms()
        );
    }

    #[test]
    fn firmware_payload_round_trip() {
        let fw = FirmwarePayload {
            device_key_seed: [7u8; 32],
        };
        let parsed = FirmwarePayload::from_bytes(&fw.to_bytes()).unwrap();
        assert_eq!(parsed.device_key_seed, fw.device_key_seed);
        assert!(FirmwarePayload::from_bytes(b"junk").is_err());
    }
}
