//! Side-channel countermeasures (§5.2 "Side Channels").
//!
//! The paper offers three mitigations, all reproduced here:
//!
//! 1. **Controlled-channel attacks**: increasing `C_mem` reduces the
//!    number of distinguishable data-dependent access addresses —
//!    [`access_granularity_analysis`] quantifies that trade-off.
//! 2. **Remote power analysis**: "ShEF provides a script to generate an
//!    active fence of logic that hides sensitive power signals" —
//!    [`ActiveFence::generate`] plans such a fence from the accelerator's
//!    area profile (after Krautter et al., ICCAD'19).
//! 3. **Timing**: the crypto engines are data-independent by
//!    construction; [`timing_is_data_independent`] verifies the model's
//!    cost functions never depend on plaintext contents.

use crate::shield::area::Resources;
use crate::shield::config::EngineSetConfig;
use crate::shield::timing::chunk_crypto_cost;

/// How many distinct chunk addresses a region exposes to an observer of
/// the memory bus, for a given access trace.
///
/// Larger `C_mem` maps more plaintext addresses onto one observable
/// chunk address, shrinking the controlled-channel alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GranularityReport {
    /// Chunk size analysed.
    pub chunk_size: usize,
    /// Number of distinct observable chunk indices in the trace.
    pub observable_addresses: usize,
    /// Total accesses in the trace.
    pub accesses: usize,
}

/// Analyses how many distinct chunk-level addresses a byte-address trace
/// reveals under each candidate chunk size.
#[must_use]
pub fn access_granularity_analysis(trace: &[u64], chunk_sizes: &[usize]) -> Vec<GranularityReport> {
    chunk_sizes
        .iter()
        .map(|&cs| {
            let mut seen: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
            for &addr in trace {
                seen.insert(addr / cs as u64);
            }
            GranularityReport {
                chunk_size: cs,
                observable_addresses: seen.len(),
                accesses: trace.len(),
            }
        })
        .collect()
}

/// An active-fence plan: dummy switching logic sized to mask the
/// accelerator's dynamic power signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActiveFence {
    /// LUTs of ring-oscillator fence cells.
    pub fence_luts: u64,
    /// Registers toggled by the fence.
    pub fence_regs: u64,
    /// Duty-cycle modulation seed (decorrelates fence activity).
    pub modulation_seed: u64,
}

impl ActiveFence {
    /// Plans a fence covering `fraction_pct` percent of the protected
    /// design's area (the evaluation in Krautter et al. uses ~25–50 %).
    ///
    /// # Panics
    ///
    /// Panics if `fraction_pct` is zero or above 100.
    #[must_use]
    pub fn generate(design: &Resources, fraction_pct: u64, seed: u64) -> ActiveFence {
        assert!(
            (1..=100).contains(&fraction_pct),
            "fence fraction must be 1–100 %"
        );
        ActiveFence {
            fence_luts: design.lut * fraction_pct / 100,
            fence_regs: design.reg * fraction_pct / 100,
            modulation_seed: seed,
        }
    }

    /// The fence's own area, to be added to the design's budget.
    #[must_use]
    pub fn area(&self) -> Resources {
        Resources {
            bram: 0,
            lut: self.fence_luts,
            reg: self.fence_regs,
            ocm_bits: 0,
        }
    }
}

/// Verifies the engine cost model is independent of data *contents*:
/// cost is a function of lengths and configuration only. This mirrors
/// the paper's claim that "the timing of Shield cryptographic engines
/// does not depend on any confidential information".
#[must_use]
pub fn timing_is_data_independent(cfg: &EngineSetConfig, len: usize) -> bool {
    // The model takes only (cfg, len): two "different plaintexts" cannot
    // even be expressed. We assert the cost is deterministic across
    // repeated evaluation.
    let a = chunk_crypto_cost(cfg, len);
    let b = chunk_crypto_cost(cfg, len);
    a == b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_chunks_shrink_observable_alphabet() {
        // A data-dependent lookup trace touching 64 distinct words.
        let trace: Vec<u64> = (0..64u64).map(|i| i * 64).collect();
        let reports = access_granularity_analysis(&trace, &[64, 512, 4096]);
        assert_eq!(reports[0].observable_addresses, 64);
        assert_eq!(reports[1].observable_addresses, 8);
        assert_eq!(reports[2].observable_addresses, 1);
        // Monotonic: bigger chunks never reveal more.
        assert!(reports
            .windows(2)
            .all(|w| w[1].observable_addresses <= w[0].observable_addresses));
    }

    #[test]
    fn fence_scales_with_design() {
        let design = Resources {
            bram: 0,
            lut: 10_000,
            reg: 20_000,
            ocm_bits: 0,
        };
        let fence = ActiveFence::generate(&design, 25, 42);
        assert_eq!(fence.fence_luts, 2_500);
        assert_eq!(fence.fence_regs, 5_000);
        assert_eq!(fence.area().lut, 2_500);
    }

    #[test]
    #[should_panic(expected = "1–100")]
    fn zero_fence_rejected() {
        let design = Resources::default();
        let _ = ActiveFence::generate(&design, 0, 1);
    }

    #[test]
    fn cost_model_is_data_independent() {
        let cfg = EngineSetConfig::default();
        assert!(timing_is_data_independent(&cfg, 512));
        assert!(timing_is_data_independent(&cfg, 4096));
    }
}
