//! Adversarial harness: every attack in the ShEF threat model (§2.5),
//! mountable against a running instance so tests can demonstrate
//! detection.
//!
//! The adversary controls the host software, the Shell, the DRAM, the
//! boot medium and the debug ports. The attacks here are the concrete
//! instantiations the memory-authentication literature names (and §5.2.1
//! cites): *spoofing* (direct modification), *splicing* (relocation of
//! valid ciphertext), and *replay* (reinjection of stale ciphertext),
//! plus ShEF-specific ones: bitstream swap, register tamper, JTAG/ICAP
//! pokes, and Load-Key misdirection.

use shef_fpga::dram::Dram;
use shef_fpga::ports::{DebugPort, PortAccessOutcome};
use shef_fpga::shell::Interposer;

/// A Shell interposer that flips bits in accelerator-visible memory
/// reads — the man-in-the-middle *spoofing* attack.
#[derive(Debug, Default)]
pub struct MemReadSpoofer {
    /// How many reads to corrupt (then pass through).
    pub corrupt_first_n: usize,
    corrupted: usize,
}

impl MemReadSpoofer {
    /// Corrupts the first `n` accelerator reads.
    #[must_use]
    pub fn new(n: usize) -> Self {
        MemReadSpoofer {
            corrupt_first_n: n,
            corrupted: 0,
        }
    }
}

impl Interposer for MemReadSpoofer {
    fn on_mem_read(&mut self, _addr: u64, data: &mut Vec<u8>) {
        if self.corrupted < self.corrupt_first_n {
            if let Some(b) = data.first_mut() {
                *b ^= 0xFF;
            }
            self.corrupted += 1;
        }
    }
}

/// A Shell interposer that rewrites DMA payloads on the way into device
/// memory (tampering with the Data Owner's staged ciphertext).
#[derive(Debug, Default)]
pub struct DmaTamperer;

impl Interposer for DmaTamperer {
    fn on_dma_to_device(&mut self, _addr: u64, data: &mut Vec<u8>) {
        for b in data.iter_mut().take(4) {
            *b = !*b;
        }
    }
}

/// A Shell interposer that snoops all traffic, recording what it saw —
/// used to verify confidentiality (the snooper must never observe
/// plaintext).
#[derive(Debug, Default)]
pub struct Snooper {
    /// Every byte observed on DMA and memory paths.
    pub observed: Vec<u8>,
}

impl Interposer for Snooper {
    fn on_dma_to_device(&mut self, _addr: u64, data: &mut Vec<u8>) {
        self.observed.extend_from_slice(data);
    }
    fn on_dma_from_device(&mut self, _addr: u64, data: &mut Vec<u8>) {
        self.observed.extend_from_slice(data);
    }
    fn on_mem_read(&mut self, _addr: u64, data: &mut Vec<u8>) {
        self.observed.extend_from_slice(data);
    }
    fn on_mem_write(&mut self, _addr: u64, data: &mut Vec<u8>) {
        self.observed.extend_from_slice(data);
    }
}

impl Snooper {
    /// True if `needle` appears anywhere in the observed traffic.
    #[must_use]
    pub fn saw(&self, needle: &[u8]) -> bool {
        !needle.is_empty() && self.observed.windows(needle.len()).any(|w| w == needle)
    }
}

/// Physical-bus splice: copies `len` bytes of ciphertext (and its tag)
/// from one chunk-aligned address to another.
pub fn splice_chunks(
    dram: &mut Dram,
    src_data: u64,
    dst_data: u64,
    len: usize,
    src_tag: u64,
    dst_tag: u64,
    tag_len: usize,
) {
    let data = dram.tamper_read(src_data, len);
    dram.tamper_write(dst_data, &data);
    let tag = dram.tamper_read(src_tag, tag_len);
    dram.tamper_write(dst_tag, &tag);
}

/// A snapshot of a memory window for a later replay.
#[derive(Debug, Clone)]
pub struct ReplaySnapshot {
    data_addr: u64,
    data: Vec<u8>,
    tag_addr: u64,
    tag: Vec<u8>,
}

impl ReplaySnapshot {
    /// Captures ciphertext + tag for a chunk.
    #[must_use]
    pub fn capture(dram: &Dram, data_addr: u64, len: usize, tag_addr: u64, tag_len: usize) -> Self {
        ReplaySnapshot {
            data_addr,
            data: dram.tamper_read(data_addr, len),
            tag_addr,
            tag: dram.tamper_read(tag_addr, tag_len),
        }
    }

    /// Replays the stale snapshot into memory.
    pub fn replay(&self, dram: &mut Dram) {
        dram.tamper_write(self.data_addr, &self.data);
        dram.tamper_write(self.tag_addr, &self.tag);
    }
}

/// Attempts a JTAG readback attack against a running instance.
pub fn jtag_probe(ports: &mut shef_fpga::ports::DebugPorts) -> PortAccessOutcome {
    ports.adversarial_access(DebugPort::Jtag, "runtime bitstream readback over JTAG")
}

/// Attempts to hot-swap the PR region over ICAP.
pub fn icap_swap(
    fabric: &mut shef_fpga::fabric::Fabric,
    ports: &mut shef_fpga::ports::DebugPorts,
    evil_payload: Vec<u8>,
) -> PortAccessOutcome {
    fabric.adversarial_icap_load(ports, evil_payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shield::{
        client, AccessMode, DataEncryptionKey, EngineSetConfig, MemRange, Shield, ShieldConfig,
    };
    use shef_crypto::ecies::EciesKeyPair;
    use shef_fpga::clock::CostLedger;
    use shef_fpga::shell::Shell;

    fn shielded_setup(counters: bool) -> (Shield, Shell, Dram, CostLedger, DataEncryptionKey) {
        let config = ShieldConfig::builder()
            .region(
                "data",
                MemRange::new(0, 8192),
                EngineSetConfig {
                    counters,
                    buffer_bytes: 512,
                    ..EngineSetConfig::default()
                },
            )
            .build()
            .unwrap();
        let mut shield = Shield::new(config, EciesKeyPair::from_seed(b"attack-target")).unwrap();
        let dek = DataEncryptionKey::from_bytes([0x66u8; 32]);
        let lk = dek.to_load_key(&shield.public_key());
        shield.provision_load_key(&lk).unwrap();
        (
            shield,
            Shell::new(),
            Dram::f1_default(),
            CostLedger::new(),
            dek,
        )
    }

    fn provision_input(shield: &Shield, dram: &mut Dram, dek: &DataEncryptionKey, data: &[u8]) {
        let region = shield.config().regions[0].clone();
        let enc = client::encrypt_region(dek, &region, data, 0);
        dram.tamper_write(0, &enc.ciphertext);
        dram.tamper_write(shield.config().tag_base(0), &enc.tags);
    }

    #[test]
    fn shell_spoofer_detected() {
        let (mut shield, mut shell, mut dram, mut ledger, dek) = shielded_setup(false);
        provision_input(&shield, &mut dram, &dek, &[7u8; 8192]);
        shell.set_interposer(Box::new(MemReadSpoofer::new(1)));
        let err = shield
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0,
                512,
                AccessMode::Streaming,
            )
            .unwrap_err();
        assert!(matches!(err, crate::ShefError::IntegrityViolation(_)));
    }

    #[test]
    fn splice_attack_detected() {
        let (mut shield, mut shell, mut dram, mut ledger, dek) = shielded_setup(false);
        // Two chunks with different plaintext.
        let mut data = vec![1u8; 8192];
        data[512..1024].fill(2);
        provision_input(&shield, &mut dram, &dek, &data);
        let tag_base = shield.config().tag_base(0);
        // Move chunk 0 (and tag) over chunk 1.
        splice_chunks(&mut dram, 0, 512, 512, tag_base, tag_base + 16, 16);
        let err = shield
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                512,
                512,
                AccessMode::Streaming,
            )
            .unwrap_err();
        assert!(matches!(err, crate::ShefError::IntegrityViolation(_)));
    }

    #[test]
    fn replay_attack_detected_with_counters() {
        let (mut shield, mut shell, mut dram, mut ledger, dek) = shielded_setup(true);
        provision_input(&shield, &mut dram, &dek, &[1u8; 8192]);
        let tag_base = shield.config().tag_base(0);
        let snapshot = ReplaySnapshot::capture(&dram, 0, 512, tag_base, 16);
        // Legitimate update through the Shield.
        shield
            .write(
                &mut shell,
                &mut dram,
                &mut ledger,
                0,
                &[9u8; 512],
                AccessMode::Streaming,
            )
            .unwrap();
        shield.flush(&mut shell, &mut dram, &mut ledger).unwrap();
        // Stale state replayed.
        snapshot.replay(&mut dram);
        let err = shield
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0,
                512,
                AccessMode::Streaming,
            )
            .unwrap_err();
        assert!(matches!(err, crate::ShefError::IntegrityViolation(_)));
    }

    #[test]
    fn snooper_never_sees_plaintext() {
        let (mut shield, mut shell, mut dram, mut ledger, dek) = shielded_setup(false);
        let secret = b"TOP-SECRET-GENOME-SEGMENT-0001";
        let mut data = vec![0u8; 8192];
        data[..secret.len()].copy_from_slice(secret);
        provision_input(&shield, &mut dram, &dek, &data);
        shell.set_interposer(Box::new(Snooper::default()));
        // The accelerator reads (and re-writes) the secret through the
        // Shield; all Shell-visible traffic is ciphertext.
        let got = shield
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0,
                512,
                AccessMode::Streaming,
            )
            .unwrap();
        assert_eq!(&got[..secret.len()], secret);
        shield
            .write(
                &mut shell,
                &mut dram,
                &mut ledger,
                4096,
                &got,
                AccessMode::Streaming,
            )
            .unwrap();
        shield.flush(&mut shell, &mut dram, &mut ledger).unwrap();
        // Retrieve the snooper to inspect what it saw.
        // (Install a fresh honest shell; the snooper was consumed.)
        // We verify indirectly: DRAM nowhere contains the plaintext.
        let all = dram.tamper_read(0, 8192);
        assert!(
            !all.windows(secret.len()).any(|w| w == secret),
            "plaintext leaked to DRAM"
        );
    }

    #[test]
    fn dma_tampering_detected_by_client() {
        // The Shell corrupts the Data Owner's ciphertext on the way in;
        // the Shield detects it at first use.
        let (mut shield, mut shell, mut dram, mut ledger, dek) = shielded_setup(false);
        let region = shield.config().regions[0].clone();
        let enc = client::encrypt_region(&dek, &region, &[3u8; 8192], 0);
        shell.set_interposer(Box::new(DmaTamperer));
        shell.dma_to_device(&mut dram, 0, &enc.ciphertext).unwrap();
        shell.clear_interposer();
        dram.tamper_write(shield.config().tag_base(0), &enc.tags);
        let err = shield
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0,
                512,
                AccessMode::Streaming,
            )
            .unwrap_err();
        assert!(matches!(err, crate::ShefError::IntegrityViolation(_)));
    }

    #[test]
    fn jtag_probe_blocked_on_booted_instance() {
        let mut ports = shef_fpga::ports::DebugPorts::new();
        ports.arm_monitors(); // Security Kernel armed them at boot
        assert_eq!(jtag_probe(&mut ports), PortAccessOutcome::BlockedAndLogged);
        assert_eq!(ports.pending_events().len(), 1);
    }

    #[test]
    fn icap_swap_blocked_on_booted_instance() {
        let mut fabric = shef_fpga::fabric::Fabric::new();
        let mut ports = shef_fpga::ports::DebugPorts::new();
        fabric.load_shell("v1", b"s").unwrap();
        fabric.load_partial(vec![1, 2, 3]).unwrap();
        ports.arm_monitors();
        assert_eq!(
            icap_swap(&mut fabric, &mut ports, vec![0xEE; 3]),
            PortAccessOutcome::BlockedAndLogged
        );
        assert_eq!(fabric.partial().unwrap().payload, vec![1, 2, 3]);
    }

    #[test]
    fn snooper_saw_helper() {
        let s = Snooper {
            observed: vec![1, 2, 3, 4, 5],
        };
        assert!(s.saw(&[3, 4]));
        assert!(!s.saw(&[4, 3]));
        assert!(!s.saw(&[]));
    }
}
