//! Minimal length-prefixed wire format used by bitstreams, boot payloads
//! and attestation messages.
//!
//! Hand-rolled (rather than serde) because the formats are tiny, must be
//! stable byte-for-byte (they are hashed and signed), and the offline
//! environment provides no serde_derive-compatible format crate.

use crate::ShefError;

/// Serializes fields into a buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Writer::default()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    pub fn put_fixed(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Deserializes fields from a buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ShefError> {
        if self.pos + n > self.buf.len() {
            return Err(ShefError::Malformed(format!(
                "truncated input: need {n} bytes at offset {}",
                self.pos
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub fn get_u8(&mut self) -> Result<u8, ShefError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u16(&mut self) -> Result<u16, ShefError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    pub fn get_u32(&mut self) -> Result<u32, ShefError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    pub fn get_u64(&mut self) -> Result<u64, ShefError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    pub fn get_bool(&mut self) -> Result<bool, ShefError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(ShefError::Malformed(format!("invalid bool byte {v}"))),
        }
    }

    pub fn get_fixed<const N: usize>(&mut self) -> Result<[u8; N], ShefError> {
        Ok(self.take(N)?.try_into().expect("fixed size"))
    }

    pub fn get_bytes(&mut self) -> Result<Vec<u8>, ShefError> {
        let len = self.get_u64()?;
        // Bound against the *remaining* bytes before anything else: a
        // forged 2^64 length prefix must be rejected outright, never
        // allocated, and the check must not pass just because the claim
        // is smaller than the total buffer.
        let remaining = (self.buf.len() - self.pos) as u64;
        if len > remaining {
            return Err(ShefError::Malformed(format!(
                "length {len} exceeds remaining input ({remaining} bytes)"
            )));
        }
        Ok(self.take(len as usize)?.to_vec())
    }

    pub fn get_str(&mut self) -> Result<String, ShefError> {
        String::from_utf8(self.get_bytes()?)
            .map_err(|_| ShefError::Malformed("invalid utf-8 string".into()))
    }

    /// Ensures all input was consumed.
    pub fn finish(self) -> Result<(), ShefError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ShefError::Malformed(format!(
                "{} trailing bytes",
                self.buf.len() - self.pos
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_bool(true);
        w.put_fixed(&[1, 2, 3]);
        w.put_bytes(b"hello");
        w.put_str("world");
        let buf = w.finish();

        let mut r = Reader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 300);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), 1 << 40);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_fixed::<3>().unwrap(), [1, 2, 3]);
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.get_str().unwrap(), "world");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_detected() {
        let mut w = Writer::new();
        w.put_u64(10);
        let mut buf = w.finish();
        buf.push(0xAB); // claims 10 bytes follow but only 1 does
        let mut r = Reader::new(&buf);
        assert!(r.get_bytes().is_err());
    }

    #[test]
    fn forged_huge_length_rejected_before_allocation() {
        // A u64::MAX length prefix must fail fast, not allocate.
        let mut buf = u64::MAX.to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 32]);
        let mut r = Reader::new(&buf);
        assert!(matches!(r.get_bytes(), Err(ShefError::Malformed(_))));
    }

    #[test]
    fn length_bounded_by_remaining_not_total() {
        // After consuming a field, a length claim that fits the total
        // buffer but not the remaining bytes must still be rejected.
        let mut w = Writer::new();
        w.put_u64(0xDEAD);
        w.put_u64(10); // claims 10 payload bytes...
        let mut buf = w.finish();
        buf.extend_from_slice(&[0u8; 4]); // ...but only 4 follow
        let mut r = Reader::new(&buf);
        let _ = r.get_u64().unwrap();
        assert!(matches!(r.get_bytes(), Err(ShefError::Malformed(_))));
    }

    #[test]
    fn trailing_bytes_detected() {
        let buf = vec![1u8, 2, 3];
        let mut r = Reader::new(&buf);
        let _ = r.get_u8().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn bad_bool_rejected() {
        let buf = vec![5u8];
        let mut r = Reader::new(&buf);
        assert!(r.get_bool().is_err());
    }
}
