//! Containment-grade fault taxonomy for the Shield datapath.
//!
//! The paper's threat model (§2.5, §5.2.1) gives the Shield a *detect*
//! obligation; this module gives it a *degrade* contract. Every fault
//! the datapath can survive is named here, with defined semantics:
//!
//! * **Poisoning** — once an engine set detects an integrity violation
//!   (spoof/splice/replay) its buffered state is suspect, so the set
//!   fail-stops: every subsequent access is rejected with
//!   [`ShieldFault::Poisoned`] until the operator explicitly calls
//!   `clear_poison` (which drops all buffered lines) or re-provisions
//!   the Shield. Detection without containment would let an adversary
//!   interleave tampered and clean traffic.
//! * **Lane panics** — a worker lane dying mid-batch is an
//!   infrastructure fault, not an integrity compromise. The batch is
//!   always drained: victim seals are recomputed inline so no evicted
//!   chunk is ever lost, the panicked job gets one bounded inline
//!   retry, and only if the retry also dies does the operation surface
//!   [`ShieldFault::LanePanic`]. The engine set is *not* poisoned.
//!
//! Faults travel as [`crate::ShefError::Fault`] so callers can match on
//! containment state separately from detection errors.

/// A contained Shield datapath fault with defined degradation
/// semantics (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShieldFault {
    /// A worker lane panicked while executing a chunk-crypto job and
    /// the bounded inline retry failed too. The batch was still
    /// drained: every victim seal landed in DRAM.
    LanePanic {
        /// Dispatch-order index of the job within its batch.
        job: usize,
    },
    /// The engine set rejected the operation because a previously
    /// detected integrity violation poisoned it (fail-stop
    /// containment).
    Poisoned {
        /// Name of the protected region whose engine set is poisoned.
        region: String,
    },
}

impl core::fmt::Display for ShieldFault {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ShieldFault::LanePanic { job } => {
                write!(f, "worker lane panicked on batch job {job} (batch drained)")
            }
            ShieldFault::Poisoned { region } => write!(
                f,
                "engine set for region '{region}' is poisoned after an integrity violation"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ShieldFault::LanePanic { job: 3 };
        assert!(e.to_string().contains("job 3"));
        let e = ShieldFault::Poisoned {
            region: "weights".into(),
        };
        assert!(e.to_string().contains("weights"));
    }
}
