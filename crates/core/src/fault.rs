//! Containment-grade fault taxonomy for the Shield datapath.
//!
//! The paper's threat model (§2.5, §5.2.1) gives the Shield a *detect*
//! obligation; this module gives it a *degrade* contract. Every fault
//! the datapath can survive is named here, with defined semantics:
//!
//! * **Poisoning** — once an engine set detects an integrity violation
//!   (spoof/splice/replay) its buffered state is suspect, so the set
//!   fail-stops: every subsequent access is rejected with
//!   [`ShieldFault::Poisoned`] until the operator explicitly calls
//!   `clear_poison` (which drops all buffered lines) or re-provisions
//!   the Shield. Detection without containment would let an adversary
//!   interleave tampered and clean traffic.
//! * **Lane panics** — a worker lane dying mid-batch is an
//!   infrastructure fault, not an integrity compromise. The batch is
//!   always drained: victim seals are recomputed inline so no evicted
//!   chunk is ever lost, the panicked job gets one bounded inline
//!   retry, and only if the retry also dies does the operation surface
//!   [`ShieldFault::LanePanic`]. The engine set is *not* poisoned.
//!
//! Faults travel as [`crate::ShefError::Fault`] so callers can match on
//! containment state separately from detection errors.

/// A contained Shield datapath fault with defined degradation
/// semantics (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShieldFault {
    /// A worker lane panicked while executing a chunk-crypto job and
    /// the bounded inline retry failed too. The batch was still
    /// drained: every victim seal landed in DRAM.
    LanePanic {
        /// Dispatch-order index of the job within its batch.
        job: usize,
    },
    /// The engine set rejected the operation because a previously
    /// detected integrity violation poisoned it (fail-stop
    /// containment).
    Poisoned {
        /// Name of the protected region whose engine set is poisoned.
        region: String,
    },
    /// The multi-tenant service refused to enqueue a request: the
    /// bounded admission queue (or the submitting tenant's quota slice
    /// of it) is full. Back-pressure, not failure — the tenant may
    /// retry after draining outstanding completions.
    AdmissionReject {
        /// Name of the tenant whose request was refused.
        tenant: String,
    },
    /// An admitted request was dropped from the service queue before
    /// dispatch (injected infrastructure fault). The request completes
    /// with this error instead of silently vanishing, so every admitted
    /// request still yields exactly one completion.
    QueueDrop {
        /// Name of the tenant whose request was dropped.
        tenant: String,
    },
    /// The tenant was administratively aborted mid-batch: its queued
    /// and future requests are refused until the tenant is detached.
    /// Other tenants are unaffected.
    TenantAborted {
        /// Name of the aborted tenant.
        tenant: String,
    },
    /// The service refused to admit a tenant whose attestation
    /// credential did not check out: missing/forged verifier signature,
    /// wrong tenant binding, or a replayed (already-admitted)
    /// attestation session. The reason string is the typed
    /// `shef_attest::AttestError` rendered for the audit log.
    AttestationRejected {
        /// Name of the tenant that was refused admission.
        tenant: String,
        /// Why the credential was rejected.
        reason: String,
    },
}

impl core::fmt::Display for ShieldFault {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ShieldFault::LanePanic { job } => {
                write!(f, "worker lane panicked on batch job {job} (batch drained)")
            }
            ShieldFault::Poisoned { region } => write!(
                f,
                "engine set for region '{region}' is poisoned after an integrity violation"
            ),
            ShieldFault::AdmissionReject { tenant } => write!(
                f,
                "admission queue full: request from tenant '{tenant}' refused (retry after draining)"
            ),
            ShieldFault::QueueDrop { tenant } => write!(
                f,
                "queued request from tenant '{tenant}' dropped before dispatch"
            ),
            ShieldFault::TenantAborted { tenant } => {
                write!(f, "tenant '{tenant}' was aborted mid-batch")
            }
            ShieldFault::AttestationRejected { tenant, reason } => write!(
                f,
                "tenant '{tenant}' refused admission: attestation credential rejected ({reason})"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ShieldFault::LanePanic { job: 3 };
        assert!(e.to_string().contains("job 3"));
        let e = ShieldFault::Poisoned {
            region: "weights".into(),
        };
        assert!(e.to_string().contains("weights"));
        let e = ShieldFault::AdmissionReject {
            tenant: "acme".into(),
        };
        assert!(e.to_string().contains("acme"));
        let e = ShieldFault::QueueDrop {
            tenant: "acme".into(),
        };
        assert!(e.to_string().contains("dropped"));
        let e = ShieldFault::TenantAborted {
            tenant: "acme".into(),
        };
        assert!(e.to_string().contains("aborted"));
        let e = ShieldFault::AttestationRejected {
            tenant: "acme".into(),
            reason: "ticket signature invalid".into(),
        };
        assert!(e.to_string().contains("attestation"));
    }
}
