//! Path ORAM on top of the Shield — the §5.2 extension hook.
//!
//! The paper closes its side-channel discussion with: "Further security
//! mechanisms against address metadata attacks, such as ORAM, can
//! simply be added by adopting open-source modules (e.g., [Fletcher et
//! al.]) on top of Shield engines due to their generic interface."
//! This module demonstrates exactly that: a Path ORAM controller
//! (Stefanov et al., CCS'13) written against the same
//! [`MemoryBus`] port the accelerators use —
//! so it runs unchanged over a Shield-protected region (hiding *which*
//! logical block is touched, on top of the Shield's confidentiality and
//! integrity) or over plain memory.
//!
//! Design (non-recursive Path ORAM):
//! * a binary tree of buckets, [`BUCKET_SLOTS`] blocks per bucket,
//!   stored contiguously in one memory region;
//! * an in-enclave position map and stash (they live inside the
//!   accelerator's on-chip state, like the Shield's own buffers);
//! * every access reads one root→leaf path, remaps the block to a fresh
//!   random leaf, and greedily writes the path back.
//!
//! The observable trace of *every* access is one uniformly random path
//! — the address side channel the controlled-channel analysis in
//! [`crate::sidechannel`] quantifies is closed entirely.

use shef_crypto::drbg::HmacDrbg;

use crate::shield::bus::MemoryBus;
use crate::shield::AccessMode;
use crate::ShefError;

/// Blocks per bucket (Z in the Path ORAM paper; 4 gives negligible
/// stash overflow probability).
pub const BUCKET_SLOTS: usize = 4;
/// Slot header: the logical block id (u64; `EMPTY_ID` marks a free slot).
const SLOT_HEADER: usize = 8;
const EMPTY_ID: u64 = u64::MAX;

/// A Path ORAM controller over a `[base, base + tree_bytes)` window of
/// a [`MemoryBus`].
pub struct PathOram {
    base: u64,
    block_size: usize,
    levels: u32,
    n_blocks: u64,
    position: Vec<u32>,
    stash: Vec<(u64, Vec<u8>)>,
    rng: HmacDrbg,
    accesses: u64,
}

impl core::fmt::Debug for PathOram {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PathOram")
            .field("n_blocks", &self.n_blocks)
            .field("levels", &self.levels)
            .field("stash_len", &self.stash.len())
            .field("accesses", &self.accesses)
            .finish()
    }
}

impl PathOram {
    /// Bytes of memory a tree for `n_blocks` blocks of `block_size`
    /// occupies.
    ///
    /// # Panics
    ///
    /// Panics if `n_blocks` is zero or `block_size` is zero.
    #[must_use]
    pub fn tree_bytes(n_blocks: u64, block_size: usize) -> u64 {
        let levels = levels_for(n_blocks);
        let buckets = (1u64 << (levels + 1)) - 1;
        buckets * (BUCKET_SLOTS * (SLOT_HEADER + block_size)) as u64
    }

    /// Creates a controller and formats the tree (all slots empty).
    ///
    /// # Errors
    ///
    /// Propagates bus errors while formatting.
    ///
    /// # Panics
    ///
    /// Panics if `n_blocks` or `block_size` is zero.
    pub fn format(
        bus: &mut dyn MemoryBus,
        base: u64,
        n_blocks: u64,
        block_size: usize,
        seed: &[u8],
    ) -> Result<Self, ShefError> {
        assert!(n_blocks > 0, "ORAM needs at least one block");
        assert!(block_size > 0, "blocks must be non-empty");
        let levels = levels_for(n_blocks);
        let mut rng = HmacDrbg::from_seed(seed);
        rng.reseed(b"shef.oram");
        let n_leaves = 1u64 << levels;
        let mut oram = PathOram {
            base,
            block_size,
            levels,
            n_blocks,
            position: Vec::with_capacity(n_blocks as usize),
            stash: Vec::new(),
            rng,
            accesses: 0,
        };
        for _ in 0..n_blocks {
            let leaf = oram.rng.next_u64() % n_leaves;
            oram.position.push(leaf as u32);
        }
        // Format every bucket as empty.
        let empty_bucket = oram.encode_bucket(&[]);
        let buckets = (1u64 << (levels + 1)) - 1;
        for b in 0..buckets {
            bus.write(
                base + b * oram.bucket_bytes() as u64,
                &empty_bucket,
                AccessMode::Streaming,
            )?;
        }
        Ok(oram)
    }

    fn bucket_bytes(&self) -> usize {
        BUCKET_SLOTS * (SLOT_HEADER + self.block_size)
    }

    /// Bucket index of level `level` on the path to `leaf` (standard
    /// heap layout: root = 0).
    fn bucket_on_path(&self, leaf: u32, level: u32) -> u64 {
        let leaf_node = (1u64 << self.levels) - 1 + leaf as u64;
        let mut node = leaf_node;
        for _ in 0..(self.levels - level) {
            node = (node - 1) / 2;
        }
        node
    }

    fn encode_bucket(&self, blocks: &[(u64, &[u8])]) -> Vec<u8> {
        debug_assert!(blocks.len() <= BUCKET_SLOTS);
        let mut out = Vec::with_capacity(self.bucket_bytes());
        for slot in 0..BUCKET_SLOTS {
            match blocks.get(slot) {
                Some((id, data)) => {
                    out.extend_from_slice(&id.to_le_bytes());
                    out.extend_from_slice(data);
                }
                None => {
                    out.extend_from_slice(&EMPTY_ID.to_le_bytes());
                    out.extend_from_slice(&vec![0u8; self.block_size]);
                }
            }
        }
        out
    }

    fn decode_bucket(&self, bytes: &[u8]) -> Vec<(u64, Vec<u8>)> {
        let mut blocks = Vec::new();
        for slot in 0..BUCKET_SLOTS {
            let off = slot * (SLOT_HEADER + self.block_size);
            let id = u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8-byte id"));
            if id != EMPTY_ID {
                blocks.push((id, bytes[off + 8..off + 8 + self.block_size].to_vec()));
            }
        }
        blocks
    }

    /// True if a block mapped to `block_leaf` may live in the bucket at
    /// `level` of the path to `path_leaf` (their paths coincide down to
    /// that level).
    fn can_place(&self, block_leaf: u32, path_leaf: u32, level: u32) -> bool {
        self.bucket_on_path(block_leaf, level) == self.bucket_on_path(path_leaf, level)
    }

    /// The single access primitive: reads or writes logical block `id`.
    /// Returns the block's (previous) contents.
    ///
    /// # Errors
    ///
    /// Propagates bus errors; [`ShefError::Malformed`] for out-of-range
    /// ids.
    pub fn access(
        &mut self,
        bus: &mut dyn MemoryBus,
        id: u64,
        write: Option<&[u8]>,
    ) -> Result<Vec<u8>, ShefError> {
        if id >= self.n_blocks {
            return Err(ShefError::Malformed(format!(
                "block {id} out of range ({} blocks)",
                self.n_blocks
            )));
        }
        if let Some(data) = write {
            if data.len() != self.block_size {
                return Err(ShefError::Malformed(format!(
                    "block payload must be {} bytes, got {}",
                    self.block_size,
                    data.len()
                )));
            }
        }
        self.accesses += 1;
        let leaf = self.position[id as usize];
        // Remap to a fresh uniformly random leaf before touching memory.
        let n_leaves = 1u64 << self.levels;
        self.position[id as usize] = (self.rng.next_u64() % n_leaves) as u32;

        // 1. Read the whole path into the stash.
        for level in 0..=self.levels {
            let bucket = self.bucket_on_path(leaf, level);
            let bytes = bus.read(
                self.base + bucket * self.bucket_bytes() as u64,
                self.bucket_bytes(),
                AccessMode::Streaming,
            )?;
            for (bid, data) in self.decode_bucket(&bytes) {
                if !self.stash.iter().any(|(sid, _)| *sid == bid) {
                    self.stash.push((bid, data));
                }
            }
        }

        // 2. Serve the request from the stash.
        let previous = match self.stash.iter_mut().find(|(sid, _)| *sid == id) {
            Some((_, data)) => {
                let old = data.clone();
                if let Some(new) = write {
                    data.copy_from_slice(new);
                }
                old
            }
            None => {
                // First touch: block springs into existence zero-filled.
                let old = vec![0u8; self.block_size];
                let content = write.map_or_else(|| old.clone(), <[u8]>::to_vec);
                self.stash.push((id, content));
                old
            }
        };

        // 3. Write the path back, placing stash blocks as deep as their
        //    (new) leaf assignment allows.
        for level in (0..=self.levels).rev() {
            let bucket = self.bucket_on_path(leaf, level);
            let mut placed: Vec<(u64, Vec<u8>)> = Vec::new();
            let mut i = 0;
            while i < self.stash.len() && placed.len() < BUCKET_SLOTS {
                let (bid, _) = &self.stash[i];
                let block_leaf = self.position[*bid as usize];
                if self.can_place(block_leaf, leaf, level) {
                    placed.push(self.stash.remove(i));
                } else {
                    i += 1;
                }
            }
            let refs: Vec<(u64, &[u8])> = placed
                .iter()
                .map(|(bid, data)| (*bid, data.as_slice()))
                .collect();
            let encoded = self.encode_bucket(&refs);
            bus.write(
                self.base + bucket * self.bucket_bytes() as u64,
                &encoded,
                AccessMode::Streaming,
            )?;
        }
        Ok(previous)
    }

    /// Convenience read.
    ///
    /// # Errors
    ///
    /// See [`PathOram::access`].
    pub fn read(&mut self, bus: &mut dyn MemoryBus, id: u64) -> Result<Vec<u8>, ShefError> {
        self.access(bus, id, None)
    }

    /// Convenience write; returns the previous contents.
    ///
    /// # Errors
    ///
    /// See [`PathOram::access`].
    pub fn write(
        &mut self,
        bus: &mut dyn MemoryBus,
        id: u64,
        data: &[u8],
    ) -> Result<Vec<u8>, ShefError> {
        self.access(bus, id, Some(data))
    }

    /// Current stash occupancy (bounded with overwhelming probability).
    #[must_use]
    pub fn stash_len(&self) -> usize {
        self.stash.len()
    }

    /// Total accesses served.
    #[must_use]
    pub fn access_count(&self) -> u64 {
        self.accesses
    }
}

fn levels_for(n_blocks: u64) -> u32 {
    // Enough leaves that each block maps to its own leaf on average.
    64 - n_blocks.next_power_of_two().leading_zeros() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shield::bus::{MemoryBus, PlainBus};
    use shef_fpga::clock::CostLedger;
    use shef_fpga::dram::Dram;
    use shef_fpga::shell::Shell;
    use std::collections::HashMap;

    /// A bus wrapper recording every (addr, len) touched.
    struct RecordingBus<'a> {
        inner: &'a mut dyn MemoryBus,
        trace: Vec<(u64, usize)>,
    }

    impl MemoryBus for RecordingBus<'_> {
        fn read(&mut self, addr: u64, len: usize, mode: AccessMode) -> Result<Vec<u8>, ShefError> {
            self.trace.push((addr, len));
            self.inner.read(addr, len, mode)
        }
        fn write(&mut self, addr: u64, data: &[u8], mode: AccessMode) -> Result<(), ShefError> {
            self.trace.push((addr, data.len()));
            self.inner.write(addr, data, mode)
        }
        fn flush(&mut self) -> Result<(), ShefError> {
            self.inner.flush()
        }
        fn compute(&mut self, cycles: u64) {
            self.inner.compute(cycles);
        }
        fn reg_read(&mut self, index: usize) -> u64 {
            self.inner.reg_read(index)
        }
        fn reg_write(&mut self, index: usize, value: u64) {
            self.inner.reg_write(index, value);
        }
    }

    fn plain_env() -> (Shell, Dram, CostLedger, Vec<u64>) {
        (
            Shell::new(),
            Dram::new(1 << 26),
            CostLedger::new(),
            vec![0u64; 4],
        )
    }

    #[test]
    fn read_write_matches_reference_map() {
        let (mut shell, mut dram, mut ledger, mut regs) = plain_env();
        let mut bus = PlainBus {
            shell: &mut shell,
            dram: &mut dram,
            ledger: &mut ledger,
            regs: &mut regs,
        };
        let mut oram = PathOram::format(&mut bus, 0, 32, 16, b"test").unwrap();
        let mut reference: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut rng = HmacDrbg::from_seed(b"workload");
        for _ in 0..200 {
            let id = rng.next_u64() % 32;
            if rng.next_u64().is_multiple_of(2) {
                let data = rng.generate_array::<16>().to_vec();
                oram.write(&mut bus, id, &data).unwrap();
                reference.insert(id, data);
            } else {
                let got = oram.read(&mut bus, id).unwrap();
                let expect = reference.get(&id).cloned().unwrap_or_else(|| vec![0u8; 16]);
                assert_eq!(got, expect, "block {id}");
            }
        }
        assert_eq!(oram.access_count(), 200);
    }

    #[test]
    fn stash_stays_bounded() {
        let (mut shell, mut dram, mut ledger, mut regs) = plain_env();
        let mut bus = PlainBus {
            shell: &mut shell,
            dram: &mut dram,
            ledger: &mut ledger,
            regs: &mut regs,
        };
        let mut oram = PathOram::format(&mut bus, 0, 64, 8, b"stash").unwrap();
        let mut rng = HmacDrbg::from_seed(b"stash-load");
        for i in 0..500 {
            let id = rng.next_u64() % 64;
            oram.write(&mut bus, id, &[i as u8; 8]).unwrap();
            assert!(
                oram.stash_len() < 40,
                "stash blew up to {} after {} accesses",
                oram.stash_len(),
                i + 1
            );
        }
    }

    #[test]
    fn every_access_touches_exactly_one_path() {
        let (mut shell, mut dram, mut ledger, mut regs) = plain_env();
        let mut inner = PlainBus {
            shell: &mut shell,
            dram: &mut dram,
            ledger: &mut ledger,
            regs: &mut regs,
        };
        let mut oram = PathOram::format(&mut inner, 0, 16, 8, b"trace").unwrap();
        let bucket = oram.bucket_bytes();
        let levels = oram.levels;
        // Two very different logical workloads…
        for id in [0u64, 0, 0, 0] {
            let mut bus = RecordingBus {
                inner: &mut inner,
                trace: Vec::new(),
            };
            oram.read(&mut bus, id).unwrap();
            // …produce traces of identical SHAPE: (levels+1) bucket reads
            // then (levels+1) bucket writes, all bucket-aligned.
            assert_eq!(bus.trace.len(), 2 * (levels as usize + 1));
            for (addr, len) in &bus.trace {
                assert_eq!(*len, bucket);
                assert_eq!((*addr as usize) % bucket, 0);
            }
        }
        for id in [1u64, 7, 3, 15] {
            let mut bus = RecordingBus {
                inner: &mut inner,
                trace: Vec::new(),
            };
            oram.read(&mut bus, id).unwrap();
            assert_eq!(bus.trace.len(), 2 * (levels as usize + 1));
        }
    }

    #[test]
    fn works_over_a_shield() {
        use crate::shield::bus::ShieldedBus;
        use crate::shield::{DataEncryptionKey, EngineSetConfig, MemRange, Shield, ShieldConfig};
        use shef_crypto::ecies::EciesKeyPair;

        let n_blocks = 16u64;
        let block = 32usize;
        let tree = PathOram::tree_bytes(n_blocks, block);
        let config = ShieldConfig::builder()
            .region(
                "oram-tree",
                MemRange::new(0, tree.next_multiple_of(512)),
                EngineSetConfig {
                    chunk_size: 64,
                    buffer_bytes: 4096,
                    counters: true,
                    zero_fill_writes: true,
                    ..EngineSetConfig::default()
                },
            )
            .build()
            .unwrap();
        let mut shield = Shield::new(config, EciesKeyPair::from_seed(b"oram")).unwrap();
        let dek = DataEncryptionKey::from_bytes([0x0Au8; 32]);
        shield
            .provision_load_key(&dek.to_load_key(&shield.public_key()))
            .unwrap();
        let mut shell = Shell::new();
        let mut dram = Dram::f1_default();
        let mut ledger = CostLedger::new();
        let mut bus = ShieldedBus {
            shield: &mut shield,
            shell: &mut shell,
            dram: &mut dram,
            ledger: &mut ledger,
        };
        let mut oram = PathOram::format(&mut bus, 0, n_blocks, block, b"shielded").unwrap();
        oram.write(&mut bus, 3, &[0xCC; 32]).unwrap();
        oram.write(&mut bus, 9, &[0xDD; 32]).unwrap();
        assert_eq!(oram.read(&mut bus, 3).unwrap(), vec![0xCC; 32]);
        assert_eq!(oram.read(&mut bus, 9).unwrap(), vec![0xDD; 32]);
        bus.flush().unwrap();
        // Defence in depth: the tree in DRAM is Shield ciphertext, and
        // the ORAM hides which block each path access targeted.
        let raw = dram.tamper_read(0, tree as usize);
        assert!(!raw.windows(32).any(|w| w == [0xCC; 32]));
    }

    #[test]
    fn rejects_bad_arguments() {
        let (mut shell, mut dram, mut ledger, mut regs) = plain_env();
        let mut bus = PlainBus {
            shell: &mut shell,
            dram: &mut dram,
            ledger: &mut ledger,
            regs: &mut regs,
        };
        let mut oram = PathOram::format(&mut bus, 0, 8, 16, b"args").unwrap();
        assert!(oram.read(&mut bus, 8).is_err());
        assert!(oram.write(&mut bus, 0, &[1u8; 15]).is_err());
    }

    #[test]
    fn tree_sizing() {
        // 8 blocks → 3 levels → 15 buckets × 4 slots × (8 + 16) bytes.
        assert_eq!(PathOram::tree_bytes(8, 16), 15 * 4 * 24);
        assert!(PathOram::tree_bytes(1, 16) > 0);
    }
}
