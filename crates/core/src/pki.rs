//! Public-key infrastructure for the ShEF ecosystem.
//!
//! §3: "The Manufacturer must also register and publish the public device
//! key via a trusted certificate authority", and the IP Vendor "consults
//! a public list of ShEF Security Kernel … hashes" during attestation.
//! This module provides both: a simple CA issuing Ed25519 certificates
//! over device keys, and the public measurement registry.

use std::collections::{BTreeMap, BTreeSet};

use shef_crypto::ed25519::{Signature, SigningKey, VerifyingKey};

use crate::wire::{Reader, Writer};
use crate::ShefError;

/// What a certificate binds a key to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertSubject {
    /// An FPGA device's public device key, identified by die serial.
    Device {
        /// The die serial printed on the package.
        die_serial: Vec<u8>,
    },
    /// An IP Vendor's distribution key, identified by vendor name.
    Vendor {
        /// Registered vendor name.
        name: String,
    },
}

/// A signed binding of a subject to an Ed25519 public key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Who the key belongs to.
    pub subject: CertSubject,
    /// The certified public key.
    pub public_key: VerifyingKey,
    /// CA signature over the serialized subject and key.
    pub signature: Signature,
}

impl Certificate {
    fn message(subject: &CertSubject, public_key: &VerifyingKey) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_str("shef.cert.v1");
        match subject {
            CertSubject::Device { die_serial } => {
                w.put_u8(0);
                w.put_bytes(die_serial);
            }
            CertSubject::Vendor { name } => {
                w.put_u8(1);
                w.put_str(name);
            }
        }
        w.put_fixed(&public_key.0);
        w.finish()
    }

    /// Verifies the certificate against a CA root key.
    ///
    /// # Errors
    ///
    /// Returns [`ShefError::Crypto`] if the signature does not verify.
    pub fn verify(&self, ca_root: &VerifyingKey) -> Result<(), ShefError> {
        let msg = Self::message(&self.subject, &self.public_key);
        ca_root.verify(&msg, &self.signature)?;
        Ok(())
    }

    /// Serializes for transport.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match &self.subject {
            CertSubject::Device { die_serial } => {
                w.put_u8(0);
                w.put_bytes(die_serial);
            }
            CertSubject::Vendor { name } => {
                w.put_u8(1);
                w.put_str(name);
            }
        }
        w.put_fixed(&self.public_key.0);
        w.put_fixed(&self.signature.0);
        w.finish()
    }

    /// Parses the `to_bytes` format.
    ///
    /// # Errors
    ///
    /// Returns [`ShefError::Malformed`] on bad input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ShefError> {
        let mut r = Reader::new(bytes);
        let subject = match r.get_u8()? {
            0 => CertSubject::Device {
                die_serial: r.get_bytes()?,
            },
            1 => CertSubject::Vendor { name: r.get_str()? },
            t => return Err(ShefError::Malformed(format!("unknown subject tag {t}"))),
        };
        let public_key = VerifyingKey(r.get_fixed::<32>()?);
        let signature = Signature(r.get_fixed::<64>()?);
        r.finish()?;
        Ok(Certificate {
            subject,
            public_key,
            signature,
        })
    }
}

/// A certificate authority (run by the Manufacturer, per §3).
pub struct CertificateAuthority {
    root: SigningKey,
    issued: BTreeMap<Vec<u8>, Certificate>,
}

impl core::fmt::Debug for CertificateAuthority {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("CertificateAuthority")
            .field("root_public", &self.root.verifying_key())
            .field("issued", &self.issued.len())
            .finish()
    }
}

impl CertificateAuthority {
    /// Creates a CA with a deterministic root key.
    #[must_use]
    pub fn new(seed: &[u8; 32]) -> Self {
        CertificateAuthority {
            root: SigningKey::from_seed(seed),
            issued: BTreeMap::new(),
        }
    }

    /// The root public key, distributed out of band to all parties.
    #[must_use]
    pub fn root_public(&self) -> VerifyingKey {
        self.root.verifying_key()
    }

    /// Issues and records a certificate.
    pub fn issue(&mut self, subject: CertSubject, public_key: VerifyingKey) -> Certificate {
        let msg = Certificate::message(&subject, &public_key);
        let cert = Certificate {
            subject: subject.clone(),
            public_key,
            signature: self.root.sign(&msg),
        };
        let index_key = match &subject {
            CertSubject::Device { die_serial } => {
                let mut k = b"device:".to_vec();
                k.extend_from_slice(die_serial);
                k
            }
            CertSubject::Vendor { name } => {
                let mut k = b"vendor:".to_vec();
                k.extend_from_slice(name.as_bytes());
                k
            }
        };
        self.issued.insert(index_key, cert.clone());
        cert
    }

    /// Looks up the certificate issued for a device by die serial.
    #[must_use]
    pub fn device_certificate(&self, die_serial: &[u8]) -> Option<&Certificate> {
        let mut k = b"device:".to_vec();
        k.extend_from_slice(die_serial);
        self.issued.get(&k)
    }
}

/// The public registry of audited Security-Kernel measurements.
///
/// §3: "the IP Vendor consults a public list of ShEF Security Kernel
/// (and Security Kernel Processor) hashes". The Security Kernel is open
/// source; anyone can rebuild it and check the hash.
#[derive(Debug, Default, Clone)]
pub struct MeasurementRegistry {
    kernel_hashes: BTreeSet<[u8; 32]>,
}

impl MeasurementRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        MeasurementRegistry::default()
    }

    /// Publishes an audited kernel hash.
    pub fn publish_kernel_hash(&mut self, hash: [u8; 32]) {
        self.kernel_hashes.insert(hash);
    }

    /// True if `hash` is an audited Security Kernel build.
    #[must_use]
    pub fn is_known_kernel(&self, hash: &[u8; 32]) -> bool {
        self.kernel_hashes.contains(hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_and_verify_device_cert() {
        let mut ca = CertificateAuthority::new(&[1u8; 32]);
        let device_key = SigningKey::from_seed(&[2u8; 32]).verifying_key();
        let cert = ca.issue(
            CertSubject::Device {
                die_serial: b"die-7".to_vec(),
            },
            device_key,
        );
        cert.verify(&ca.root_public()).unwrap();
        assert_eq!(ca.device_certificate(b"die-7").unwrap(), &cert);
        assert!(ca.device_certificate(b"die-8").is_none());
    }

    #[test]
    fn forged_cert_rejected() {
        let mut ca = CertificateAuthority::new(&[1u8; 32]);
        let rogue_ca = CertificateAuthority::new(&[9u8; 32]);
        let key = SigningKey::from_seed(&[2u8; 32]).verifying_key();
        let cert = ca.issue(
            CertSubject::Vendor {
                name: "acme".into(),
            },
            key,
        );
        assert!(cert.verify(&rogue_ca.root_public()).is_err());
    }

    #[test]
    fn tampered_subject_rejected() {
        let mut ca = CertificateAuthority::new(&[1u8; 32]);
        let key = SigningKey::from_seed(&[2u8; 32]).verifying_key();
        let mut cert = ca.issue(
            CertSubject::Device {
                die_serial: b"die-1".to_vec(),
            },
            key,
        );
        cert.subject = CertSubject::Device {
            die_serial: b"die-2".to_vec(),
        };
        assert!(cert.verify(&ca.root_public()).is_err());
    }

    #[test]
    fn cert_wire_round_trip() {
        let mut ca = CertificateAuthority::new(&[1u8; 32]);
        let key = SigningKey::from_seed(&[3u8; 32]).verifying_key();
        let cert = ca.issue(CertSubject::Vendor { name: "v".into() }, key);
        let parsed = Certificate::from_bytes(&cert.to_bytes()).unwrap();
        assert_eq!(parsed, cert);
        parsed.verify(&ca.root_public()).unwrap();
        assert!(Certificate::from_bytes(&[0u8; 3]).is_err());
    }

    #[test]
    fn measurement_registry() {
        let mut reg = MeasurementRegistry::new();
        assert!(!reg.is_known_kernel(&[0u8; 32]));
        reg.publish_kernel_hash([0u8; 32]);
        assert!(reg.is_known_kernel(&[0u8; 32]));
    }
}
