//! Stream-interface protection: securing PCIe-style AXI4 channels.
//!
//! §5.1 notes that "Shells commonly provide a generic AXI4 interface
//! for both memory and PCIe. Thus, the Shield can also support
//! additional interfaces such as PCIe via the same AXI4 interface."
//! Device memory is address-indexed, so chunk tags bind `(region,
//! index, epoch)`; a PCIe/AXI-stream channel has no addresses — its
//! integrity unit is the *frame* and its replay/reorder defence is a
//! *sequence number*. This module is that engine: an authenticated,
//! strictly-ordered, bidirectional framing layer that a Shield exposes
//! on a stream port, with the Data Owner holding the matching
//! client-side [`StreamEndpoint`].
//!
//! Guarantees per direction (each with its own key and counter):
//!
//! * **confidentiality** — frames are AES-CTR ciphertext;
//! * **integrity** — 16-byte encrypt-then-MAC tags (HMAC, PMAC or
//!   GHASH, like any other Shield engine);
//! * **freshness/ordering** — the tag binds a monotonically increasing
//!   sequence number; replayed, reordered, or dropped frames are all
//!   rejected (a drop desynchronizes the counter and surfaces as a
//!   failed tag on the next frame).
//!
//! The [`frame_cost`] helper gives the cycle cost for the timing model,
//! mirroring the memory path's `chunk_crypto_cost`.

use shef_crypto::authenc::{AuthEncKey, MacAlgorithm, Sealed};
use shef_crypto::ctr::ChunkIv;
use shef_crypto::hkdf;

use super::keys::DataEncryptionKey;
use super::timing::{chunk_crypto_cost, ChunkCost};
use crate::wire::Writer;
use crate::ShefError;

/// Direction of a stream frame, bound into every tag so host→device
/// traffic can never be reflected back as device→host traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamDirection {
    /// Data Owner (via the untrusted host) → accelerator.
    ToDevice,
    /// Accelerator → Data Owner.
    FromDevice,
}

impl StreamDirection {
    fn label(self) -> &'static str {
        match self {
            StreamDirection::ToDevice => "to-device",
            StreamDirection::FromDevice => "from-device",
        }
    }
}

/// A sealed stream frame as it crosses the untrusted host and Shell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamFrame {
    /// Sequence number claimed by the sender (authenticated: the tag
    /// binds it, so tampering here is detected, not trusted).
    pub seq: u64,
    /// The sealed payload.
    pub sealed: Sealed,
}

impl StreamFrame {
    /// Wire encoding forwarded by the host program.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(self.seq);
        w.put_bytes(&self.sealed.to_bytes());
        w.finish()
    }

    /// Parses the wire encoding.
    ///
    /// # Errors
    ///
    /// Returns [`ShefError::Malformed`] on truncated or corrupt input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ShefError> {
        let mut r = crate::wire::Reader::new(bytes);
        let seq = r.get_u64()?;
        let sealed_bytes = r.get_bytes()?;
        r.finish()?;
        let sealed = Sealed::from_bytes(&sealed_bytes)
            .map_err(|e| ShefError::Malformed(format!("bad stream frame: {e}")))?;
        Ok(StreamFrame { seq, sealed })
    }
}

/// AD string binding a frame to the channel, direction and sequence.
fn frame_ad(channel: &str, direction: StreamDirection, seq: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_str("shef.stream.frame.v1");
    w.put_str(channel);
    w.put_str(direction.label());
    w.put_u64(seq);
    w.finish()
}

/// IV for a frame: direction bit ‖ sequence (never reused — sequence
/// numbers are strictly increasing and directions are domain-split).
fn frame_iv(direction: StreamDirection, seq: u64) -> ChunkIv {
    let mut iv = [0u8; 12];
    iv[0] = match direction {
        StreamDirection::ToDevice => 0x0d,
        StreamDirection::FromDevice => 0xd0,
    };
    iv[4..].copy_from_slice(&seq.to_be_bytes());
    ChunkIv(iv)
}

/// One endpoint of a protected stream channel. The Shield instantiates
/// one with [`StreamEndpoint::shield_side`]; the Data Owner's client
/// holds the mirror from [`StreamEndpoint::client_side`].
pub struct StreamEndpoint {
    channel: String,
    key: AuthEncKey,
    send_dir: StreamDirection,
    recv_dir: StreamDirection,
    next_send: u64,
    next_recv: u64,
    frames_sent: u64,
    frames_received: u64,
}

impl core::fmt::Debug for StreamEndpoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("StreamEndpoint")
            .field("channel", &self.channel)
            .field("sent", &self.frames_sent)
            .field("received", &self.frames_received)
            .finish_non_exhaustive()
    }
}

/// Derives the channel key shared by both endpoints.
fn channel_key(dek: &DataEncryptionKey, channel: &str, mac: MacAlgorithm) -> AuthEncKey {
    let info = format!("shef.stream.key.{channel}");
    let master = hkdf::derive_key32(b"shef.shield", &dek.to_bytes(), info.as_bytes());
    AuthEncKey::from_bytes(master, mac)
}

impl StreamEndpoint {
    /// The accelerator-facing endpoint inside the Shield. `channel`
    /// names the stream port (part of the key derivation, so two ports
    /// never share keys).
    #[must_use]
    pub fn shield_side(dek: &DataEncryptionKey, channel: &str, mac: MacAlgorithm) -> Self {
        StreamEndpoint {
            channel: channel.to_owned(),
            key: channel_key(dek, channel, mac),
            send_dir: StreamDirection::FromDevice,
            recv_dir: StreamDirection::ToDevice,
            next_send: 0,
            next_recv: 0,
            frames_sent: 0,
            frames_received: 0,
        }
    }

    /// The Data Owner's endpoint (runs off-cloud; talks through the
    /// untrusted host program).
    #[must_use]
    pub fn client_side(dek: &DataEncryptionKey, channel: &str, mac: MacAlgorithm) -> Self {
        StreamEndpoint {
            channel: channel.to_owned(),
            key: channel_key(dek, channel, mac),
            send_dir: StreamDirection::ToDevice,
            recv_dir: StreamDirection::FromDevice,
            next_send: 0,
            next_recv: 0,
            frames_sent: 0,
            frames_received: 0,
        }
    }

    /// Frames sent so far.
    #[must_use]
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// Frames accepted so far.
    #[must_use]
    pub fn frames_received(&self) -> u64 {
        self.frames_received
    }

    /// Seals `payload` as the next frame in this endpoint's send
    /// direction.
    pub fn send(&mut self, payload: &[u8]) -> StreamFrame {
        let seq = self.next_send;
        self.next_send += 1;
        self.frames_sent += 1;
        let sealed = self.key.seal_with_iv(
            payload,
            &frame_ad(&self.channel, self.send_dir, seq),
            frame_iv(self.send_dir, seq),
        );
        StreamFrame { seq, sealed }
    }

    /// Verifies and opens the next expected frame.
    ///
    /// # Errors
    ///
    /// * [`ShefError::ProtocolViolation`] if the claimed sequence number
    ///   is not the next expected one (reorder, replay, or drop).
    /// * [`ShefError::IntegrityViolation`] if the tag fails (tampering,
    ///   or a forged sequence number).
    pub fn recv(&mut self, frame: &StreamFrame) -> Result<Vec<u8>, ShefError> {
        if frame.seq != self.next_recv {
            return Err(ShefError::ProtocolViolation(format!(
                "stream '{}': expected frame {}, got {} (reorder/replay/drop)",
                self.channel, self.next_recv, frame.seq
            )));
        }
        let payload = self
            .key
            .open(
                &frame.sealed,
                &frame_ad(&self.channel, self.recv_dir, frame.seq),
            )
            .map_err(|_| {
                ShefError::IntegrityViolation(format!(
                    "stream '{}': frame {} failed authentication",
                    self.channel, frame.seq
                ))
            })?;
        self.next_recv += 1;
        self.frames_received += 1;
        Ok(payload)
    }
}

/// Cycle cost of sealing or opening one `len`-byte frame with the given
/// engine complement — identical engine hardware to the memory path,
/// so the same cost model applies.
#[must_use]
pub fn frame_cost(engine_set: &super::config::EngineSetConfig, len: usize) -> ChunkCost {
    chunk_crypto_cost(engine_set, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (StreamEndpoint, StreamEndpoint) {
        let dek = DataEncryptionKey::from_bytes([0x21u8; 32]);
        (
            StreamEndpoint::client_side(&dek, "pcie0", MacAlgorithm::HmacSha256),
            StreamEndpoint::shield_side(&dek, "pcie0", MacAlgorithm::HmacSha256),
        )
    }

    #[test]
    fn bidirectional_round_trip() {
        let (mut client, mut shield) = pair();
        let f1 = client.send(b"command: scan table");
        assert_eq!(shield.recv(&f1).unwrap(), b"command: scan table");
        let f2 = shield.send(b"result: 42 rows");
        assert_eq!(client.recv(&f2).unwrap(), b"result: 42 rows");
        assert_eq!(client.frames_sent(), 1);
        assert_eq!(client.frames_received(), 1);
    }

    #[test]
    fn long_exchange_keeps_order() {
        let (mut client, mut shield) = pair();
        for i in 0..200u32 {
            let frame = client.send(&i.to_le_bytes());
            assert_eq!(shield.recv(&frame).unwrap(), i.to_le_bytes());
        }
    }

    #[test]
    fn replayed_frame_rejected() {
        let (mut client, mut shield) = pair();
        let frame = client.send(b"debit $100");
        shield.recv(&frame).unwrap();
        let err = shield.recv(&frame).unwrap_err();
        assert!(matches!(err, ShefError::ProtocolViolation(_)));
    }

    #[test]
    fn reordered_frames_rejected() {
        let (mut client, mut shield) = pair();
        let f0 = client.send(b"first");
        let f1 = client.send(b"second");
        let err = shield.recv(&f1).unwrap_err();
        assert!(matches!(err, ShefError::ProtocolViolation(_)));
        // The in-order frame still works afterwards.
        assert_eq!(shield.recv(&f0).unwrap(), b"first");
    }

    #[test]
    fn dropped_frame_detected() {
        let (mut client, mut shield) = pair();
        let _lost = client.send(b"frame 0 (dropped by malicious host)");
        let f1 = client.send(b"frame 1");
        assert!(shield.recv(&f1).is_err());
    }

    #[test]
    fn forged_sequence_number_fails_tag() {
        // An adversary rewriting the (plaintext) seq field to match the
        // receiver's expectation still fails: the tag binds the true seq.
        let (mut client, mut shield) = pair();
        let f0 = client.send(b"first");
        shield.recv(&f0).unwrap();
        let mut f1 = client.send(b"second");
        // Host tries to replay the first sealed payload as frame 1.
        f1.sealed = f0.sealed.clone();
        let err = shield.recv(&f1).unwrap_err();
        assert!(matches!(err, ShefError::IntegrityViolation(_)));
    }

    #[test]
    fn tampered_payload_rejected() {
        let (mut client, mut shield) = pair();
        let mut frame = client.send(b"sensitive");
        frame.sealed.ciphertext[0] ^= 1;
        assert!(matches!(
            shield.recv(&frame).unwrap_err(),
            ShefError::IntegrityViolation(_)
        ));
    }

    #[test]
    fn reflection_across_directions_rejected() {
        // Bouncing a client frame back to the client must fail: the tag
        // binds the direction.
        let (mut client, _shield) = pair();
        let frame = client.send(b"to device");
        assert!(client.recv(&frame).is_err());
    }

    #[test]
    fn channels_are_isolated() {
        let dek = DataEncryptionKey::from_bytes([0x21u8; 32]);
        let mut client_a = StreamEndpoint::client_side(&dek, "pcie0", MacAlgorithm::HmacSha256);
        let mut shield_b = StreamEndpoint::shield_side(&dek, "pcie1", MacAlgorithm::HmacSha256);
        let frame = client_a.send(b"for channel 0");
        assert!(
            shield_b.recv(&frame).is_err(),
            "cross-channel frames must fail"
        );
    }

    #[test]
    fn wire_format_round_trips() {
        let (mut client, mut shield) = pair();
        let frame = client.send(b"over the wire");
        let parsed = StreamFrame::from_bytes(&frame.to_bytes()).unwrap();
        assert_eq!(parsed, frame);
        assert_eq!(shield.recv(&parsed).unwrap(), b"over the wire");
        assert!(StreamFrame::from_bytes(&[1, 2, 3]).is_err());
    }

    #[test]
    fn corrupt_length_prefix_rejected() {
        // A frame whose sealed-bytes length field is forged to u64::MAX
        // must be rejected as malformed without any allocation — the
        // same unbounded-allocation pattern class fixed in
        // `ShieldConfig::from_bytes`.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&3u64.to_le_bytes()); // seq
        bytes.extend_from_slice(&u64::MAX.to_le_bytes()); // sealed length
        bytes.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            StreamFrame::from_bytes(&bytes),
            Err(ShefError::Malformed(_))
        ));
    }

    #[test]
    fn overlong_length_prefix_rejected() {
        // A length that fits the total buffer but exceeds the bytes
        // remaining after the seq field must also fail.
        let (mut client, _shield) = pair();
        let good = client.send(b"frame").to_bytes();
        let mut bytes = good.clone();
        // Inflate the sealed-length field past the remaining payload.
        bytes[8..16].copy_from_slice(&(good.len() as u64).to_le_bytes());
        assert!(matches!(
            StreamFrame::from_bytes(&bytes),
            Err(ShefError::Malformed(_))
        ));
        // Truncated sealed payload inside a well-formed envelope fails
        // in Sealed::from_bytes, surfaced as Malformed.
        let mut w = crate::wire::Writer::new();
        w.put_u64(0);
        w.put_bytes(&[0u8; 4]); // too short for IV + tag
        assert!(matches!(
            StreamFrame::from_bytes(&w.finish()),
            Err(ShefError::Malformed(_))
        ));
    }

    #[test]
    fn works_with_all_mac_engines() {
        for mac in [
            MacAlgorithm::HmacSha256,
            MacAlgorithm::PmacAes,
            MacAlgorithm::AesGcm,
        ] {
            let dek = DataEncryptionKey::from_bytes([0x44u8; 32]);
            let mut client = StreamEndpoint::client_side(&dek, "ch", mac);
            let mut shield = StreamEndpoint::shield_side(&dek, "ch", mac);
            let frame = client.send(b"payload");
            assert_eq!(shield.recv(&frame).unwrap(), b"payload");
        }
    }

    #[test]
    fn frame_cost_matches_memory_path_model() {
        let es = super::super::config::EngineSetConfig::default();
        assert_eq!(frame_cost(&es, 512), chunk_crypto_cost(&es, 512));
    }
}
