//! The Shield register interface (§5.1).
//!
//! "The register interface provides authenticated encryption using the
//! Data Owner's Data Encryption Key. The host program memory-maps
//! accelerator-accessible registers and reads/writes encrypted data and
//! commands via pointers." The host side only ever sees sealed blobs;
//! the accelerator side sees plaintext registers.
//!
//! With [`RegisterInterfaceConfig::hide_addresses`] the Shield
//! additionally hides *which* register is accessed: the host funnels
//! sealed `(index, value)` packets through a single common address
//! ("the Shield offers an additional option of encrypting both addresses
//! and data via a common address for all registers").

use shef_crypto::authenc::{AuthEncKey, Sealed};

use super::config::RegisterInterfaceConfig;
use crate::wire::{Reader, Writer};
use crate::ShefError;

fn reg_ad(index: usize) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_str("shef.regif.v1");
    w.put_u32(index as u32);
    w.finish()
}

fn common_ad() -> Vec<u8> {
    let mut w = Writer::new();
    w.put_str("shef.regif.v1.common");
    w.finish()
}

/// The register interface runtime.
pub struct RegisterInterface {
    cfg: RegisterInterfaceConfig,
    key: Option<AuthEncKey>,
    regs: Vec<u64>,
}

impl core::fmt::Debug for RegisterInterface {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RegisterInterface")
            .field("num_registers", &self.cfg.num_registers)
            .field("hide_addresses", &self.cfg.hide_addresses)
            .field("keyed", &self.key.is_some())
            .finish()
    }
}

impl RegisterInterface {
    /// Creates an interface with no key (pre-provisioning).
    #[must_use]
    pub fn new(cfg: RegisterInterfaceConfig) -> Self {
        let regs = vec![0u64; cfg.num_registers];
        RegisterInterface {
            cfg,
            key: None,
            regs,
        }
    }

    /// Installs the register key derived from the Data Encryption Key.
    pub fn set_key(&mut self, key: AuthEncKey) {
        self.key = Some(key);
    }

    /// Erases the key (session end).
    pub fn zeroize(&mut self) {
        self.key = None;
    }

    fn key(&self) -> Result<&AuthEncKey, ShefError> {
        self.key
            .as_ref()
            .ok_or_else(|| ShefError::KeyNotProvisioned("register interface key".into()))
    }

    fn key_mut(&mut self) -> Result<&mut AuthEncKey, ShefError> {
        self.key
            .as_mut()
            .ok_or_else(|| ShefError::KeyNotProvisioned("register interface key".into()))
    }

    fn check_index(&self, index: usize) -> Result<(), ShefError> {
        if index >= self.cfg.num_registers {
            return Err(ShefError::Malformed(format!(
                "register index {index} out of range (file has {})",
                self.cfg.num_registers
            )));
        }
        Ok(())
    }

    /// Host writes a sealed 8-byte value to register `index`.
    ///
    /// # Errors
    ///
    /// Fails with [`ShefError::Crypto`] on tag mismatch, or
    /// [`ShefError::ProtocolViolation`] if address hiding is enabled
    /// (use [`RegisterInterface::host_write_hidden`]).
    pub fn host_write(&mut self, index: usize, sealed: &Sealed) -> Result<(), ShefError> {
        if self.cfg.hide_addresses {
            return Err(ShefError::ProtocolViolation(
                "address hiding enabled: use the common register".into(),
            ));
        }
        self.check_index(index)?;
        let plain = self.key()?.open(sealed, &reg_ad(index))?;
        let bytes: [u8; 8] = plain
            .try_into()
            .map_err(|_| ShefError::Malformed("register payload must be 8 bytes".into()))?;
        self.regs[index] = u64::from_le_bytes(bytes);
        Ok(())
    }

    /// Host reads register `index` as a sealed blob.
    ///
    /// # Errors
    ///
    /// Fails if unkeyed or if address hiding is enabled.
    pub fn host_read(&mut self, index: usize) -> Result<Sealed, ShefError> {
        if self.cfg.hide_addresses {
            return Err(ShefError::ProtocolViolation(
                "address hiding enabled: use the common register".into(),
            ));
        }
        self.check_index(index)?;
        let value = self.regs[index].to_le_bytes();
        let ad = reg_ad(index);
        Ok(self.key_mut()?.seal(&value, &ad))
    }

    /// Host writes through the common register: the sealed payload
    /// carries `(index, value)` so the bus address reveals nothing.
    ///
    /// # Errors
    ///
    /// Fails with [`ShefError::Crypto`] on tag mismatch.
    pub fn host_write_hidden(&mut self, sealed: &Sealed) -> Result<(), ShefError> {
        let plain = self.key()?.open(sealed, &common_ad())?;
        let mut r = Reader::new(&plain);
        let index = r.get_u32()? as usize;
        let value = r.get_u64()?;
        r.finish()?;
        self.check_index(index)?;
        self.regs[index] = value;
        Ok(())
    }

    /// Host reads through the common register: sends a sealed index,
    /// receives a sealed `(index, value)`.
    ///
    /// # Errors
    ///
    /// Fails with [`ShefError::Crypto`] on tag mismatch.
    pub fn host_read_hidden(&mut self, sealed_index: &Sealed) -> Result<Sealed, ShefError> {
        let plain = self.key()?.open(sealed_index, &common_ad())?;
        let mut r = Reader::new(&plain);
        let index = r.get_u32()? as usize;
        r.finish()?;
        self.check_index(index)?;
        let mut w = Writer::new();
        w.put_u32(index as u32);
        w.put_u64(self.regs[index]);
        let payload = w.finish();
        let ad = common_ad();
        Ok(self.key_mut()?.seal(&payload, &ad))
    }

    /// Accelerator-side plaintext read.
    #[must_use]
    pub fn accel_read(&self, index: usize) -> u64 {
        self.regs.get(index).copied().unwrap_or(0)
    }

    /// Accelerator-side plaintext write.
    pub fn accel_write(&mut self, index: usize, value: u64) {
        if let Some(slot) = self.regs.get_mut(index) {
            *slot = value;
        }
    }

    /// Helpers for the host side of the channel (the Data Owner's
    /// client): seals a value for `host_write`.
    ///
    /// # Errors
    ///
    /// Fails if the interface is unkeyed.
    pub fn client_seal_value(
        key: &mut AuthEncKey,
        index: usize,
        value: u64,
    ) -> Result<Sealed, ShefError> {
        Ok(key.seal(&value.to_le_bytes(), &reg_ad(index)))
    }

    /// Client-side open of a `host_read` response.
    ///
    /// # Errors
    ///
    /// Fails with [`ShefError::Crypto`] on tag mismatch.
    pub fn client_open_value(
        key: &AuthEncKey,
        index: usize,
        sealed: &Sealed,
    ) -> Result<u64, ShefError> {
        let plain = key.open(sealed, &reg_ad(index))?;
        let bytes: [u8; 8] = plain
            .try_into()
            .map_err(|_| ShefError::Malformed("register payload must be 8 bytes".into()))?;
        Ok(u64::from_le_bytes(bytes))
    }

    /// Client-side seal of a hidden `(index, value)` write packet.
    #[must_use]
    pub fn client_seal_hidden_write(key: &mut AuthEncKey, index: usize, value: u64) -> Sealed {
        let mut w = Writer::new();
        w.put_u32(index as u32);
        w.put_u64(value);
        key.seal(&w.finish(), &common_ad())
    }

    /// Client-side seal of a hidden read request.
    #[must_use]
    pub fn client_seal_hidden_read(key: &mut AuthEncKey, index: usize) -> Sealed {
        let mut w = Writer::new();
        w.put_u32(index as u32);
        key.seal(&w.finish(), &common_ad())
    }

    /// Client-side open of a hidden read response.
    ///
    /// # Errors
    ///
    /// Fails with [`ShefError::Crypto`] on tag mismatch.
    pub fn client_open_hidden(
        key: &AuthEncKey,
        sealed: &Sealed,
    ) -> Result<(usize, u64), ShefError> {
        let plain = key.open(sealed, &common_ad())?;
        let mut r = Reader::new(&plain);
        let index = r.get_u32()? as usize;
        let value = r.get_u64()?;
        r.finish()?;
        Ok((index, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shef_crypto::authenc::MacAlgorithm;

    fn keyed_regif(hide: bool) -> (RegisterInterface, AuthEncKey) {
        let mut regif = RegisterInterface::new(RegisterInterfaceConfig {
            num_registers: 8,
            hide_addresses: hide,
        });
        let key = AuthEncKey::from_bytes([0x21u8; 32], MacAlgorithm::HmacSha256);
        regif.set_key(key.clone());
        (regif, key)
    }

    #[test]
    fn host_write_then_accel_read() {
        let (mut regif, mut key) = keyed_regif(false);
        let sealed = RegisterInterface::client_seal_value(&mut key, 3, 0xdead_beef).unwrap();
        regif.host_write(3, &sealed).unwrap();
        assert_eq!(regif.accel_read(3), 0xdead_beef);
    }

    #[test]
    fn accel_write_then_host_read() {
        let (mut regif, key) = keyed_regif(false);
        regif.accel_write(5, 42);
        let sealed = regif.host_read(5).unwrap();
        assert_eq!(
            RegisterInterface::client_open_value(&key, 5, &sealed).unwrap(),
            42
        );
    }

    #[test]
    fn tampered_register_write_rejected() {
        let (mut regif, mut key) = keyed_regif(false);
        let mut sealed = RegisterInterface::client_seal_value(&mut key, 2, 7).unwrap();
        sealed.ciphertext[0] ^= 1;
        assert!(regif.host_write(2, &sealed).is_err());
        assert_eq!(regif.accel_read(2), 0, "tampered write must not land");
    }

    #[test]
    fn sealed_value_bound_to_register_index() {
        // A packet sealed for register 1 replayed at register 2 must fail
        // (address metadata binding).
        let (mut regif, mut key) = keyed_regif(false);
        let sealed = RegisterInterface::client_seal_value(&mut key, 1, 99).unwrap();
        assert!(regif.host_write(2, &sealed).is_err());
    }

    #[test]
    fn unkeyed_interface_refuses() {
        let mut regif = RegisterInterface::new(RegisterInterfaceConfig::default());
        let mut key = AuthEncKey::from_bytes([1u8; 32], MacAlgorithm::HmacSha256);
        let sealed = RegisterInterface::client_seal_value(&mut key, 0, 1).unwrap();
        assert!(matches!(
            regif.host_write(0, &sealed),
            Err(ShefError::KeyNotProvisioned(_))
        ));
    }

    #[test]
    fn out_of_range_index_rejected() {
        let (mut regif, mut key) = keyed_regif(false);
        let sealed = RegisterInterface::client_seal_value(&mut key, 20, 1).unwrap();
        assert!(regif.host_write(20, &sealed).is_err());
    }

    #[test]
    fn hidden_mode_round_trip() {
        let (mut regif, mut key) = keyed_regif(true);
        let w = RegisterInterface::client_seal_hidden_write(&mut key, 6, 123);
        regif.host_write_hidden(&w).unwrap();
        assert_eq!(regif.accel_read(6), 123);
        let rq = RegisterInterface::client_seal_hidden_read(&mut key, 6);
        let resp = regif.host_read_hidden(&rq).unwrap();
        assert_eq!(
            RegisterInterface::client_open_hidden(&key, &resp).unwrap(),
            (6, 123)
        );
    }

    #[test]
    fn hidden_mode_blocks_plain_path() {
        let (mut regif, mut key) = keyed_regif(true);
        let sealed = RegisterInterface::client_seal_value(&mut key, 0, 1).unwrap();
        assert!(matches!(
            regif.host_write(0, &sealed),
            Err(ShefError::ProtocolViolation(_))
        ));
        assert!(matches!(
            regif.host_read(0),
            Err(ShefError::ProtocolViolation(_))
        ));
    }

    #[test]
    fn zeroize_drops_key() {
        let (mut regif, mut key) = keyed_regif(false);
        regif.zeroize();
        let sealed = RegisterInterface::client_seal_value(&mut key, 0, 1).unwrap();
        assert!(regif.host_write(0, &sealed).is_err());
    }
}
